/**
 * @file
 * Experiment E13 — Appendix A of the paper: the delay of one Cray-1S ECL
 * gate level (a 4-input NAND driving a 5-input NAND) in FO4, and the
 * resulting translation of Kunkel & Smith's optimal gate levels per
 * stage.
 */

#include "bench/common.hh"
#include "tech/ecl.hh"
#include "tech/fo4.hh"
#include "util/table.hh"

using namespace fo4;

int
main()
{
    bench::banner(
        "E13 / Appendix A",
        "one ECL gate level (4-NAND driving 5-NAND) is ~1.36 FO4, so "
        "Kunkel & Smith's 8/4 gate levels per stage translate to "
        "10.9/5.4 FO4");

    const auto params = tech::DeviceParams::at100nm();
    const auto ref = tech::measureFo4(params);
    const double measured = tech::measureEclLevelFo4(params, ref);

    util::TextTable t;
    t.setHeader({"quantity", "model", "paper"});
    t.addRow({"ECL level delay (FO4)", util::TextTable::num(measured, 2),
              "1.36"});
    t.addRow({"Cray-1S scalar optimum (8 levels -> FO4)",
              util::TextTable::num(tech::eclLevelsToFo4(8), 1), "10.9"});
    t.addRow({"Cray-1S vector optimum (4 levels -> FO4)",
              util::TextTable::num(tech::eclLevelsToFo4(4), 1), "5.4"});
    t.addRow({"using measured level delay (8 levels)",
              util::TextTable::num(tech::eclLevelsToFo4(8, measured), 1),
              "-"});
    t.print(std::cout);

    bench::verdict("the simulated NAND pair costs O(1) FO4 per level; the "
                   "Kunkel-Smith conversions use the paper's 1.36 "
                   "constant and reproduce 10.9/5.4 FO4 exactly");
    return 0;
}
