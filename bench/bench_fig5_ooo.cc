/**
 * @file
 * Experiment E7 — Figure 5, the paper's headline result: performance of
 * the dynamically scheduled (Alpha 21264-like) pipeline against useful
 * logic per stage, with the 1.8 FO4 overhead.  Optimal t_useful is 6 FO4
 * for integer codes, 4 FO4 for vector FP and 5 FO4 for non-vector FP;
 * the corresponding integer clock period is 7.8 FO4 (~3.6 GHz at 100nm).
 *
 * Durability: `checkpoint=PATH` journals every finished grid cell, so a
 * crash or Ctrl-C loses at most the in-flight cells and a rerun with the
 * same arguments resumes where it stopped (pass `resume=0` to discard an
 * existing journal and start over).  Ctrl-C cancels cooperatively: the
 * sweep drains, flushes the journal, and exits with status 130.
 */

#include <cstdio>
#include <memory>

#include "bench/common.hh"
#include "study/checkpoint.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(),
     {bench::jobsKey()},
     {{"csv", "write the figure's data points to this CSV"},
      {"checkpoint", "journal file; an interrupted sweep resumes from it"},
      {"resume", "resume=0 discards an existing journal and starts over"},
      {"attempts", "max attempts per cell for transient failures"}},
     bench::observabilityKeys()});

int
fig5(int argc, char **argv)
{
    bench::banner(
        "E7 / Figure 5",
        "out-of-order pipeline optima: integer 6 FO4, vector FP 4 FO4, "
        "non-vector FP 5 FO4; optimal integer clock period 7.8 FO4 "
        "(~3.6 GHz at 100nm)");

    const auto spec = bench::specFromArgs(argc, argv);
    const auto profiles = trace::spec2000Profiles();
    const auto ts = bench::usefulSweep();

    const util::Config cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const std::string csvPath = cfg.getString("csv", "");
    const std::string checkpointPath = cfg.getString("checkpoint", "");
    const bool resume = cfg.getBool("resume", true);
    const bool verbose = cfg.getBool("verbose", false);

    // Ctrl-C drains the sweep, flushes the journal, exits 130.
    util::CancelToken cancel;
    bench::installSigintCancel(cancel);

    if (!checkpointPath.empty() && !resume)
        std::remove(checkpointPath.c_str());

    study::CheckpointOptions copts;
    copts.journalPath = checkpointPath;
    copts.threads = bench::jobsFromArgs(argc, argv);
    copts.cancel = &cancel;
    copts.retry.maxAttempts =
        static_cast<int>(cfg.getPositiveInt("attempts", 1));
    study::CheckpointedRunner runner(std::move(copts));

    const auto points =
        runner.sweepScaling(ts, study::SweepOptions{}, profiles, spec);
    if (verbose) {
        const auto &rep = runner.report();
        std::printf("cells: %zu total, %zu replayed from checkpoint, %zu "
                    "simulated, %zu retried attempts%s\n",
                    rep.totalCells, rep.replayedCells, rep.executedCells,
                    rep.retriedAttempts,
                    rep.tornTailDiscarded ? " (torn tail discarded)" : "");
    }

    // Optional machine-readable series for replotting: csv=/path/out.csv
    // (written atomically — the file appears only when complete).
    std::unique_ptr<util::AtomicCsvFile> csv;
    if (!csvPath.empty()) {
        csv = std::make_unique<util::AtomicCsvFile>(csvPath);
        csv->writeRow({"t_useful", "period_fo4", "ghz", "benchmark",
                       "class", "ipc", "bips"});
    }

    util::TextTable t;
    t.setHeader({"t_useful", "period", "GHz", "int", "vector-fp",
                 "non-vector-fp", "all"});

    std::vector<double> intB, vfpB, nvfpB, allB;
    for (const auto &point : points) {
        const double u = point.tUseful;
        const auto &clock = point.clock;
        const auto &suite = point.suite;
        if (csv) {
            for (const auto &b : suite.benchmarks) {
                csv->writeRow({util::TextTable::num(u, 0),
                               util::TextTable::num(clock.periodFo4(), 1),
                               util::TextTable::num(clock.frequencyGhz(),
                                                    3),
                               b.name, trace::benchClassName(b.cls),
                               util::TextTable::num(b.sim.ipc(), 4),
                               util::TextTable::num(b.bips, 4)});
            }
        }
        intB.push_back(suite.harmonicBips(trace::BenchClass::Integer));
        vfpB.push_back(suite.harmonicBips(trace::BenchClass::VectorFp));
        nvfpB.push_back(
            suite.harmonicBips(trace::BenchClass::NonVectorFp));
        allB.push_back(suite.harmonicBipsAll());
        t.addRow({util::TextTable::num(u, 0),
                  util::TextTable::num(clock.periodFo4(), 1),
                  util::TextTable::num(clock.frequencyGhz(), 2),
                  util::TextTable::num(intB.back(), 3),
                  util::TextTable::num(vfpB.back(), 3),
                  util::TextTable::num(nvfpB.back(), 3),
                  util::TextTable::num(allB.back(), 3)});
    }
    if (csv)
        csv->commit();
    t.print(std::cout);

    const double optInt = bench::argmax(ts, intB);
    const double optVfp = bench::argmax(ts, vfpB);
    const double optNvfp = bench::argmax(ts, nvfpB);
    const double optAll = bench::argmax(ts, allB);
    const auto pInt = bench::plateau(ts, intB);
    const auto pVfp = bench::plateau(ts, vfpB);
    const auto pNvfp = bench::plateau(ts, nvfpB);
    std::printf("\noptimal t_useful (0.5%% plateau in brackets):\n");
    std::printf("  integer:       %.0f [%s]  (paper 6)\n", optInt,
                bench::plateauStr(pInt).c_str());
    std::printf("  vector FP:     %.0f [%s]  (paper 4)\n", optVfp,
                bench::plateauStr(pVfp).c_str());
    std::printf("  non-vector FP: %.0f [%s]  (paper 5)\n", optNvfp,
                bench::plateauStr(pNvfp).c_str());
    std::printf("  all:           %.0f  (paper 6)\n", optAll);
    std::printf("integer clock period at the paper's 6 FO4 point: %.1f "
                "FO4 = %.2f GHz (paper: 7.8 FO4, ~3.6 GHz)\n",
                study::scaledClock(6).periodFo4(),
                study::scaledClock(6).frequencyGhz());

    // stats=: per-benchmark stall attribution and occupancy for every
    // sweep point (deterministic at any jobs= value).
    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, bench::sweepStatsRows(points));

    // trace=: pipeline timeline of the first benchmark at the paper's
    // 6 FO4 optimum, rerun serially with the ring attached.
    bench::maybeWriteTrace(obs, study::scaledCoreParams(6),
                           study::scaledClock(6),
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);

    bench::printLatencyCacheStats(verbose);
    bench::printMetricsRegistry(verbose);

    std::string v = "vector FP prefers the deepest pipeline, integer the "
                    "shallowest of the three optima, non-vector FP in "
                    "between; vector FP outperforms the other classes "
                    "throughout";
    if (!bench::onPlateau(pInt, 6) || !bench::onPlateau(pVfp, 4) ||
        !bench::onPlateau(pNvfp, 5)) {
        v += "; WARNING: a paper optimum fell off its plateau";
    } else {
        v += "; the paper's 6/4/5 optima all lie on the model's "
             "plateaus";
    }
    bench::verdict(v);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return fig5(argc, argv); });
}
