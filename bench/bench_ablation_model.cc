/**
 * @file
 * Extension X2 — ablation of the model decisions DESIGN.md calls out,
 * at the paper's 6 FO4 integer operating point:
 *
 *  1. wakeup/bypass overlap: dependent spacing max(lat, loop) versus a
 *     naive additive model (lat + loop - 1);
 *  2. the L1<->L2 fill-bus contention model on and off;
 *  3. functional cache/predictor prewarming on and off;
 *  4. branch predictor choice.
 *
 * Each row shows integer-suite harmonic IPC at t_useful = 6 FO4 so the
 * contribution of every mechanism is visible in isolation.
 */

#include "bench/common.hh"
#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/means.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

double
harmonicIpc(const core::CoreParams &params, const study::RunSpec &spec,
            const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &prof : profiles) {
        trace::SyntheticTraceGenerator gen(prof);
        auto c = spec.impl == study::SimImpl::Batched
                     ? core::makeBatchedOooCore(params, spec.predictor)
                     : core::makeOooCore(params, spec.predictor);
        ipcs.push_back(
            c->run(gen, spec.instructions, spec.warmup, spec.prewarm)
                .ipc());
    }
    return util::harmonicMean(ipcs);
}

} // namespace

const std::vector<util::KeyDoc> kKeys = bench::specKeys();

int
ablation(int argc, char **argv)
{
    bench::banner(
        "X2 / model ablations",
        "contribution of each modelling decision at the 6 FO4 integer "
        "operating point (not a paper artifact; engineering evidence "
        "for DESIGN.md's choices)");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto base = study::scaledCoreParams(6.0, {});
    const double baseIpc = harmonicIpc(base, spec, profiles);

    util::TextTable t;
    t.setHeader({"variant", "hmean IPC", "vs baseline"});
    t.addRow({"baseline (paper model)", util::TextTable::num(baseIpc, 3),
              "1.000"});

    {
        // A single-cycle wakeup loop at this clock.  Matching the
        // baseline is itself a result: at 6 FO4 the monolithic window's
        // 3-cycle loop hides entirely under the 3-cycle ALU latency
        // (tag broadcast overlaps execution), so Section 5's design
        // removes a circuit-level risk rather than average-case cycles.
        auto p = base;
        p.issueLatency = 1;
        const double ipc = harmonicIpc(p, spec, profiles);
        t.addRow({"ideal 1-cycle issue window",
                  util::TextTable::num(ipc, 3),
                  util::TextTable::num(ipc / baseIpc, 3)});
    }
    for (const int cap : {16, 64, 128}) {
        auto p = base;
        p.window.capacity = cap;
        const double ipc = harmonicIpc(p, spec, profiles);
        t.addRow({"window capacity " + std::to_string(cap),
                  util::TextTable::num(ipc, 3),
                  util::TextTable::num(ipc / baseIpc, 3)});
    }
    {
        auto p = base;
        p.memLatencies.l2BusCycles = 0;
        p.memLatencies.memBusCycles = 0;
        const double ipc = harmonicIpc(p, spec, profiles);
        t.addRow({"no fill-bus / memory-channel contention",
                  util::TextTable::num(ipc, 3),
                  util::TextTable::num(ipc / baseIpc, 3)});
    }
    {
        auto cold = spec;
        cold.prewarm = 0;
        const double ipc = harmonicIpc(base, cold, profiles);
        t.addRow({"no functional prewarm (cold caches)",
                  util::TextTable::num(ipc, 3),
                  util::TextTable::num(ipc / baseIpc, 3)});
    }
    for (const char *pred : {"perfect", "local", "bimodal", "taken"}) {
        auto s = spec;
        s.predictor = pred;
        const double ipc = harmonicIpc(base, s, profiles);
        t.addRow({std::string("predictor: ") + pred,
                  util::TextTable::num(ipc, 3),
                  util::TextTable::num(ipc / baseIpc, 3)});
    }
    t.print(std::cout);

    bench::verdict("bus contention and warm state are material; the "
                   "predictor ladder orders perfect > tournament ~ local "
                   "> bimodal > always-taken; window-capacity rows move "
                   "only a few percent (cache/bus state is sampled at "
                   "dispatch, so deeper dispatch-ahead slightly "
                   "overstates burst contention for very large windows)");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return ablation(argc, argv); });
}
