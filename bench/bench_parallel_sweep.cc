/**
 * @file
 * Wall-clock benchmark of the parallel sweep engine on a Fig 5-sized
 * workload: the full 2..16 FO4 useful-time sweep over the SPEC 2000
 * integer suite, serial versus `jobs` worker threads.
 *
 * Three things are measured and reported:
 *
 *  1. serial wall-clock (jobs=1 — the exact engine every figure bench
 *     used before the parallel runner existed, since a 1-thread pool
 *     runs tasks inline on the waiting thread);
 *  2. parallel wall-clock at the requested thread count, plus the
 *     resulting speedup;
 *  3. byte-identity: study::serializeSuite of every sweep point must
 *     match the serial rendering exactly, or the bench fails.
 *
 * Speedup naturally tops out at the machine's core count — the grid
 * cells are pure CPU work — so the hardware thread count is printed
 * next to the measurement.  On a 1-core host the expected speedup is
 * ~1.0x and the identity check is the interesting part.
 *
 *   ./bench_parallel_sweep [jobs=4] [instructions=20000] ...
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hh"
#include "study/parallel.hh"
#include "trace/spec2000.hh"
#include "util/thread_pool.hh"

namespace
{

using Clock = std::chrono::steady_clock;

const std::vector<fo4::util::KeyDoc> kKeys = fo4::bench::keyUnion(
    {fo4::bench::specKeys(),
     {fo4::bench::jobsKey()},
     {{"verbose", "print cache diagnostics"}}});

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

int
parallelSweep(int argc, char **argv)
{
    using namespace fo4;
    bench::banner("parallel-sweep",
                  "engine check: N-thread sweep is faster than and "
                  "bit-identical to the serial sweep");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    auto spec = bench::specFromArgs(argc, argv, 20000, 2500, 200000);
    spec.cycleLimit = 10000000;
    int jobs = bench::jobsFromArgs(argc, argv);
    if (jobs == 1)
        jobs = 4; // measuring jobs=1 against itself is pointless
    const study::ParallelRunner runner(jobs);

    const auto ts = bench::usefulSweep();
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    std::printf("grid: %zu clock periods x %zu benchmarks, "
                "%llu instructions each\n",
                ts.size(), profiles.size(),
                static_cast<unsigned long long>(spec.instructions));
    std::printf("hardware threads: %d, sweep threads: %d\n\n",
                util::ThreadPool::hardwareThreads(), runner.threads());

    study::SweepOptions serialOpt;
    serialOpt.threads = 1;
    const auto t0 = Clock::now();
    const auto serial = study::sweepScaling(ts, serialOpt, profiles, spec);
    const auto t1 = Clock::now();

    study::SweepOptions parallelOpt;
    parallelOpt.threads = runner.threads();
    const auto t2 = Clock::now();
    const auto parallel =
        study::sweepScaling(ts, parallelOpt, profiles, spec);
    const auto t3 = Clock::now();

    const double serialSec = seconds(t0, t1);
    const double parallelSec = seconds(t2, t3);
    std::printf("serial   (jobs=1):  %7.2f s\n", serialSec);
    std::printf("parallel (jobs=%d): %7.2f s\n", runner.threads(),
                parallelSec);
    std::printf("speedup: %.2fx\n", serialSec / parallelSec);

    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (study::serializeSuite(parallel[i].suite) !=
            study::serializeSuite(serial[i].suite))
            ++mismatched;
    }
    if (mismatched) {
        std::printf("FAIL: %zu of %zu sweep points differ from the "
                    "serial result\n",
                    mismatched, ts.size());
        return 1;
    }
    bench::printLatencyCacheStats(bench::verboseFromArgs(argc, argv));
    bench::verdict("all " + std::to_string(ts.size()) +
                   " sweep points byte-identical to the serial engine");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return parallelSweep(argc, argv); });
}
