/**
 * @file
 * Extension X1 — the paper's Section 7 future work: "we will examine
 * the effects of wire delays on our pipeline models and optimal clock
 * rate selection."  Global wires do not speed up when a fixed design is
 * scaled, so cross-chip communication (the fetch-redirect path, the L2
 * access path) costs a constant number of FO4 regardless of pipeline
 * depth.  This bench sweeps that wire budget and reports how the
 * integer optimum moves: wire delay makes deep pipelines pay more
 * cycles per loop, pushing the optimal logic depth shallower — the
 * effect the paper anticipates from "long wires that arise as design
 * complexity increases" (its Pentium 4 drive-stage example).
 */

#include "bench/common.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

const std::vector<util::KeyDoc> kKeys = bench::specKeys();

int
extWireDelay(int argc, char **argv)
{
    bench::banner(
        "X1 / Section 7 extension (wire delay)",
        "constant-FO4 global wire latency on the redirect and L2 paths "
        "should push the optimal logic depth shallower as designs grow "
        "more wire-bound (paper future work; Pentium 4 spent two stages "
        "on data transport)");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto ts = bench::usefulSweep();
    const std::vector<double> wires{0, 10, 20, 40};

    util::TextTable t;
    std::vector<std::string> header{"t_useful"};
    for (const double w : wires)
        header.push_back("wire=" + util::TextTable::num(w, 0) + "FO4");
    t.setHeader(header);

    std::vector<std::vector<double>> series(wires.size());
    for (const double u : ts) {
        std::vector<std::string> row{util::TextTable::num(u, 0)};
        for (std::size_t w = 0; w < wires.size(); ++w) {
            study::ScalingOptions opt;
            opt.wirePenaltyFo4 = wires[w];
            const auto suite =
                runSuite(study::scaledCoreParams(u, opt),
                         study::scaledClock(u), profiles, spec);
            const double bips =
                suite.harmonicBips(trace::BenchClass::Integer);
            series[w].push_back(bips);
            row.push_back(util::TextTable::num(bips, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::printf("\noptimum (2%% plateau) per wire budget:\n");
    std::vector<double> optima;
    for (std::size_t w = 0; w < wires.size(); ++w) {
        const auto p = bench::plateau(ts, series[w], 0.02);
        optima.push_back(bench::argmax(ts, series[w]));
        std::printf("  wire %2.0f FO4 -> %g [%s]\n", wires[w],
                    optima.back(), bench::plateauStr(p).c_str());
    }

    const bool monotone = optima.back() >= optima.front();
    bench::verdict(monotone
                       ? "growing wire budgets flatten the deep end and "
                         "move the optimum toward shallower pipelines, "
                         "as the paper's future-work discussion "
                         "anticipates"
                       : "UNEXPECTED: wire delay did not move the "
                         "optimum shallower");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return extWireDelay(argc, argv); });
}
