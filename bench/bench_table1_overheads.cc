/**
 * @file
 * Experiment E2 — Table 1 of the paper: latch, clock-skew and jitter
 * overheads.  The latch overhead is measured by transient simulation of
 * the paper's Figure 3 test circuit (data edge swept into the falling
 * clock edge until the pulse latch fails); skew and jitter come from
 * Kurd et al.'s 180nm measurements converted to FO4.
 */

#include "bench/common.hh"
#include "tech/clocking.hh"
#include "tech/fo4.hh"
#include "tech/latch.hh"
#include "util/table.hh"

using namespace fo4;

int
main()
{
    bench::banner(
        "E2 / Table 1",
        "latch overhead 1.0 FO4, skew 0.3 FO4, jitter 0.5 FO4; total "
        "1.8 FO4 per pipeline stage");

    const auto params = tech::DeviceParams::at100nm();
    const auto ref = tech::measureFo4(params);
    std::printf("FO4 reference (simulated): %.2f ps rise, %.2f ps fall\n",
                ref.risePs, ref.fallPs);

    const auto timing = tech::measureLatchTiming(params, ref);
    std::printf("pulse latch: nominal D-Q %.2f ps, min working D-Q %.2f "
                "ps, last working data arrival %.2f ps before clock "
                "edge\n\n",
                timing.nominalTdqPs, timing.overheadPs, -timing.setupPs);

    const auto kurd =
        tech::OverheadModel::fromKurdMeasurements(tech::Technology::nm(180));

    util::TextTable t;
    t.setHeader({"component", "model (FO4)", "paper (FO4)"});
    t.addRow({"latch overhead", util::TextTable::num(timing.overheadFo4, 2),
              "1.0"});
    t.addRow({"skew overhead", util::TextTable::num(kurd.skewFo4, 1),
              "0.3"});
    t.addRow({"jitter overhead", util::TextTable::num(kurd.jitterFo4, 1),
              "0.5"});
    const double total =
        timing.overheadFo4 + kurd.skewFo4 + kurd.jitterFo4;
    t.addRow({"total", util::TextTable::num(total, 2), "1.8"});
    t.print(std::cout);

    bench::verdict("simulated latch overhead lands near 1 FO4 and the "
                   "total near 1.8 FO4; the study uses the paper's exact "
                   "1.0/0.3/0.5 decomposition");
    return 0;
}
