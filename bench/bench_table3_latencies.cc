/**
 * @file
 * Experiment E3 — Table 3 of the paper: access latencies in cycles of
 * the major microarchitectural structures and functional units, for
 * useful logic per stage from 2 to 16 FO4.
 *
 * Functional-unit rows reproduce the paper exactly (they follow from the
 * 21264 cycle counts times 17.4 FO4 and the ceiling quantization); the
 * cache/predictor rows use the anchored analytical model and match the
 * paper's cells to within a cycle (Cacti 3.0's internal pipelining is
 * not public).
 */

#include "bench/common.hh"
#include "cacti/structures.hh"
#include "isa/latencies.hh"
#include "study/scaling.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const int paperDl1[] = {16, 11, 9, 7, 6, 6, 5, 5, 4, 4, 4, 4, 4, 3, 3};
const int paperBp[] = {10, 7, 5, 4, 4, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2};
const int paperRename[] = {9, 6, 5, 4, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2};
const int paperWindow[] = {9, 6, 5, 4, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2};
const int paperRf[] = {6, 4, 3, 3, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1};

void
structureRow(util::TextTable &t, const cacti::StructureModel &model,
             cacti::StructureKind kind, const int *paper)
{
    const double fo4 =
        model.latencyFo4(kind, cacti::StructureModel::alphaCapacity(kind));
    std::vector<std::string> model_row{std::string(structureName(kind))};
    std::vector<std::string> paper_row{std::string(structureName(kind)) +
                                       " (paper)"};
    for (int u = 2; u <= 16; ++u) {
        tech::ClockModel clock;
        clock.tUsefulFo4 = u;
        model_row.push_back(
            util::TextTable::num(std::int64_t{clock.latencyCycles(fo4)}));
        paper_row.push_back(
            util::TextTable::num(std::int64_t{paper[u - 2]}));
    }
    t.addRow(model_row);
    t.addRow(paper_row);
}

void
fuRow(util::TextTable &t, isa::OpClass cls)
{
    std::vector<std::string> row{opClassName(cls)};
    for (int u = 2; u <= 16; ++u) {
        tech::ClockModel clock;
        clock.tUsefulFo4 = u;
        row.push_back(util::TextTable::num(
            std::int64_t{isa::executeCycles(cls, clock)}));
    }
    t.addRow(row);
}

} // namespace

int
main()
{
    bench::banner(
        "E3 / Table 3",
        "structure and functional-unit latencies in cycles for t_useful "
        "= 2..16 FO4 at 100nm; functional units follow 21264 cycles x "
        "17.4 FO4 with ceiling quantization");

    util::TextTable t;
    std::vector<std::string> header{"structure \\ t_useful"};
    for (int u = 2; u <= 16; ++u)
        header.push_back(std::to_string(u));
    t.setHeader(header);

    const cacti::StructureModel model;
    using SK = cacti::StructureKind;
    structureRow(t, model, SK::DL1, paperDl1);
    structureRow(t, model, SK::BranchPredictor, paperBp);
    structureRow(t, model, SK::RenameTable, paperRename);
    structureRow(t, model, SK::IssueWindow, paperWindow);
    structureRow(t, model, SK::RegisterFile, paperRf);
    t.print(std::cout);

    std::printf("\nfunctional units (cycles; these rows match the paper "
                "exactly):\n");
    util::TextTable f;
    f.setHeader(header);
    fuRow(f, isa::OpClass::IntAlu);
    fuRow(f, isa::OpClass::IntMult);
    fuRow(f, isa::OpClass::FpAdd);
    fuRow(f, isa::OpClass::FpMult);
    fuRow(f, isa::OpClass::FpDiv);
    fuRow(f, isa::OpClass::FpSqrt);
    f.print(std::cout);

    // Count structure-cell agreement with the paper.
    int cells = 0, agree = 0, within1 = 0;
    const struct
    {
        SK kind;
        const int *paper;
    } rows[] = {{SK::DL1, paperDl1},
                {SK::BranchPredictor, paperBp},
                {SK::RenameTable, paperRename},
                {SK::IssueWindow, paperWindow},
                {SK::RegisterFile, paperRf}};
    for (const auto &row : rows) {
        const double fo4 = model.latencyFo4(
            row.kind, cacti::StructureModel::alphaCapacity(row.kind));
        for (int u = 2; u <= 16; ++u) {
            tech::ClockModel clock;
            clock.tUsefulFo4 = u;
            const int mine = clock.latencyCycles(fo4);
            ++cells;
            agree += mine == row.paper[u - 2];
            within1 += std::abs(mine - row.paper[u - 2]) <= 1;
        }
    }
    std::printf("\nstructure cells matching the paper exactly: %d/%d; "
                "within one cycle: %d/%d\n",
                agree, cells, within1, cells);

    bench::verdict("functional-unit rows are exact; structure rows agree "
                   "within one cycle everywhere");
    return 0;
}
