/**
 * @file
 * Experiment E14 — engineering microbenchmarks (google-benchmark): raw
 * throughput of the trace generator, branch predictors, cache hierarchy
 * and the two pipeline models.  Not a paper artifact; used to keep the
 * experiment sweeps fast.
 */

#include <benchmark/benchmark.h>

#include "bp/predictors.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace fo4;

namespace
{

void
BM_TraceGenerator(benchmark::State &state)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGenerator);

void
BM_TournamentPredictor(benchmark::State &state)
{
    auto prof = trace::spec2000Profile("176.gcc");
    trace::SyntheticTraceGenerator gen(prof);
    bp::Tournament bp;
    std::vector<isa::MicroOp> branches;
    for (int i = 0; i < 4096;) {
        const auto op = gen.next();
        if (op.isBranch()) {
            branches.push_back(op);
            ++i;
        }
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &op = branches[i++ & 4095];
        benchmark::DoNotOptimize(bp.predict(op));
        bp.update(op, op.taken);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TournamentPredictor);

void
BM_CacheHierarchy(benchmark::State &state)
{
    mem::MemoryHierarchy mem({64 << 10, 64, 2}, {2 << 20, 64, 8},
                             mem::HierarchyLatencies{});
    std::uint64_t addr = 0;
    std::int64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.loadLatency(addr, now));
        addr = (addr + 4093) & 0x3fffff;
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchy);

void
BM_OooCoreGzip(benchmark::State &state)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core->run(gen, 20000));
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_OooCoreGzip)->Unit(benchmark::kMillisecond);

void
BM_OooCoreDeepPipe(benchmark::State &state)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeOooCore(study::scaledCoreParams(2.0, {}),
                                  "tournament");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core->run(gen, 20000));
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_OooCoreDeepPipe)->Unit(benchmark::kMillisecond);

void
BM_InorderCoreGzip(benchmark::State &state)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeInorderCore(core::CoreParams::alpha21264(),
                                      "tournament");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core->run(gen, 20000));
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_InorderCoreGzip)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
