/**
 * @file
 * Experiment E14 — engineering throughput bench and the repo's committed
 * performance trajectory.  Not a paper artifact: this binary measures
 * how fast the simulator itself runs and emits the machine-readable
 * `BENCH_sim_throughput.json` that CI's perf-smoke job compares against
 * the committed baseline (see README "Performance trajectory").
 *
 * Three measurements:
 *
 *  1. per-core throughput (simulated cycles per wall second) for the
 *     in-order and out-of-order models, under both implementations
 *     (`sim_impl=reference` and `sim_impl=batched`);
 *  2. sweep wall-clock at jobs=1: the full 2..16 FO4 useful-time sweep
 *     over the SPEC 2000 integer suite, reference engine versus the
 *     one-pass batched engine (decoded-trace replay + shared prewarm
 *     state + idle-span skipping), plus the resulting speedup;
 *  3. byte-identity: every sweep point of the batched run must equal
 *     the reference rendering (study::serializeSuite) exactly, or the
 *     bench fails — speed may never change bytes (DESIGN.md §14).
 *
 * The headline acceptance number is the jobs=1 sweep speedup: wall
 * clock is measured on whatever machine runs the bench, so absolute
 * cycles/sec drift with hardware, but the reference-vs-batched ratio is
 * hardware-normalized and is what the perf-smoke gate thresholds.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/common.hh"
#include "study/batch.hh"
#include "study/parallel.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

using namespace fo4;

namespace
{

using WallClock = std::chrono::steady_clock;

// specKeys() minus sim_impl: this bench measures both engines by
// definition, so selecting one would only falsify the comparison.
std::vector<util::KeyDoc>
sizeKeys()
{
    auto keys = bench::specKeys();
    std::erase_if(keys, [](const util::KeyDoc &k) {
        return std::string_view(k.key) == "sim_impl";
    });
    return keys;
}

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {sizeKeys(),
     {bench::jobsKey()},
     {{"json", "write the machine-readable trajectory record here "
               "(default BENCH_sim_throughput.json)"},
      {"verbose", "print cache diagnostics"}}});

double
seconds(WallClock::time_point begin, WallClock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

struct CoreRate
{
    double cyclesPerSec = 0.0;
    std::uint64_t cycles = 0;
    double secs = 0.0;
};

/**
 * Simulated-cycles-per-second of one (model, impl) pair through the
 * standard per-job path.  One untimed run first: the batched path's
 * decoded stream and warm state are built once per process and shared
 * afterwards, and steady-state cost is what a sweep cell pays.
 */
CoreRate
coreRate(study::CoreModel model, study::SimImpl impl,
         const study::RunSpec &base)
{
    auto spec = base;
    spec.model = model;
    spec.impl = impl;
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto job = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));

    (void)study::runJob(params, clock, job, spec);
    CoreRate r;
    const auto t0 = WallClock::now();
    for (int rep = 0; rep < 3; ++rep)
        r.cycles += study::runJob(params, clock, job, spec).sim.cycles;
    r.secs = seconds(t0, WallClock::now());
    r.cyclesPerSec = r.secs > 0 ? static_cast<double>(r.cycles) / r.secs
                                : 0.0;
    return r;
}

void
jsonCoreRate(std::string &out, const char *name, const CoreRate &ref,
             const CoreRate &bat)
{
    out += util::strprintf(
        "    \"%s\": {\n"
        "      \"reference\": {\"cycles_per_sec\": %.1f, \"cycles\": "
        "%llu, \"seconds\": %.6f},\n"
        "      \"batched\": {\"cycles_per_sec\": %.1f, \"cycles\": %llu, "
        "\"seconds\": %.6f}\n"
        "    }",
        name, ref.cyclesPerSec, static_cast<unsigned long long>(ref.cycles),
        ref.secs, bat.cyclesPerSec,
        static_cast<unsigned long long>(bat.cycles), bat.secs);
}

int
simThroughput(int argc, char **argv)
{
    bench::banner(
        "E14 / sim throughput",
        "engineering trajectory: the one-pass batched engine sweeps the "
        "grid >=5x faster than the reference engine at jobs=1, "
        "byte-identically");

    const util::Config cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    // Sized so the reference sweep finishes in seconds in CI while the
    // per-cell prewarm cost the batched engine amortizes stays realistic
    // relative to the figure benches (which prewarm 300k-500k).
    const auto spec = bench::specFromArgs(argc, argv, 8000, 1000, 400000);
    const int jobs = bench::jobsFromArgs(argc, argv);
    const std::string jsonPath =
        cfg.getString("json", "BENCH_sim_throughput.json");
    const bool verbose = cfg.getBool("verbose", false);

    // 1. Per-core steady-state throughput, both models x both impls.
    std::printf("per-core throughput (gzip at the 6 FO4 point, %llu "
                "instructions, steady state):\n",
                static_cast<unsigned long long>(spec.instructions));
    struct Row
    {
        const char *name;
        study::CoreModel model;
        CoreRate reference, batched;
    } rows[] = {
        {"inorder", study::CoreModel::InOrder, {}, {}},
        {"ooo", study::CoreModel::OutOfOrder, {}, {}},
    };
    for (auto &row : rows) {
        row.reference =
            coreRate(row.model, study::SimImpl::Reference, spec);
        row.batched = coreRate(row.model, study::SimImpl::Batched, spec);
        std::printf("  %-8s reference %10.0f cycles/s   batched %10.0f "
                    "cycles/s   (%.2fx)\n",
                    row.name, row.reference.cyclesPerSec,
                    row.batched.cyclesPerSec,
                    row.batched.cyclesPerSec / row.reference.cyclesPerSec);
    }

    // 2. Sweep wall-clock at the requested jobs (headline: jobs=1).
    const auto ts = bench::usefulSweep();
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    std::printf("\nsweep: %zu clock periods x %zu benchmarks, jobs=%d\n",
                ts.size(), profiles.size(), jobs);

    study::SweepOptions options;
    options.threads = jobs;
    auto referenceSpec = spec;
    referenceSpec.impl = study::SimImpl::Reference;
    auto batchedSpec = spec;
    batchedSpec.impl = study::SimImpl::Batched;
    const auto t0 = WallClock::now();
    const auto reference =
        study::sweepScaling(ts, options, profiles, referenceSpec);
    const auto t1 = WallClock::now();
    const auto batched =
        study::sweepScalingBatched(ts, options, profiles, batchedSpec);
    const auto t2 = WallClock::now();

    const double referenceSec = seconds(t0, t1);
    const double batchedSec = seconds(t1, t2);
    const double speedup = batchedSec > 0 ? referenceSec / batchedSec : 0;
    std::printf("  reference engine: %7.2f s\n", referenceSec);
    std::printf("  batched engine:   %7.2f s\n", batchedSec);
    std::printf("  speedup:          %7.2fx\n", speedup);

    // 3. Byte-identity gate: the speed must have cost nothing.
    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (study::serializeSuite(batched[i].suite) !=
            study::serializeSuite(reference[i].suite))
            ++mismatched;
    }
    if (mismatched) {
        std::printf("FAIL: %zu of %zu sweep points differ between the "
                    "engines\n",
                    mismatched, ts.size());
        return 1;
    }

    // The trajectory record CI compares against the committed baseline.
    std::string json = "{\n  \"bench\": \"sim_throughput\",\n";
    json += util::strprintf(
        "  \"spec\": {\"instructions\": %llu, \"warmup\": %llu, "
        "\"prewarm\": %llu},\n",
        static_cast<unsigned long long>(spec.instructions),
        static_cast<unsigned long long>(spec.warmup),
        static_cast<unsigned long long>(spec.prewarm));
    json += "  \"cores\": {\n";
    jsonCoreRate(json, "inorder", rows[0].reference, rows[0].batched);
    json += ",\n";
    jsonCoreRate(json, "ooo", rows[1].reference, rows[1].batched);
    json += "\n  },\n";
    json += util::strprintf(
        "  \"sweep\": {\"points\": %zu, \"benchmarks\": %zu, \"jobs\": "
        "%d, \"reference_seconds\": %.3f, \"batched_seconds\": %.3f, "
        "\"speedup\": %.3f, \"byte_identical\": true}\n}\n",
        ts.size(), profiles.size(), jobs, referenceSec, batchedSec,
        speedup);
    std::ofstream out(jsonPath, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::printf("cannot open '%s' for writing\n", jsonPath.c_str());
        return 1;
    }
    out << json;
    out.close();
    std::printf("\ntrajectory record -> %s\n", jsonPath.c_str());

    bench::printLatencyCacheStats(verbose);
    bench::verdict(util::strprintf(
        "all %zu sweep points byte-identical; batched engine %.2fx "
        "faster at jobs=%d (acceptance floor: 5x at jobs=1)",
        ts.size(), speedup, jobs));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return simThroughput(argc, argv); });
}
