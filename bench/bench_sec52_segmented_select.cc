/**
 * @file
 * Experiment E12 — Section 5.2 / Figure 12 of the paper: the partitioned
 * selection scheme.  A 32-entry window in four stages with a
 * select fan-in of 16 (all of stage 1 plus preselect blocks that pick at
 * most 5/2/1 instructions from stages 2/3/4) loses only ~4% integer and
 * ~1% FP IPC against a single-cycle monolithic window with fan-in 32.
 */

#include "bench/common.hh"
#include "core/core.hh"
#include "study/runner.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/means.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

double
harmonicIpc(const core::CoreParams &params, const study::RunSpec &spec,
            const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &prof : profiles) {
        trace::SyntheticTraceGenerator gen(prof);
        auto c = spec.impl == study::SimImpl::Batched
                     ? core::makeBatchedOooCore(params, spec.predictor)
                     : core::makeOooCore(params, spec.predictor);
        ipcs.push_back(
            c->run(gen, spec.instructions, spec.warmup, spec.prewarm)
                .ipc());
    }
    return util::harmonicMean(ipcs);
}

} // namespace

const std::vector<util::KeyDoc> kKeys = bench::specKeys();

int
sec52(int argc, char **argv)
{
    bench::banner(
        "E12 / Section 5.2 (Figure 12)",
        "32-entry window, 4 stages, select fan-in 16 with preselect caps "
        "5/2/1: ~4% integer and ~1% FP IPC loss versus a single-cycle "
        "monolithic window with full fan-in");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto ints = trace::spec2000Profiles(trace::BenchClass::Integer);
    auto fps = trace::spec2000Profiles(trace::BenchClass::VectorFp);
    for (auto &p : trace::spec2000Profiles(trace::BenchClass::NonVectorFp))
        fps.push_back(p);

    auto mono = core::CoreParams::alpha21264();
    mono.window.capacity = 32;

    auto seg = mono;
    seg.window.wakeupStages = 4;

    auto part = seg;
    part.window.select = core::SelectModel::Partitioned;
    part.window.preselectCap = {5, 2, 1, 1, 1, 1, 1, 1};

    util::TextTable t;
    t.setHeader({"configuration", "int IPC", "int rel", "fp IPC",
                 "fp rel"});
    const double i0 = harmonicIpc(mono, spec, ints);
    const double f0 = harmonicIpc(mono, spec, fps);
    double intRel = 1.0, fpRel = 1.0;
    for (const auto &[name, cfg] :
         {std::pair<const char *, core::CoreParams>{"monolithic 1-cycle",
                                                    mono},
          {"segmented wakeup (4 stages)", seg},
          {"segmented + partitioned select", part}}) {
        const double i = harmonicIpc(cfg, spec, ints);
        const double f = harmonicIpc(cfg, spec, fps);
        if (cfg.window.select == core::SelectModel::Partitioned) {
            intRel = i / i0;
            fpRel = f / f0;
        }
        t.addRow({name, util::TextTable::num(i, 3),
                  util::TextTable::num(i / i0, 3),
                  util::TextTable::num(f, 3),
                  util::TextTable::num(f / f0, 3)});
    }
    t.print(std::cout);

    std::printf("\nIPC loss of the full Figure 12 design vs the "
                "single-cycle window: integer %.1f%% (paper ~4%%), FP "
                "%.1f%% (paper ~1%%)\n",
                100.0 * (1.0 - intRel), 100.0 * (1.0 - fpRel));

    bench::verdict("the partitioned scheme costs only a few percent IPC, "
                   "less on FP than integer codes, while cutting select "
                   "fan-in from 32 to 16");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return sec52(argc, argv); });
}
