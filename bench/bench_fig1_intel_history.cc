/**
 * @file
 * Experiment E1 — Figure 1 of the paper: clock periods of seven
 * generations of Intel processors expressed in FO4, and the decomposition
 * of the total frequency gain into technology scaling and pipelining.
 */

#include "bench/common.hh"
#include "study/intel_history.hh"
#include "util/table.hh"

using namespace fo4;

int
main()
{
    bench::banner(
        "E1 / Figure 1",
        "clock frequency improved ~60x over 1990-2002; technology scaling "
        "and deeper pipelining contributed roughly equally (~8x and ~7x); "
        "logic per stage fell from 84 to ~12 FO4");

    util::TextTable t;
    t.setHeader({"processor", "year", "tech(nm)", "clock(MHz)",
                 "period(FO4)"});
    for (const auto &gen : study::intelGenerations()) {
        t.addRow({gen.name, util::TextTable::num(std::int64_t{gen.year}),
                  util::TextTable::num(gen.techNm, 0),
                  util::TextTable::num(gen.clockMhz, 0),
                  util::TextTable::num(gen.periodFo4(), 1)});
    }
    t.print(std::cout);

    const auto d = study::decomposeFrequencyGains();
    std::printf("\ntotal frequency gain:      %.1fx (paper: ~60x)\n",
                d.totalGain);
    std::printf("from technology scaling:   %.1fx (paper: ~8x)\n",
                d.technologyGain);
    std::printf("from deeper pipelining:    %.1fx (paper: ~7x)\n",
                d.pipeliningGain);
    std::printf("optimal integer clock:     7.8 FO4 "
                "(dashed line in the paper's figure)\n");

    bench::verdict("periods fall monotonically from ~84 FO4 toward the "
                   "7.8 FO4 optimum; both gain factors are in the paper's "
                   "7-8x band");
    return 0;
}
