/**
 * @file
 * Experiment E6 — Section 4.2 of the paper: the CRAY-1S comparison.
 * Replacing the cache hierarchy with a flat 12-cycle memory (the
 * Cray-1S memory system) moves the integer optimum from 6 FO4 to about
 * 11 FO4 — close to the 10.9 FO4 equivalent of Kunkel & Smith's 8 ECL
 * gate levels — showing that on-chip caches are one reason modern
 * pipelines can be so much deeper.
 */

#include "bench/common.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "tech/ecl.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

const std::vector<util::KeyDoc> kKeys = bench::specKeys();

int
cray(int argc, char **argv)
{
    bench::banner(
        "E6 / Section 4.2",
        "with a Cray-1S style memory (12-cycle flat access, no caches) "
        "the integer optimum moves to ~11 FO4, matching Kunkel & Smith's "
        "8 gate levels = 10.9 FO4; the modern optimum of 6 FO4 is less "
        "than the Cray scalar optimum largely because of on-chip caches");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 300000);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto ts = bench::usefulSweep();

    util::TextTable t;
    t.setHeader({"t_useful", "modern mem (BIPS)", "cray mem (BIPS)"});

    std::vector<double> modern, cray;
    for (const double u : ts) {
        const auto clock = study::scaledClock(u);
        const auto sm = runSuite(study::scaledCoreParams(u, {}), clock,
                                 profiles, spec);
        study::ScalingOptions crayOpt;
        crayOpt.crayMemory = true;
        const auto sc = runSuite(study::scaledCoreParams(u, crayOpt),
                                 clock, profiles, spec);
        modern.push_back(sm.harmonicBips(trace::BenchClass::Integer));
        cray.push_back(sc.harmonicBips(trace::BenchClass::Integer));
        t.addRow({util::TextTable::num(u, 0),
                  util::TextTable::num(modern.back(), 3),
                  util::TextTable::num(cray.back(), 3)});
    }
    t.print(std::cout);

    const double optModern = bench::argmax(ts, modern);
    const double optCray = bench::argmax(ts, cray);
    std::printf("\ninteger optimum, modern memory: %.0f FO4 (paper: 6)\n",
                optModern);
    std::printf("integer optimum, Cray-1S memory: %.0f FO4 (paper: 11)\n",
                optCray);
    std::printf("Kunkel & Smith scalar optimum: 8 ECL levels = %.1f FO4; "
                "vector: 4 levels = %.1f FO4 (Appendix A conversion)\n",
                tech::eclLevelsToFo4(tech::kunkelSmithScalarLevels),
                tech::eclLevelsToFo4(tech::kunkelSmithVectorLevels));

    bench::verdict("the flat 12-cycle memory pushes the optimum to a "
                   "substantially shallower pipeline than the cached "
                   "machine, near the Kunkel-Smith 10.9 FO4 point");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return cray(argc, argv); });
}
