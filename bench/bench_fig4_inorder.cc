/**
 * @file
 * Experiments E4/E5 — Figure 4 of the paper: performance of the in-order
 * pipeline as the amount of useful logic per stage is varied, (a) with
 * no clocking overhead and (b) with the 1.8 FO4 latch/skew/jitter
 * overhead.  Without overhead performance keeps improving with depth;
 * with overhead the integer optimum is 6 FO4 of useful logic.
 */

#include "bench/common.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(), {bench::jobsKey()}, bench::observabilityKeys()});

int
fig4(int argc, char **argv)
{
    bench::banner(
        "E4+E5 / Figures 4a and 4b",
        "in-order pipeline: with zero overhead, BIPS rises as stages "
        "shrink; with 1.8 FO4 overhead the integer optimum is 6 FO4 of "
        "useful logic per stage");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    spec.model = study::CoreModel::InOrder;
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles = trace::spec2000Profiles();
    const auto ts = bench::usefulSweep();

    util::TextTable t;
    t.setHeader({"t_useful", "int(0 ovh)", "vfp(0 ovh)", "nvfp(0 ovh)",
                 "int(1.8)", "vfp(1.8)", "nvfp(1.8)"});

    // One simulation per depth serves both halves: overhead changes
    // frequency, not cycle counts (paper Section 3.3).
    study::SweepOptions sweep;
    sweep.overhead = tech::OverheadModel::uniform(0);
    sweep.threads = bench::jobsFromArgs(argc, argv);
    const auto points = study::sweepScaling(ts, sweep, profiles, spec);

    std::vector<double> intZero, intPaper;
    for (const auto &point : points) {
        const double u = point.tUseful;
        const auto &suite = point.suite;
        const auto &clk0 = point.clock;
        const auto clk18 = study::scaledClock(u);

        auto bips = [&](trace::BenchClass cls, const tech::ClockModel &c) {
            double denom = 0;
            int n = 0;
            for (const auto &b : suite.benchmarks) {
                if (b.cls != cls)
                    continue;
                denom += 1.0 / c.bips(b.sim.ipc());
                ++n;
            }
            return n / denom;
        };

        intZero.push_back(bips(trace::BenchClass::Integer, clk0));
        intPaper.push_back(bips(trace::BenchClass::Integer, clk18));
        t.addRow({util::TextTable::num(u, 0),
                  util::TextTable::num(intZero.back(), 3),
                  util::TextTable::num(bips(trace::BenchClass::VectorFp,
                                            clk0), 3),
                  util::TextTable::num(bips(trace::BenchClass::NonVectorFp,
                                            clk0), 3),
                  util::TextTable::num(intPaper.back(), 3),
                  util::TextTable::num(bips(trace::BenchClass::VectorFp,
                                            clk18), 3),
                  util::TextTable::num(bips(trace::BenchClass::NonVectorFp,
                                            clk18), 3)});
    }
    t.print(std::cout);

    const double opt0 = bench::argmax(ts, intZero);
    const double opt18 = bench::argmax(ts, intPaper);
    const auto p18 = bench::plateau(ts, intPaper, 0.02);
    std::printf("\ninteger optimum without overhead: %.0f FO4 "
                "(paper: keeps improving toward the deep end)\n",
                opt0);
    std::printf("integer optimum with 1.8 FO4 overhead: %.0f FO4, 2%% "
                "plateau [%s] (paper: 6 FO4)\n",
                opt18, bench::plateauStr(p18).c_str());
    std::printf("note: our scoreboarded in-order model tolerates latency "
                "better than the paper's, flattening the curve; the "
                "paper's 6 FO4 point lies on the plateau\n");

    // stats= / trace=: stall attribution per sweep point, and the
    // in-order pipeline's timeline at the paper's 6 FO4 optimum.
    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, bench::sweepStatsRows(points));
    bench::maybeWriteTrace(obs, study::scaledCoreParams(6),
                           study::scaledClock(6),
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);

    std::string v = "without overhead the deepest pipeline wins; with "
                    "1.8 FO4 overhead the optimum is finite and the "
                    "curve peaks over a mid-depth plateau";
    if (!bench::onPlateau(p18, 6))
        v += "; WARNING: 6 FO4 fell off the plateau";
    bench::printLatencyCacheStats(bench::verboseFromArgs(argc, argv));
    bench::printMetricsRegistry(bench::verboseFromArgs(argc, argv));
    bench::verdict(v);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return fig4(argc, argv); });
}
