/**
 * @file
 * Experiment E10 — Figure 8 / Section 4.6 of the paper: IPC sensitivity
 * to the three critical loops of the data path, each extended by 0..15
 * cycles over its Alpha 21264 length.  IPC is most sensitive to the
 * issue-wakeup loop, then the DL1 load-use loop, and least sensitive to
 * the branch misprediction penalty.
 */

#include "bench/common.hh"
#include "core/core.hh"
#include "study/runner.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/means.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

double
harmonicIpc(const core::CoreParams &params, const study::RunSpec &spec,
            const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &prof : profiles) {
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(params, spec.predictor);
        ipcs.push_back(
            c->run(gen, spec.instructions, spec.warmup, spec.prewarm)
                .ipc());
    }
    return util::harmonicMean(ipcs);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner(
        "E10 / Figure 8",
        "relative integer IPC when each critical loop is extended over "
        "its 21264 length: issue-wakeup is the most sensitive loop, then "
        "load-use (DL1), then the branch misprediction penalty");

    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const std::vector<int> extensions{0, 1, 2, 4, 6, 8, 10, 12, 15};

    const double baseIpc =
        harmonicIpc(core::CoreParams::alpha21264(), spec, profiles);

    util::TextTable t;
    t.setHeader({"+cycles", "issue-wakeup", "load-use", "branch-mispred"});
    std::vector<double> atMax(3);
    for (const int ext : extensions) {
        std::vector<std::string> row{util::TextTable::num(
            std::int64_t{ext})};
        for (int loop = 0; loop < 3; ++loop) {
            auto p = core::CoreParams::alpha21264();
            if (loop == 0)
                p.extraWakeup = ext;
            else if (loop == 1)
                p.extraLoadUse = ext;
            else
                p.extraMispredictPenalty = ext;
            const double rel = harmonicIpc(p, spec, profiles) / baseIpc;
            if (ext == extensions.back())
                atMax[loop] = rel;
            row.push_back(util::TextTable::num(rel, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::printf("\nrelative IPC at +15 cycles: issue-wakeup %.3f < "
                "load-use %.3f < mispredict %.3f\n",
                atMax[0], atMax[1], atMax[2]);

    bench::verdict(
        atMax[0] < atMax[1] && atMax[1] < atMax[2]
            ? "sensitivity ordering matches the paper: issue-wakeup > "
              "load-use > branch misprediction"
            : "ORDERING MISMATCH with the paper");
    return 0;
}
