/**
 * @file
 * Experiment E10 — Figure 8 / Section 4.6 of the paper: IPC sensitivity
 * to the three critical loops of the data path, each extended by 0..15
 * cycles over its Alpha 21264 length.  IPC is most sensitive to the
 * issue-wakeup loop, then the DL1 load-use loop, and least sensitive to
 * the branch misprediction penalty.
 *
 * The stall-attribution layer makes the mechanism visible: extending a
 * loop inflates exactly the stall cause that loop feeds (load-use ->
 * raw-load-use/dcache stalls, mispredict penalty -> branch-mispredict
 * stalls), which is the paper's explanation for *why* the loops rank
 * the way they do.  `stats=PATH` writes the per-cause counts for every
 * (loop, extension) cell.
 */

#include "bench/common.hh"
#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const char *const kLoopNames[3] = {"issue-wakeup", "load-use",
                                   "branch-mispred"};

core::CoreParams
extendedParams(int loop, int ext)
{
    auto p = core::CoreParams::alpha21264();
    if (loop == 0)
        p.extraWakeup = ext;
    else if (loop == 1)
        p.extraLoadUse = ext;
    else
        p.extraMispredictPenalty = ext;
    return p;
}

} // namespace

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(), bench::observabilityKeys()});

int
fig8(int argc, char **argv)
{
    bench::banner(
        "E10 / Figure 8",
        "relative integer IPC when each critical loop is extended over "
        "its 21264 length: issue-wakeup is the most sensitive loop, then "
        "load-use (DL1), then the branch misprediction penalty");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const std::vector<int> extensions{0, 1, 2, 4, 6, 8, 10, 12, 15};

    // The loops are an IPC experiment (no clock scaling); the clock only
    // converts to BIPS, which this figure never uses.
    const auto clock = study::scaledClock(6);

    const auto baseSuite = study::runSuite(core::CoreParams::alpha21264(),
                                           clock, profiles, spec);
    const double baseIpc = baseSuite.harmonicIpcAll();

    std::vector<std::vector<std::string>> stats;
    stats.push_back(bench::statsHeader("config"));

    util::TextTable t;
    t.setHeader({"+cycles", "issue-wakeup", "load-use", "branch-mispred"});
    std::vector<double> atMax(3);
    // Per-loop stall share of the cause that loop feeds, at +0 and +15:
    // the attribution evidence for the sensitivity ordering.
    const core::StallCause fedCause[3] = {
        core::StallCause::WindowFull, core::StallCause::RawLoadUse,
        core::StallCause::BranchMispredict};
    std::vector<std::uint64_t> causeAt0(3), causeAtMax(3);
    for (const int ext : extensions) {
        std::vector<std::string> row{util::TextTable::num(
            std::int64_t{ext})};
        for (int loop = 0; loop < 3; ++loop) {
            const auto suite = study::runSuite(extendedParams(loop, ext),
                                               clock, profiles, spec);
            const double rel = suite.harmonicIpcAll() / baseIpc;
            const auto stalls = suite.aggregateStalls();
            if (ext == 0)
                causeAt0[loop] = stalls[fedCause[loop]];
            if (ext == extensions.back()) {
                atMax[loop] = rel;
                causeAtMax[loop] = stalls[fedCause[loop]];
            }
            for (auto &r : bench::statsRows(
                     util::strprintf("%s+%d", kLoopNames[loop], ext),
                     suite))
                stats.push_back(std::move(r));
            row.push_back(util::TextTable::num(rel, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::printf("\nrelative IPC at +15 cycles: issue-wakeup %.3f < "
                "load-use %.3f < mispredict %.3f\n",
                atMax[0], atMax[1], atMax[2]);
    std::printf("stall cycles charged to each loop's cause, +0 -> +15:\n");
    for (int loop = 0; loop < 3; ++loop) {
        std::printf("  %-14s (%s): %llu -> %llu\n", kLoopNames[loop],
                    core::stallCauseName(fedCause[loop]),
                    static_cast<unsigned long long>(causeAt0[loop]),
                    static_cast<unsigned long long>(causeAtMax[loop]));
    }

    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, stats);
    bench::maybeWriteTrace(obs, core::CoreParams::alpha21264(), clock,
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);
    bench::printLatencyCacheStats(bench::verboseFromArgs(argc, argv));
    bench::printMetricsRegistry(bench::verboseFromArgs(argc, argv));

    bench::verdict(
        atMax[0] < atMax[1] && atMax[1] < atMax[2]
            ? "sensitivity ordering matches the paper: issue-wakeup > "
              "load-use > branch misprediction"
            : "ORDERING MISMATCH with the paper");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return fig8(argc, argv); });
}
