/**
 * @file
 * Experiment E11 — Figure 11 / Section 5.1 of the paper: IPC of the
 * segmented instruction window as its wakeup pipeline depth grows from
 * 1 to 10 stages (32 entries, full selection).  IPC stays flat to about
 * 4 stages; at 10 stages the paper reports an 11% integer and 5%
 * floating-point loss — far below the ~27% cost of naive pipelining
 * that cannot issue dependent instructions back to back.
 */

#include "bench/common.hh"
#include "core/core.hh"
#include "study/runner.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/means.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

double
harmonicIpc(const core::CoreParams &params, const study::RunSpec &spec,
            const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<double> ipcs;
    for (const auto &prof : profiles) {
        trace::SyntheticTraceGenerator gen(prof);
        auto c = spec.impl == study::SimImpl::Batched
                     ? core::makeBatchedOooCore(params, spec.predictor)
                     : core::makeOooCore(params, spec.predictor);
        ipcs.push_back(
            c->run(gen, spec.instructions, spec.warmup, spec.prewarm)
                .ipc());
    }
    return util::harmonicMean(ipcs);
}

} // namespace

const std::vector<util::KeyDoc> kKeys = bench::specKeys();

int
fig11(int argc, char **argv)
{
    bench::banner(
        "E11 / Figure 11",
        "segmented 32-entry window: IPC roughly unchanged to 4 wakeup "
        "stages; ~11% integer / ~5% FP loss at 10 stages (naive "
        "pipelining without back-to-back issue would cost up to 27%)");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv, 60000, 8000, 400000);
    const auto ints = trace::spec2000Profiles(trace::BenchClass::Integer);
    auto fps = trace::spec2000Profiles(trace::BenchClass::VectorFp);
    for (auto &p : trace::spec2000Profiles(trace::BenchClass::NonVectorFp))
        fps.push_back(p);

    auto base = core::CoreParams::alpha21264();
    base.window.capacity = 32;
    const double intBase = harmonicIpc(base, spec, ints);
    const double fpBase = harmonicIpc(base, spec, fps);

    // The naive comparison: a pipelined window that cannot issue
    // dependents back to back (wakeup loop = stage count).
    auto naive = base;
    naive.issueLatency = 10;
    const double naiveRel = harmonicIpc(naive, spec, ints) / intBase;

    util::TextTable t;
    t.setHeader({"stages", "int IPC", "int rel", "fp IPC", "fp rel"});
    double intAt10 = 1.0, fpAt10 = 1.0, intAt4 = 1.0;
    for (const int stages : {1, 2, 3, 4, 6, 8, 10}) {
        auto p = base;
        p.window.wakeupStages = stages;
        const double i = harmonicIpc(p, spec, ints);
        const double f = harmonicIpc(p, spec, fps);
        if (stages == 10) {
            intAt10 = i / intBase;
            fpAt10 = f / fpBase;
        }
        if (stages == 4)
            intAt4 = i / intBase;
        t.addRow({util::TextTable::num(std::int64_t{stages}),
                  util::TextTable::num(i, 3),
                  util::TextTable::num(i / intBase, 3),
                  util::TextTable::num(f, 3),
                  util::TextTable::num(f / fpBase, 3)});
    }
    t.print(std::cout);

    std::printf("\nIPC loss at 10 stages: integer %.1f%% (paper 11%%), "
                "FP %.1f%% (paper 5%%)\n",
                100.0 * (1.0 - intAt10), 100.0 * (1.0 - fpAt10));
    std::printf("IPC loss at 4 stages: integer %.1f%% (paper: ~0%%)\n",
                100.0 * (1.0 - intAt4));
    std::printf("naive pipelining (no back-to-back, depth 10): %.1f%% "
                "loss (paper cites up to 27%% for naive schemes)\n",
                100.0 * (1.0 - naiveRel));

    bench::verdict("segmentation is near-free to 4 stages, costs a "
                   "modest amount at 10, hits integer codes harder than "
                   "FP, and beats naive pipelining by a wide margin");
    return 0;
}

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return fig11(argc, argv); });
}
