/**
 * @file
 * Experiment E9 — Figure 7 / Section 4.5 of the paper: choosing the
 * capacity (and so the latency) of the DL1, L2 and issue window
 * per clock frequency.  Optimized capacities buy ~14% BIPS on average
 * but leave the optimal logic depth at 6 FO4.
 */

#include "bench/common.hh"
#include "study/optimizer.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(), {bench::jobsKey()}, bench::observabilityKeys()});

int
fig7(int argc, char **argv)
{
    bench::banner(
        "E9 / Figure 7",
        "per-clock optimized structure capacities improve performance by "
        "~14% on average but the optimum stays at 6 FO4 of useful logic; "
        "at 6 FO4 the paper picks a 64KB DL1, a 512KB L2 and a 64-entry "
        "window");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    auto spec = bench::specFromArgs(argc, argv, 40000, 5000, 300000);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles = trace::spec2000Profiles();
    const auto ts = bench::usefulSweep();

    util::TextTable t;
    t.setHeader({"t_useful", "alpha caps (BIPS)", "optimized (BIPS)",
                 "gain", "dl1(KB)", "l2(KB)", "window"});

    const int jobs = bench::jobsFromArgs(argc, argv);
    const study::ParallelRunner runner(jobs);

    std::vector<std::vector<std::string>> stats;
    stats.push_back(bench::statsHeader());

    std::vector<double> base, tuned;
    double gainSum = 0;
    for (const double u : ts) {
        const auto clock = study::scaledClock(u);
        const auto baseline = runner.runSuite(study::scaledCoreParams(u, {}),
                                              clock, profiles, spec);
        for (auto &row :
             bench::statsRows(util::strprintf("%g", u), baseline))
            stats.push_back(std::move(row));
        const auto best = study::optimizeStructures(u, clock, profiles,
                                                    spec, {}, jobs);
        base.push_back(baseline.harmonicBipsAll());
        tuned.push_back(best.harmonicBipsAll);
        const double gain = tuned.back() / base.back() - 1.0;
        gainSum += gain;
        t.addRow({util::TextTable::num(u, 0),
                  util::TextTable::num(base.back(), 3),
                  util::TextTable::num(tuned.back(), 3),
                  util::TextTable::num(100.0 * gain, 1) + "%",
                  util::TextTable::num(
                      std::int64_t(best.options.dl1Bytes >> 10)),
                  util::TextTable::num(
                      std::int64_t(best.options.l2Bytes >> 10)),
                  util::TextTable::num(
                      std::int64_t(best.options.windowEntries))});
    }
    t.print(std::cout);

    std::printf("\naverage gain from optimized capacities: %.1f%% "
                "(paper: ~14%%)\n",
                100.0 * gainSum / ts.size());
    std::printf("optimum with alpha capacities: %.0f FO4; with optimized "
                "capacities: %.0f FO4 (paper: 6 both ways)\n",
                bench::argmax(ts, base), bench::argmax(ts, tuned));

    // stats= / trace=: attribution of the alpha-capacity baselines, and
    // the pipeline timeline at the 6 FO4 point.
    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, stats);
    bench::maybeWriteTrace(obs, study::scaledCoreParams(6, {}),
                           study::scaledClock(6),
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);

    bench::printLatencyCacheStats(bench::verboseFromArgs(argc, argv));
    bench::printMetricsRegistry(bench::verboseFromArgs(argc, argv));
    bench::verdict("optimization lifts the whole curve without moving "
                   "the optimal logic depth away from ~6 FO4");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return fig7(argc, argv); });
}
