/**
 * @file
 * Shared plumbing for the experiment harnesses: a uniform banner, the
 * standard run-length knobs (override with instructions= warmup=
 * prewarm= key=value arguments), SIGINT-driven cooperative cancellation,
 * and paper-vs-model table helpers.
 */

#ifndef FO4_BENCH_COMMON_HH
#define FO4_BENCH_COMMON_HH

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cacti/latency_cache.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "util/cancel.hh"
#include "util/config.hh"
#include "util/csv.hh"
#include "util/metrics.hh"
#include "util/table.hh"

namespace fo4::bench
{

/** Ctrl-C → cooperative cancellation (see util::installSigintCancel). */
inline void
installSigintCancel(util::CancelToken &token)
{
    util::installSigintCancel(token);
}

/** Print the experiment banner: id, claim being reproduced. */
inline void
banner(const std::string &id, const std::string &claim)
{
    std::printf("=== %s ===\n", id.c_str());
    std::printf("paper claim: %s\n\n", claim.c_str());
}

/** Standard run spec with command-line overrides.  `sim_impl=` selects
 *  the core implementation; the default is the one-pass batched engine,
 *  which is byte-identical to `sim_impl=reference` (DESIGN.md §14). */
inline study::RunSpec
specFromArgs(int argc, char **argv, std::uint64_t instructions = 80000,
             std::uint64_t warmup = 10000, std::uint64_t prewarm = 500000)
{
    const util::Config cfg = util::Config::fromArgs(argc, argv);
    study::RunSpec spec;
    spec.instructions = cfg.getInt("instructions", instructions);
    spec.warmup = cfg.getInt("warmup", warmup);
    spec.prewarm = cfg.getInt("prewarm", prewarm);
    spec.impl =
        study::simImplFromName(cfg.getString("sim_impl", "batched"));
    return spec;
}

/** KeyDocs for the run-length/engine knobs specFromArgs reads — the
 *  baseline every sweep bench's kKeys starts from. */
inline std::vector<util::KeyDoc>
specKeys()
{
    return {
        {"instructions", "measured instructions per benchmark"},
        {"warmup", "instructions simulated but discarded first"},
        {"prewarm",
         "instructions streamed through caches/predictor first"},
        {"sim_impl", "core implementation: 'batched' (default, one-pass "
                     "engine) or 'reference'; results byte-identical"},
    };
}

/** KeyDoc for the sweep-engine thread count jobsFromArgs reads. */
inline util::KeyDoc
jobsKey()
{
    return {"jobs", "worker threads (1 = serial, 0 = all cores)"};
}

/** KeyDocs for the observability knobs observabilityFromArgs reads. */
inline std::vector<util::KeyDoc>
observabilityKeys()
{
    return {
        {"verbose", "print cache and metrics diagnostics"},
        {"stats", "write per-point stall-attribution CSV here"},
        {"trace", "write a Chrome pipeline trace of one benchmark here"},
        {"trace_start", "first cycle the trace records"},
        {"trace_cycles", "length of the traced cycle window"},
    };
}

/** kKeys = specKeys() + jobsKey() + per-bench extras, concatenated. */
inline std::vector<util::KeyDoc>
keyUnion(std::initializer_list<std::vector<util::KeyDoc>> lists)
{
    std::vector<util::KeyDoc> keys;
    for (const auto &list : lists)
        keys.insert(keys.end(), list.begin(), list.end());
    return keys;
}

/**
 * Worker-thread count for the sweep engine, from `jobs=N` (or
 * `--jobs=N`).  Defaults to serial; N must be >= 1 — `jobs=0` and
 * negative values are rejected with a typed ConfigError rather than
 * silently picking a thread count.  Results are identical at any value
 * (see study/parallel.hh).
 */
inline int
jobsFromArgs(int argc, char **argv)
{
    return static_cast<int>(
        util::Config::fromArgs(argc, argv).getPositiveInt("jobs", 1));
}

/** The `verbose=`/`--verbose` flag (engineering diagnostics). */
inline bool
verboseFromArgs(int argc, char **argv)
{
    return util::Config::fromArgs(argc, argv).getBool("verbose", false);
}

/**
 * Under verbose=, print the structure-latency cache counters — the
 * sweep memoization working shows up as a high hit count and exactly
 * one insert per distinct (calibration, structure, capacity) point.
 */
inline void
printLatencyCacheStats(bool verbose)
{
    if (!verbose)
        return;
    const auto s = cacti::LatencyCache::global().stats();
    std::printf("\nlatency cache: %llu lookups (%llu hits, %llu misses), "
                "%llu inserts\n",
                static_cast<unsigned long long>(s.lookups()),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.inserts));
}

/** The t_useful sweep the paper uses (2..16 FO4). */
inline std::vector<double>
usefulSweep()
{
    return {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
}

/** Locate the argmax of a (t, value) series. */
inline double
argmax(const std::vector<double> &ts, const std::vector<double> &values)
{
    double bestT = ts.empty() ? 0.0 : ts[0];
    double best = values.empty() ? 0.0 : values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
        if (values[i] > best) {
            best = values[i];
            bestT = ts[i];
        }
    }
    return bestT;
}

/** All sweep points whose value is within `tol` of the maximum: the
 *  optimum plateau (quantization stairs make near-ties common). */
inline std::vector<double>
plateau(const std::vector<double> &ts, const std::vector<double> &values,
        double tol = 0.005)
{
    double best = 0;
    for (const double v : values)
        best = std::max(best, v);
    std::vector<double> out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] >= best * (1.0 - tol))
            out.push_back(ts[i]);
    }
    return out;
}

/** Render a plateau as "a-b" or a list. */
inline std::string
plateauStr(const std::vector<double> &p)
{
    std::string s;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (i)
            s += ",";
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%g", p[i]);
        s += buf;
    }
    return s;
}

/** True if t is on the plateau. */
inline bool
onPlateau(const std::vector<double> &p, double t)
{
    for (const double v : p) {
        if (v == t)
            return true;
    }
    return false;
}

/** Print the shape verdict line benches end with. */
inline void
verdict(const std::string &text)
{
    std::printf("\nshape check: %s\n", text.c_str());
}

// ---------------------------------------------------------------------
// Observability plumbing: stats= / trace= / trace_start= / trace_cycles=
// ---------------------------------------------------------------------

/**
 * The observability knobs shared by the figure benches and examples:
 *  - stats=PATH       per-benchmark stall/occupancy CSV (atomic write;
 *                     deterministic at any jobs= value);
 *  - trace=PATH       Chrome trace_event JSON of one serially-rerun
 *                     cell (load in chrome://tracing / ui.perfetto.dev);
 *  - trace_start=N    first recorded cycle (default 0);
 *  - trace_cycles=N   recording-window length in cycles.
 * Parsing either path (or verbose=) also enables the global
 * engineering-metrics registry for the process.
 */
struct ObservabilityOptions
{
    std::string statsPath;
    std::string tracePath;
    std::int64_t traceStart = 0;
    std::int64_t traceCycles = 20000;

    bool wantsStats() const { return !statsPath.empty(); }
    bool wantsTrace() const { return !tracePath.empty(); }
};

inline ObservabilityOptions
observabilityFromArgs(int argc, char **argv)
{
    const util::Config cfg = util::Config::fromArgs(argc, argv);
    ObservabilityOptions o;
    o.statsPath = cfg.getString("stats", "");
    o.tracePath = cfg.getString("trace", "");
    o.traceStart = cfg.getInt("trace_start", 0);
    o.traceCycles = cfg.getPositiveInt("trace_cycles", o.traceCycles);
    if (o.wantsStats() || o.wantsTrace() ||
        cfg.getBool("verbose", false))
        util::setMetricsEnabled(true);
    return o;
}

/** Header row of the stats CSV (shared by benches and identity tests). */
inline std::vector<std::string>
statsHeader(const std::string &pointColumn = "t_useful")
{
    std::vector<std::string> h{pointColumn, "benchmark", "class",
                               "status", "instructions", "cycles",
                               "stall_cycles"};
    for (int i = 0; i < core::numStallCauses; ++i) {
        h.push_back(std::string("stall_") +
                    core::stallCauseName(
                        static_cast<core::StallCause>(i)));
    }
    h.insert(h.end(),
             {"dispatch_window_full", "dispatch_rob_full",
              "dispatch_lsq_full", "occ_front", "occ_window", "occ_rob",
              "occ_lsq"});
    return h;
}

/**
 * One stats row per benchmark of `suite`, labelled `point` (e.g. the
 * t_useful value).  Every cell is rendered with a fixed format from
 * integer counters, so two byte-identical suites produce byte-identical
 * rows — the determinism contract extends to this CSV.
 */
inline std::vector<std::vector<std::string>>
statsRows(const std::string &point, const study::SuiteResult &suite)
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(suite.benchmarks.size());
    for (const auto &b : suite.benchmarks) {
        std::vector<std::string> row{
            point, b.name, trace::benchClassName(b.cls),
            b.failed() ? util::errorCodeName(b.error.code()) : "ok",
            util::strprintf("%llu", static_cast<unsigned long long>(
                                        b.sim.instructions)),
            util::strprintf("%llu", static_cast<unsigned long long>(
                                        b.sim.cycles)),
            util::strprintf("%llu", static_cast<unsigned long long>(
                                        b.sim.stallCycles))};
        for (const auto v : b.sim.stalls.byCause)
            row.push_back(util::strprintf(
                "%llu", static_cast<unsigned long long>(v)));
        for (const auto v :
             {b.sim.dispatchWindowFull, b.sim.dispatchRobFull,
              b.sim.dispatchLsqFull})
            row.push_back(util::strprintf(
                "%llu", static_cast<unsigned long long>(v)));
        const auto &occ = b.sim.occupancy;
        for (const auto sum : {occ.frontSum, occ.windowSum, occ.robSum,
                               occ.lsqSum})
            row.push_back(util::strprintf("%.6f", occ.mean(sum)));
        rows.push_back(std::move(row));
    }
    return rows;
}

/** statsRows over a whole sweep, keyed by each point's t_useful. */
inline std::vector<std::vector<std::string>>
sweepStatsRows(const std::vector<study::SweepPointResult> &points)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back(statsHeader());
    for (const auto &point : points) {
        for (auto &row :
             statsRows(util::strprintf("%g", point.tUseful), point.suite))
            rows.push_back(std::move(row));
    }
    return rows;
}

/** Flatten rows to one string (what the byte-identity tests compare). */
inline std::string
statsRowsToString(const std::vector<std::vector<std::string>> &rows)
{
    std::string out;
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += row[i];
        }
        out += '\n';
    }
    return out;
}

/** Publish stats rows atomically (tmp + fsync + rename, like csv=). */
inline void
writeStats(const std::string &path,
           const std::vector<std::vector<std::string>> &rows)
{
    util::AtomicCsvFile csv(path);
    for (const auto &row : rows)
        csv.writeRow(row);
    csv.commit();
}

/**
 * Under trace=, rerun ONE cell serially with a TraceEventRing attached
 * and write its Chrome trace_event JSON.  The rerun is deliberate: a
 * ring is single-writer, so tracing never touches the parallel sweep —
 * and because results are deterministic, the rerun's pipeline schedule
 * is exactly the one the sweep measured.
 */
inline void
maybeWriteTrace(const ObservabilityOptions &obs,
                const core::CoreParams &params,
                const tech::ClockModel &clock, const study::BenchJob &job,
                study::RunSpec spec)
{
    if (!obs.wantsTrace())
        return;
    util::TraceEventRing ring(1 << 16, obs.traceStart, obs.traceCycles);
    spec.tracer = &ring;
    const auto result = study::runJobIsolated(params, clock, job, spec);
    if (result.failed()) {
        std::printf("trace: benchmark '%s' failed (%s); no trace "
                    "written\n",
                    job.name.c_str(),
                    util::errorCodeName(result.error.code()));
        return;
    }
    std::ofstream out(obs.tracePath,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
        std::printf("trace: cannot open '%s' for writing\n",
                    obs.tracePath.c_str());
        return;
    }
    ring.writeChromeJson(out);
    std::printf("trace: %zu events from cycles [%lld, %lld) of '%s' -> "
                "%s (open in chrome://tracing or ui.perfetto.dev)\n",
                ring.size(), static_cast<long long>(ring.startCycle()),
                static_cast<long long>(ring.endCycle()),
                job.name.c_str(), obs.tracePath.c_str());
}

/** Under verbose=, dump the engineering-metrics registry. */
inline void
printMetricsRegistry(bool verbose)
{
    if (!verbose || !util::metricsEnabled())
        return;
    std::printf("\nengineering metrics:\n");
    for (const auto &[name, value] :
         util::MetricsRegistry::global().snapshotCounters())
        std::printf("  %-28s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
}

} // namespace fo4::bench

#endif // FO4_BENCH_COMMON_HH
