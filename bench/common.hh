/**
 * @file
 * Shared plumbing for the experiment harnesses: a uniform banner, the
 * standard run-length knobs (override with instructions= warmup=
 * prewarm= key=value arguments), SIGINT-driven cooperative cancellation,
 * and paper-vs-model table helpers.
 */

#ifndef FO4_BENCH_COMMON_HH
#define FO4_BENCH_COMMON_HH

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "cacti/latency_cache.hh"
#include "study/runner.hh"
#include "util/cancel.hh"
#include "util/config.hh"
#include "util/table.hh"

namespace fo4::bench
{

/** Ctrl-C → cooperative cancellation (see util::installSigintCancel). */
inline void
installSigintCancel(util::CancelToken &token)
{
    util::installSigintCancel(token);
}

/** Print the experiment banner: id, claim being reproduced. */
inline void
banner(const std::string &id, const std::string &claim)
{
    std::printf("=== %s ===\n", id.c_str());
    std::printf("paper claim: %s\n\n", claim.c_str());
}

/** Standard run spec with command-line overrides. */
inline study::RunSpec
specFromArgs(int argc, char **argv, std::uint64_t instructions = 80000,
             std::uint64_t warmup = 10000, std::uint64_t prewarm = 500000)
{
    const util::Config cfg = util::Config::fromArgs(argc, argv);
    study::RunSpec spec;
    spec.instructions = cfg.getInt("instructions", instructions);
    spec.warmup = cfg.getInt("warmup", warmup);
    spec.prewarm = cfg.getInt("prewarm", prewarm);
    return spec;
}

/**
 * Worker-thread count for the sweep engine, from `jobs=N` (or
 * `--jobs=N`).  Defaults to serial; N must be >= 1 — `jobs=0` and
 * negative values are rejected with a typed ConfigError rather than
 * silently picking a thread count.  Results are identical at any value
 * (see study/parallel.hh).
 */
inline int
jobsFromArgs(int argc, char **argv)
{
    return static_cast<int>(
        util::Config::fromArgs(argc, argv).getPositiveInt("jobs", 1));
}

/** The `verbose=`/`--verbose` flag (engineering diagnostics). */
inline bool
verboseFromArgs(int argc, char **argv)
{
    return util::Config::fromArgs(argc, argv).getBool("verbose", false);
}

/**
 * Under verbose=, print the structure-latency cache counters — the
 * sweep memoization working shows up as a high hit count and exactly
 * one insert per distinct (calibration, structure, capacity) point.
 */
inline void
printLatencyCacheStats(bool verbose)
{
    if (!verbose)
        return;
    const auto s = cacti::LatencyCache::global().stats();
    std::printf("\nlatency cache: %llu lookups (%llu hits, %llu misses), "
                "%llu inserts\n",
                static_cast<unsigned long long>(s.lookups()),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.inserts));
}

/** The t_useful sweep the paper uses (2..16 FO4). */
inline std::vector<double>
usefulSweep()
{
    return {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
}

/** Locate the argmax of a (t, value) series. */
inline double
argmax(const std::vector<double> &ts, const std::vector<double> &values)
{
    double bestT = ts.empty() ? 0.0 : ts[0];
    double best = values.empty() ? 0.0 : values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
        if (values[i] > best) {
            best = values[i];
            bestT = ts[i];
        }
    }
    return bestT;
}

/** All sweep points whose value is within `tol` of the maximum: the
 *  optimum plateau (quantization stairs make near-ties common). */
inline std::vector<double>
plateau(const std::vector<double> &ts, const std::vector<double> &values,
        double tol = 0.005)
{
    double best = 0;
    for (const double v : values)
        best = std::max(best, v);
    std::vector<double> out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] >= best * (1.0 - tol))
            out.push_back(ts[i]);
    }
    return out;
}

/** Render a plateau as "a-b" or a list. */
inline std::string
plateauStr(const std::vector<double> &p)
{
    std::string s;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (i)
            s += ",";
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%g", p[i]);
        s += buf;
    }
    return s;
}

/** True if t is on the plateau. */
inline bool
onPlateau(const std::vector<double> &p, double t)
{
    for (const double v : p) {
        if (v == t)
            return true;
    }
    return false;
}

/** Print the shape verdict line benches end with. */
inline void
verdict(const std::string &text)
{
    std::printf("\nshape check: %s\n", text.c_str());
}

} // namespace fo4::bench

#endif // FO4_BENCH_COMMON_HH
