/**
 * @file
 * Experiment E12 — process-variation Monte Carlo: the yield-aware
 * optimal pipeline depth.  The paper's Fig 5 optimum assumes every
 * stage pays exactly 1.8 FO4 of overhead; here each die draws per-stage
 * latch/skew/jitter samples (plus a die-level systematic corner) and
 * clocks at its worst stage, so deeper pipelines — more stages, more
 * draws — pay a growing max-of-samples penalty.  The bench sweeps the
 * sigma scale and reports how the yield-weighted optimum migrates away
 * from the deterministic 6 FO4 point as variation grows.
 *
 * Identity: sampling is counter-based (study::sampleOverhead), so the
 * run is byte-identical at any jobs= value and across checkpoint=
 * resume cycles; with mc_sigma_*=0 and mc_samples=1 the samples_csv=
 * output is byte-identical to bench_fig5_ooo's csv= (the zero-sigma
 * Monte Carlo *is* the deterministic sweep — CI holds us to the cmp).
 *
 * Durability: `checkpoint=PATH` journals every finished die cell; an
 * interrupted run resumes where it stopped (resume=0 starts over).
 * With several mc_sigma_scale= values each scale journals to
 * PATH.scale<i>.
 */

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "bench/common.hh"
#include "study/montecarlo.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(),
     {bench::jobsKey()},
     {{"bench", "comma list of SPEC 2000 profiles (default 176.gcc)"},
      {"class", "sweep a whole class: integer | vfp | nvfp | all"},
      {"t_useful", "comma list of useful-logic depths (default 2..16)"},
      {"mc_samples", "Monte Carlo dice per sweep point"},
      {"mc_dist", "per-stage draw family: normal | lognormal"},
      {"mc_sigma_latch", "per-stage latch overhead sigma (FO4 under "
                         "normal, lognormal shape otherwise)"},
      {"mc_sigma_skew", "per-stage clock skew sigma"},
      {"mc_sigma_jitter", "per-stage clock jitter sigma"},
      {"mc_sigma_die", "die-level systematic corner sigma (carried by "
                       "the latch component on every stage)"},
      {"mc_seed", "root seed of the sampling streams"},
      {"mc_sigma_scale", "comma list of sigma multipliers; the optimum "
                         "is reported per scale"},
      {"csv", "write the aggregate yield/band curve to this CSV"},
      {"samples_csv", "write per-die rows in the Fig 5 CSV schema "
                      "(single sigma scale only)"},
      {"checkpoint", "journal file; an interrupted sweep resumes from it"},
      {"resume", "resume=0 discards an existing journal and starts over"},
      {"attempts", "max attempts per cell for transient failures"}},
     bench::observabilityKeys()});

std::vector<double>
parseDoubleList(const std::string &text, const char *key)
{
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(start, comma - start);
        if (!item.empty()) {
            std::size_t pos = 0;
            double v = 0.0;
            try {
                v = std::stod(item, &pos);
            } catch (const std::exception &) {
                pos = 0;
            }
            if (pos != item.size()) {
                throw util::ConfigError(util::strprintf(
                    "%s: '%s' is not a number", key, item.c_str()));
            }
            out.push_back(v);
        }
        if (comma == text.size())
            break;
        start = comma + 1;
    }
    if (out.empty())
        throw util::ConfigError(
            util::strprintf("%s: empty list", key));
    return out;
}

std::vector<trace::BenchmarkProfile>
pickProfiles(const util::Config &cfg)
{
    using namespace trace;
    if (cfg.has("class")) {
        const std::string cls = cfg.getString("class", "integer");
        if (cls == "integer")
            return spec2000Profiles(BenchClass::Integer);
        if (cls == "vector-fp" || cls == "vfp")
            return spec2000Profiles(BenchClass::VectorFp);
        if (cls == "non-vector-fp" || cls == "nvfp")
            return spec2000Profiles(BenchClass::NonVectorFp);
        if (cls == "all")
            return spec2000Profiles();
        throw util::ConfigError(util::strprintf(
            "unknown class '%s' (use integer, vfp, nvfp or all)",
            cls.c_str()));
    }
    // bench= accepts a comma list, like fo4ctl's request syntax.
    std::vector<BenchmarkProfile> out;
    const std::string names = cfg.getString("bench", "176.gcc");
    std::size_t start = 0;
    while (start <= names.size()) {
        std::size_t comma = names.find(',', start);
        if (comma == std::string::npos)
            comma = names.size();
        const std::string name = names.substr(start, comma - start);
        if (!name.empty())
            out.push_back(spec2000Profile(name));
        if (comma == names.size())
            break;
        start = comma + 1;
    }
    if (out.empty())
        throw util::ConfigError("bench=: empty benchmark list");
    return out;
}

int
mcYield(int argc, char **argv)
{
    bench::banner(
        "E12 / Monte Carlo yield",
        "with per-stage overhead variation the yield-weighted optimum "
        "moves to shallower pipelines (larger t_useful) than the "
        "deterministic 6 FO4 optimum, because deeper pipelines clock at "
        "the worst of more per-stage draws");

    const auto spec = bench::specFromArgs(argc, argv);
    const util::Config cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles = pickProfiles(cfg);
    const auto ts = cfg.has("t_useful")
                        ? parseDoubleList(cfg.getString("t_useful", ""),
                                          "t_useful")
                        : bench::usefulSweep();

    study::VariationModel base;
    base.dist = study::mcDistFromName(cfg.getString("mc_dist", "normal"));
    base.sigmaLatch = cfg.getDouble("mc_sigma_latch", 0.05);
    base.sigmaSkew = cfg.getDouble("mc_sigma_skew", 0.02);
    base.sigmaJitter = cfg.getDouble("mc_sigma_jitter", 0.03);
    base.sigmaDie = cfg.getDouble("mc_sigma_die", 0.05);
    base.seed = static_cast<std::uint64_t>(cfg.getInt("mc_seed", 0));
    base.samples = static_cast<int>(cfg.getPositiveInt("mc_samples", 16));

    const auto scales = parseDoubleList(
        cfg.getString("mc_sigma_scale", "1"), "mc_sigma_scale");
    const std::string csvPath = cfg.getString("csv", "");
    const std::string samplesCsvPath = cfg.getString("samples_csv", "");
    if (!samplesCsvPath.empty() && scales.size() != 1) {
        throw util::ConfigError("samples_csv= needs a single "
                                "mc_sigma_scale value");
    }
    const std::string checkpointPath = cfg.getString("checkpoint", "");
    const bool resume = cfg.getBool("resume", true);
    const bool verbose = cfg.getBool("verbose", false);

    // Ctrl-C drains the sweep, flushes the journal, exits 130.
    util::CancelToken cancel;
    bench::installSigintCancel(cancel);

    std::unique_ptr<util::AtomicCsvFile> csv;
    if (!csvPath.empty()) {
        csv = std::make_unique<util::AtomicCsvFile>(csvPath);
        csv->writeRow({"sigma_scale", "t_useful", "period_fo4", "stages",
                       "class", "samples", "mean_bips", "stddev_bips",
                       "p5_bips", "p95_bips", "yield"});
    }

    std::vector<double> optima;
    for (std::size_t si = 0; si < scales.size(); ++si) {
        const double scale = scales[si];
        study::McOptions mopts;
        mopts.variation = base;
        mopts.variation.sigmaLatch *= scale;
        mopts.variation.sigmaSkew *= scale;
        mopts.variation.sigmaJitter *= scale;
        mopts.variation.sigmaDie *= scale;
        mopts.journalPath =
            checkpointPath.empty()
                ? std::string()
                : (scales.size() == 1
                       ? checkpointPath
                       : checkpointPath +
                             util::strprintf(".scale%zu", si));
        if (!mopts.journalPath.empty() && !resume)
            std::remove(mopts.journalPath.c_str());
        mopts.threads = bench::jobsFromArgs(argc, argv);
        mopts.cancel = &cancel;
        mopts.retry.maxAttempts =
            static_cast<int>(cfg.getPositiveInt("attempts", 1));

        study::MonteCarloRunner runner(mopts);
        const study::McSweepResult result =
            runner.run(ts, profiles, spec);
        if (verbose) {
            const auto &rep = runner.report();
            std::printf("scale %g: %zu cells total, %zu replayed from "
                        "checkpoint, %zu simulated, %zu retried "
                        "attempts%s\n",
                        scale, rep.totalCells, rep.replayedCells,
                        rep.executedCells, rep.retriedAttempts,
                        rep.tornTailDiscarded ? " (torn tail discarded)"
                                              : "");
        }

        std::printf("sigma scale %g (%d dice/point, %s):\n", scale,
                    mopts.variation.samples,
                    study::mcDistName(mopts.variation.dist));
        util::TextTable t;
        t.setHeader({"t_useful", "period", "stages", "mean BIPS",
                     "stddev", "p5", "p95", "yield"});
        for (const auto &pt : result.points) {
            t.addRow({util::TextTable::num(pt.tUseful, 0),
                      util::TextTable::num(pt.nominalClock.periodFo4(), 1),
                      util::strprintf("%d", pt.stages),
                      util::TextTable::num(pt.all.meanBips, 3),
                      util::TextTable::num(pt.all.stddevBips, 3),
                      util::TextTable::num(pt.all.p5Bips, 3),
                      util::TextTable::num(pt.all.p95Bips, 3),
                      util::TextTable::num(pt.yield, 3)});
            if (csv) {
                const struct
                {
                    const char *name;
                    const study::McBand &band;
                } rows[] = {{"integer", pt.integer},
                            {"vector-fp", pt.vectorFp},
                            {"non-vector-fp", pt.nonVectorFp},
                            {"all", pt.all}};
                for (const auto &row : rows) {
                    csv->writeRow(
                        {util::TextTable::num(scale, 3),
                         util::TextTable::num(pt.tUseful, 0),
                         util::TextTable::num(
                             pt.nominalClock.periodFo4(), 1),
                         util::strprintf("%d", pt.stages), row.name,
                         util::strprintf(
                             "%llu", static_cast<unsigned long long>(
                                         row.band.samples)),
                         util::TextTable::num(row.band.meanBips, 4),
                         util::TextTable::num(row.band.stddevBips, 4),
                         util::TextTable::num(row.band.p5Bips, 4),
                         util::TextTable::num(row.band.p95Bips, 4),
                         util::TextTable::num(pt.yield, 4)});
                }
            }
        }
        t.print(std::cout);
        const double opt = result.optimumTUseful();
        optima.push_back(opt);
        std::printf("yield-weighted optimum at sigma scale %g: %.0f FO4 "
                    "useful logic per stage\n\n",
                    scale, opt);

        // samples_csv=: per-die rows in bench_fig5_ooo's exact CSV
        // schema.  With mc_sigma_*=0 and mc_samples=1 this file is
        // byte-identical to the deterministic bench's csv= output.
        if (!samplesCsvPath.empty()) {
            util::AtomicCsvFile sampleCsv(samplesCsvPath);
            sampleCsv.writeRow({"t_useful", "period_fo4", "ghz",
                                "benchmark", "class", "ipc", "bips"});
            for (const auto &die : result.samples) {
                for (const auto &point : die) {
                    for (const auto &b : point.suite.benchmarks) {
                        sampleCsv.writeRow(
                            {util::TextTable::num(point.tUseful, 0),
                             util::TextTable::num(
                                 point.clock.periodFo4(), 1),
                             util::TextTable::num(
                                 point.clock.frequencyGhz(), 3),
                             b.name, trace::benchClassName(b.cls),
                             util::TextTable::num(b.sim.ipc(), 4),
                             util::TextTable::num(b.bips, 4)});
                    }
                }
            }
            sampleCsv.commit();
        }
    }
    if (csv)
        csv->commit();

    std::string v = "deeper pipelines pay the worst of more per-stage "
                    "draws, so variation taxes small t_useful hardest";
    bool monotone = true;
    for (std::size_t i = 1; i < optima.size(); ++i) {
        if (optima[i] < optima[i - 1])
            monotone = false;
    }
    if (scales.size() > 1) {
        v += monotone ? "; the yield-weighted optimum moved monotonically "
                        "to shallower (or equal) pipelines as sigma grew"
                      : "; WARNING: the optimum moved deeper as sigma "
                        "grew";
    }
    bench::verdict(v);
    bench::printLatencyCacheStats(verbose);
    bench::printMetricsRegistry(verbose);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return mcYield(argc, argv); });
}
