/**
 * @file
 * Experiment E8 — Figure 6 of the paper: sensitivity of the integer
 * optimum to the per-stage overhead.  For overheads between 1 and 5 FO4
 * the best useful logic per stage stays at 6 FO4; deeper pipelines
 * benefit more from overhead reductions.
 *
 * Since overhead affects only the clock frequency (never the cycle
 * counts), one IPC sweep serves every overhead value.
 */

#include "bench/common.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace fo4;

namespace
{

const std::vector<util::KeyDoc> kKeys = bench::keyUnion(
    {bench::specKeys(), {bench::jobsKey()}, bench::observabilityKeys()});

int
fig6(int argc, char **argv)
{
    bench::banner(
        "E8 / Figure 6",
        "the 6 FO4 integer optimum is insensitive to overhead values of "
        "1..5 FO4; deep pipelines gain more from overhead reduction than "
        "shallow ones");

    util::Config::fromArgs(argc, argv).checkKnown(kKeys);
    const auto spec = bench::specFromArgs(argc, argv);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto ts = bench::usefulSweep();
    const std::vector<double> overheads{0, 1, 2, 3, 4, 5, 6};

    // One simulation per t_useful; BIPS recomputed per overhead.
    study::SweepOptions sweep;
    sweep.threads = bench::jobsFromArgs(argc, argv);
    const auto points = study::sweepScaling(ts, sweep, profiles, spec);
    std::vector<double> ipcAt;
    for (const auto &point : points)
        ipcAt.push_back(point.suite.harmonicIpc(trace::BenchClass::Integer));

    util::TextTable t;
    std::vector<std::string> header{"t_useful"};
    for (const double o : overheads)
        header.push_back("ovh=" + util::TextTable::num(o, 0));
    t.setHeader(header);

    std::vector<double> optima;
    std::vector<std::vector<double>> series(overheads.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
        std::vector<std::string> row{util::TextTable::num(ts[i], 0)};
        for (std::size_t o = 0; o < overheads.size(); ++o) {
            const auto clock = study::scaledClock(
                ts[i], tech::OverheadModel::uniform(overheads[o]));
            const double bips = clock.bips(ipcAt[i]);
            series[o].push_back(bips);
            row.push_back(util::TextTable::num(bips, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::printf("\noptimal t_useful per overhead (2%% plateau):\n");
    bool sixOnAll = true;
    for (std::size_t o = 0; o < overheads.size(); ++o) {
        optima.push_back(bench::argmax(ts, series[o]));
        const auto p = bench::plateau(ts, series[o], 0.02);
        std::printf("  overhead %g -> %g [%s]\n", overheads[o],
                    optima.back(), bench::plateauStr(p).c_str());
        if (overheads[o] >= 1 && overheads[o] <= 5)
            sixOnAll = sixOnAll && bench::onPlateau(p, 6);
    }
    std::printf("(paper: stays at 6 FO4 for overheads 1..5; here 6 FO4 "
                "%s on every plateau in that range)\n",
                sixOnAll ? "stays" : "does NOT stay");

    // Deep pipelines benefit more from removing overhead.
    const double deepGain = series[0][1] / series.back()[1];   // t=3
    const double shallowGain = series[0][12] / series.back()[12]; // t=14
    std::printf("zero-vs-6FO4-overhead gain at t=3: %.2fx, at t=14: "
                "%.2fx (deeper gains more)\n",
                deepGain, shallowGain);

    // stats= / trace=: cycle counts are overhead-independent, so the
    // one sweep's stall attribution serves every overhead column.
    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, bench::sweepStatsRows(points));
    bench::maybeWriteTrace(obs, study::scaledCoreParams(6),
                           study::scaledClock(6),
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);

    bench::printLatencyCacheStats(bench::verboseFromArgs(argc, argv));
    bench::printMetricsRegistry(bench::verboseFromArgs(argc, argv));
    bench::verdict("the optimum moves by at most a couple of FO4 across "
                   "overheads 1..5, and overhead reduction helps deep "
                   "pipelines more than shallow ones");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return util::runTopLevel(argc, argv, kKeys,
                             [&] { return fig6(argc, argv); });
}
