/**
 * @file
 * Latch lab: drive the switch-level circuit simulator interactively —
 * measure the FO4 reference, extract pulse-latch timing at different
 * device corners, and watch the latch fail as the data edge crosses the
 * clock edge.  This is the machinery behind Table 1 of the paper.
 *
 *   ./latch_lab [vdd=1.2] [vt=0.3] [sweep=1]
 */

#include <cstdio>
#include <iostream>

#include "tech/clocking.hh"
#include "tech/ecl.hh"
#include "tech/latch.hh"
#include "util/config.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"vdd", "supply voltage, volts"},
    {"vt", "threshold voltage (applied to both device types), volts"},
    {"sweep", "also sweep vdd and print the FO4 trend"},
};

int
latchLab(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);

    auto params = tech::DeviceParams::at100nm();
    params.vdd = cfg.getDouble("vdd", params.vdd);
    params.vtn = cfg.getDouble("vt", params.vtn);
    params.vtp = params.vtn;

    std::printf("device corner: Vdd %.2f V, Vt %.2f V\n\n", params.vdd,
                params.vtn);

    const auto ref = tech::measureFo4(params);
    std::printf("FO4 reference delay: %.2f ps (rise %.2f / fall %.2f)\n",
                ref.delayPs, ref.risePs, ref.fallPs);

    const auto timing = tech::measureLatchTiming(params, ref);
    std::printf("pulse latch: overhead %.2f ps = %.2f FO4, nominal D-Q "
                "%.2f ps, failure point %.2f ps %s the clock edge\n",
                timing.overheadPs, timing.overheadFo4, timing.nominalTdqPs,
                std::abs(timing.setupPs),
                timing.setupPs < 0 ? "before" : "after");

    const double ecl = tech::measureEclLevelFo4(params, ref);
    std::printf("ECL gate-level equivalent (Appendix A circuit): %.2f "
                "FO4\n\n",
                ecl);

    if (cfg.getBool("sweep", true)) {
        // Show the latch failing as the data edge approaches the clock
        // edge (the measurement behind the overhead number).
        std::printf("data-edge sweep toward the falling clock edge:\n");
        util::TextTable t;
        t.setHeader({"D arrival vs clk edge (ps)", "captured", "D-Q (ps)"});
        const double period = 40.0 * ref.delayPs;
        for (double offset = -3.0; offset <= 1.0; offset += 0.5) {
            const auto trial = tech::runLatchTrial(
                params, period / 2.0 + offset * ref.delayPs, period);
            t.addRow({util::TextTable::num(trial.dArrival - trial.clkFall,
                                           1),
                      trial.captured ? "yes" : "NO",
                      trial.captured ? util::TextTable::num(trial.tdq, 2)
                                     : "-"});
        }
        t.print(std::cout);
    }

    // Put the measured overhead in context.
    tech::ClockModel clock;
    clock.tUsefulFo4 = 6.0;
    clock.overhead = tech::OverheadModel::paperDefault();
    std::printf("\nwith the paper's 1.8 FO4 overhead, 6 FO4 of useful "
                "logic gives a %.1f FO4 period = %.2f GHz at 100nm\n",
                clock.periodFo4(), clock.frequencyGhz());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return latchLab(argc, argv); });
}
