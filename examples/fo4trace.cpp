/**
 * @file
 * fo4trace: capture, replay and inspect retired-instruction streams,
 * and generate golden regression tests from captures (DESIGN.md §16).
 *
 *   ./fo4trace record bench=164.gzip out=/tmp/gzip.fo4cap
 *   ./fo4trace replay trace=/tmp/gzip.fo4cap depths=6,8 csv=/tmp/replay.txt
 *   ./fo4trace live   bench=164.gzip depths=6,8 csv=/tmp/live.txt
 *   ./fo4trace stats  trace=/tmp/gzip.fo4cap
 *   ./fo4trace query  trace=/tmp/gzip.fo4cap index=0 count=8
 *   ./fo4trace gen    captures=tests/data/gzip.fo4cap out=tests/generated
 *
 * `record` runs a benchmark with a trace::Recorder teed into the core's
 * retire stage (verifying capture == retired stream op-for-op) and
 * publishes the capture atomically with its run metadata.  `replay`
 * sweeps the capture across pipeline depths using the spec stored in
 * the capture; `live` runs the identical sweep from the synthetic
 * profile — the two CSVs are byte-identical (the record/replay CI job
 * cmp's them at jobs=1/8 under both sim_impls).  `gen` emits pinned
 * golden tests plus the CMake fragment that registers them in ctest.
 */

#include <cstdio>
#include <fstream>
#include <map>

#include "study/goldengen.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/capture.hh"
#include "trace/recorded_trace.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"bench", "SPEC 2000 profile to record or run live"},
    {"out", "record: capture file; gen: output directory"},
    {"trace", "capture file to replay / inspect"},
    {"model", "core model: ooo | inorder"},
    {"predictor", "branch predictor (tournament, gshare, ...)"},
    {"instructions", "measured instructions"},
    {"warmup", "instructions simulated but discarded first"},
    {"prewarm", "instructions streamed through caches/predictor first"},
    {"margin", "record: extra ops captured past the deepest fetch"},
    {"impl", "sim implementation: reference | batched"},
    {"jobs", "worker threads for replay/live sweeps"},
    {"depths", "comma list of t_useful sweep points, FO4"},
    {"csv", "write the sweep's serialized suite rows here"},
    {"index", "query: first record to print"},
    {"count", "query: number of records to print"},
    {"captures", "gen: comma list of capture files"},
};

using namespace fo4;

std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

std::vector<double>
parseDepths(const std::string &text)
{
    std::vector<double> out;
    for (const std::string &item : splitCommaList(text)) {
        try {
            out.push_back(std::stod(item));
        } catch (const std::exception &) {
            throw util::ConfigError(util::strprintf(
                "depths= entry '%s' is not a number", item.c_str()));
        }
    }
    if (out.empty())
        throw util::ConfigError("depths= names no sweep points");
    return out;
}

/** Spec shared by record and live; live must mirror record exactly. */
study::RunSpec
specFromArgs(const util::Config &cfg)
{
    study::RunSpec spec;
    spec.model = study::coreModelFromName(cfg.getString("model", "ooo"));
    spec.predictor = cfg.getString("predictor", spec.predictor);
    spec.instructions =
        cfg.getPositiveInt("instructions", spec.instructions);
    spec.warmup = cfg.getInt("warmup", spec.warmup);
    spec.prewarm = cfg.getInt("prewarm", spec.prewarm);
    return spec;
}

/**
 * The sweep both `replay` and `live` run: each depth scaled per the
 * paper, serialized with a depth marker line so the two CSVs line up.
 */
std::string
sweepSerialized(const std::vector<double> &depths,
                const std::vector<study::BenchJob> &jobs,
                const study::RunSpec &spec, int threads)
{
    std::vector<study::GridPoint> points;
    points.reserve(depths.size());
    for (const double t : depths)
        points.push_back(
            {study::scaledCoreParams(t, {}), study::scaledClock(t)});
    const std::vector<study::SuiteResult> results =
        study::ParallelRunner(threads).runGrid(points, jobs, spec);
    std::string out;
    for (std::size_t i = 0; i < results.size(); ++i) {
        out += util::strprintf("# t_useful=%g\n", depths[i]);
        out += study::serializeSuite(results[i]);
    }
    return out;
}

void
emitSweep(const util::Config &cfg, const std::string &serialized)
{
    const std::string csv = cfg.getString("csv", "");
    if (csv.empty()) {
        std::fputs(serialized.c_str(), stdout);
        return;
    }
    std::ofstream out(csv, std::ios::binary | std::ios::trunc);
    if (!out || !(out << serialized).flush()) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            util::strprintf("cannot write sweep CSV '%s'", csv.c_str()));
    }
    std::printf("wrote %zu bytes to %s\n", serialized.size(),
                csv.c_str());
}

int
doRecord(const util::Config &cfg)
{
    study::CaptureRequest request;
    request.profile =
        trace::spec2000Profile(cfg.getString("bench", "164.gzip"));
    request.spec = specFromArgs(cfg);
    request.spec.impl = study::simImplFromName(
        cfg.getString("impl", "reference"));
    request.params = core::CoreParams::alpha21264();
    request.margin = cfg.getInt("margin", request.margin);
    const std::string out = cfg.getString("out", "/tmp/fo4pipe.fo4cap");

    const study::CaptureInfo info = study::recordCapture(out, request);
    std::printf("recorded %s: %llu ops captured (%llu retired, "
                "margin %llu) -> %s\n",
                request.profile.name.c_str(),
                static_cast<unsigned long long>(info.capturedOps),
                static_cast<unsigned long long>(info.retiredOps),
                static_cast<unsigned long long>(request.margin),
                out.c_str());
    return 0;
}

int
doReplay(const util::Config &cfg)
{
    const std::string path = cfg.getString("trace", "");
    if (path.empty())
        throw util::ConfigError("replay needs trace=<capture>");
    const trace::RecordedTrace capture(path);
    study::RunSpec spec = study::specFromCaptureMeta(capture);
    spec.impl =
        study::simImplFromName(cfg.getString("impl", "reference"));
    const study::BenchJob job = study::BenchJob::fromTraceFile(
        capture.metaValue("benchmark", path),
        study::benchClassFromName(capture.metaValue("class", "integer")),
        path);
    emitSweep(cfg,
              sweepSerialized(parseDepths(cfg.getString("depths", "6,8")),
                              {job}, spec, cfg.getInt("jobs", 1)));
    return 0;
}

int
doLive(const util::Config &cfg)
{
    const trace::BenchmarkProfile profile =
        trace::spec2000Profile(cfg.getString("bench", "164.gzip"));
    study::RunSpec spec = specFromArgs(cfg);
    spec.impl =
        study::simImplFromName(cfg.getString("impl", "reference"));
    const study::BenchJob job = study::BenchJob::fromProfile(profile);
    emitSweep(cfg,
              sweepSerialized(parseDepths(cfg.getString("depths", "6,8")),
                              {job}, spec, cfg.getInt("jobs", 1)));
    return 0;
}

int
doStats(const util::Config &cfg)
{
    const std::string path = cfg.getString("trace", "");
    if (path.empty())
        throw util::ConfigError("stats needs trace=<capture>");
    // readCapture (not RecordedTrace): stats must salvage torn files.
    const trace::CaptureContents contents = trace::readCapture(path);
    std::printf("%s: capture v%u, %zu records, %s\n", path.c_str(),
                trace::kCaptureVersion, contents.ops.size(),
                contents.finalized
                    ? "finalized"
                    : (contents.tornTail ? "TORN TAIL (unfinalized)"
                                         : "UNFINALIZED"));
    for (const auto &[key, value] : contents.meta)
        std::printf("  meta %-12s %s\n", key.c_str(), value.c_str());

    std::map<isa::OpClass, std::uint64_t> mix;
    std::uint64_t branches = 0, taken = 0;
    for (const isa::MicroOp &op : contents.ops) {
        ++mix[op.cls];
        if (op.isBranch()) {
            ++branches;
            taken += op.taken;
        }
    }
    for (const auto &[cls, count] : mix)
        std::printf("  %-7s %8llu (%.1f%%)\n", isa::opClassName(cls),
                    static_cast<unsigned long long>(count),
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(contents.ops.size()));
    if (branches)
        std::printf("  taken-branch fraction: %.1f%%\n",
                    100.0 * static_cast<double>(taken) /
                        static_cast<double>(branches));
    return contents.finalized ? 0 : 1;
}

int
doQuery(const util::Config &cfg)
{
    const std::string path = cfg.getString("trace", "");
    if (path.empty())
        throw util::ConfigError("query needs trace=<capture>");
    trace::RecordedTrace capture(path);
    const std::uint64_t index = cfg.getInt("index", 0);
    const std::uint64_t count = cfg.getPositiveInt("count", 8);
    if (index >= capture.recordedInstructions()) {
        throw util::ConfigError(util::strprintf(
            "index %llu past the %zu recorded instructions",
            static_cast<unsigned long long>(index),
            capture.recordedInstructions()));
    }
    for (std::uint64_t i = 0; i < index; ++i)
        capture.next();
    const std::uint64_t last = std::min<std::uint64_t>(
        index + count, capture.recordedInstructions());
    for (std::uint64_t i = index; i < last; ++i)
        std::printf("%8llu  %s\n", static_cast<unsigned long long>(i),
                    capture.next().toString().c_str());
    return 0;
}

int
doGen(const util::Config &cfg)
{
    const std::vector<std::string> captures =
        splitCommaList(cfg.getString("captures", ""));
    if (captures.empty())
        throw util::ConfigError("gen needs captures=<a.fo4cap,...>");
    const std::string outDir = cfg.getString("out", "tests/generated");

    std::vector<study::GoldenTest> tests;
    for (const std::string &path : captures) {
        const std::size_t slash = path.find_last_of('/');
        const std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        tests.push_back(study::generateGoldenTest(path, base));
    }

    const auto writeFile = [&outDir](const std::string &name,
                                     const std::string &text) {
        const std::string full = outDir + "/" + name;
        std::ofstream out(full, std::ios::binary | std::ios::trunc);
        if (!out || !(out << text).flush()) {
            throw util::TraceError(
                util::ErrorCode::TraceIo,
                util::strprintf("cannot write '%s'", full.c_str()));
        }
        std::printf("wrote %s (%zu bytes)\n", full.c_str(), text.size());
    };
    for (const study::GoldenTest &test : tests)
        writeFile(test.fileName, test.source);
    writeFile("goldens.cmake", study::generateGoldenCmake(tests));
    std::printf("generated %zu golden tests\n", tests.size());
    return 0;
}

int
fo4trace(int argc, char **argv)
{
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const std::string mode =
        cfg.positional().empty() ? "stats" : cfg.positional()[0];
    if (mode == "record")
        return doRecord(cfg);
    if (mode == "replay")
        return doReplay(cfg);
    if (mode == "live")
        return doLive(cfg);
    if (mode == "stats")
        return doStats(cfg);
    if (mode == "query")
        return doQuery(cfg);
    if (mode == "gen")
        return doGen(cfg);
    throw util::ConfigError(util::strprintf(
        "unknown mode '%s' (use record|replay|live|stats|query|gen)",
        mode.c_str()));
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return fo4trace(argc, argv); });
}
