/**
 * @file
 * Segmented-window demo: compare the monolithic single-cycle issue
 * window against the paper's segmented designs at a deep clock, showing
 * why Section 5 matters — at 6 FO4 a monolithic 32-entry window needs a
 * 3-cycle wakeup loop, while the segmented window keeps a 1-cycle loop
 * per stage and recovers most of the lost IPC.
 *
 *   ./segmented_window_demo [t_useful=6] [instructions=80000]
 */

#include <cstdio>
#include <iostream>

#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/means.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"t_useful", "useful FO4 per stage the window is scaled to"},
    {"instructions", "measured instructions per configuration"},
};

int
windowDemo(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const double tUseful = cfg.getDouble("t_useful", 6.0);
    const std::uint64_t n = cfg.getInt("instructions", 80000);

    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto clock = study::scaledClock(tUseful);

    auto evaluate = [&](const study::ScalingOptions &opt) {
        const auto params = study::scaledCoreParams(tUseful, opt);
        std::vector<double> bips;
        for (const auto &prof : profiles) {
            trace::SyntheticTraceGenerator gen(prof);
            auto core = core::makeOooCore(params, "tournament");
            const auto r = core->run(gen, n, n / 8, 400000);
            bips.push_back(clock.bips(r.ipc()));
        }
        return std::pair<double, int>(util::harmonicMean(bips),
                                      params.issueLatency);
    };

    std::printf("integer SPEC-like suite at %.0f FO4 useful logic "
                "(%.2f GHz at 100nm)\n\n",
                tUseful, clock.frequencyGhz());

    util::TextTable t;
    t.setHeader({"issue window design", "wakeup loop", "hmean BIPS",
                 "vs monolithic"});

    study::ScalingOptions mono;
    const auto [monoBips, monoLoop] = evaluate(mono);
    t.addRow({"monolithic (latency from Table 3)",
              util::TextTable::num(std::int64_t{monoLoop}) + " cycles",
              util::TextTable::num(monoBips, 3), "1.000"});

    for (const int stages : {2, 4, 8}) {
        study::ScalingOptions seg;
        seg.window.wakeupStages = stages;
        const auto [bips, loop] = evaluate(seg);
        t.addRow({"segmented, " + std::to_string(stages) + " stages",
                  util::TextTable::num(std::int64_t{loop}) + " cycle/stage",
                  util::TextTable::num(bips, 3),
                  util::TextTable::num(bips / monoBips, 3)});
    }

    study::ScalingOptions part;
    part.window.wakeupStages = 4;
    part.window.select = core::SelectModel::Partitioned;
    const auto [partBips, partLoop] = evaluate(part);
    (void)partLoop;
    t.addRow({"segmented 4 stages + partitioned select (Fig 12)",
              "1 cycle/stage", util::TextTable::num(partBips, 3),
              util::TextTable::num(partBips / monoBips, 3)});

    t.print(std::cout);
    std::printf("\nthe segmented designs keep dependent issue back to "
                "back, which a multi-cycle monolithic window cannot\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return windowDemo(argc, argv); });
}
