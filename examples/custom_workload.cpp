/**
 * @file
 * Custom-workload example: define your own statistical workload profile,
 * generate its instruction stream, and find its personal optimal
 * pipeline depth.  Shows the full profile surface of the API.
 *
 *   ./custom_workload [ilp=8] [mispredictable=0.5] [ws_kb=512]
 */

#include <cstdio>
#include <iostream>

#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "util/config.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"ilp", "mean dependence distance of the synthetic workload"},
    {"mispredictable", "fraction of branches that mispredict"},
    {"ws_kb", "working-set size in KB"},
    {"instructions", "measured instructions per sweep point"},
};

int
customWorkload(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);

    // Build a profile from three intuitive knobs.
    const double ilp = cfg.getDouble("ilp", 8.0);
    const double predictable = 1.0 - cfg.getDouble("mispredictable", 0.5);
    const std::uint64_t wsKb = cfg.getInt("ws_kb", 512);

    trace::BenchmarkProfile prof;
    prof.name = "custom";
    prof.cls = trace::BenchClass::Integer;
    prof.meanDepDistance = ilp;
    prof.minDepDistance = std::max(1.0, ilp / 2.0);
    prof.biasedBranchFraction = 0.8 * predictable;
    prof.patternBranchFraction = 0.2 * predictable;
    prof.correlatedBranchFraction = 0.0;
    prof.workingSetBytes = wsKb << 10;
    prof.seed = 1234;
    prof.validateOrThrow();

    std::printf("custom profile: mean dependence distance %.1f, %.0f%% "
                "predictable branch sites, %llu KB working set\n\n",
                prof.meanDepDistance, 100 * predictable,
                static_cast<unsigned long long>(wsKb));

    // Peek at the stream itself.
    trace::SyntheticTraceGenerator gen(prof);
    std::printf("first instructions of the stream:\n");
    for (int i = 0; i < 8; ++i)
        std::printf("  %s\n", gen.next().toString().c_str());

    // Find its optimal pipeline depth.
    study::RunSpec spec;
    spec.instructions = cfg.getInt("instructions", 60000);
    spec.warmup = spec.instructions / 8;
    spec.prewarm = 400000;

    std::printf("\nsweeping pipeline depth:\n");
    util::TextTable t;
    t.setHeader({"t_useful", "IPC", "BIPS"});
    double bestT = 0, best = 0;
    for (double u = 2; u <= 16; u += 1) {
        const auto clock = study::scaledClock(u);
        const auto r = runBenchmark(study::scaledCoreParams(u, {}), clock,
                                    prof, spec);
        if (r.bips > best) {
            best = r.bips;
            bestT = u;
        }
        t.addRow({util::TextTable::num(u, 0),
                  util::TextTable::num(r.sim.ipc(), 3),
                  util::TextTable::num(r.bips, 3)});
    }
    t.print(std::cout);
    std::printf("\nthis workload's optimal logic depth: %.0f FO4 per "
                "stage\n",
                bestT);
    std::printf("(more ILP or more predictable branches move the optimum "
                "deeper; the opposite moves it shallower)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(
        argc, argv, kKeys, [&] { return customWorkload(argc, argv); });
}
