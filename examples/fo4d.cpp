/**
 * @file
 * fo4d — the sweep daemon.  Listens on 127.0.0.1, accepts framed sweep
 * requests (see svc/protocol.hh), executes them FIFO through the
 * crash-safe checkpointed runner, and serves results, progress, cancel
 * and stats to fo4ctl (or any client of svc::Client).
 *
 *   ./fo4d [port=0] [jobs=1] [max_queue=8] [checkpoint_dir=]
 *          [cache_dir=] [cache_max_bytes=0] [tenant_quota=0] [verbose=1]
 *   ./fo4d worker coordinator_port=<n> [coordinator_host=] [name=]
 *                 [timeout_ms=] [cache_dir=] [cache_max_bytes=0]
 *
 * port=0 binds an ephemeral port; the bound port is printed on stdout
 * ("fo4d listening on 127.0.0.1:<port>") so scripts can scrape it.
 * SIGINT drains: the listener closes, queued jobs are cancelled, the
 * in-flight sweep stops cooperatively with its journal flushed (so a
 * resubmission after restart resumes), and the process exits 0.
 *
 * `worker` mode joins a fo4coord fleet instead of serving clients: the
 * process dials the coordinator, registers, and pulls cell leases until
 * SIGINT.  A worker that loses its coordinator reconnects with capped
 * backoff forever — start workers and coordinator in any order.
 */

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "svc/server.hh"
#include "svc/worker.hh"
#include "util/cancel.hh"
#include "util/config.hh"
#include "util/metrics.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"port", "TCP port to listen on; 0 picks an ephemeral port"},
    {"jobs", "worker threads per sweep (1 = serial, 0 = all cores)"},
    {"max_queue", "queued sweeps admitted before Overloaded refusals"},
    {"checkpoint_dir", "directory for per-sweep journals (empty = none)"},
    {"cache_dir", "persistent result store directory (empty = no cache)"},
    {"cache_max_bytes", "result store size cap in bytes (0 = unlimited)"},
    {"tenant_quota", "max queued sweeps per tenant (0 = unlimited)"},
    {"verbose", "print the metrics registry on exit"},
    {"coordinator_host", "worker mode: coordinator host (127.0.0.1)"},
    {"coordinator_port", "worker mode: coordinator port (required)"},
    {"name", "worker mode: name shown in `fo4ctl workers`"},
    {"timeout_ms", "worker mode: per-RPC deadline, milliseconds (> 0)"},
};

int
workerMain(const fo4::util::Config &cfg)
{
    using namespace fo4;
    svc::WorkerOptions options;
    options.host = cfg.getString("coordinator_host", "127.0.0.1");
    if (!cfg.has("coordinator_port")) {
        throw util::ConfigError(
            "worker mode needs coordinator_port=<port> (fo4coord "
            "prints it on startup)");
    }
    options.port = static_cast<std::uint16_t>(
        cfg.getPositiveInt("coordinator_port", 0));
    options.name = cfg.getString("name", "fo4d-worker");
    if (cfg.has("timeout_ms")) {
        const auto t =
            static_cast<int>(cfg.getPositiveInt("timeout_ms", 0));
        options.ioTimeoutMs = t;
        options.connectTimeoutMs = t;
    }
    options.cacheDir = cfg.getString("cache_dir", "");
    options.cacheMaxBytes =
        static_cast<std::uint64_t>(cfg.getInt("cache_max_bytes", 0));

    util::setMetricsEnabled(true);
    util::CancelToken cancel;
    util::installSigintCancel(cancel);

    svc::Worker worker(std::move(options));
    std::printf("fo4d worker dialing %s:%u as '%s'\n",
                cfg.getString("coordinator_host", "127.0.0.1").c_str(),
                static_cast<unsigned>(
                    cfg.getPositiveInt("coordinator_port", 0)),
                cfg.getString("name", "fo4d-worker").c_str());
    std::fflush(stdout);

    while (!cancel.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("fo4d worker draining: aborting the in-flight cell\n");
    worker.stop();
    worker.join();
    if (cfg.getBool("verbose", false))
        util::MetricsRegistry::global().dump(std::cout);
    std::printf("fo4d worker drained (%llu cells executed, %llu from "
                "cache)\n",
                static_cast<unsigned long long>(worker.cellsExecuted()),
                static_cast<unsigned long long>(worker.cellsFromCache()));
    return 0;
}

int
daemonMain(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);

    if (!cfg.positional().empty()) {
        const std::string &mode = cfg.positional().front();
        if (mode != "worker") {
            throw util::ConfigError("unknown mode '" + mode +
                                    "' (only `worker` is a mode; the "
                                    "default is to serve)");
        }
        return workerMain(cfg);
    }

    svc::ServerOptions options;
    options.port =
        static_cast<std::uint16_t>(cfg.getInt("port", 0));
    options.threads = static_cast<int>(cfg.getInt("jobs", 1));
    options.maxQueue =
        static_cast<std::size_t>(cfg.getPositiveInt("max_queue", 8));
    options.checkpointDir = cfg.getString("checkpoint_dir", "");
    // A missing checkpoint directory would otherwise fail every job at
    // journal creation; one level of mkdir covers the common case.
    if (!options.checkpointDir.empty())
        ::mkdir(options.checkpointDir.c_str(), 0777);
    options.cacheDir = cfg.getString("cache_dir", "");
    options.cacheMaxBytes =
        static_cast<std::uint64_t>(cfg.getInt("cache_max_bytes", 0));
    options.tenantQuota =
        static_cast<std::size_t>(cfg.getInt("tenant_quota", 0));

    // The Stats record reports the registry, so collection is on for
    // the daemon's whole lifetime.
    util::setMetricsEnabled(true);

    util::CancelToken cancel;
    util::installSigintCancel(cancel);

    svc::Server server(std::move(options));
    std::printf("fo4d listening on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout); // scripts scrape the port before any output

    while (!cancel.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("fo4d draining: refusing new work, cancelling queued "
                "jobs, flushing the running sweep's journal\n");
    server.stop();
    server.join();
    if (cfg.getBool("verbose", false))
        util::MetricsRegistry::global().dump(std::cout);
    std::printf("fo4d drained\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return daemonMain(argc, argv); });
}
