/**
 * @file
 * Quickstart: simulate one SPEC 2000-like benchmark on the Alpha
 * 21264-style out-of-order core, then on the same machine scaled to the
 * paper's optimal 6 FO4 clock, and compare.
 *
 *   ./quickstart [bench=164.gzip] [instructions=100000]
 */

#include <cstdio>

#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"bench", "SPEC 2000 profile to run (default 164.gzip)"},
    {"instructions", "measured instructions per configuration"},
};

int
quickstart(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const auto prof =
        trace::spec2000Profile(cfg.getString("bench", "164.gzip"));
    const std::uint64_t n = cfg.getInt("instructions", 100000);

    std::printf("benchmark: %s (%s)\n", prof.name.c_str(),
                trace::benchClassName(prof.cls));

    // 1. The native Alpha 21264 machine (17.4 FO4 clock at 180nm).
    {
        trace::SyntheticTraceGenerator gen(prof);
        auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                      "tournament");
        const auto r = core->run(gen, n, n / 10, 500000);
        std::printf("\nAlpha 21264 baseline:\n");
        std::printf("  IPC %.3f, mispredict rate %.1f%%, DL1 miss rate "
                    "%.1f%%\n",
                    r.ipc(), 100 * r.mispredictRate(),
                    100 * r.dl1MissRate());
    }

    // 2. The same microarchitecture scaled to 6 FO4 of useful logic per
    //    stage at 100nm — the paper's optimal integer clock.
    {
        const double tUseful = 6.0;
        const auto params = study::scaledCoreParams(tUseful, {});
        const auto clock = study::scaledClock(tUseful);
        trace::SyntheticTraceGenerator gen(prof);
        auto core = core::makeOooCore(params, "tournament");
        const auto r = core->run(gen, n, n / 10, 500000);
        std::printf("\nscaled to %.0f FO4 useful logic (period %.1f FO4, "
                    "%.2f GHz at 100nm):\n",
                    tUseful, clock.periodFo4(), clock.frequencyGhz());
        std::printf("  IPC %.3f  ->  %.3f BIPS\n", r.ipc(),
                    clock.bips(r.ipc()));
        std::printf("  pipeline: fetch %d, decode %d, rename %d, issue "
                    "window %d-cycle, regread %d; DL1 %d cycles\n",
                    params.fetchStages, params.decodeStages,
                    params.renameStages, params.issueLatency,
                    params.regReadStages, params.memLatencies.dl1);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return quickstart(argc, argv); });
}
