/**
 * @file
 * fo4coord — the fleet coordinator.  Speaks the same client protocol
 * as fo4d (submit/poll/fetch/cancel/stats via fo4ctl), but instead of
 * executing sweeps itself it shards their grid cells across registered
 * fo4d workers (`./fo4d worker coordinator_port=...`), re-dispatching
 * the cells of workers that die or stall, and finishing locally when
 * no live worker remains.  Results are byte-identical to a local run
 * no matter what the fleet does — see DESIGN.md §13.
 *
 *   ./fo4coord [port=0] [max_queue=8] [checkpoint_dir=]
 *              [cache_dir=] [cache_max_bytes=0] [tenant_quota=0]
 *              [heartbeat_ms=1000] [suspect_ms=3000] [dead_ms=10000]
 *              [lease_timeout_ms=60000] [local_fallback=1] [jobs=1]
 *              [verbose=1]
 *
 * port=0 binds an ephemeral port; the bound port is printed on stdout
 * ("fo4coord listening on 127.0.0.1:<port>") so scripts can scrape it.
 * SIGINT drains like fo4d: queued sweeps cancel, the running sweep
 * stops with its journal flushed, and the process exits 0.
 */

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "svc/coordinator.hh"
#include "util/cancel.hh"
#include "util/config.hh"
#include "util/metrics.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"port", "TCP port to listen on; 0 picks an ephemeral port"},
    {"max_queue", "queued sweeps admitted before Overloaded refusals"},
    {"checkpoint_dir", "directory for per-sweep journals (empty = none)"},
    {"cache_dir", "persistent result store directory (empty = no cache)"},
    {"cache_max_bytes", "result store size cap in bytes (0 = unlimited)"},
    {"tenant_quota", "max queued sweeps per tenant (0 = unlimited)"},
    {"heartbeat_ms", "heartbeat cadence told to workers"},
    {"suspect_ms", "silence before a worker turns Suspect"},
    {"dead_ms", "silence before a worker is declared Dead"},
    {"lease_timeout_ms", "cell lease lifetime before re-dispatch"},
    {"local_fallback", "finish cells locally when no worker is live"},
    {"jobs", "local-fallback threads (1 = serial, 0 = all cores)"},
    {"verbose", "print the metrics registry on exit"},
};

int
coordMain(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);

    svc::CoordinatorOptions options;
    options.port = static_cast<std::uint16_t>(cfg.getInt("port", 0));
    options.maxQueue =
        static_cast<std::size_t>(cfg.getPositiveInt("max_queue", 8));
    options.checkpointDir = cfg.getString("checkpoint_dir", "");
    if (!options.checkpointDir.empty())
        ::mkdir(options.checkpointDir.c_str(), 0777);
    options.cacheDir = cfg.getString("cache_dir", "");
    options.cacheMaxBytes =
        static_cast<std::uint64_t>(cfg.getInt("cache_max_bytes", 0));
    options.tenantQuota =
        static_cast<std::size_t>(cfg.getInt("tenant_quota", 0));

    options.detector.heartbeatMs = static_cast<std::uint64_t>(
        cfg.getPositiveInt("heartbeat_ms", 1000));
    options.detector.suspectAfterMs = static_cast<std::uint64_t>(
        cfg.getPositiveInt("suspect_ms", 3000));
    options.detector.deadAfterMs = static_cast<std::uint64_t>(
        cfg.getPositiveInt("dead_ms", 10000));
    if (options.detector.suspectAfterMs > options.detector.deadAfterMs) {
        throw util::ConfigError(
            "suspect_ms must not exceed dead_ms (a worker turns "
            "Suspect before it is declared Dead)");
    }
    options.leaseTimeoutMs = static_cast<std::uint64_t>(
        cfg.getPositiveInt("lease_timeout_ms", 60000));
    options.localFallback = cfg.getBool("local_fallback", true);
    options.localThreads = static_cast<int>(cfg.getInt("jobs", 1));

    util::setMetricsEnabled(true);
    util::CancelToken cancel;
    util::installSigintCancel(cancel);

    svc::Coordinator coordinator(std::move(options));
    std::printf("fo4coord listening on 127.0.0.1:%u\n",
                coordinator.port());
    std::fflush(stdout); // scripts scrape the port before any output

    while (!cancel.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("fo4coord draining: refusing new work, cancelling "
                "queued sweeps, flushing the running sweep's journal\n");
    coordinator.stop();
    coordinator.join();
    if (cfg.getBool("verbose", false))
        util::MetricsRegistry::global().dump(std::cout);
    std::printf("fo4coord drained\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return coordMain(argc, argv); });
}
