/**
 * @file
 * Pipeline-depth explorer: sweep the useful logic per stage for a chosen
 * benchmark (or class) and print the BIPS curve with its optimum — the
 * core experiment of the paper, exposed as a command-line tool.
 *
 *   ./pipeline_explorer [bench=176.gcc | class=integer] [overhead=1.8]
 *                       [model=ooo|inorder] [instructions=80000]
 *                       [checkpoint=/path/run.journal] [resume=1]
 *
 * With checkpoint= every finished grid cell is journaled; an interrupted
 * sweep (Ctrl-C exits with status 130 after flushing) resumes from the
 * journal on the next run with the same arguments.  resume=0 discards an
 * existing journal and starts over.
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "study/checkpoint.hh"
#include "study/montecarlo.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"bench", "SPEC 2000 profile to sweep (default 176.gcc)"},
    {"class", "sweep a whole class: integer | vfp | nvfp | all"},
    {"overhead", "clocking overhead per stage, FO4"},
    {"model", "core model: ooo | inorder"},
    {"instructions", "measured instructions per benchmark"},
    {"prewarm", "instructions streamed through caches/predictor first"},
    {"jobs", "worker threads (1 = serial, 0 = all cores)"},
    {"checkpoint", "journal file; an interrupted sweep resumes from it"},
    {"resume", "resume=0 discards an existing journal and starts over"},
    {"mc_samples", "Monte Carlo dice per sweep point (0 = deterministic)"},
    {"mc_dist", "per-stage draw family: normal | lognormal"},
    {"mc_sigma_latch", "per-stage latch overhead sigma"},
    {"mc_sigma_skew", "per-stage clock skew sigma"},
    {"mc_sigma_jitter", "per-stage clock jitter sigma"},
    {"mc_sigma_die", "die-level systematic corner sigma"},
    {"mc_seed", "root seed of the sampling streams"},
    {"verbose", "print cache and metrics diagnostics"},
    {"stats", "write per-point stall-attribution CSV here"},
    {"trace", "write a Chrome pipeline trace of one benchmark here"},
    {"trace_start", "first cycle the trace records"},
    {"trace_cycles", "length of the traced cycle window"},
};

std::vector<fo4::trace::BenchmarkProfile>
pickProfiles(const fo4::util::Config &cfg)
{
    using namespace fo4::trace;
    if (cfg.has("class")) {
        const std::string cls = cfg.getString("class", "integer");
        if (cls == "integer")
            return spec2000Profiles(BenchClass::Integer);
        if (cls == "vector-fp" || cls == "vfp")
            return spec2000Profiles(BenchClass::VectorFp);
        if (cls == "non-vector-fp" || cls == "nvfp")
            return spec2000Profiles(BenchClass::NonVectorFp);
        if (cls == "all")
            return spec2000Profiles();
        throw fo4::util::ConfigError(fo4::util::strprintf(
            "unknown class '%s' (use integer, vfp, nvfp or all)",
            cls.c_str()));
    }
    return {spec2000Profile(cfg.getString("bench", "176.gcc"))};
}

int
explore(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const auto obs = bench::observabilityFromArgs(argc, argv);
    const auto profiles = pickProfiles(cfg);
    const double overhead = cfg.getDouble("overhead", 1.8);
    const int jobs = static_cast<int>(cfg.getPositiveInt("jobs", 1));
    const std::string checkpoint = cfg.getString("checkpoint", "");
    if (!checkpoint.empty() && !cfg.getBool("resume", true))
        std::remove(checkpoint.c_str());

    study::RunSpec spec;
    spec.instructions = cfg.getInt("instructions", 80000);
    spec.warmup = spec.instructions / 8;
    spec.prewarm = cfg.getInt("prewarm", 500000);
    spec.model = cfg.getString("model", "ooo") == "inorder"
                     ? study::CoreModel::InOrder
                     : study::CoreModel::OutOfOrder;

    // Ctrl-C cancels cooperatively: drain, flush the journal, exit 130.
    util::CancelToken cancel;
    util::installSigintCancel(cancel);

    std::vector<double> ts;
    for (double u = 2; u <= 16; u += 1)
        ts.push_back(u);
    study::SweepOptions sweep;
    sweep.overhead = tech::OverheadModel::uniform(overhead);

    // mc_samples= switches the sweep to the Monte Carlo engine: every
    // die draws per-stage overhead around the nominal, and the curve
    // reported is the yield-weighted mean with its confidence band.
    const int mcSamples = static_cast<int>(cfg.getInt("mc_samples", 0));
    if (mcSamples > 0) {
        study::McOptions mopts;
        mopts.sweep = sweep;
        mopts.variation.dist =
            study::mcDistFromName(cfg.getString("mc_dist", "normal"));
        // The explorer's nominal is uniform(overhead) — the skew and
        // jitter components decompose to zero — so the default
        // variation rides the latch component; normal sigmas on a
        // zero-nominal component would reject every draw.
        mopts.variation.sigmaLatch = cfg.getDouble("mc_sigma_latch", 0.05);
        mopts.variation.sigmaSkew = cfg.getDouble("mc_sigma_skew", 0.0);
        mopts.variation.sigmaJitter =
            cfg.getDouble("mc_sigma_jitter", 0.0);
        mopts.variation.sigmaDie = cfg.getDouble("mc_sigma_die", 0.05);
        mopts.variation.seed =
            static_cast<std::uint64_t>(cfg.getInt("mc_seed", 0));
        mopts.variation.samples = mcSamples;
        mopts.journalPath = checkpoint;
        mopts.threads = jobs;
        mopts.cancel = &cancel;
        study::MonteCarloRunner mc(mopts);

        std::printf("Monte Carlo sweep: t_useful = 2..16 FO4, overhead "
                    "%.1f FO4 nominal, %d dice/point (%s), %zu "
                    "benchmark(s), %d worker thread(s)\n\n",
                    overhead, mcSamples,
                    study::mcDistName(mopts.variation.dist),
                    profiles.size(), mc.threads());
        const study::McSweepResult result = mc.run(ts, profiles, spec);

        util::TextTable mt;
        mt.setHeader({"t_useful", "period(FO4)", "stages", "mean BIPS",
                      "p5", "p95", "yield"});
        for (const auto &pt : result.points) {
            mt.addRow({util::TextTable::num(pt.tUseful, 0),
                       util::TextTable::num(
                           pt.nominalClock.periodFo4(), 1),
                       util::strprintf("%d", pt.stages),
                       util::TextTable::num(pt.all.meanBips, 3),
                       util::TextTable::num(pt.all.p5Bips, 3),
                       util::TextTable::num(pt.all.p95Bips, 3),
                       util::TextTable::num(pt.yield, 3)});
        }
        mt.print(std::cout);
        std::printf("\nyield-weighted optimum: %.0f FO4 useful logic "
                    "per stage\n",
                    result.optimumTUseful());
        bench::printLatencyCacheStats(cfg.getBool("verbose", false));
        bench::printMetricsRegistry(cfg.getBool("verbose", false));
        return 0;
    }

    study::CheckpointOptions copts;
    copts.journalPath = checkpoint;
    copts.threads = jobs;
    copts.cancel = &cancel;
    study::CheckpointedRunner runner(std::move(copts));

    std::printf("sweeping t_useful = 2..16 FO4, overhead %.1f FO4, %zu "
                "benchmark(s), %s core, %d worker thread(s)\n\n",
                overhead, profiles.size(),
                spec.model == study::CoreModel::InOrder ? "in-order"
                                                        : "out-of-order",
                runner.threads());

    const auto points = runner.sweepScaling(ts, sweep, profiles, spec);
    if (runner.report().resumed) {
        std::printf("resumed from checkpoint: %zu of %zu cells replayed\n",
                    runner.report().replayedCells,
                    runner.report().totalCells);
    }

    util::TextTable t;
    t.setHeader({"t_useful", "period(FO4)", "GHz", "hmean IPC",
                 "hmean BIPS"});
    double bestT = 0, bestBips = 0;
    for (const auto &point : points) {
        const double bips = point.suite.harmonicBipsAll();
        if (bips > bestBips) {
            bestBips = bips;
            bestT = point.tUseful;
        }
        t.addRow({util::TextTable::num(point.tUseful, 0),
                  util::TextTable::num(point.clock.periodFo4(), 1),
                  util::TextTable::num(point.clock.frequencyGhz(), 2),
                  util::TextTable::num(point.suite.harmonicIpcAll(), 3),
                  util::TextTable::num(bips, 3)});
    }
    t.print(std::cout);
    std::printf("\noptimum: %.0f FO4 useful logic per stage (%.3f BIPS, "
                "clock period %.1f FO4)\n",
                bestT, bestBips, bestT + overhead);

    // stats=: stall attribution for every sweep point; trace=: pipeline
    // timeline of the first benchmark at the sweep's own optimum.
    if (obs.wantsStats())
        bench::writeStats(obs.statsPath, bench::sweepStatsRows(points));
    bench::maybeWriteTrace(obs, study::scaledCoreParams(bestT),
                           study::scaledClock(
                               bestT, tech::OverheadModel::uniform(overhead)),
                           study::BenchJob::fromProfile(profiles.front()),
                           spec);
    bench::printLatencyCacheStats(cfg.getBool("verbose", false));
    bench::printMetricsRegistry(cfg.getBool("verbose", false));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return explore(argc, argv); });
}
