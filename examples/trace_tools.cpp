/**
 * @file
 * Trace tooling: record a synthetic benchmark to a binary trace file,
 * inspect its contents, and replay it through the core — demonstrating
 * how external traces can be plugged into the simulator.
 *
 *   ./trace_tools record bench=164.gzip count=100000 file=/tmp/gzip.fo4t
 *   ./trace_tools info   file=/tmp/gzip.fo4t
 *   ./trace_tools replay file=/tmp/gzip.fo4t instructions=50000
 */

#include <cstdio>
#include <map>

#include "core/core.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"file", "trace file to record to / replay from"},
    {"bench", "SPEC 2000 profile to record"},
    {"count", "instructions to record"},
    {"instructions", "instructions to simulate when replaying"},
};

int
traceTools(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const std::string mode =
        cfg.positional().empty() ? "record" : cfg.positional()[0];
    const std::string path = cfg.getString("file", "/tmp/fo4pipe.fo4t");

    if (mode == "record") {
        const auto prof =
            trace::spec2000Profile(cfg.getString("bench", "164.gzip"));
        const std::uint64_t count = cfg.getInt("count", 100000);
        trace::SyntheticTraceGenerator gen(prof);
        trace::recordTrace(path, gen, count);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(count),
                    prof.name.c_str(), path.c_str());
        return 0;
    }

    if (mode == "info") {
        trace::FileTrace replay(path);
        std::map<isa::OpClass, std::uint64_t> mix;
        std::uint64_t branches = 0, taken = 0;
        const std::size_t n = replay.recordedInstructions();
        for (std::size_t i = 0; i < n; ++i) {
            const auto op = replay.next();
            ++mix[op.cls];
            if (op.isBranch()) {
                ++branches;
                taken += op.taken;
            }
        }
        std::printf("%s: %zu instructions\n", path.c_str(), n);
        for (const auto &[cls, count] : mix)
            std::printf("  %-7s %8llu (%.1f%%)\n", opClassName(cls),
                        static_cast<unsigned long long>(count),
                        100.0 * count / n);
        if (branches)
            std::printf("  taken-branch fraction: %.1f%%\n",
                        100.0 * taken / branches);
        return 0;
    }

    if (mode == "replay") {
        trace::FileTrace replay(path);
        auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                      "tournament");
        const std::uint64_t n = cfg.getInt("instructions", 50000);
        const auto r = core->run(replay, n);
        std::printf("replayed %llu instructions from %s\n",
                    static_cast<unsigned long long>(r.instructions),
                    path.c_str());
        std::printf("  IPC %.3f, mispredict rate %.1f%%, DL1 miss rate "
                    "%.1f%%\n",
                    r.ipc(), 100 * r.mispredictRate(),
                    100 * r.dl1MissRate());
        return 0;
    }

    throw util::ConfigError(util::strprintf(
        "unknown mode '%s' (use record|info|replay)", mode.c_str()));
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return traceTools(argc, argv); });
}
