/**
 * @file
 * Resilient-suite demo: run a benchmark suite in which two jobs are
 * deliberately broken — one replays a corrupted trace file, one hangs
 * and trips the simulation watchdog — and show that the remaining
 * benchmarks still complete and aggregate.  Every failure is reported
 * with its typed error code; the deadlock comes with the watchdog's
 * pipeline-state dump.
 *
 *   ./resilient_suite [instructions=40000] [dir=/tmp] [jobs=4]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "study/checkpoint.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"instructions", "measured instructions per benchmark"},
    {"dir", "directory for the deliberately corrupted trace file"},
    {"jobs", "worker threads (1 = serial, 0 = all cores)"},
    {"verbose", "print cache and metrics diagnostics"},
    {"stats", "write the per-benchmark stats CSV here"},
    {"trace", "write a Chrome pipeline trace of one benchmark here"},
    {"trace_start", "first cycle the trace records"},
    {"trace_cycles", "length of the traced cycle window"},
};

/**
 * Record a short trace, then overwrite one record's op-class byte with
 * a value no ISA defines — the kind of damage a bad disk or truncated
 * copy produces.
 */
std::string
makeCorruptTrace(const std::string &dir)
{
    using namespace fo4;
    const std::string path = dir + "/resilient_suite_corrupt.fo4t";
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 4096);

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    if (!f) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            "cannot reopen " + path + " for corruption");
    }
    // Record layout: 16-byte header, 32-byte records, cls at offset 30.
    std::fseek(f, 16 + 32 * 100 + 30, SEEK_SET);
    std::fputc(0xEE, f);
    std::fclose(f);
    return path;
}

int
resilientSuite(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    const auto obs = bench::observabilityFromArgs(argc, argv);

    study::RunSpec spec;
    spec.instructions = cfg.getInt("instructions", 40000);
    spec.warmup = spec.instructions / 8;
    spec.prewarm = 200000;

    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);

    // Four healthy benchmarks...
    std::vector<study::BenchJob> jobs;
    for (const char *name : {"176.gcc", "181.mcf", "197.parser",
                             "256.bzip2"}) {
        jobs.push_back(study::BenchJob::fromProfile(
            trace::spec2000Profile(name)));
    }

    // ...one replaying a trace file with a damaged record...
    const std::string dir = cfg.getString("dir", "/tmp");
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt-trace", trace::BenchClass::Integer,
        makeCorruptTrace(dir)));

    // ...and one that makes no forward progress within its cycle
    // budget, so the watchdog fires and captures the pipeline state.
    auto hung = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    hung.name = "hung-config";
    hung.cycleLimit = 10; // far below any real completion time
    jobs.push_back(hung);

    // Ctrl-C aborts the suite cooperatively (exit 130) instead of
    // killing the process mid-write.
    util::CancelToken cancel;
    util::installSigintCancel(cancel);

    // Fault isolation holds under parallel execution too: a deadlocked
    // or corrupt job fails alone no matter which worker ran it.  The
    // checkpointed runner (journalless here) threads the cancel token
    // down to every simulation's per-cycle check.
    study::CheckpointOptions copts;
    copts.threads = static_cast<int>(cfg.getPositiveInt("jobs", 1));
    copts.cancel = &cancel;
    study::CheckpointedRunner runner(std::move(copts));
    std::printf("running %zu benchmarks (2 sabotaged on purpose) on %d "
                "worker thread(s)\n\n",
                jobs.size(), runner.threads());
    const auto suite =
        runner.runGrid({study::GridPoint{params, clock}}, jobs, spec)
            .front();
    study::printSuite(std::cout, suite);

    // The suite ran to the end; the broken jobs are data, not a crash.
    const auto failures = suite.failures();
    if (failures.size() != 2 ||
        suite.succeeded() != jobs.size() - failures.size()) {
        std::fprintf(stderr, "unexpected failure pattern\n");
        return 1;
    }
    std::printf("\nsuite survived both injected faults; %zu of %zu "
                "benchmarks aggregated\n",
                suite.succeeded(), suite.benchmarks.size());

    // stats=: the CSV carries the failed rows too, with their error
    // codes in the status column; trace=: timeline of a healthy job.
    if (obs.wantsStats()) {
        auto rows = std::vector<std::vector<std::string>>{
            fo4::bench::statsHeader("grid_point")};
        for (auto &row : fo4::bench::statsRows("6fo4", suite))
            rows.push_back(std::move(row));
        fo4::bench::writeStats(obs.statsPath, rows);
    }
    fo4::bench::maybeWriteTrace(obs, params, clock, jobs.front(), spec);
    fo4::bench::printLatencyCacheStats(cfg.getBool("verbose", false));
    fo4::bench::printMetricsRegistry(cfg.getBool("verbose", false));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(
        argc, argv, kKeys, [&] { return resilientSuite(argc, argv); });
}
