/**
 * @file
 * fo4ctl — command-line client of the sweep service.
 *
 *   ./fo4ctl submit  [host= port=] [sweep keys] [wait=1 out=file]
 *   ./fo4ctl poll    id=<n> [host= port=]
 *   ./fo4ctl fetch   id=<n> [out=file]
 *   ./fo4ctl cancel  id=<n>
 *   ./fo4ctl stats
 *   ./fo4ctl cache
 *   ./fo4ctl workers
 *   ./fo4ctl local   [sweep keys] [jobs=n] [out=file]
 *
 * Sweep keys: bench= (comma list of SPEC 2000 profile names), model=,
 * instructions=, warmup=, prewarm=, cycle_limit=, overhead=, t_useful=
 * (comma list of FO4 depths), tenant= (admission-quota accounting name;
 * deliberately NOT part of the result identity — see DESIGN.md §15).
 *
 * `cache` summarises the daemon's persistent result store: size on
 * disk, entry count, and lifetime hit rate (from the svc.cache.hit and
 * svc.cache.miss counters).  A daemon running without cache_dir=
 * reports an empty store and no traffic.
 *
 * `local` runs the identical request in-process through the same
 * svc::runSweep code path the daemon uses — `cmp` of a fetched result
 * against a local one is the service's byte-identity check (the CI
 * loopback smoke job does exactly that).  `workers` asks a coordinator
 * for its fleet roster.
 *
 * Exit codes follow sysexits where the failure is actionable: 75
 * (EX_TEMPFAIL) for an Overloaded refusal — retry later; 69
 * (EX_UNAVAILABLE) for NotReady; 66 (EX_NOINPUT) for NotFound; 74
 * (EX_IOERR) for transport failure after reconnect attempts; 76
 * (EX_PROTOCOL) for an untrustworthy frame; 130 for Ctrl-C; 1 for
 * everything else.  `timeout_ms=` bounds every round trip (values <= 0
 * are refused).
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "svc/client.hh"
#include "svc/sweep.hh"
#include "util/cancel.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace
{

const std::vector<fo4::util::KeyDoc> kKeys = {
    {"host", "daemon host (default 127.0.0.1)"},
    {"port", "daemon port (required for remote commands)"},
    {"timeout_ms", "per-round-trip deadline, milliseconds (> 0)"},
    {"id", "job id (poll / fetch / cancel)"},
    {"out", "write fetched result bytes to this file (default stdout)"},
    {"wait", "submit only: poll until terminal, then fetch"},
    {"jobs", "local only: worker threads (1 = serial, 0 = all cores)"},
    {"bench", "comma list of SPEC 2000 profile names"},
    {"model", "core model: ooo | inorder"},
    {"instructions", "measured instructions per benchmark"},
    {"warmup", "instructions simulated but discarded first"},
    {"prewarm", "instructions streamed through caches/predictor first"},
    {"cycle_limit", "watchdog budget in cycles (0 = core default)"},
    {"overhead", "clocking overhead per stage, FO4"},
    {"t_useful", "comma list of useful FO4 depths to sweep"},
    {"tenant", "tenant name for per-tenant admission quotas"},
    {"mc_samples", "Monte Carlo dice per sweep point (0 = deterministic)"},
    {"mc_dist", "per-stage draw family: normal | lognormal"},
    {"mc_sigma_latch", "per-stage latch overhead sigma"},
    {"mc_sigma_skew", "per-stage clock skew sigma"},
    {"mc_sigma_jitter", "per-stage clock jitter sigma"},
    {"mc_sigma_die", "die-level systematic corner sigma"},
    {"mc_seed", "root seed of the sampling streams"},
};

std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        auto comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            items.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

fo4::svc::SweepRequest
requestFromConfig(const fo4::util::Config &cfg)
{
    using namespace fo4;
    svc::SweepRequest request;
    request.model = cfg.getString("model", "ooo");
    request.instructions =
        static_cast<std::uint64_t>(cfg.getPositiveInt("instructions",
                                                      40000));
    request.warmup = static_cast<std::uint64_t>(
        cfg.getInt("warmup", static_cast<std::int64_t>(
                                 request.instructions / 8)));
    request.prewarm =
        static_cast<std::uint64_t>(cfg.getInt("prewarm", 200000));
    request.cycleLimit =
        static_cast<std::uint64_t>(cfg.getInt("cycle_limit", 0));
    request.overheadFo4 = cfg.getDouble("overhead", 1.8);
    request.tenant = cfg.getString("tenant", "");
    request.mcSamples =
        static_cast<std::uint64_t>(cfg.getInt("mc_samples", 0));
    request.mcDist = cfg.getString("mc_dist", "normal");
    request.mcSigmaLatch = cfg.getDouble("mc_sigma_latch", 0.0);
    request.mcSigmaSkew = cfg.getDouble("mc_sigma_skew", 0.0);
    request.mcSigmaJitter = cfg.getDouble("mc_sigma_jitter", 0.0);
    request.mcSigmaDie = cfg.getDouble("mc_sigma_die", 0.0);
    request.mcSeed = static_cast<std::uint64_t>(cfg.getInt("mc_seed", 0));

    for (const auto &field :
         splitCommaList(cfg.getString("t_useful", "8,6"))) {
        char *end = nullptr;
        const double v = std::strtod(field.c_str(), &end);
        if (end == field.c_str() || *end != '\0') {
            throw util::ConfigError("t_useful entry '" + field +
                                    "' is not a number");
        }
        request.tUseful.push_back(v);
    }

    for (const auto &name :
         splitCommaList(cfg.getString("bench", "164.gzip,181.mcf"))) {
        svc::WireJob job;
        job.name = name; // class resolved server-side from the profile
        request.jobs.push_back(std::move(job));
    }
    return request;
}

void
writeResults(const fo4::util::Config &cfg, const std::string &bytes)
{
    const std::string out = cfg.getString("out", "");
    if (out.empty()) {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(out.c_str(), "wb");
    if (!f) {
        throw fo4::util::SvcError(fo4::util::ErrorCode::JournalIo,
                                  "cannot open " + out + " for writing");
    }
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s\n", bytes.size(), out.c_str());
}

void
printStatus(const fo4::svc::JobStatusInfo &info)
{
    std::printf("job %llu: %s",
                static_cast<unsigned long long>(info.id),
                fo4::svc::jobStateName(info.state));
    if (info.state == fo4::svc::JobState::Queued) {
        std::printf(" (position %llu)",
                    static_cast<unsigned long long>(info.queuePosition));
    }
    std::printf(" — %llu/%llu cells started",
                static_cast<unsigned long long>(info.cellsStarted),
                static_cast<unsigned long long>(info.cellsTotal));
    if (info.state == fo4::svc::JobState::Failed) {
        std::printf(" [%s] %s",
                    fo4::util::errorCodeName(info.errorCode),
                    info.errorMessage.c_str());
    }
    std::printf("\n");
}

std::uint64_t
requiredId(const fo4::util::Config &cfg)
{
    if (!cfg.has("id"))
        throw fo4::util::ConfigError("this command needs id=<job id>");
    return static_cast<std::uint64_t>(cfg.getPositiveInt("id", 0));
}

fo4::svc::Client
connectFromConfig(const fo4::util::Config &cfg)
{
    const std::string host = cfg.getString("host", "127.0.0.1");
    if (!cfg.has("port")) {
        throw fo4::util::ConfigError(
            "remote commands need port=<daemon port> (fo4d prints it "
            "on startup)");
    }
    const auto port =
        static_cast<std::uint16_t>(cfg.getPositiveInt("port", 0));
    fo4::svc::Client::Options options;
    // getPositiveInt refuses timeout_ms=0 and negatives outright — a
    // zero deadline would mean "fail instantly", never what's wanted.
    if (cfg.has("timeout_ms")) {
        const auto t =
            static_cast<int>(cfg.getPositiveInt("timeout_ms", 0));
        options.ioTimeoutMs = t;
        options.connectTimeoutMs = t;
    }
    return fo4::svc::Client(host, port, options);
}

/** sysexits-style mapping of the remote/transport verdicts a script
 *  wants to branch on; anything unmapped keeps runTopLevel's generic
 *  exit 1. */
std::optional<int>
exitCodeFor(fo4::util::ErrorCode code)
{
    using fo4::util::ErrorCode;
    switch (code) {
    case ErrorCode::Overloaded:
        return 75; // EX_TEMPFAIL: queue full, retry later
    case ErrorCode::NotReady:
        return 69; // EX_UNAVAILABLE: job still running
    case ErrorCode::NotFound:
        return 66; // EX_NOINPUT: no such job / worker
    case ErrorCode::NetIo:
        return 74; // EX_IOERR: transport failed even after reconnects
    case ErrorCode::Protocol:
        return 76; // EX_PROTOCOL: untrustworthy frame
    default:
        return std::nullopt;
    }
}

int remoteMain(const fo4::util::Config &cfg,
               const std::string &command);

int
ctlMain(int argc, char **argv)
{
    using namespace fo4;
    const auto cfg = util::Config::fromArgs(argc, argv);
    cfg.checkKnown(kKeys);
    if (cfg.positional().empty()) {
        throw util::ConfigError(
            "usage: fo4ctl <submit|poll|fetch|cancel|stats|cache"
            "|workers|local> [key=value ...] (--help lists the keys)");
    }
    const std::string command = cfg.positional().front();

    if (command == "local") {
        // The daemon's exact execution path, in-process: encode/decode
        // the request first so local results prove the *wire* form of
        // the sweep is what the daemon would run.
        const svc::SweepRequest request = svc::SweepRequest::decode(
            requestFromConfig(cfg).encode());
        util::CancelToken cancel;
        util::installSigintCancel(cancel);
        const svc::SweepPlan plan = svc::planSweep(request);
        writeResults(cfg, svc::runSweep(
                              plan,
                              static_cast<int>(cfg.getInt("jobs", 1)),
                              "", &cancel, {}));
        return 0;
    }

    if (command != "submit" && command != "poll" && command != "fetch" &&
        command != "cancel" && command != "stats" &&
        command != "cache" && command != "workers") {
        throw util::ConfigError("unknown command '" + command +
                                "' (want submit, poll, fetch, cancel, "
                                "stats, cache, workers or local)");
    }
    try {
        return remoteMain(cfg, command);
    } catch (const util::SvcError &e) {
        if (const auto code = exitCodeFor(e.code())) {
            std::fprintf(stderr, "error [%s]: %s\n",
                         util::errorCodeName(e.code()), e.what());
            return *code;
        }
        throw; // runTopLevel prints it and exits 1
    }
}

int
remoteMain(const fo4::util::Config &cfg, const std::string &command)
{
    using namespace fo4;
    svc::Client client = connectFromConfig(cfg);
    if (command == "submit") {
        const auto [id, cells] =
            client.submit(requestFromConfig(cfg));
        std::printf("submitted job %llu (%llu grid cells)\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(cells));
        if (cfg.getBool("wait", false)) {
            client.waitUntilDone(id, 200, printStatus);
            writeResults(cfg, client.fetchResults(id));
        }
        return 0;
    }
    if (command == "poll") {
        printStatus(client.poll(requiredId(cfg)));
        return 0;
    }
    if (command == "fetch") {
        writeResults(cfg, client.fetchResults(requiredId(cfg)));
        return 0;
    }
    if (command == "cancel") {
        printStatus(client.cancel(requiredId(cfg)));
        return 0;
    }
    if (command == "workers") {
        const auto fleet = client.workers();
        if (fleet.empty()) {
            std::printf("no workers registered\n");
            return 0;
        }
        std::printf("%-6s %-20s %-8s %-7s %-10s %s\n", "id", "name",
                    "state", "leases", "completed", "last-seen");
        for (const auto &w : fleet) {
            std::printf("%-6llu %-20s %-8s %-7llu %-10llu %llums ago\n",
                        static_cast<unsigned long long>(w.id),
                        w.name.c_str(), svc::workerStateName(w.state),
                        static_cast<unsigned long long>(w.activeLeases),
                        static_cast<unsigned long long>(
                            w.cellsCompleted),
                        static_cast<unsigned long long>(
                            w.heartbeatAgeMs));
        }
        return 0;
    }
    if (command == "stats") {
        const svc::StatsSnapshot s = client.stats();
        std::printf("queue: %llu/%llu queued, %llu running "
                    "(%llu/%llu cells started)\n",
                    static_cast<unsigned long long>(s.queueDepth),
                    static_cast<unsigned long long>(s.maxQueue),
                    static_cast<unsigned long long>(s.runningJobs),
                    static_cast<unsigned long long>(
                        s.runningCellsStarted),
                    static_cast<unsigned long long>(
                        s.runningCellsTotal));
        std::printf("lifetime: %llu submitted, %llu rejected, "
                    "%llu completed, %llu failed, %llu cancelled\n",
                    static_cast<unsigned long long>(s.submitted),
                    static_cast<unsigned long long>(s.rejected),
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(s.cancelled));
        std::printf("sweep latency: %llu samples, mean log2-bucket "
                    "%.2f\n",
                    static_cast<unsigned long long>(s.latencySamples),
                    s.latencyMeanMs);
        std::printf("cache: %llu bytes in %llu entries\n",
                    static_cast<unsigned long long>(s.cacheBytes),
                    static_cast<unsigned long long>(s.cacheEntries));
        // The counter dump covers svc.cache.* (hit/miss/evict/corrupt/
        // disk_error/dedup), svc.shed.* and the per-tenant
        // svc.tenant.<name>.{submitted,rejected} accounting.
        for (const auto &[name, value] : s.counters) {
            std::printf("  %-32s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
        }
        return 0;
    }
    if (command == "cache") {
        const svc::StatsSnapshot s = client.stats();
        std::uint64_t hits = 0, misses = 0;
        for (const auto &[name, value] : s.counters) {
            if (name == "svc.cache.hit")
                hits = value;
            else if (name == "svc.cache.miss")
                misses = value;
        }
        std::printf("store: %llu bytes in %llu entries\n",
                    static_cast<unsigned long long>(s.cacheBytes),
                    static_cast<unsigned long long>(s.cacheEntries));
        const std::uint64_t lookups = hits + misses;
        if (lookups == 0) {
            std::printf("hit rate: no lookups yet\n");
        } else {
            std::printf("hit rate: %.1f%% (%llu hits / %llu lookups)\n",
                        100.0 * static_cast<double>(hits) /
                            static_cast<double>(lookups),
                        static_cast<unsigned long long>(hits),
                        static_cast<unsigned long long>(lookups));
        }
        return 0;
    }
    throw util::ConfigError("unknown command '" + command +
                            "' (want submit, poll, fetch, cancel, "
                            "stats, cache, workers or local)");
}

} // namespace

int
main(int argc, char **argv)
{
    return fo4::util::runTopLevel(argc, argv, kKeys,
                                  [&] { return ctlMain(argc, argv); });
}
