# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_random[1]_include.cmake")
include("/root/repo/build/tests/test_util_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util_containers[1]_include.cmake")
include("/root/repo/build/tests/test_util_text[1]_include.cmake")
include("/root/repo/build/tests/test_tech_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_tech_latch[1]_include.cmake")
include("/root/repo/build/tests/test_tech_clocking[1]_include.cmake")
include("/root/repo/build/tests/test_cacti[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_bp[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_core_window[1]_include.cmake")
include("/root/repo/build/tests/test_core_ooo[1]_include.cmake")
include("/root/repo/build/tests/test_core_inorder[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core_window_fuzz[1]_include.cmake")
