# Empty dependencies file for test_core_window_fuzz.
# This may be replaced when dependencies are built.
