# Empty compiler generated dependencies file for test_tech_latch.
# This may be replaced when dependencies are built.
