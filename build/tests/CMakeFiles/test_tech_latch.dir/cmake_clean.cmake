file(REMOVE_RECURSE
  "CMakeFiles/test_tech_latch.dir/test_tech_latch.cc.o"
  "CMakeFiles/test_tech_latch.dir/test_tech_latch.cc.o.d"
  "test_tech_latch"
  "test_tech_latch.pdb"
  "test_tech_latch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_latch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
