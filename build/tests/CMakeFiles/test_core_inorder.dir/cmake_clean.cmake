file(REMOVE_RECURSE
  "CMakeFiles/test_core_inorder.dir/test_core_inorder.cc.o"
  "CMakeFiles/test_core_inorder.dir/test_core_inorder.cc.o.d"
  "test_core_inorder"
  "test_core_inorder.pdb"
  "test_core_inorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
