# Empty dependencies file for test_core_inorder.
# This may be replaced when dependencies are built.
