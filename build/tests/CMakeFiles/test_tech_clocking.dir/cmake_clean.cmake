file(REMOVE_RECURSE
  "CMakeFiles/test_tech_clocking.dir/test_tech_clocking.cc.o"
  "CMakeFiles/test_tech_clocking.dir/test_tech_clocking.cc.o.d"
  "test_tech_clocking"
  "test_tech_clocking.pdb"
  "test_tech_clocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_clocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
