# Empty dependencies file for test_tech_clocking.
# This may be replaced when dependencies are built.
