file(REMOVE_RECURSE
  "CMakeFiles/test_tech_circuit.dir/test_tech_circuit.cc.o"
  "CMakeFiles/test_tech_circuit.dir/test_tech_circuit.cc.o.d"
  "test_tech_circuit"
  "test_tech_circuit.pdb"
  "test_tech_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
