# Empty dependencies file for test_tech_circuit.
# This may be replaced when dependencies are built.
