file(REMOVE_RECURSE
  "CMakeFiles/test_util_containers.dir/test_util_containers.cc.o"
  "CMakeFiles/test_util_containers.dir/test_util_containers.cc.o.d"
  "test_util_containers"
  "test_util_containers.pdb"
  "test_util_containers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
