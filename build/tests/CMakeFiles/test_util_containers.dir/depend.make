# Empty dependencies file for test_util_containers.
# This may be replaced when dependencies are built.
