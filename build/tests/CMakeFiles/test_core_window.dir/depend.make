# Empty dependencies file for test_core_window.
# This may be replaced when dependencies are built.
