file(REMOVE_RECURSE
  "CMakeFiles/test_core_window.dir/test_core_window.cc.o"
  "CMakeFiles/test_core_window.dir/test_core_window.cc.o.d"
  "test_core_window"
  "test_core_window.pdb"
  "test_core_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
