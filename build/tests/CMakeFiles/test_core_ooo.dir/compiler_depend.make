# Empty compiler generated dependencies file for test_core_ooo.
# This may be replaced when dependencies are built.
