file(REMOVE_RECURSE
  "CMakeFiles/test_core_ooo.dir/test_core_ooo.cc.o"
  "CMakeFiles/test_core_ooo.dir/test_core_ooo.cc.o.d"
  "test_core_ooo"
  "test_core_ooo.pdb"
  "test_core_ooo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
