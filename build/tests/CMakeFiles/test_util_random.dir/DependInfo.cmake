
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_random.cc" "tests/CMakeFiles/test_util_random.dir/test_util_random.cc.o" "gcc" "tests/CMakeFiles/test_util_random.dir/test_util_random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/fo4_study.dir/DependInfo.cmake"
  "/root/repo/build/src/cacti/CMakeFiles/fo4_cacti.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fo4_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fo4_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/fo4_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fo4_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/fo4_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fo4_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fo4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
