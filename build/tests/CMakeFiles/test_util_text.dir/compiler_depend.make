# Empty compiler generated dependencies file for test_util_text.
# This may be replaced when dependencies are built.
