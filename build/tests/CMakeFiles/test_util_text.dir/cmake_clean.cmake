file(REMOVE_RECURSE
  "CMakeFiles/test_util_text.dir/test_util_text.cc.o"
  "CMakeFiles/test_util_text.dir/test_util_text.cc.o.d"
  "test_util_text"
  "test_util_text.pdb"
  "test_util_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
