# Empty compiler generated dependencies file for fo4_tech.
# This may be replaced when dependencies are built.
