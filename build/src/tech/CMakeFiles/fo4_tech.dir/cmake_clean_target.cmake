file(REMOVE_RECURSE
  "libfo4_tech.a"
)
