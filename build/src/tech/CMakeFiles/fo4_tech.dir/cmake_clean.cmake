file(REMOVE_RECURSE
  "CMakeFiles/fo4_tech.dir/circuit.cc.o"
  "CMakeFiles/fo4_tech.dir/circuit.cc.o.d"
  "CMakeFiles/fo4_tech.dir/clocking.cc.o"
  "CMakeFiles/fo4_tech.dir/clocking.cc.o.d"
  "CMakeFiles/fo4_tech.dir/ecl.cc.o"
  "CMakeFiles/fo4_tech.dir/ecl.cc.o.d"
  "CMakeFiles/fo4_tech.dir/fo4.cc.o"
  "CMakeFiles/fo4_tech.dir/fo4.cc.o.d"
  "CMakeFiles/fo4_tech.dir/gates.cc.o"
  "CMakeFiles/fo4_tech.dir/gates.cc.o.d"
  "CMakeFiles/fo4_tech.dir/latch.cc.o"
  "CMakeFiles/fo4_tech.dir/latch.cc.o.d"
  "libfo4_tech.a"
  "libfo4_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
