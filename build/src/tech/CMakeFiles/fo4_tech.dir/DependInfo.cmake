
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/circuit.cc" "src/tech/CMakeFiles/fo4_tech.dir/circuit.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/circuit.cc.o.d"
  "/root/repo/src/tech/clocking.cc" "src/tech/CMakeFiles/fo4_tech.dir/clocking.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/clocking.cc.o.d"
  "/root/repo/src/tech/ecl.cc" "src/tech/CMakeFiles/fo4_tech.dir/ecl.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/ecl.cc.o.d"
  "/root/repo/src/tech/fo4.cc" "src/tech/CMakeFiles/fo4_tech.dir/fo4.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/fo4.cc.o.d"
  "/root/repo/src/tech/gates.cc" "src/tech/CMakeFiles/fo4_tech.dir/gates.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/gates.cc.o.d"
  "/root/repo/src/tech/latch.cc" "src/tech/CMakeFiles/fo4_tech.dir/latch.cc.o" "gcc" "src/tech/CMakeFiles/fo4_tech.dir/latch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fo4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
