file(REMOVE_RECURSE
  "CMakeFiles/fo4_mem.dir/cache.cc.o"
  "CMakeFiles/fo4_mem.dir/cache.cc.o.d"
  "CMakeFiles/fo4_mem.dir/hierarchy.cc.o"
  "CMakeFiles/fo4_mem.dir/hierarchy.cc.o.d"
  "libfo4_mem.a"
  "libfo4_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
