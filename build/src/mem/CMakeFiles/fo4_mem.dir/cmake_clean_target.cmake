file(REMOVE_RECURSE
  "libfo4_mem.a"
)
