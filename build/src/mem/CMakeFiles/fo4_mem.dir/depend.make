# Empty dependencies file for fo4_mem.
# This may be replaced when dependencies are built.
