
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/file_trace.cc" "src/trace/CMakeFiles/fo4_trace.dir/file_trace.cc.o" "gcc" "src/trace/CMakeFiles/fo4_trace.dir/file_trace.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/fo4_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/fo4_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/profile.cc" "src/trace/CMakeFiles/fo4_trace.dir/profile.cc.o" "gcc" "src/trace/CMakeFiles/fo4_trace.dir/profile.cc.o.d"
  "/root/repo/src/trace/spec2000.cc" "src/trace/CMakeFiles/fo4_trace.dir/spec2000.cc.o" "gcc" "src/trace/CMakeFiles/fo4_trace.dir/spec2000.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fo4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fo4_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/fo4_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
