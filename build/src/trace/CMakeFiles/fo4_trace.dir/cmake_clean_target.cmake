file(REMOVE_RECURSE
  "libfo4_trace.a"
)
