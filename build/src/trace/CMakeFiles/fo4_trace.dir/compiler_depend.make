# Empty compiler generated dependencies file for fo4_trace.
# This may be replaced when dependencies are built.
