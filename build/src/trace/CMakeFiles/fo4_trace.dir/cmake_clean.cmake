file(REMOVE_RECURSE
  "CMakeFiles/fo4_trace.dir/file_trace.cc.o"
  "CMakeFiles/fo4_trace.dir/file_trace.cc.o.d"
  "CMakeFiles/fo4_trace.dir/generator.cc.o"
  "CMakeFiles/fo4_trace.dir/generator.cc.o.d"
  "CMakeFiles/fo4_trace.dir/profile.cc.o"
  "CMakeFiles/fo4_trace.dir/profile.cc.o.d"
  "CMakeFiles/fo4_trace.dir/spec2000.cc.o"
  "CMakeFiles/fo4_trace.dir/spec2000.cc.o.d"
  "libfo4_trace.a"
  "libfo4_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
