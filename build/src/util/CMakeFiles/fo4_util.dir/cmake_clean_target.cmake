file(REMOVE_RECURSE
  "libfo4_util.a"
)
