file(REMOVE_RECURSE
  "CMakeFiles/fo4_util.dir/config.cc.o"
  "CMakeFiles/fo4_util.dir/config.cc.o.d"
  "CMakeFiles/fo4_util.dir/csv.cc.o"
  "CMakeFiles/fo4_util.dir/csv.cc.o.d"
  "CMakeFiles/fo4_util.dir/logging.cc.o"
  "CMakeFiles/fo4_util.dir/logging.cc.o.d"
  "CMakeFiles/fo4_util.dir/means.cc.o"
  "CMakeFiles/fo4_util.dir/means.cc.o.d"
  "CMakeFiles/fo4_util.dir/random.cc.o"
  "CMakeFiles/fo4_util.dir/random.cc.o.d"
  "CMakeFiles/fo4_util.dir/stats.cc.o"
  "CMakeFiles/fo4_util.dir/stats.cc.o.d"
  "CMakeFiles/fo4_util.dir/table.cc.o"
  "CMakeFiles/fo4_util.dir/table.cc.o.d"
  "libfo4_util.a"
  "libfo4_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
