# Empty compiler generated dependencies file for fo4_util.
# This may be replaced when dependencies are built.
