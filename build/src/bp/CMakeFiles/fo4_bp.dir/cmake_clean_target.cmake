file(REMOVE_RECURSE
  "libfo4_bp.a"
)
