
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bp/predictors.cc" "src/bp/CMakeFiles/fo4_bp.dir/predictors.cc.o" "gcc" "src/bp/CMakeFiles/fo4_bp.dir/predictors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fo4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fo4_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/fo4_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
