# Empty dependencies file for fo4_bp.
# This may be replaced when dependencies are built.
