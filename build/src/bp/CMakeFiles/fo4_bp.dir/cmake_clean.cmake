file(REMOVE_RECURSE
  "CMakeFiles/fo4_bp.dir/predictors.cc.o"
  "CMakeFiles/fo4_bp.dir/predictors.cc.o.d"
  "libfo4_bp.a"
  "libfo4_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
