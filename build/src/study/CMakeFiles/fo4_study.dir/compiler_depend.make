# Empty compiler generated dependencies file for fo4_study.
# This may be replaced when dependencies are built.
