file(REMOVE_RECURSE
  "libfo4_study.a"
)
