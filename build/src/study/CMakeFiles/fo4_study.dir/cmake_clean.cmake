file(REMOVE_RECURSE
  "CMakeFiles/fo4_study.dir/intel_history.cc.o"
  "CMakeFiles/fo4_study.dir/intel_history.cc.o.d"
  "CMakeFiles/fo4_study.dir/optimizer.cc.o"
  "CMakeFiles/fo4_study.dir/optimizer.cc.o.d"
  "CMakeFiles/fo4_study.dir/runner.cc.o"
  "CMakeFiles/fo4_study.dir/runner.cc.o.d"
  "CMakeFiles/fo4_study.dir/scaling.cc.o"
  "CMakeFiles/fo4_study.dir/scaling.cc.o.d"
  "libfo4_study.a"
  "libfo4_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
