file(REMOVE_RECURSE
  "CMakeFiles/fo4_core.dir/inorder_core.cc.o"
  "CMakeFiles/fo4_core.dir/inorder_core.cc.o.d"
  "CMakeFiles/fo4_core.dir/ooo_core.cc.o"
  "CMakeFiles/fo4_core.dir/ooo_core.cc.o.d"
  "CMakeFiles/fo4_core.dir/params.cc.o"
  "CMakeFiles/fo4_core.dir/params.cc.o.d"
  "CMakeFiles/fo4_core.dir/window.cc.o"
  "CMakeFiles/fo4_core.dir/window.cc.o.d"
  "libfo4_core.a"
  "libfo4_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
