file(REMOVE_RECURSE
  "libfo4_core.a"
)
