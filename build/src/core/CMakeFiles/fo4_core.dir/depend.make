# Empty dependencies file for fo4_core.
# This may be replaced when dependencies are built.
