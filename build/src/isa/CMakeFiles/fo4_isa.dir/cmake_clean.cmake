file(REMOVE_RECURSE
  "CMakeFiles/fo4_isa.dir/latencies.cc.o"
  "CMakeFiles/fo4_isa.dir/latencies.cc.o.d"
  "CMakeFiles/fo4_isa.dir/microop.cc.o"
  "CMakeFiles/fo4_isa.dir/microop.cc.o.d"
  "libfo4_isa.a"
  "libfo4_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
