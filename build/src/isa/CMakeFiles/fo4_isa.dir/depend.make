# Empty dependencies file for fo4_isa.
# This may be replaced when dependencies are built.
