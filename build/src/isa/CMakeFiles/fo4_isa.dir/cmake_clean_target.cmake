file(REMOVE_RECURSE
  "libfo4_isa.a"
)
