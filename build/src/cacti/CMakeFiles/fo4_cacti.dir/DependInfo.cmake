
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cacti/sram.cc" "src/cacti/CMakeFiles/fo4_cacti.dir/sram.cc.o" "gcc" "src/cacti/CMakeFiles/fo4_cacti.dir/sram.cc.o.d"
  "/root/repo/src/cacti/structures.cc" "src/cacti/CMakeFiles/fo4_cacti.dir/structures.cc.o" "gcc" "src/cacti/CMakeFiles/fo4_cacti.dir/structures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fo4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/fo4_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
