file(REMOVE_RECURSE
  "CMakeFiles/fo4_cacti.dir/sram.cc.o"
  "CMakeFiles/fo4_cacti.dir/sram.cc.o.d"
  "CMakeFiles/fo4_cacti.dir/structures.cc.o"
  "CMakeFiles/fo4_cacti.dir/structures.cc.o.d"
  "libfo4_cacti.a"
  "libfo4_cacti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo4_cacti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
