# Empty compiler generated dependencies file for fo4_cacti.
# This may be replaced when dependencies are built.
