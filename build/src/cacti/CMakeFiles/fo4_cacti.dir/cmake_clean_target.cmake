file(REMOVE_RECURSE
  "libfo4_cacti.a"
)
