# Empty compiler generated dependencies file for latch_lab.
# This may be replaced when dependencies are built.
