file(REMOVE_RECURSE
  "CMakeFiles/latch_lab.dir/latch_lab.cpp.o"
  "CMakeFiles/latch_lab.dir/latch_lab.cpp.o.d"
  "latch_lab"
  "latch_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
