file(REMOVE_RECURSE
  "CMakeFiles/segmented_window_demo.dir/segmented_window_demo.cpp.o"
  "CMakeFiles/segmented_window_demo.dir/segmented_window_demo.cpp.o.d"
  "segmented_window_demo"
  "segmented_window_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmented_window_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
