# Empty dependencies file for segmented_window_demo.
# This may be replaced when dependencies are built.
