# Empty compiler generated dependencies file for bench_cray_comparison.
# This may be replaced when dependencies are built.
