file(REMOVE_RECURSE
  "CMakeFiles/bench_cray_comparison.dir/bench_cray_comparison.cc.o"
  "CMakeFiles/bench_cray_comparison.dir/bench_cray_comparison.cc.o.d"
  "bench_cray_comparison"
  "bench_cray_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cray_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
