# Empty compiler generated dependencies file for bench_sec52_segmented_select.
# This may be replaced when dependencies are built.
