file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_segmented_select.dir/bench_sec52_segmented_select.cc.o"
  "CMakeFiles/bench_sec52_segmented_select.dir/bench_sec52_segmented_select.cc.o.d"
  "bench_sec52_segmented_select"
  "bench_sec52_segmented_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_segmented_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
