file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_critical_loops.dir/bench_fig8_critical_loops.cc.o"
  "CMakeFiles/bench_fig8_critical_loops.dir/bench_fig8_critical_loops.cc.o.d"
  "bench_fig8_critical_loops"
  "bench_fig8_critical_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_critical_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
