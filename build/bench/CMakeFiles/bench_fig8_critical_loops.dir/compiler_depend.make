# Empty compiler generated dependencies file for bench_fig8_critical_loops.
# This may be replaced when dependencies are built.
