# Empty dependencies file for bench_fig4_inorder.
# This may be replaced when dependencies are built.
