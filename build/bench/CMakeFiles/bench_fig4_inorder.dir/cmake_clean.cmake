file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_inorder.dir/bench_fig4_inorder.cc.o"
  "CMakeFiles/bench_fig4_inorder.dir/bench_fig4_inorder.cc.o.d"
  "bench_fig4_inorder"
  "bench_fig4_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
