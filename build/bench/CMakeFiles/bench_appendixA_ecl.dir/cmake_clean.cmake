file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixA_ecl.dir/bench_appendixA_ecl.cc.o"
  "CMakeFiles/bench_appendixA_ecl.dir/bench_appendixA_ecl.cc.o.d"
  "bench_appendixA_ecl"
  "bench_appendixA_ecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixA_ecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
