# Empty dependencies file for bench_appendixA_ecl.
# This may be replaced when dependencies are built.
