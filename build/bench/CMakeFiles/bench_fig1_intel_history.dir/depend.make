# Empty dependencies file for bench_fig1_intel_history.
# This may be replaced when dependencies are built.
