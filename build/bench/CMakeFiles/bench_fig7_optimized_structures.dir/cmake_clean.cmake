file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_optimized_structures.dir/bench_fig7_optimized_structures.cc.o"
  "CMakeFiles/bench_fig7_optimized_structures.dir/bench_fig7_optimized_structures.cc.o.d"
  "bench_fig7_optimized_structures"
  "bench_fig7_optimized_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_optimized_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
