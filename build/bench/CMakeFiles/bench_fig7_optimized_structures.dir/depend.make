# Empty dependencies file for bench_fig7_optimized_structures.
# This may be replaced when dependencies are built.
