# Empty compiler generated dependencies file for bench_fig11_segmented_wakeup.
# This may be replaced when dependencies are built.
