file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_segmented_wakeup.dir/bench_fig11_segmented_wakeup.cc.o"
  "CMakeFiles/bench_fig11_segmented_wakeup.dir/bench_fig11_segmented_wakeup.cc.o.d"
  "bench_fig11_segmented_wakeup"
  "bench_fig11_segmented_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_segmented_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
