/**
 * @file
 * A fault-injecting TCP proxy for chaos tests: listens on an ephemeral
 * port, forwards each accepted connection to an upstream 127.0.0.1
 * port, and misbehaves on command.
 *
 * Fault modes (switchable at runtime, applied by every pump thread on
 * its next loop iteration):
 *
 *  - Forward: plain byte pump, both directions;
 *  - Chunked: forward in `chunkBytes` slices with `chunkDelayMs`
 *    pauses — exercises partial-read/partial-write paths in peers (a
 *    frame arrives in many pieces, a slow reader backs up a writer);
 *  - BlackHole: stop moving bytes in either direction but keep both
 *    sockets open — the classic frozen peer: connections look alive,
 *    reads time out, writes eventually jam, heartbeats stop arriving;
 *  - TruncateAfter: forward `truncateBytes` upstream->client bytes,
 *    then close both ends — a peer that dies mid-frame.
 *
 * The proxy never parses frames; all faults are byte-level, which is
 * exactly the abstraction the util/net deadline machinery defends
 * against.  Test-only: raw POSIX sockets, assert-on-failure.
 */

#ifndef FO4_TESTS_CHAOS_PROXY_HH
#define FO4_TESTS_CHAOS_PROXY_HH

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fo4::tests
{

class ChaosProxy
{
  public:
    enum class Mode { Forward, Chunked, BlackHole, TruncateAfter };

    explicit ChaosProxy(std::uint16_t upstreamPort)
        : upstream(upstreamPort)
    {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            throw std::runtime_error("chaos proxy: socket failed");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd, 16) != 0)
            throw std::runtime_error("chaos proxy: bind/listen failed");
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundPort = ntohs(addr.sin_port);
        acceptThread = std::thread([this] { acceptLoop(); });
    }

    ~ChaosProxy() { stop(); }

    std::uint16_t port() const { return boundPort; }

    /** Switch the fault mode; pumps notice within one poll tick. */
    void setMode(Mode m) { mode.store(m); }

    /** Freeze every connection (keep sockets open, move no bytes). */
    void blackHole() { setMode(Mode::BlackHole); }

    /** Forward in `bytes`-sized slices, pausing `delayMs` between. */
    void chunk(std::size_t bytes, int delayMs)
    {
        chunkBytes.store(bytes);
        chunkDelayMs.store(delayMs);
        setMode(Mode::Chunked);
    }

    /** Forward `bytes` more upstream->client bytes, then sever. */
    void truncateAfter(std::size_t bytes)
    {
        truncateBudget.store(static_cast<long>(bytes));
        setMode(Mode::TruncateAfter);
    }

    /** Connections the proxy has accepted so far. */
    std::size_t accepted() const { return nAccepted.load(); }

    void stop()
    {
        if (stopping.exchange(true))
            return;
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        if (acceptThread.joinable())
            acceptThread.join();
        std::lock_guard<std::mutex> lock(connMutex);
        for (auto &conn : conns) {
            if (conn->client >= 0)
                ::shutdown(conn->client, SHUT_RDWR);
            if (conn->server >= 0)
                ::shutdown(conn->server, SHUT_RDWR);
            if (conn->up.joinable())
                conn->up.join();
            if (conn->down.joinable())
                conn->down.join();
            ::close(conn->client);
            ::close(conn->server);
        }
        conns.clear();
    }

  private:
    struct Conn
    {
        int client = -1;
        int server = -1;
        std::thread up;   ///< client -> upstream
        std::thread down; ///< upstream -> client
    };

    void acceptLoop()
    {
        while (!stopping.load()) {
            const int client = ::accept(listenFd, nullptr, nullptr);
            if (client < 0)
                return; // closed by stop()
            const int server = dialUpstream();
            if (server < 0) {
                ::close(client);
                continue;
            }
            ++nAccepted;
            auto conn = std::make_unique<Conn>();
            conn->client = client;
            conn->server = server;
            Conn *raw = conn.get();
            conn->up = std::thread(
                [this, raw] { pump(raw->client, raw->server, false); });
            conn->down = std::thread(
                [this, raw] { pump(raw->server, raw->client, true); });
            std::lock_guard<std::mutex> lock(connMutex);
            conns.push_back(std::move(conn));
        }
    }

    int dialUpstream() const
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(upstream);
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    /** One-direction byte pump; `counted` marks the upstream->client
     *  direction whose bytes the TruncateAfter budget meters. */
    void pump(int src, int dst, bool counted)
    {
        char buf[4096];
        for (;;) {
            if (stopping.load())
                return;
            if (mode.load() == Mode::BlackHole) {
                // Frozen: don't even read, so the sender's socket
                // buffer backs up exactly like a wedged peer's would.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            pollfd p = {src, POLLIN, 0};
            const int rc = ::poll(&p, 1, 50);
            if (rc < 0 && errno != EINTR)
                return;
            if (rc <= 0)
                continue;
            // Sample the mode *after* poll: a fault switched on while
            // this thread slept must govern the bytes that woke it, or
            // a whole frame can slip through under the stale mode.
            const Mode m = mode.load();
            if (m == Mode::BlackHole)
                continue;
            std::size_t want = sizeof(buf);
            if (m == Mode::Chunked) {
                const std::size_t c = chunkBytes.load();
                want = c > 0 && c < want ? c : want;
            }
            const ssize_t n = ::recv(src, buf, want, 0);
            if (n <= 0) {
                // Propagate the hangup so mid-frame EOF reaches the
                // peer as EOF, not as a stuck connection.
                ::shutdown(dst, SHUT_WR);
                return;
            }
            std::size_t toSend = static_cast<std::size_t>(n);
            if (m == Mode::TruncateAfter && counted) {
                const long budget = truncateBudget.fetch_sub(
                    static_cast<long>(n));
                if (budget <= 0) {
                    sever();
                    return;
                }
                if (static_cast<long>(n) > budget) {
                    toSend = static_cast<std::size_t>(budget);
                }
            }
            std::size_t sent = 0;
            while (sent < toSend) {
                const ssize_t w = ::send(dst, buf + sent, toSend - sent,
                                         MSG_NOSIGNAL);
                if (w <= 0)
                    return;
                sent += static_cast<std::size_t>(w);
            }
            if (m == Mode::TruncateAfter && counted &&
                toSend < static_cast<std::size_t>(n)) {
                sever();
                return;
            }
            if (m == Mode::Chunked) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    chunkDelayMs.load()));
            }
        }
    }

    /** Close every connection's sockets (the truncate cliff). */
    void sever()
    {
        std::lock_guard<std::mutex> lock(connMutex);
        for (auto &conn : conns) {
            ::shutdown(conn->client, SHUT_RDWR);
            ::shutdown(conn->server, SHUT_RDWR);
        }
    }

    std::uint16_t upstream;
    std::uint16_t boundPort = 0;
    int listenFd = -1;
    std::atomic<bool> stopping{false};
    std::atomic<Mode> mode{Mode::Forward};
    std::atomic<std::size_t> chunkBytes{64};
    std::atomic<int> chunkDelayMs{1};
    std::atomic<long> truncateBudget{0};
    std::atomic<std::size_t> nAccepted{0};
    std::thread acceptThread;
    std::mutex connMutex;
    std::vector<std::unique_ptr<Conn>> conns;
};

} // namespace fo4::tests

#endif // FO4_TESTS_CHAOS_PROXY_HH
