/**
 * @file
 * Tests for the clock-period model (Section 2 / Table 1 of the paper) and
 * the latency quantization rule that generates Table 3.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "tech/clocking.hh"
#include "tech/fo4.hh"

using namespace fo4::tech;

TEST(Overhead, PaperDefaultTotalsOnePointEight)
{
    const auto m = OverheadModel::paperDefault();
    EXPECT_DOUBLE_EQ(m.latchFo4, 1.0);
    EXPECT_DOUBLE_EQ(m.skewFo4, 0.3);
    EXPECT_DOUBLE_EQ(m.jitterFo4, 0.5);
    EXPECT_DOUBLE_EQ(m.totalFo4(), 1.8);
}

TEST(Overhead, KurdMeasurementsReproduceTableOne)
{
    // 20 ps skew and 35 ps jitter at 180nm -> 0.3 and 0.5 FO4.
    const auto m = OverheadModel::fromKurdMeasurements(Technology::nm(180.0));
    EXPECT_DOUBLE_EQ(m.skewFo4, 0.3);
    EXPECT_DOUBLE_EQ(m.jitterFo4, 0.5);
    EXPECT_DOUBLE_EQ(m.totalFo4(), 1.8);
}

TEST(Overhead, UniformHasNoDecomposition)
{
    const auto m = OverheadModel::uniform(3.0);
    EXPECT_DOUBLE_EQ(m.totalFo4(), 3.0);
    EXPECT_DOUBLE_EQ(m.skewFo4, 0.0);
}

TEST(ClockModel, PeriodAddsOverhead)
{
    ClockModel clk;
    clk.tUsefulFo4 = 6.0;
    EXPECT_DOUBLE_EQ(clk.periodFo4(), 7.8);
}

TEST(ClockModel, PaperOptimalIntegerClock)
{
    // 6 FO4 useful + 1.8 overhead = 7.8 FO4 -> ~3.6 GHz at 100nm.
    ClockModel clk;
    clk.tUsefulFo4 = 6.0;
    EXPECT_NEAR(clk.frequencyGhz(), 3.56, 0.05);
    EXPECT_NEAR(clk.periodPs(), 280.8, 0.1);
}

TEST(ClockModel, PaperOptimalVectorClock)
{
    // 4 FO4 useful -> 5.8 FO4 period -> ~4.8 GHz at 100nm.
    ClockModel clk;
    clk.tUsefulFo4 = 4.0;
    EXPECT_NEAR(clk.frequencyGhz(), 4.79, 0.05);
}

TEST(ClockModel, LatencyCyclesIsCeiling)
{
    ClockModel clk;
    clk.tUsefulFo4 = 10.0;
    // Register file: 0.39 ns at 100nm = 10.83 FO4 -> 2 cycles (paper 3.3).
    EXPECT_EQ(clk.latencyCycles(10.83), 2);
    clk.tUsefulFo4 = 6.0;
    EXPECT_EQ(clk.latencyCycles(10.83), 2);
    clk.tUsefulFo4 = 11.0;
    EXPECT_EQ(clk.latencyCycles(10.83), 1);
}

TEST(ClockModel, LatencyCyclesMinimumOne)
{
    ClockModel clk;
    clk.tUsefulFo4 = 16.0;
    EXPECT_EQ(clk.latencyCycles(0.0), 1);
    EXPECT_EQ(clk.latencyCycles(1.0), 1);
}

TEST(ClockModel, RegisterFileRowOfTableThree)
{
    // Table 3 register-file row: 6 4 3 3 2 2 2 2 2 1 ... for t=2..11.
    const double rfFo4 = 10.83;
    const int expected[] = {6, 4, 3, 3, 2, 2, 2, 2, 2, 1};
    for (int t = 2; t <= 11; ++t) {
        ClockModel clk;
        clk.tUsefulFo4 = t;
        EXPECT_EQ(clk.latencyCycles(rfFo4), expected[t - 2])
            << "t_useful=" << t;
    }
}

TEST(ClockModel, IntMultiplyRowOfTableThree)
{
    // Table 3 integer-multiply row comes from 7 cycles x 17.4 FO4 on the
    // Alpha 21264: 61 41 31 25 21 18 16 14 13 12 11 10 9 9 8 for t=2..16.
    const double multFo4 = 7.0 * alpha21264PeriodFo4;
    const int expected[] = {61, 41, 31, 25, 21, 18, 16, 14,
                            13, 12, 11, 10, 9, 9, 8};
    for (int t = 2; t <= 16; ++t) {
        ClockModel clk;
        clk.tUsefulFo4 = t;
        EXPECT_EQ(clk.latencyCycles(multFo4), expected[t - 2])
            << "t_useful=" << t;
    }
}

TEST(ClockModel, BipsIsIpcTimesFrequency)
{
    ClockModel clk;
    clk.tUsefulFo4 = 6.0;
    EXPECT_NEAR(clk.bips(2.0), 2.0 * clk.frequencyGhz(), 1e-12);
}

TEST(ClockModel, DeeperPipelineFasterClock)
{
    ClockModel deep, shallow;
    deep.tUsefulFo4 = 2.0;
    shallow.tUsefulFo4 = 16.0;
    EXPECT_GT(deep.frequencyGhz(), shallow.frequencyGhz());
}

TEST(ClockModel, OverheadCompressesFrequencyGain)
{
    // Halving t_useful from 8 to 4 with 1.8 overhead gives less than a 2x
    // frequency gain (paper Section 4.1).
    ClockModel fast, slow;
    fast.tUsefulFo4 = 4.0;
    slow.tUsefulFo4 = 8.0;
    const double gain = fast.frequencyGhz() / slow.frequencyGhz();
    EXPECT_LT(gain, 2.0);
    EXPECT_GT(gain, 1.5);
}

// ---------------------------------------------------------------------
// OverheadModel::validated — the typed gate for computed (sampled or
// user-supplied) decompositions.
// ---------------------------------------------------------------------

TEST(OverheadValidated, AcceptsNonDefaultDraws)
{
    const auto m = fo4::tech::OverheadModel::validated(1.07, 0.28, 0.55);
    EXPECT_EQ(m.latchFo4, 1.07);
    EXPECT_EQ(m.skewFo4, 0.28);
    EXPECT_EQ(m.jitterFo4, 0.55);
    EXPECT_DOUBLE_EQ(m.totalFo4(), 1.07 + 0.28 + 0.55);
}

TEST(OverheadValidated, AcceptsZeroComponents)
{
    const auto m = fo4::tech::OverheadModel::validated(1.8, 0.0, 0.0);
    EXPECT_EQ(m.totalFo4(), 1.8);
}

TEST(OverheadValidated, RejectsNegativeInsteadOfClamping)
{
    EXPECT_THROW(fo4::tech::OverheadModel::validated(-0.1, 0.3, 0.5),
                 fo4::util::ConfigError);
    EXPECT_THROW(fo4::tech::OverheadModel::validated(1.0, -0.01, 0.5),
                 fo4::util::ConfigError);
    EXPECT_THROW(fo4::tech::OverheadModel::validated(1.0, 0.3, -2.0),
                 fo4::util::ConfigError);
}

TEST(OverheadValidated, RejectsNonFinite)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(fo4::tech::OverheadModel::validated(inf, 0.3, 0.5),
                 fo4::util::ConfigError);
    EXPECT_THROW(fo4::tech::OverheadModel::validated(1.0, nan, 0.5),
                 fo4::util::ConfigError);
}

TEST(OverheadValidated, NamesEveryBadComponentAtOnce)
{
    try {
        fo4::tech::OverheadModel::validated(-1.0, -0.5, -0.1);
        FAIL() << "expected ConfigError";
    } catch (const fo4::util::ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("latch"), std::string::npos);
        EXPECT_NE(what.find("skew"), std::string::npos);
        EXPECT_NE(what.find("jitter"), std::string::npos);
    }
}
