/**
 * @file
 * The byte-identity contract of the batched core implementations
 * (DESIGN.md §14): on every input — randomized core geometries, both
 * pipeline models, every predictor, fault injection, watchdog trips —
 * SimImpl::Batched must produce results bit-for-bit identical to
 * SimImpl::Reference.  Identity is stated in terms of
 * study::serializeSuite, which renders every result field (doubles in
 * hexfloat) plus each failed row's error code name AND message, so a
 * divergent deadlock dump or error text fails the same assertion a
 * divergent cycle count does.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "study/goldengen.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/decoded_trace.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/random.hh"
#include "util/status.hh"

using namespace fo4;
using fo4::util::Rng;

namespace
{

/** Small but non-trivial run: long enough to fill windows, trip
 *  mispredict shadows and miss in both cache levels. */
study::RunSpec
baseSpec()
{
    study::RunSpec spec;
    spec.instructions = 1500;
    spec.warmup = 200;
    spec.prewarm = 5000;
    spec.cycleLimit = 2000000; // fail fast instead of hanging ctest
    return spec;
}

/** Serialize the outcome of one job under the given implementation. */
std::string
runOne(const core::CoreParams &params, const tech::ClockModel &clock,
       const study::BenchJob &job, study::RunSpec spec,
       study::SimImpl impl, core::SimResult *sim = nullptr)
{
    spec.impl = impl;
    study::SuiteResult suite;
    suite.benchmarks.push_back(
        study::runJobIsolated(params, clock, job, spec));
    if (sim != nullptr)
        *sim = suite.benchmarks.front().sim;
    if (!suite.benchmarks.front().failed()) {
        // Satellite invariant: the per-cause stall counts partition
        // stallCycles exactly, under either implementation.
        EXPECT_EQ(suite.benchmarks.front().sim.stalls.total(),
                  suite.benchmarks.front().sim.stallCycles)
            << job.name << " impl=" << study::simImplName(impl);
    }
    return study::serializeSuite(suite);
}

/** A random but always-valid core geometry, biased toward small
 *  structures so stalls, shadows and structural blocks all trigger. */
core::CoreParams
randomParams(Rng &rng)
{
    core::CoreParams p = core::CoreParams::alpha21264();
    p.fetchWidth = 1 + static_cast<int>(rng.below(6));
    p.renameWidth = 1 + static_cast<int>(rng.below(6));
    p.commitWidth = 1 + static_cast<int>(rng.below(8));
    p.intIssueWidth = 1 + static_cast<int>(rng.below(4));
    p.fpIssueWidth = static_cast<int>(rng.below(4)); // 0 is legal
    p.memIssueWidth = 1 + static_cast<int>(rng.below(3));
    p.robSize = 8 + static_cast<int>(rng.below(120));
    p.lsqSize = 1 + static_cast<int>(rng.below(48));
    p.fetchQueueSize = 1 + static_cast<int>(rng.below(32));
    p.window.capacity = 2 + static_cast<int>(rng.below(31));
    p.window.wakeupStages =
        1 + static_cast<int>(rng.below(std::min(p.window.capacity, 5)));
    p.window.select = rng.chance(0.5) ? core::SelectModel::Partitioned
                                      : core::SelectModel::Full;
    p.fetchStages = 1 + static_cast<int>(rng.below(5));
    p.decodeStages = static_cast<int>(rng.below(4)); // 0 is legal
    p.renameStages = 1 + static_cast<int>(rng.below(3));
    p.regReadStages = 1 + static_cast<int>(rng.below(3));
    p.commitStages = 1 + static_cast<int>(rng.below(3));
    p.issueLatency = 1 + static_cast<int>(rng.below(3));
    p.extraMispredictPenalty = static_cast<int>(rng.below(4));
    p.extraLoadUse = static_cast<int>(rng.below(3));
    p.extraWakeup = static_cast<int>(rng.below(3));
    if (rng.chance(0.25))
        p.memoryMode = mem::MemoryMode::Flat;
    if (rng.chance(0.5)) {
        // Tiny caches: misses (and bus queueing) inside the window.
        p.dl1 = mem::CacheParams{8 * 1024, 32, 2};
        p.l2 = mem::CacheParams{128 * 1024, 64, 4};
    }
    return p;
}

const char *const kPredictors[] = {"taken", "bimodal", "gshare", "local",
                                   "tournament", "perfect"};

/** Write a short trace with one record's op-class byte destroyed. */
std::string
makeCorruptTrace(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 512);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 32 * 50 + 30);
    f.put(static_cast<char>(0xEE));
    return path;
}

} // namespace

TEST(CoreDifferential, RandomizedConfigsAreByteIdentical)
{
    const auto profiles = trace::spec2000Profiles();
    ASSERT_FALSE(profiles.empty());
    const auto clock = study::scaledClock(6.0);
    Rng rng(20260809);

    for (int iter = 0; iter < 48; ++iter) {
        const auto params = randomParams(rng);
        auto spec = baseSpec();
        spec.model = rng.chance(0.5) ? study::CoreModel::OutOfOrder
                                     : study::CoreModel::InOrder;
        spec.predictor =
            kPredictors[rng.below(std::size(kPredictors))];
        if (rng.chance(0.25))
            spec.prewarm = 0; // cold-start path, no warm-state cache
        const auto job = study::BenchJob::fromProfile(
            profiles[rng.below(profiles.size())]);

        const auto reference =
            runOne(params, clock, job, spec, study::SimImpl::Reference);
        const auto batched =
            runOne(params, clock, job, spec, study::SimImpl::Batched);
        ASSERT_EQ(batched, reference)
            << "iter=" << iter << " model="
            << (spec.model == study::CoreModel::OutOfOrder ? "ooo"
                                                           : "inorder")
            << " predictor=" << spec.predictor << " job=" << job.name;

        // A second batched run hits the decoded-trace and warm-state
        // caches; reuse must not perturb a single byte either.
        const auto again =
            runOne(params, clock, job, spec, study::SimImpl::Batched);
        ASSERT_EQ(again, reference) << "iter=" << iter << " (cache reuse)";
    }
}

TEST(CoreDifferential, ClockPeriodSweepColumnIsByteIdentical)
{
    // The batched path's home ground: one benchmark across every clock
    // period of a sweep — shared decoded stream, shared prewarm state.
    const auto job = study::BenchJob::fromProfile(
        trace::spec2000Profile("179.art"));
    const auto spec = baseSpec();
    for (const double u : {3.0, 4.0, 6.0, 8.0, 12.0, 17.4}) {
        const auto params = study::scaledCoreParams(u, {});
        const auto clock = study::scaledClock(u);
        const auto reference =
            runOne(params, clock, job, spec, study::SimImpl::Reference);
        const auto batched =
            runOne(params, clock, job, spec, study::SimImpl::Batched);
        EXPECT_EQ(batched, reference) << "t_useful=" << u;
    }

    // Guard against the batched path silently degrading to reference:
    // a batched run must have materialized its stream in the registry.
    EXPECT_GE(trace::DecodedTraceRegistry::global().size(), 1u);
}

TEST(CoreDifferential, WatchdogDumpsAreByteIdentical)
{
    // A deadlocked run serializes its DeadlockError dump into the row's
    // error message; the batched implementation (including its bulk
    // span accounting against the cycle limit) must reproduce the dump
    // text exactly.
    const auto clock = study::scaledClock(6.0);

    // Out-of-order: a watchdog budget far too small for the run.
    {
        auto hung = study::BenchJob::fromProfile(
            trace::spec2000Profile("164.gzip"));
        hung.name = "hung-ooo";
        hung.cycleLimit = 20;
        const auto params = study::scaledCoreParams(6.0, {});
        const auto reference = runOne(params, clock, hung, baseSpec(),
                                      study::SimImpl::Reference);
        const auto batched = runOne(params, clock, hung, baseSpec(),
                                    study::SimImpl::Batched);
        EXPECT_EQ(batched, reference);
        EXPECT_NE(reference.find("Deadlock"), std::string::npos);
    }

    // In-order with fpIssueWidth == 0 and a floating-point benchmark:
    // the head op can never issue, so the core spins on a structural
    // stall until the watchdog fires — the batched core covers this
    // very span with its bulk-skip path.
    {
        auto params = study::scaledCoreParams(6.0, {});
        params.fpIssueWidth = 0;
        auto job = study::BenchJob::fromProfile(
            trace::spec2000Profile("171.swim"));
        job.name = "fp-starved";
        job.cycleLimit = 5000;
        auto spec = baseSpec();
        spec.model = study::CoreModel::InOrder;
        core::SimResult refSim, batSim;
        const auto reference = runOne(params, clock, job, spec,
                                      study::SimImpl::Reference, &refSim);
        const auto batched = runOne(params, clock, job, spec,
                                    study::SimImpl::Batched, &batSim);
        EXPECT_EQ(batched, reference);
        EXPECT_NE(reference.find("Deadlock"), std::string::npos);
    }
}

TEST(CoreDifferential, FaultRowsAreByteIdentical)
{
    // Trace-load faults surface through the decoded-trace registry with
    // the reference path's exact typed error and message — and are
    // never cached as failures.
    const auto corrupt = makeCorruptTrace("differential_corrupt.fo4t");
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto job = study::BenchJob::fromTraceFile(
        "corrupt", trace::BenchClass::Integer, corrupt);

    const auto reference =
        runOne(params, clock, job, baseSpec(), study::SimImpl::Reference);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const auto batched = runOne(params, clock, job, baseSpec(),
                                    study::SimImpl::Batched);
        EXPECT_EQ(batched, reference) << "attempt=" << attempt;
    }
    EXPECT_NE(reference.find("TraceCorrupt"), std::string::npos);

    // A missing file is transient (RetryPolicy retries TraceIo): the
    // registry must re-attempt the load each call, so creating the file
    // after a failed batched lookup must let the next lookup succeed.
    const std::string ghost =
        std::string(::testing::TempDir()) + "/differential_ghost.fo4t";
    std::remove(ghost.c_str());
    const auto ghostJob = study::BenchJob::fromTraceFile(
        "ghost", trace::BenchClass::Integer, ghost);
    auto spec = baseSpec();
    spec.impl = study::SimImpl::Batched;
    const auto missing =
        study::runJobIsolated(params, clock, ghostJob, spec);
    ASSERT_TRUE(missing.failed());
    EXPECT_EQ(missing.error.code(), util::ErrorCode::TraceIo);

    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(ghost, gen, 512);
    const auto found = study::runJobIsolated(params, clock, ghostJob, spec);
    EXPECT_FALSE(found.failed())
        << "registry cached a transient load failure: "
        << found.error.toString();

    std::remove(corrupt.c_str());
    std::remove(ghost.c_str());
}

TEST(CoreDifferential, SimImplNamesRoundTrip)
{
    EXPECT_STREQ(study::simImplName(study::SimImpl::Reference),
                 "reference");
    EXPECT_STREQ(study::simImplName(study::SimImpl::Batched), "batched");
    EXPECT_EQ(study::simImplFromName("reference"),
              study::SimImpl::Reference);
    EXPECT_EQ(study::simImplFromName("batched"), study::SimImpl::Batched);
    EXPECT_THROW(study::simImplFromName("fast"), util::ConfigError);
}

TEST(CoreDifferential, RecordedReplaySweepIsByteIdentical)
{
    // Tentpole acceptance: a sweep replayed from a capture file is
    // byte-identical to the live sweep it was recorded from — under
    // both implementations and at 1 and 8 worker threads.
    const std::string path = std::string(::testing::TempDir()) +
                             "/differential_replay.fo4cap";
    study::CaptureRequest request;
    request.profile = trace::spec2000Profile("164.gzip");
    request.params = core::CoreParams::alpha21264();
    request.spec = baseSpec();
    const auto info = study::recordCapture(path, request);
    EXPECT_GE(info.retiredOps, static_cast<std::uint64_t>(
                                   request.spec.warmup +
                                   request.spec.instructions));
    EXPECT_GE(info.capturedOps, info.retiredOps + request.margin);

    std::vector<study::GridPoint> points;
    for (const double u : {6.0, 8.0})
        points.push_back({study::scaledCoreParams(u, {}),
                          study::scaledClock(u)});
    const auto liveJob = study::BenchJob::fromProfile(request.profile);
    const auto replayJob = study::BenchJob::fromTraceFile(
        liveJob.name, trace::BenchClass::Integer, path);

    const auto sweep = [&points](const study::BenchJob &job,
                                 study::SimImpl impl, int threads) {
        study::RunSpec spec = baseSpec();
        spec.impl = impl;
        const auto suites = study::ParallelRunner(threads).runGrid(
            points, {job}, spec);
        std::string out;
        for (const auto &suite : suites)
            out += study::serializeSuite(suite);
        return out;
    };

    const auto live = sweep(liveJob, study::SimImpl::Reference, 1);
    ASSERT_NE(live.find("|Ok|"), std::string::npos) << live;
    for (const auto impl :
         {study::SimImpl::Reference, study::SimImpl::Batched}) {
        for (const int threads : {1, 8}) {
            EXPECT_EQ(sweep(liveJob, impl, threads), live)
                << "live impl=" << study::simImplName(impl)
                << " threads=" << threads;
            EXPECT_EQ(sweep(replayJob, impl, threads), live)
                << "replay impl=" << study::simImplName(impl)
                << " threads=" << threads;
        }
    }
    std::remove(path.c_str());
}

TEST(CoreDifferential, DirectTraceSourceMatchesReference)
{
    // The batched cores also accept a plain TraceSource — the path the
    // window-study benches use, with no decoded view and no shared warm
    // state.  The streaming fallback must produce the same statistics.
    auto prof = trace::spec2000Profile("176.gcc");
    const auto params = core::CoreParams::alpha21264();
    for (const bool ooo : {false, true}) {
        trace::SyntheticTraceGenerator refGen(prof);
        trace::SyntheticTraceGenerator batGen(prof);
        auto ref = ooo ? core::makeOooCore(params, "tournament")
                       : core::makeInorderCore(params, "tournament");
        auto bat = ooo ? core::makeBatchedOooCore(params, "tournament")
                       : core::makeBatchedInorderCore(params, "tournament");
        const auto a = ref->run(refGen, 2000, 250, 20000);
        const auto b = bat->run(batGen, 2000, 250, 20000);
        EXPECT_EQ(a.instructions, b.instructions) << "ooo=" << ooo;
        EXPECT_EQ(a.cycles, b.cycles) << "ooo=" << ooo;
        EXPECT_EQ(a.branches, b.branches) << "ooo=" << ooo;
        EXPECT_EQ(a.mispredicts, b.mispredicts) << "ooo=" << ooo;
        EXPECT_EQ(a.dl1Misses, b.dl1Misses) << "ooo=" << ooo;
        EXPECT_EQ(a.l2Misses, b.l2Misses) << "ooo=" << ooo;
        EXPECT_EQ(a.stallCycles, b.stallCycles) << "ooo=" << ooo;
        for (int i = 0; i < core::numStallCauses; ++i)
            EXPECT_EQ(a.stalls.byCause[i], b.stalls.byCause[i])
                << "ooo=" << ooo << " cause=" << i;
        EXPECT_EQ(a.occupancy.frontSum, b.occupancy.frontSum);
        EXPECT_EQ(a.occupancy.windowSum, b.occupancy.windowSum);
        EXPECT_EQ(a.occupancy.robSum, b.occupancy.robSum);
        EXPECT_EQ(a.occupancy.lsqSum, b.occupancy.lsqSum);
    }
}
