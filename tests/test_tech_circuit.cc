/**
 * @file
 * Tests for the switch-level circuit simulator: gate logic levels,
 * propagation ordering, and the FO4 reference measurement.
 */

#include <gtest/gtest.h>

#include "tech/circuit.hh"
#include "tech/fo4.hh"
#include "tech/gates.hh"

using namespace fo4::tech;

namespace
{

DeviceParams
params()
{
    return DeviceParams::at100nm();
}

} // namespace

TEST(Circuit, InverterInverts)
{
    auto p = params();
    Circuit c(p);
    const auto in = c.addNode("in");
    c.drive(in, rampStep(50.0, 0.0, p.vdd, 20.0));
    const auto out = addInverter(c, in);
    c.run(500.0);
    // Input ended high; output must be low.
    EXPECT_LT(c.voltage(out), 0.1 * p.vdd);
}

TEST(Circuit, InverterOutputInitiallyHigh)
{
    auto p = params();
    Circuit c(p);
    const auto in = c.addNode("in");
    c.drive(in, [](double) { return 0.0; });
    const auto out = addInverter(c, in);
    c.run(500.0);
    EXPECT_GT(c.voltage(out), 0.9 * p.vdd);
}

TEST(Circuit, ChainAlternates)
{
    auto p = params();
    Circuit c(p);
    const auto in = c.addNode("in");
    c.drive(in, rampStep(50.0, 0.0, p.vdd, 20.0));
    const auto n1 = addInverter(c, in);
    const auto n2 = addInverter(c, n1);
    const auto n3 = addInverter(c, n2);
    c.run(800.0);
    EXPECT_LT(c.voltage(n1), 0.1 * p.vdd);
    EXPECT_GT(c.voltage(n2), 0.9 * p.vdd);
    EXPECT_LT(c.voltage(n3), 0.1 * p.vdd);
}

TEST(Circuit, CrossingsAreOrderedAlongChain)
{
    auto p = params();
    Circuit c(p);
    const auto in = c.addNode("in");
    c.drive(in, rampStep(300.0, 0.0, p.vdd, 20.0));
    const auto n1 = addInverter(c, in);
    const auto n2 = addInverter(c, n1);
    c.run(900.0);
    // Skip initialization transients: measure after the circuit settles.
    const double t1 = c.firstCrossing(n1, false, 250.0);
    const double t2 = c.firstCrossing(n2, true, 250.0);
    ASSERT_GT(t1, 0.0);
    ASSERT_GT(t2, 0.0);
    EXPECT_GT(t2, t1);
}

TEST(Circuit, HeavierLoadIsSlower)
{
    auto p = params();
    const auto delayWithLoad = [&](int fanout) {
        Circuit c(p);
        const auto in = c.addNode("in");
        c.drive(in, rampStep(300.0, 0.0, p.vdd, 20.0));
        const auto out = addInverter(c, in);
        addFanoutLoad(c, out, fanout);
        c.run(1200.0);
        return c.firstCrossing(out, false, 250.0) - 300.0;
    };
    EXPECT_GT(delayWithLoad(8), delayWithLoad(2));
    EXPECT_GT(delayWithLoad(2), delayWithLoad(0));
}

TEST(Circuit, WiderDriverIsFaster)
{
    auto p = params();
    const auto delayWithScale = [&](double scale) {
        Circuit c(p);
        const auto in = c.addNode("in");
        c.drive(in, rampStep(300.0, 0.0, p.vdd, 20.0));
        // Fixed external load dominates, so a wider driver must win.
        const auto out = addInverter(c, in, scale);
        addFanoutLoad(c, out, 16);
        c.run(1200.0);
        return c.firstCrossing(out, false, 250.0) - 300.0;
    };
    EXPECT_GT(delayWithScale(1.0), delayWithScale(4.0));
}

TEST(Circuit, Nand2TruthTable)
{
    auto p = params();
    // For each input combination, check the settled output level.
    const bool cases[4][3] = {
        {false, false, true},
        {false, true, true},
        {true, false, true},
        {true, true, false},
    };
    for (const auto &tc : cases) {
        Circuit c(p);
        const auto a = c.addNode("a");
        const auto b = c.addNode("b");
        c.drive(a, [&, v = tc[0]](double) { return v ? p.vdd : 0.0; });
        c.drive(b, [&, v = tc[1]](double) { return v ? p.vdd : 0.0; });
        const auto out = addNand(c, {a, b});
        c.run(500.0);
        if (tc[2])
            EXPECT_GT(c.voltage(out), 0.9 * p.vdd)
                << "a=" << tc[0] << " b=" << tc[1];
        else
            EXPECT_LT(c.voltage(out), 0.1 * p.vdd)
                << "a=" << tc[0] << " b=" << tc[1];
    }
}

TEST(Circuit, TransmissionGatePassesWhenOn)
{
    auto p = params();
    Circuit c(p);
    const auto src = c.addNode("src");
    c.drive(src, rampStep(50.0, 0.0, p.vdd, 20.0));
    const auto dst = c.addNode("dst", 5.0);
    addTransmissionGate(c, src, dst, c.vdd(), c.gnd());
    c.run(500.0);
    EXPECT_GT(c.voltage(dst), 0.9 * p.vdd);
}

TEST(Circuit, TransmissionGateBlocksWhenOff)
{
    auto p = params();
    Circuit c(p);
    const auto src = c.addNode("src");
    c.drive(src, rampStep(50.0, 0.0, p.vdd, 20.0));
    const auto dst = c.addNode("dst", 5.0);
    addTransmissionGate(c, src, dst, c.gnd(), c.vdd());
    c.run(500.0);
    EXPECT_LT(c.voltage(dst), 0.1 * p.vdd);
}

TEST(Fo4, ReferenceDelayIsPositiveAndBalanced)
{
    const auto ref = measureFo4(params());
    EXPECT_GT(ref.delayPs, 10.0);
    EXPECT_LT(ref.delayPs, 200.0);
    // The 2:1 P:N sizing should roughly balance rise and fall.
    EXPECT_NEAR(ref.risePs / ref.fallPs, 1.0, 0.35);
}

TEST(Fo4, TechnologyScalingRules)
{
    const auto t100 = Technology::nm(100.0);
    EXPECT_DOUBLE_EQ(t100.fo4Ps(), 36.0);
    EXPECT_DOUBLE_EQ(t100.toPs(10.0), 360.0);
    EXPECT_DOUBLE_EQ(t100.toFo4(72.0), 2.0);

    const auto t180 = Technology::nm(180.0);
    EXPECT_NEAR(t180.fo4Ps(), 64.8, 1e-9);
}

TEST(Fo4, FrequencyAtPaperOptimum)
{
    // Paper: 7.8 FO4 clock period at 100nm corresponds to ~3.6 GHz.
    const auto t = tech100nm();
    EXPECT_NEAR(t.frequencyGhz(7.8), 3.56, 0.05);
}

TEST(Fo4, EclNandPairSlowerThanOneFo4)
{
    // The Appendix A pair (4-NAND driving 5-NAND) must cost more than a
    // single FO4 inverter delay: two gate levels, heavier input loads.
    auto p = params();
    const auto ref = measureFo4(p);

    Circuit c(p);
    const auto in = c.addNode("in");
    c.drive(in, rampStep(400.0, 0.0, p.vdd, 30.0));
    const auto shaped = addInverterChain(c, in, 2);
    const auto nand4 = addNand(c, {shaped, c.vdd(), c.vdd(), c.vdd()});
    const auto nand5 =
        addNand(c, {nand4, c.vdd(), c.vdd(), c.vdd(), c.vdd()});
    addFanoutLoad(c, nand5, 1);
    c.run(1900.0);
    const double tIn = c.firstCrossing(shaped, true, 300.0);
    const double tOut = c.firstCrossing(nand5, true, 300.0);
    ASSERT_GT(tOut, tIn);
    EXPECT_GT(tOut - tIn, ref.delayPs);
}
