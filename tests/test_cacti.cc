/**
 * @file
 * Tests for the analytical SRAM/CAM/cache timing model and the anchored
 * structure latencies behind Table 3.
 */

#include <gtest/gtest.h>

#include "cacti/sram.hh"
#include "cacti/structures.hh"
#include "tech/clocking.hh"

using namespace fo4::cacti;

TEST(Sram, BiggerArraysAreSlower)
{
    SramConfig small, large;
    small.entries = 64;
    small.bits = 64;
    large.entries = 4096;
    large.bits = 64;
    EXPECT_LT(sramAccessTime(small).total(), sramAccessTime(large).total());
}

TEST(Sram, MorePortsAreSlower)
{
    SramConfig one, many;
    one.entries = 512;
    one.bits = 64;
    one.readPorts = 1;
    many = one;
    many.readPorts = 8;
    many.writePorts = 4;
    EXPECT_LT(sramAccessTime(one).total(), sramAccessTime(many).total());
}

TEST(Sram, WiderWordsAreSlower)
{
    SramConfig narrow, wide;
    narrow.entries = 1024;
    narrow.bits = 8;
    wide.entries = 1024;
    wide.bits = 256;
    EXPECT_LT(sramAccessTime(narrow).total(), sramAccessTime(wide).total());
}

TEST(Sram, CamMatchAddsDelay)
{
    SramConfig ram, cam;
    ram.entries = 32;
    ram.bits = 32;
    cam = ram;
    cam.cam = true;
    cam.tagBits = 10;
    EXPECT_LT(sramAccessTime(ram).total(), sramAccessTime(cam).total());
}

TEST(Sram, CamScalesWithEntries)
{
    // Tag broadcast spans all rows (Palacharla et al.), so the CAM part
    // must grow with window size even when subarrays could split.
    SramConfig small, large;
    small.entries = 16;
    small.bits = 32;
    small.cam = true;
    small.tagBits = 10;
    large = small;
    large.entries = 128;
    const auto s = sramAccessTime(small);
    const auto l = sramAccessTime(large);
    EXPECT_LT(s.compare, l.compare);
}

TEST(Sram, SubarraySplitsAreExplored)
{
    SramConfig big;
    big.entries = 8192;
    big.bits = 128;
    const auto at = sramAccessTime(big);
    // A large array should prefer splitting over a monolithic mat.
    EXPECT_GT(at.splitsBitlines * at.splitsWordlines, 1);
}

TEST(Sram, BreakdownSumsToTotal)
{
    SramConfig c;
    c.entries = 256;
    c.bits = 64;
    const auto at = sramAccessTime(c);
    EXPECT_NEAR(at.total(),
                at.decode + at.wordline + at.bitline + at.sense +
                    at.compare + at.output + at.route,
                1e-12);
}

TEST(Cache, LargerCachesAreSlower)
{
    CacheConfig small, large;
    small.capacityBytes = 8 << 10;
    large.capacityBytes = 512 << 10;
    EXPECT_LT(cacheAccessTime(small).total(), cacheAccessTime(large).total());
}

TEST(Cache, AccessIsMaxOfTagAndDataPlusSelect)
{
    CacheConfig c;
    const auto at = cacheAccessTime(c);
    const double data = at.data.total();
    const double tag = at.tag.total() + at.waySelect;
    EXPECT_DOUBLE_EQ(at.total(), std::max(data, tag));
}

TEST(Structures, AnchorsMatchPaperValues)
{
    const StructureModel model;
    using SK = StructureKind;
    // At the Alpha capacities the model must return exactly the paper's
    // implied access times.
    EXPECT_NEAR(model.latencyFo4(SK::RegisterFile, 512), 10.83, 1e-9);
    EXPECT_NEAR(model.latencyFo4(SK::DL1, 64 << 10), 32.0, 1e-9);
    EXPECT_NEAR(model.latencyFo4(SK::IssueWindow, 32), 17.2, 1e-9);
    EXPECT_NEAR(model.latencyFo4(SK::RenameTable, 80), 17.2, 1e-9);
    EXPECT_NEAR(model.latencyFo4(SK::BranchPredictor, 4096), 19.5, 1e-9);
}

TEST(Structures, ScalingIsMonotone)
{
    const StructureModel model;
    using SK = StructureKind;
    EXPECT_LT(model.latencyFo4(SK::DL1, 8 << 10),
              model.latencyFo4(SK::DL1, 64 << 10));
    EXPECT_LT(model.latencyFo4(SK::DL1, 64 << 10),
              model.latencyFo4(SK::DL1, 256 << 10));
    EXPECT_LT(model.latencyFo4(SK::IssueWindow, 16),
              model.latencyFo4(SK::IssueWindow, 64));
    EXPECT_LT(model.latencyFo4(SK::L2, 256 << 10),
              model.latencyFo4(SK::L2, 2 << 20));
}

TEST(Structures, RegisterFileRowReproducesTableThree)
{
    // ceil(10.83 / t) must reproduce the paper's register-file row.
    const StructureModel model;
    const double rf =
        model.latencyFo4(StructureKind::RegisterFile, 512);
    const int expected[] = {6, 4, 3, 3, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1};
    for (int t = 2; t <= 16; ++t) {
        fo4::tech::ClockModel clock;
        clock.tUsefulFo4 = t;
        EXPECT_EQ(clock.latencyCycles(rf), expected[t - 2]) << "t=" << t;
    }
}

TEST(Structures, MemoryConstantsAreSane)
{
    // 100 ns DRAM at 36 ps per FO4.
    EXPECT_NEAR(modernMemoryFo4(), 2777.8, 0.1);
    // 12 Cray cycles of (10.9 + 3.4) FO4.
    EXPECT_NEAR(crayMemoryFo4(), 171.6, 0.1);
    EXPECT_GT(memoryBusFo4(), 50.0);
    EXPECT_LT(memoryBusFo4(), 1000.0);
}

TEST(Structures, NamesAreDistinct)
{
    using SK = StructureKind;
    EXPECT_STRNE(structureName(SK::DL1), structureName(SK::L2));
    EXPECT_STRNE(structureName(SK::IssueWindow),
                 structureName(SK::RenameTable));
}
