/**
 * @file
 * Unit tests for the issue window: conventional selection, the segmented
 * (pipelined-wakeup) window of paper Section 5.1, and the partitioned
 * selection scheme of Section 5.2, driven through a mock wakeup oracle.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/window.hh"

using namespace fo4::core;

namespace
{

/** Oracle with per-producer "dependent may issue at" base cycles. */
class MockOracle : public WakeupOracle
{
  public:
    /** Producer not yet scheduled. */
    void unknown(InflightRef ref) { base.erase(ref); }
    /** Stage-0 dependents of `ref` may issue at `cycle`. */
    void readyAt(InflightRef ref, std::int64_t cycle) { base[ref] = cycle; }

    std::int64_t
    dependentReadyCycle(InflightRef ref, int stage) const override
    {
        auto it = base.find(ref);
        if (it == base.end())
            return -1;
        return it->second + stage;
    }

  private:
    std::map<InflightRef, std::int64_t> base;
};

WindowInsert
entry(InflightRef ref, std::uint64_t seq, bool fp = false, bool mem = false)
{
    WindowInsert ins;
    ins.ref = ref;
    ins.seq = seq;
    ins.fp = fp;
    ins.mem = mem;
    return ins;
}

WindowInsert
dependent(InflightRef ref, std::uint64_t seq, InflightRef producer)
{
    WindowInsert ins = entry(ref, seq);
    ins.producers[0] = producer;
    return ins;
}

const SelectLimits wide{8, 8, 8};

} // namespace

TEST(Window, StartsEmpty)
{
    IssueWindow w(WindowConfig{});
    EXPECT_TRUE(w.empty());
    EXPECT_FALSE(w.full());
    EXPECT_EQ(w.size(), 0u);
}

TEST(Window, FillsToCapacity)
{
    WindowConfig cfg;
    cfg.capacity = 4;
    IssueWindow w(cfg);
    for (int i = 0; i < 4; ++i)
        w.insert(entry(i, i));
    EXPECT_TRUE(w.full());
}

TEST(Window, ReadyEntriesIssueOldestFirst)
{
    IssueWindow w(WindowConfig{});
    MockOracle oracle;
    for (int i = 0; i < 6; ++i)
        w.insert(entry(i, i));
    const auto issued = w.selectAndRemove(0, SelectLimits{3, 0, 0}, oracle);
    ASSERT_EQ(issued.size(), 3u);
    EXPECT_EQ(issued[0], 0u);
    EXPECT_EQ(issued[1], 1u);
    EXPECT_EQ(issued[2], 2u);
    EXPECT_EQ(w.size(), 3u);
}

TEST(Window, ClusterLimitsAreIndependent)
{
    IssueWindow w(WindowConfig{});
    MockOracle oracle;
    w.insert(entry(0, 0));              // int
    w.insert(entry(1, 1, true));        // fp
    w.insert(entry(2, 2, false, true)); // mem
    w.insert(entry(3, 3));              // int
    const auto issued =
        w.selectAndRemove(0, SelectLimits{2, 1, 1}, oracle);
    // mem ops consume an int slot too: int0, fp1, mem2 fit; int3 does not
    // (two int slots used by 0 and 2).
    ASSERT_EQ(issued.size(), 3u);
    EXPECT_EQ(w.size(), 1u);
}

TEST(Window, WaitsForProducer)
{
    IssueWindow w(WindowConfig{});
    MockOracle oracle;
    w.insert(dependent(1, 1, /*producer=*/77));
    EXPECT_TRUE(w.selectAndRemove(0, wide, oracle).empty());
    EXPECT_TRUE(w.selectAndRemove(1, wide, oracle).empty());
    oracle.readyAt(77, 5);
    EXPECT_TRUE(w.selectAndRemove(4, wide, oracle).empty());
    const auto issued = w.selectAndRemove(5, wide, oracle);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], 1u);
}

TEST(Window, TwoProducersBothRequired)
{
    IssueWindow w(WindowConfig{});
    MockOracle oracle;
    WindowInsert ins = entry(9, 9);
    ins.producers = {1, 2};
    w.insert(ins);
    oracle.readyAt(1, 3);
    EXPECT_TRUE(w.selectAndRemove(3, wide, oracle).empty());
    oracle.readyAt(2, 4);
    EXPECT_EQ(w.selectAndRemove(4, wide, oracle).size(), 1u);
}

TEST(Window, SegmentedStageDelaysWakeup)
{
    // 8-entry window in 4 stages of 2: an entry in stage 2 hears the tag
    // two cycles after stage 0 would.
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 4;
    IssueWindow w(cfg);
    MockOracle oracle;

    // Fill positions 0..3 with unready blockers, positions 4..5 with the
    // dependent under test (stage 2).
    for (int i = 0; i < 4; ++i)
        w.insert(dependent(i, i, /*producer=*/50)); // blocked forever
    w.insert(dependent(4, 4, /*producer=*/60));
    oracle.readyAt(60, 10); // stage-0 dependents could go at 10

    // At cycle 10 the dependent sits at position 4 -> stage 2: not yet.
    EXPECT_TRUE(w.selectAndRemove(10, wide, oracle).empty());
    EXPECT_TRUE(w.selectAndRemove(11, wide, oracle).empty());
    const auto issued = w.selectAndRemove(12, wide, oracle);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], 4u);
}

TEST(Window, FrozenStageDoesNotImproveAfterCompaction)
{
    // An entry that hears a broadcast while sitting in a high stage keeps
    // that wakeup time even if older entries drain afterwards.
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 4;
    IssueWindow w(cfg);
    MockOracle oracle;

    for (int i = 0; i < 4; ++i)
        w.insert(entry(i, i)); // ready blockers (will issue, compacting)
    w.insert(dependent(4, 4, /*producer=*/60));
    oracle.readyAt(60, 20); // broadcast visible from cycle 0 query on

    // Cycle 0: dependent at stage 2 -> freezes wakeup at 20+2 = 22; the
    // four blockers issue, compacting the dependent to stage 0.
    const auto first = w.selectAndRemove(0, wide, oracle);
    EXPECT_EQ(first.size(), 4u);
    EXPECT_TRUE(w.selectAndRemove(20, wide, oracle).empty());
    EXPECT_TRUE(w.selectAndRemove(21, wide, oracle).empty());
    EXPECT_EQ(w.selectAndRemove(22, wide, oracle).size(), 1u);
}

TEST(Window, MonolithicWindowHasNoStageDelay)
{
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 1;
    IssueWindow w(cfg);
    MockOracle oracle;
    for (int i = 0; i < 6; ++i)
        w.insert(dependent(i, i, /*producer=*/50));
    w.insert(dependent(6, 6, /*producer=*/60));
    oracle.readyAt(60, 10);
    const auto issued = w.selectAndRemove(10, wide, oracle);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], 6u);
}

TEST(Window, PartitionedSelectDelaysLaterStagesByOneCycle)
{
    // 8 entries, 4 stages of 2, partitioned select: a ready entry in
    // stage 1 is only visible to S1 after a preselect cycle.
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 4;
    cfg.select = SelectModel::Partitioned;
    IssueWindow w(cfg);
    MockOracle oracle;

    for (int i = 0; i < 2; ++i)
        w.insert(dependent(i, i, /*producer=*/50)); // stage-0 blockers
    w.insert(entry(2, 2)); // ready, stage 1

    // Cycle 0: stage-1 entry is ready but not preselected yet.
    EXPECT_TRUE(w.selectAndRemove(0, wide, oracle).empty());
    // Cycle 1: it was preselected at the end of cycle 0.
    const auto issued = w.selectAndRemove(1, wide, oracle);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], 2u);
}

TEST(Window, PartitionedPreselectCapsPerStage)
{
    // Stage 2 (paper S2) preselects at most five instructions per cycle.
    WindowConfig cfg;
    cfg.capacity = 32;
    cfg.wakeupStages = 4;
    cfg.select = SelectModel::Partitioned;
    cfg.preselectCap = {5, 2, 1, 1, 1, 1, 1, 1};
    IssueWindow w(cfg);
    MockOracle oracle;

    // Eight blocked entries fill stage 0; eight READY entries fill
    // stage 1.
    for (int i = 0; i < 8; ++i)
        w.insert(dependent(i, i, /*producer=*/50));
    for (int i = 8; i < 16; ++i)
        w.insert(entry(i, i));

    // Cycle 0 preselects at most 5 from stage 1.
    EXPECT_TRUE(w.selectAndRemove(0, wide, oracle).empty());
    const auto issued = w.selectAndRemove(1, wide, oracle);
    EXPECT_EQ(issued.size(), 5u);
}

TEST(Window, PartitionedStageZeroNeedsNoPreselect)
{
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 4;
    cfg.select = SelectModel::Partitioned;
    IssueWindow w(cfg);
    MockOracle oracle;
    w.insert(entry(0, 0));
    const auto issued = w.selectAndRemove(0, wide, oracle);
    ASSERT_EQ(issued.size(), 1u);
}

TEST(Window, StatsTrackOccupancyAndStages)
{
    WindowConfig cfg;
    cfg.capacity = 8;
    cfg.wakeupStages = 4;
    IssueWindow w(cfg);
    MockOracle oracle;
    for (int i = 0; i < 4; ++i)
        w.insert(entry(i, i));
    w.selectAndRemove(0, SelectLimits{2, 0, 0}, oracle);
    w.selectAndRemove(1, SelectLimits{2, 0, 0}, oracle);
    const auto &st = w.stats();
    EXPECT_EQ(st.cycles, 2u);
    EXPECT_EQ(st.occupancySum, 4u + 2u);
    EXPECT_EQ(st.issued, 4u);
}

TEST(Window, ResetClearsEntriesAndStats)
{
    IssueWindow w(WindowConfig{});
    MockOracle oracle;
    w.insert(entry(0, 0));
    w.selectAndRemove(0, wide, oracle);
    w.reset();
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.stats().cycles, 0u);
}

TEST(Window, StageOfMapsPositionsUniformly)
{
    WindowConfig cfg;
    cfg.capacity = 32;
    cfg.wakeupStages = 4;
    IssueWindow w(cfg);
    EXPECT_EQ(w.stageOf(0), 0);
    EXPECT_EQ(w.stageOf(7), 0);
    EXPECT_EQ(w.stageOf(8), 1);
    EXPECT_EQ(w.stageOf(31), 3);
}

TEST(Window, OutOfOrderInsertPanics)
{
    IssueWindow w(WindowConfig{});
    w.insert(entry(0, 5));
    EXPECT_DEATH(w.insert(entry(1, 3)), "age order");
}
