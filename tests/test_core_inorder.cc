/**
 * @file
 * Integration tests for the in-order core, including its differences
 * from the out-of-order model (head-of-queue blocking, WAW stalls).
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "trace/trace.hh"

using namespace fo4::core;
using fo4::isa::MicroOp;
using fo4::isa::OpClass;
using fo4::trace::VectorTrace;

namespace
{

MicroOp
alu(std::int16_t dst, std::int16_t src1 = fo4::isa::noReg)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.dst = dst;
    op.src1 = src1;
    return op;
}

MicroOp
mult(std::int16_t dst, std::int16_t src1)
{
    MicroOp op;
    op.cls = OpClass::IntMult;
    op.dst = dst;
    op.src1 = src1;
    return op;
}

double
ipcOf(const CoreParams &params, std::vector<MicroOp> ops,
      std::uint64_t n = 20000, const char *pred = "perfect")
{
    VectorTrace trace(std::move(ops));
    auto core = makeInorderCore(params, pred);
    return core->run(trace, n).ipc();
}

std::vector<MicroOp>
independentAlus(int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(alu(static_cast<std::int16_t>(i % 32)));
    return ops;
}

std::vector<MicroOp>
serialChain(int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(alu(static_cast<std::int16_t>((i + 1) % 32),
                          static_cast<std::int16_t>(i % 32)));
    return ops;
}

} // namespace

TEST(InorderCore, IndependentOpsReachFullWidth)
{
    EXPECT_NEAR(ipcOf(CoreParams::alpha21264(), independentAlus(64)), 4.0,
                0.05);
}

TEST(InorderCore, SerialChainIsBackToBack)
{
    EXPECT_NEAR(ipcOf(CoreParams::alpha21264(), serialChain(64)), 1.0,
                0.02);
}

TEST(InorderCore, HeadBlockingStallsIndependentWork)
{
    // Each group: a load that misses the (shrunken) DL1, several
    // dependents, then independent work.  The OoO core overlaps misses
    // and runs ahead to the independent ops; in-order issue stalls at
    // the first dependent until the load returns.
    std::vector<MicroOp> ops;
    for (int g = 0; g < 512; ++g) {
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.dst = 1;
        ld.addr = 0x100000 + static_cast<std::uint64_t>(g) * 64;
        ops.push_back(ld);
        for (int d = 0; d < 3; ++d)
            ops.push_back(alu(static_cast<std::int16_t>(2 + d), 1));
        for (int d = 0; d < 4; ++d)
            ops.push_back(alu(static_cast<std::int16_t>(8 + (g + d) % 8)));
    }
    auto p = CoreParams::alpha21264();
    p.dl1.capacityBytes = 8 * 1024; // 512 lines cycle through 128 slots

    const double inorder = ipcOf(p, ops, 20000);
    VectorTrace trace(ops);
    auto ooo = makeOooCore(p, "perfect");
    const double oooIpc = ooo->run(trace, 20000).ipc();

    EXPECT_LT(inorder, 0.6 * oooIpc);
}

TEST(InorderCore, WawHazardStalls)
{
    // mult writes r1; an independent alu also writes r1: WAW forces the
    // alu to wait (no renaming), pacing the stream at the multiply rate.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i) {
        ops.push_back(mult(1, 2));
        ops.push_back(alu(1)); // WAW on r1
    }
    const double ipc = ipcOf(CoreParams::alpha21264(), ops, 8000);
    EXPECT_LT(ipc, 0.35); // ~2 ops per 7+ cycles
}

TEST(InorderCore, FunctionalUnitWidthRespected)
{
    // All-FP stream limited by the 2-wide FP issue.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 64; ++i) {
        MicroOp op;
        op.cls = OpClass::FpAdd;
        op.dst = static_cast<std::int16_t>(64 + i % 32);
        ops.push_back(op);
    }
    EXPECT_NEAR(ipcOf(CoreParams::alpha21264(), ops, 20000), 2.0, 0.05);
}

TEST(InorderCore, DeterministicAcrossRuns)
{
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto core = makeInorderCore(CoreParams::alpha21264(), "tournament");
    const auto r1 = core->run(gen, 20000, 2000, 50000);
    const auto r2 = core->run(gen, 20000, 2000, 50000);
    EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(InorderCore, NeverFasterThanOutOfOrder)
{
    // On every benchmark class, in-order issue cannot beat the
    // dynamically scheduled core with identical parameters.
    for (const char *name : {"164.gzip", "171.swim", "188.ammp"}) {
        const auto prof = fo4::trace::spec2000Profile(name);
        const auto p = CoreParams::alpha21264();
        fo4::trace::SyntheticTraceGenerator gen(prof);
        auto in = makeInorderCore(p, "tournament");
        const double inIpc = in->run(gen, 30000, 3000, 150000).ipc();
        auto ooo = makeOooCore(p, "tournament");
        const double oooIpc = ooo->run(gen, 30000, 3000, 150000).ipc();
        EXPECT_LE(inIpc, oooIpc * 1.02) << name;
    }
}

TEST(InorderCore, MispredictsHurt)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i) {
        ops.push_back(alu(static_cast<std::int16_t>(i % 32)));
        MicroOp br;
        br.cls = OpClass::Branch;
        br.pc = 0x1000 + i * 8;
        br.taken = false; // "taken" predictor is always wrong
        ops.push_back(br);
    }
    const auto p = CoreParams::alpha21264();
    const double bad = ipcOf(p, ops, 10000, "taken");
    const double good = ipcOf(p, ops, 10000, "perfect");
    EXPECT_GT(good, 1.5 * bad);
}
