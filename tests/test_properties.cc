/**
 * @file
 * Cross-module property tests: invariants that must hold for every
 * benchmark profile and across the whole scaled configuration space,
 * exercised with parameterized sweeps.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

#include "isa/latencies.hh"

using namespace fo4;

// ---------------------------------------------------------------------
// Per-benchmark invariants.
// ---------------------------------------------------------------------

class EveryBenchmark : public ::testing::TestWithParam<std::string>
{
  protected:
    trace::BenchmarkProfile
    profile() const
    {
        return trace::spec2000Profile(GetParam());
    }
};

TEST_P(EveryBenchmark, StreamIsWellFormed)
{
    trace::SyntheticTraceGenerator gen(profile());
    for (int i = 0; i < 20000; ++i) {
        const auto op = gen.next();
        EXPECT_EQ(op.seq, static_cast<std::uint64_t>(i));
        if (op.dst != isa::noReg) {
            EXPECT_GE(op.dst, 0);
            EXPECT_LT(op.dst, isa::numArchRegs);
        }
        if (op.src1 != isa::noReg) {
            EXPECT_LT(op.src1, isa::numArchRegs);
        }
        if (op.src2 != isa::noReg) {
            EXPECT_LT(op.src2, isa::numArchRegs);
        }
        if (isa::isMemory(op.cls)) {
            EXPECT_NE(op.addr, 0u);
        }
        if (op.isBranch()) {
            EXPECT_EQ(op.dst, isa::noReg);
        }
        if (op.isStore()) {
            EXPECT_EQ(op.dst, isa::noReg);
        }
        if (op.isLoad()) {
            EXPECT_NE(op.dst, isa::noReg);
        }
    }
}

TEST_P(EveryBenchmark, FpOpsWriteFpRegisters)
{
    trace::SyntheticTraceGenerator gen(profile());
    for (int i = 0; i < 20000; ++i) {
        const auto op = gen.next();
        if (isa::isFloat(op.cls)) {
            EXPECT_GE(op.dst, 64) << op.toString();
        }

        if (op.cls == isa::OpClass::IntAlu ||
            op.cls == isa::OpClass::IntMult) {
            EXPECT_LT(op.dst, 64) << op.toString();
        }
    }
}

TEST_P(EveryBenchmark, SimulationInvariantsHold)
{
    trace::SyntheticTraceGenerator gen(profile());
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    const auto r = core->run(gen, 20000, 2000, 100000);
    // Commit-width granularity: the warm-up snapshot and the stopping
    // point can each overshoot by up to commitWidth-1 instructions.
    EXPECT_NEAR(double(r.instructions), 20000.0, 8.0);
    EXPECT_GT(r.cycles, 0u);
    // IPC cannot exceed the machine width.
    EXPECT_LE(r.ipc(), 4.0 + 1e-9);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.mispredicts, r.branches);
    EXPECT_LE(r.mispredictRate(), 1.0);
    // Every benchmark touches memory and branches.
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(r.loads, 0u);
}

TEST_P(EveryBenchmark, DeterministicAcrossCoreInstances)
{
    const auto prof = profile();
    trace::SyntheticTraceGenerator g1(prof), g2(prof);
    auto c1 = core::makeOooCore(core::CoreParams::alpha21264(),
                                "tournament");
    auto c2 = core::makeOooCore(core::CoreParams::alpha21264(),
                                "tournament");
    const auto r1 = c1->run(g1, 10000, 1000, 50000);
    const auto r2 = c2->run(g2, 10000, 1000, 50000);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.mispredicts, r2.mispredicts);
    EXPECT_EQ(r1.dl1Misses, r2.dl1Misses);
    EXPECT_EQ(r1.l2Misses, r2.l2Misses);
}

INSTANTIATE_TEST_SUITE_P(
    Spec2000, EveryBenchmark,
    ::testing::Values("164.gzip", "175.vpr", "176.gcc", "181.mcf",
                      "197.parser", "252.eon", "253.perlbmk", "256.bzip2",
                      "300.twolf", "171.swim", "172.mgrid", "173.applu",
                      "183.equake", "177.mesa", "178.galgel", "179.art",
                      "188.ammp", "189.lucas"));

// ---------------------------------------------------------------------
// Scaled-configuration invariants across the whole sweep.
// ---------------------------------------------------------------------

class EveryClock : public ::testing::TestWithParam<int>
{
};

TEST_P(EveryClock, ConfigurationIsInternallyConsistent)
{
    const double t = GetParam();
    const auto p = study::scaledCoreParams(t, {});
    // Quantization: every latency is ceil(fo4 / t) of some positive
    // budget, so scaling t by 2 at most halves (+1) each latency.
    const auto p2 = study::scaledCoreParams(t * 2 <= 16 ? t * 2 : 16, {});
    EXPECT_GE(p.memLatencies.dl1, p2.memLatencies.dl1);
    EXPECT_GE(p.fetchStages, p2.fetchStages);
    EXPECT_GE(p.issueLatency, p2.issueLatency);
    for (int c = 0; c < isa::numOpClasses; ++c) {
        EXPECT_GE(p.execCycles[c], p2.execCycles[c]);
        EXPECT_GE(p.execCycles[c], 1);
    }
    // FO4 budgets reconstruct within quantization error.
    EXPECT_LE(std::abs(p.memLatencies.dl1 * t - 32.0), t + 1e-9);
}

TEST_P(EveryClock, GzipRunsAndObeysWidth)
{
    const double t = GetParam();
    trace::SyntheticTraceGenerator gen(trace::spec2000Profile("164.gzip"));
    auto core = core::makeOooCore(study::scaledCoreParams(t, {}),
                                  "tournament");
    const auto r = core->run(gen, 10000, 1000, 100000);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 4.0 + 1e-9);
}

TEST_P(EveryClock, InorderNeverBeatsOoo)
{
    const double t = GetParam();
    const auto params = study::scaledCoreParams(t, {});
    trace::SyntheticTraceGenerator g1(trace::spec2000Profile("176.gcc"));
    trace::SyntheticTraceGenerator g2(trace::spec2000Profile("176.gcc"));
    auto in = core::makeInorderCore(params, "tournament");
    auto ooo = core::makeOooCore(params, "tournament");
    const double inIpc = in->run(g1, 10000, 1000, 100000).ipc();
    const double oooIpc = ooo->run(g2, 10000, 1000, 100000).ipc();
    EXPECT_LE(inIpc, oooIpc * 1.05) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EveryClock,
                         ::testing::Values(2, 3, 4, 6, 8, 11, 16));

// ---------------------------------------------------------------------
// Monotonicity properties of the machinery.
// ---------------------------------------------------------------------

TEST(Properties, BipsIsConsistentWithIpcAcrossOverheads)
{
    // For a fixed t_useful, BIPS scales exactly with 1/(t + overhead).
    const double ipc = 0.5;
    const auto c1 = study::scaledClock(6.0,
                                       tech::OverheadModel::uniform(1.0));
    const auto c2 = study::scaledClock(6.0,
                                       tech::OverheadModel::uniform(3.0));
    EXPECT_NEAR(c1.bips(ipc) / c2.bips(ipc), (6.0 + 3.0) / (6.0 + 1.0),
                1e-12);
}

TEST(Properties, ExtendingAnyLoopNeverHelps)
{
    const auto prof = trace::spec2000Profile("176.gcc");
    auto run = [&](int wake, int load, int mis) {
        auto p = core::CoreParams::alpha21264();
        p.extraWakeup = wake;
        p.extraLoadUse = load;
        p.extraMispredictPenalty = mis;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        return c->run(gen, 15000, 2000, 100000).ipc();
    };
    const double base = run(0, 0, 0);
    EXPECT_LE(run(4, 0, 0), base + 1e-9);
    EXPECT_LE(run(0, 4, 0), base + 1e-9);
    EXPECT_LE(run(0, 0, 4), base + 1e-9);
}

TEST(Properties, BiggerWindowNeverHurts)
{
    const auto prof = trace::spec2000Profile("171.swim");
    auto run = [&](int cap) {
        auto p = core::CoreParams::alpha21264();
        p.window.capacity = cap;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        return c->run(gen, 15000, 2000, 100000).ipc();
    };
    const double w16 = run(16);
    const double w32 = run(32);
    const double w64 = run(64);
    // Allow a sliver of slack: a larger window shifts when loads reach
    // the fill bus, which can reorder queueing by a fraction of a
    // percent.
    EXPECT_LE(w16, w32 * 1.01);
    EXPECT_LE(w32, w64 * 1.01);
    EXPECT_LT(w16, w64); // strictly better end to end
}

TEST(Properties, MoreWakeupStagesNeverHelp)
{
    const auto prof = trace::spec2000Profile("176.gcc");
    double prev = 1e9;
    for (int stages : {1, 2, 4, 8, 10}) {
        auto p = core::CoreParams::alpha21264();
        p.window.wakeupStages = stages;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        const double ipc = c->run(gen, 15000, 2000, 100000).ipc();
        EXPECT_LE(ipc, prev + 1e-9) << stages;
        prev = ipc;
    }
}

TEST(Properties, FrequencyTimesPeriodIsUnity)
{
    for (double t = 2; t <= 16; t += 0.5) {
        const auto clock = study::scaledClock(t);
        EXPECT_NEAR(clock.frequencyGhz() * clock.periodPs() / 1000.0, 1.0,
                    1e-9);
    }
}

TEST(Properties, Table3QuantizationIsExactlyCeiling)
{
    // cycles * t >= fo4 > (cycles - 1) * t for every structure and t.
    const cacti::StructureModel model;
    using SK = cacti::StructureKind;
    for (const auto kind :
         {SK::DL1, SK::L2, SK::BranchPredictor, SK::RenameTable,
          SK::IssueWindow, SK::RegisterFile}) {
        const double fo4 = model.latencyFo4(
            kind, cacti::StructureModel::alphaCapacity(kind));
        for (int t = 2; t <= 16; ++t) {
            tech::ClockModel clock;
            clock.tUsefulFo4 = t;
            const int cycles = clock.latencyCycles(fo4);
            EXPECT_GE(cycles * t + 1e-9, fo4);
            if (cycles > 1) {
                EXPECT_LT((cycles - 1) * t, fo4 + 1e-9);
            }
        }
    }
}
