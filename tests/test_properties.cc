/**
 * @file
 * Cross-module property tests: invariants that must hold for every
 * benchmark profile and across the whole scaled configuration space,
 * exercised with parameterized sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/core.hh"
#include "study/goldengen.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/capture.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/recorded_trace.hh"
#include "trace/spec2000.hh"
#include "trace/trace_codec.hh"
#include "util/random.hh"

#include "isa/latencies.hh"

using namespace fo4;
using fo4::util::Rng;

// ---------------------------------------------------------------------
// Per-benchmark invariants.
// ---------------------------------------------------------------------

class EveryBenchmark : public ::testing::TestWithParam<std::string>
{
  protected:
    trace::BenchmarkProfile
    profile() const
    {
        return trace::spec2000Profile(GetParam());
    }
};

TEST_P(EveryBenchmark, StreamIsWellFormed)
{
    trace::SyntheticTraceGenerator gen(profile());
    for (int i = 0; i < 20000; ++i) {
        const auto op = gen.next();
        EXPECT_EQ(op.seq, static_cast<std::uint64_t>(i));
        if (op.dst != isa::noReg) {
            EXPECT_GE(op.dst, 0);
            EXPECT_LT(op.dst, isa::numArchRegs);
        }
        if (op.src1 != isa::noReg) {
            EXPECT_LT(op.src1, isa::numArchRegs);
        }
        if (op.src2 != isa::noReg) {
            EXPECT_LT(op.src2, isa::numArchRegs);
        }
        if (isa::isMemory(op.cls)) {
            EXPECT_NE(op.addr, 0u);
        }
        if (op.isBranch()) {
            EXPECT_EQ(op.dst, isa::noReg);
        }
        if (op.isStore()) {
            EXPECT_EQ(op.dst, isa::noReg);
        }
        if (op.isLoad()) {
            EXPECT_NE(op.dst, isa::noReg);
        }
    }
}

TEST_P(EveryBenchmark, FpOpsWriteFpRegisters)
{
    trace::SyntheticTraceGenerator gen(profile());
    for (int i = 0; i < 20000; ++i) {
        const auto op = gen.next();
        if (isa::isFloat(op.cls)) {
            EXPECT_GE(op.dst, 64) << op.toString();
        }

        if (op.cls == isa::OpClass::IntAlu ||
            op.cls == isa::OpClass::IntMult) {
            EXPECT_LT(op.dst, 64) << op.toString();
        }
    }
}

TEST_P(EveryBenchmark, SimulationInvariantsHold)
{
    trace::SyntheticTraceGenerator gen(profile());
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    const auto r = core->run(gen, 20000, 2000, 100000);
    // Commit-width granularity: the warm-up snapshot and the stopping
    // point can each overshoot by up to commitWidth-1 instructions.
    EXPECT_NEAR(double(r.instructions), 20000.0, 8.0);
    EXPECT_GT(r.cycles, 0u);
    // IPC cannot exceed the machine width.
    EXPECT_LE(r.ipc(), 4.0 + 1e-9);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.mispredicts, r.branches);
    EXPECT_LE(r.mispredictRate(), 1.0);
    // Every benchmark touches memory and branches.
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(r.loads, 0u);
}

TEST_P(EveryBenchmark, DeterministicAcrossCoreInstances)
{
    const auto prof = profile();
    trace::SyntheticTraceGenerator g1(prof), g2(prof);
    auto c1 = core::makeOooCore(core::CoreParams::alpha21264(),
                                "tournament");
    auto c2 = core::makeOooCore(core::CoreParams::alpha21264(),
                                "tournament");
    const auto r1 = c1->run(g1, 10000, 1000, 50000);
    const auto r2 = c2->run(g2, 10000, 1000, 50000);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.mispredicts, r2.mispredicts);
    EXPECT_EQ(r1.dl1Misses, r2.dl1Misses);
    EXPECT_EQ(r1.l2Misses, r2.l2Misses);
}

INSTANTIATE_TEST_SUITE_P(
    Spec2000, EveryBenchmark,
    ::testing::Values("164.gzip", "175.vpr", "176.gcc", "181.mcf",
                      "197.parser", "252.eon", "253.perlbmk", "256.bzip2",
                      "300.twolf", "171.swim", "172.mgrid", "173.applu",
                      "183.equake", "177.mesa", "178.galgel", "179.art",
                      "188.ammp", "189.lucas"));

// ---------------------------------------------------------------------
// Scaled-configuration invariants across the whole sweep.
// ---------------------------------------------------------------------

class EveryClock : public ::testing::TestWithParam<int>
{
};

TEST_P(EveryClock, ConfigurationIsInternallyConsistent)
{
    const double t = GetParam();
    const auto p = study::scaledCoreParams(t, {});
    // Quantization: every latency is ceil(fo4 / t) of some positive
    // budget, so scaling t by 2 at most halves (+1) each latency.
    const auto p2 = study::scaledCoreParams(t * 2 <= 16 ? t * 2 : 16, {});
    EXPECT_GE(p.memLatencies.dl1, p2.memLatencies.dl1);
    EXPECT_GE(p.fetchStages, p2.fetchStages);
    EXPECT_GE(p.issueLatency, p2.issueLatency);
    for (int c = 0; c < isa::numOpClasses; ++c) {
        EXPECT_GE(p.execCycles[c], p2.execCycles[c]);
        EXPECT_GE(p.execCycles[c], 1);
    }
    // FO4 budgets reconstruct within quantization error.
    EXPECT_LE(std::abs(p.memLatencies.dl1 * t - 32.0), t + 1e-9);
}

TEST_P(EveryClock, GzipRunsAndObeysWidth)
{
    const double t = GetParam();
    trace::SyntheticTraceGenerator gen(trace::spec2000Profile("164.gzip"));
    auto core = core::makeOooCore(study::scaledCoreParams(t, {}),
                                  "tournament");
    const auto r = core->run(gen, 10000, 1000, 100000);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 4.0 + 1e-9);
}

TEST_P(EveryClock, InorderNeverBeatsOoo)
{
    const double t = GetParam();
    const auto params = study::scaledCoreParams(t, {});
    trace::SyntheticTraceGenerator g1(trace::spec2000Profile("176.gcc"));
    trace::SyntheticTraceGenerator g2(trace::spec2000Profile("176.gcc"));
    auto in = core::makeInorderCore(params, "tournament");
    auto ooo = core::makeOooCore(params, "tournament");
    const double inIpc = in->run(g1, 10000, 1000, 100000).ipc();
    const double oooIpc = ooo->run(g2, 10000, 1000, 100000).ipc();
    EXPECT_LE(inIpc, oooIpc * 1.05) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EveryClock,
                         ::testing::Values(2, 3, 4, 6, 8, 11, 16));

// ---------------------------------------------------------------------
// Monotonicity properties of the machinery.
// ---------------------------------------------------------------------

TEST(Properties, BipsIsConsistentWithIpcAcrossOverheads)
{
    // For a fixed t_useful, BIPS scales exactly with 1/(t + overhead).
    const double ipc = 0.5;
    const auto c1 = study::scaledClock(6.0,
                                       tech::OverheadModel::uniform(1.0));
    const auto c2 = study::scaledClock(6.0,
                                       tech::OverheadModel::uniform(3.0));
    EXPECT_NEAR(c1.bips(ipc) / c2.bips(ipc), (6.0 + 3.0) / (6.0 + 1.0),
                1e-12);
}

TEST(Properties, ExtendingAnyLoopNeverHelps)
{
    const auto prof = trace::spec2000Profile("176.gcc");
    auto run = [&](int wake, int load, int mis) {
        auto p = core::CoreParams::alpha21264();
        p.extraWakeup = wake;
        p.extraLoadUse = load;
        p.extraMispredictPenalty = mis;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        return c->run(gen, 15000, 2000, 100000).ipc();
    };
    const double base = run(0, 0, 0);
    EXPECT_LE(run(4, 0, 0), base + 1e-9);
    EXPECT_LE(run(0, 4, 0), base + 1e-9);
    EXPECT_LE(run(0, 0, 4), base + 1e-9);
}

TEST(Properties, BiggerWindowNeverHurts)
{
    const auto prof = trace::spec2000Profile("171.swim");
    auto run = [&](int cap) {
        auto p = core::CoreParams::alpha21264();
        p.window.capacity = cap;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        return c->run(gen, 15000, 2000, 100000).ipc();
    };
    const double w16 = run(16);
    const double w32 = run(32);
    const double w64 = run(64);
    // Allow a sliver of slack: a larger window shifts when loads reach
    // the fill bus, which can reorder queueing by a fraction of a
    // percent.
    EXPECT_LE(w16, w32 * 1.01);
    EXPECT_LE(w32, w64 * 1.01);
    EXPECT_LT(w16, w64); // strictly better end to end
}

TEST(Properties, MoreWakeupStagesNeverHelp)
{
    const auto prof = trace::spec2000Profile("176.gcc");
    double prev = 1e9;
    for (int stages : {1, 2, 4, 8, 10}) {
        auto p = core::CoreParams::alpha21264();
        p.window.wakeupStages = stages;
        trace::SyntheticTraceGenerator gen(prof);
        auto c = core::makeOooCore(p, "tournament");
        const double ipc = c->run(gen, 15000, 2000, 100000).ipc();
        EXPECT_LE(ipc, prev + 1e-9) << stages;
        prev = ipc;
    }
}

TEST(Properties, FrequencyTimesPeriodIsUnity)
{
    for (double t = 2; t <= 16; t += 0.5) {
        const auto clock = study::scaledClock(t);
        EXPECT_NEAR(clock.frequencyGhz() * clock.periodPs() / 1000.0, 1.0,
                    1e-9);
    }
}

// ---------------------------------------------------------------------
// Randomized property suite.
//
// Each invariant below runs kPropertyCases randomized trials from a
// fixed, reseedable RNG: the default seed keeps CI deterministic, and
// FO4_PROPERTY_SEED=<n> in the environment replays (or explores) a
// different universe.  Every trial failure message carries the case
// index, so seed + index reproduces a single counterexample.
// ---------------------------------------------------------------------

namespace
{

constexpr int kPropertyCases = 256;

/** Per-invariant RNG: base seed from FO4_PROPERTY_SEED (default fixed),
 *  folded with the invariant name so the streams are independent. */
Rng
propertyRng(const char *invariant)
{
    std::uint64_t seed = 20260809;
    if (const char *env = std::getenv("FO4_PROPERTY_SEED"))
        seed = std::strtoull(env, nullptr, 0);
    std::cout << "[ property ] " << invariant << ": base seed " << seed
              << " (override with FO4_PROPERTY_SEED)\n";
    std::uint64_t folded = seed;
    for (const char *c = invariant; *c != '\0'; ++c)
        folded = folded * 1099511628211ULL +
                 static_cast<unsigned char>(*c);
    return Rng(folded);
}

/** A random record-layer op: any value the codec's range checks admit
 *  (class in range, registers in [-1, numArchRegs)). */
isa::MicroOp
randomRecordOp(Rng &rng, std::uint64_t seq)
{
    isa::MicroOp op;
    op.seq = seq;
    op.pc = rng.below(1ULL << 40);
    op.cls = static_cast<isa::OpClass>(rng.below(isa::numOpClasses));
    op.src1 = static_cast<std::int16_t>(
        static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
    op.src2 = static_cast<std::int16_t>(
        static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
    op.dst = static_cast<std::int16_t>(
        static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
    op.addr = rng.below(1ULL << 30);
    op.taken = rng.chance(0.5);
    return op;
}

bool
sameRecordOp(const isa::MicroOp &a, const isa::MicroOp &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.cls == b.cls &&
           a.src1 == b.src1 && a.src2 == b.src2 && a.dst == b.dst &&
           a.addr == b.addr && a.taken == b.taken;
}

/** Small random core geometry — cheap to simulate, still stall-rich. */
core::CoreParams
randomTinyParams(Rng &rng)
{
    core::CoreParams p = core::CoreParams::alpha21264();
    p.fetchWidth = 1 + static_cast<int>(rng.below(4));
    p.commitWidth = 1 + static_cast<int>(rng.below(6));
    p.intIssueWidth = 1 + static_cast<int>(rng.below(3));
    p.robSize = 8 + static_cast<int>(rng.below(56));
    p.lsqSize = 2 + static_cast<int>(rng.below(30));
    p.window.capacity = 2 + static_cast<int>(rng.below(30));
    p.extraLoadUse = static_cast<int>(rng.below(3));
    p.extraMispredictPenalty = static_cast<int>(rng.below(4));
    if (rng.chance(0.5)) {
        p.dl1 = mem::CacheParams{8 * 1024, 32, 2};
        p.l2 = mem::CacheParams{128 * 1024, 64, 4};
    }
    return p;
}

std::unique_ptr<core::Core>
randomCore(Rng &rng, const core::CoreParams &params, bool &oooOut)
{
    const bool batched = rng.chance(0.5);
    oooOut = rng.chance(0.5);
    if (oooOut)
        return batched ? core::makeBatchedOooCore(params, "tournament")
                       : core::makeOooCore(params, "tournament");
    return batched ? core::makeBatchedInorderCore(params, "tournament")
                   : core::makeInorderCore(params, "tournament");
}

trace::BenchmarkProfile
randomProfile(Rng &rng)
{
    static const std::vector<trace::BenchmarkProfile> profiles =
        trace::spec2000Profiles();
    return profiles[rng.below(profiles.size())];
}

} // namespace

TEST(RandomizedProperties, RecordCodecRoundTripsEveryOp)
{
    // pack -> encode -> decode -> unpack is the identity on every op
    // the range checks admit — the bedrock under both disk formats.
    Rng rng = propertyRng("record-codec-round-trip");
    for (int i = 0; i < kPropertyCases; ++i) {
        const auto op = randomRecordOp(rng, rng.below(1ULL << 32));
        unsigned char bytes[sizeof(trace::TraceRecord)];
        trace::encodeTraceRecord(trace::packTraceRecord(op), bytes);
        const auto back =
            trace::unpackTraceRecord(trace::decodeTraceRecord(bytes));
        ASSERT_TRUE(sameRecordOp(op, back))
            << "case " << i << ": " << op.toString() << " != "
            << back.toString();
    }
}

TEST(RandomizedProperties, CaptureFilesRoundTripEveryStream)
{
    // Random streams, random frame sizes, random metadata: whatever
    // the writer publishes, the reader recovers exactly, finalized.
    Rng rng = propertyRng("capture-file-round-trip");
    const std::string path =
        std::string(::testing::TempDir()) + "/property_roundtrip.fo4cap";
    for (int i = 0; i < kPropertyCases; ++i) {
        const std::size_t n = 1 + rng.below(60);
        std::vector<isa::MicroOp> ops;
        for (std::size_t k = 0; k < n; ++k)
            ops.push_back(randomRecordOp(rng, k));
        trace::CaptureMeta meta;
        const std::size_t pairs = rng.below(4);
        for (std::size_t k = 0; k < pairs; ++k)
            meta.emplace_back("key" + std::to_string(k),
                              std::to_string(rng.below(1u << 30)));

        auto writer = trace::CaptureWriter::create(
            path, meta, 1 + rng.below(24));
        for (const auto &op : ops)
            writer.append(op);
        writer.close();

        const auto contents = trace::readCapture(path);
        ASSERT_TRUE(contents.finalized) << "case " << i;
        ASSERT_FALSE(contents.tornTail) << "case " << i;
        ASSERT_EQ(contents.meta, meta) << "case " << i;
        ASSERT_EQ(contents.ops.size(), ops.size()) << "case " << i;
        for (std::size_t k = 0; k < ops.size(); ++k)
            ASSERT_TRUE(sameRecordOp(contents.ops[k], ops[k]))
                << "case " << i << " op " << k;
    }
    std::remove(path.c_str());
}

TEST(RandomizedProperties, StallCausesPartitionStallCycles)
{
    // On every configuration, model and implementation: the per-cause
    // stall counters sum exactly to stallCycles — no cycle is counted
    // twice and none goes missing.
    Rng rng = propertyRng("stall-partition");
    for (int i = 0; i < kPropertyCases; ++i) {
        const auto params = randomTinyParams(rng);
        bool ooo = false;
        auto core = randomCore(rng, params, ooo);
        trace::SyntheticTraceGenerator gen(randomProfile(rng));
        const auto r = core->run(gen, 200, 20, 500, 500000);
        ASSERT_EQ(r.stalls.total(), r.stallCycles)
            << "case " << i << " ooo=" << ooo;
        ASSERT_LE(r.stallCycles, r.cycles) << "case " << i;
    }
}

TEST(RandomizedProperties, BipsIsExactlyInverseInOverhead)
{
    // Pure clock math: for fixed t_useful and IPC, BIPS follows
    // 1/(t_useful + t_overhead) exactly — more per-stage overhead can
    // only slow the machine, by exactly the predicted ratio.
    Rng rng = propertyRng("bips-overhead-monotonicity");
    for (int i = 0; i < kPropertyCases; ++i) {
        const double t = 2.0 + 14.0 * rng.below(1u << 20) / (1u << 20);
        const double o1 = 5.0 * rng.below(1u << 20) / (1u << 20);
        const double o2 = o1 + 0.01 +
                          5.0 * rng.below(1u << 20) / (1u << 20);
        const double ipc = 0.05 + 4.0 * rng.below(1u << 20) / (1u << 20);
        const auto c1 =
            study::scaledClock(t, tech::OverheadModel::uniform(o1));
        const auto c2 =
            study::scaledClock(t, tech::OverheadModel::uniform(o2));
        ASSERT_GT(c1.bips(ipc), c2.bips(ipc))
            << "case " << i << " t=" << t << " o1=" << o1 << " o2=" << o2;
        ASSERT_NEAR(c1.bips(ipc) / c2.bips(ipc), (t + o2) / (t + o1),
                    1e-9)
            << "case " << i;
    }
}

TEST(RandomizedProperties, WarmupOnlyExcludesTheWarmupPrefix)
{
    // Simulating n instructions after a w-instruction warmup is the
    // same simulation as n+w instructions with no warmup — warmup only
    // moves the measurement window, never the machine's behavior.  Both
    // boundaries land on commit-width granularity, hence the slack.
    Rng rng = propertyRng("warmup-subtraction");
    for (int i = 0; i < kPropertyCases; ++i) {
        const auto params = randomTinyParams(rng);
        const auto prof = randomProfile(rng);
        const std::uint64_t n = 100 + rng.below(300);
        const std::uint64_t w = 100 + rng.below(200);
        bool ooo = false;

        Rng fork = rng; // same core/model choice for both runs
        auto warmed = randomCore(fork, params, ooo);
        auto cold = randomCore(rng, params, ooo);
        trace::SyntheticTraceGenerator g1(prof), g2(prof);
        const auto rw = warmed->run(g1, n, w, 0, 500000);
        const auto rc = cold->run(g2, n + w, 0, 0, 500000);

        // Boundary granularity: the out-of-order core retires up to
        // commitWidth per cycle, the in-order core up to its total
        // issue width — both the warmup snapshot and the stopping
        // point can overshoot by one cycle's worth of retirement.
        const int retirePerCycle =
            std::max(params.commitWidth, params.intIssueWidth +
                                             params.fpIssueWidth +
                                             params.memIssueWidth);
        const auto slack = static_cast<double>(2 * retirePerCycle);
        ASSERT_NEAR(static_cast<double>(rw.instructions),
                    static_cast<double>(n), slack)
            << "case " << i;
        ASSERT_NEAR(static_cast<double>(rc.instructions),
                    static_cast<double>(n + w), slack)
            << "case " << i;
        // The timed region of the warmed run is a strict suffix of the
        // cold run's; excluding a >= 100-instruction prefix must
        // shorten the measured cycles.
        ASSERT_LT(rw.cycles, rc.cycles) << "case " << i << " ooo=" << ooo;
    }
}

TEST(RandomizedProperties, RecordThenReplayIsTheIdentity)
{
    // The tentpole contract at property scale: record any run, replay
    // the capture under the same spec, and every statistic of the
    // replayed SimResult equals the live run's.
    Rng rng = propertyRng("record-replay-idempotence");
    const std::string path =
        std::string(::testing::TempDir()) + "/property_replay.fo4cap";
    for (int i = 0; i < kPropertyCases; ++i) {
        study::CaptureRequest request;
        request.profile = randomProfile(rng);
        request.params = randomTinyParams(rng);
        request.spec.model = rng.chance(0.5)
                                 ? study::CoreModel::OutOfOrder
                                 : study::CoreModel::InOrder;
        request.spec.impl = rng.chance(0.5) ? study::SimImpl::Batched
                                            : study::SimImpl::Reference;
        request.spec.instructions = 150 + rng.below(200);
        request.spec.warmup = rng.below(80);
        request.spec.prewarm = 200 + rng.below(300);
        request.spec.cycleLimit = 1000000;
        request.margin = 64;
        const auto info = study::recordCapture(path, request);

        trace::RecordedTrace replaySource(path);
        const bool replayBatched = rng.chance(0.5);
        auto core =
            request.spec.model == study::CoreModel::OutOfOrder
                ? (replayBatched
                       ? core::makeBatchedOooCore(request.params,
                                                  request.spec.predictor)
                       : core::makeOooCore(request.params,
                                           request.spec.predictor))
                : (replayBatched
                       ? core::makeBatchedInorderCore(
                             request.params, request.spec.predictor)
                       : core::makeInorderCore(request.params,
                                               request.spec.predictor));
        const auto r =
            core->run(replaySource, request.spec.instructions,
                      request.spec.warmup, request.spec.prewarm,
                      request.spec.cycleLimit);

        const auto &live = info.sim;
        ASSERT_EQ(r.instructions, live.instructions) << "case " << i;
        ASSERT_EQ(r.cycles, live.cycles) << "case " << i;
        ASSERT_EQ(r.branches, live.branches) << "case " << i;
        ASSERT_EQ(r.mispredicts, live.mispredicts) << "case " << i;
        ASSERT_EQ(r.dl1Misses, live.dl1Misses) << "case " << i;
        ASSERT_EQ(r.l2Misses, live.l2Misses) << "case " << i;
        ASSERT_EQ(r.stallCycles, live.stallCycles) << "case " << i;
        for (int c = 0; c < core::numStallCauses; ++c)
            ASSERT_EQ(r.stalls.byCause[c], live.stalls.byCause[c])
                << "case " << i << " cause " << c;
    }
    std::remove(path.c_str());
}

TEST(Properties, Table3QuantizationIsExactlyCeiling)
{
    // cycles * t >= fo4 > (cycles - 1) * t for every structure and t.
    const cacti::StructureModel model;
    using SK = cacti::StructureKind;
    for (const auto kind :
         {SK::DL1, SK::L2, SK::BranchPredictor, SK::RenameTable,
          SK::IssueWindow, SK::RegisterFile}) {
        const double fo4 = model.latencyFo4(
            kind, cacti::StructureModel::alphaCapacity(kind));
        for (int t = 2; t <= 16; ++t) {
            tech::ClockModel clock;
            clock.tUsefulFo4 = t;
            const int cycles = clock.latencyCycles(fo4);
            EXPECT_GE(cycles * t + 1e-9, fo4);
            if (cycles > 1) {
                EXPECT_LT((cycles - 1) * t, fo4 + 1e-9);
            }
        }
    }
}
