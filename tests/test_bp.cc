/**
 * @file
 * Tests for the branch predictors: learning behaviour on crafted outcome
 * sequences and accuracy ordering on the synthetic benchmark streams.
 */

#include <gtest/gtest.h>

#include "bp/predictors.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace fo4::bp;
using fo4::isa::MicroOp;
using fo4::isa::OpClass;

namespace
{

MicroOp
branchAt(std::uint64_t pc, bool taken)
{
    MicroOp op;
    op.cls = OpClass::Branch;
    op.pc = pc;
    op.taken = taken;
    return op;
}

/** Fraction of correct predictions over a pc/outcome sequence. */
double
accuracy(BranchPredictor &bp,
         const std::vector<std::pair<std::uint64_t, bool>> &seq)
{
    int correct = 0;
    for (const auto &[pc, taken] : seq) {
        const MicroOp op = branchAt(pc, taken);
        correct += bp.predict(op) == taken;
        bp.update(op, taken);
    }
    return double(correct) / double(seq.size());
}

} // namespace

TEST(AlwaysTaken, PredictsTaken)
{
    AlwaysTaken bp;
    EXPECT_TRUE(bp.predict(branchAt(0x100, false)));
    EXPECT_TRUE(bp.predict(branchAt(0x200, true)));
}

TEST(Perfect, AlwaysCorrect)
{
    PerfectPredictor bp;
    EXPECT_TRUE(bp.predict(branchAt(0x100, true)));
    EXPECT_FALSE(bp.predict(branchAt(0x100, false)));
}

TEST(Bimodal, LearnsBiasedBranch)
{
    Bimodal bp;
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 1000; ++i)
        seq.emplace_back(0x400, true);
    EXPECT_GT(accuracy(bp, seq), 0.99);
}

TEST(Bimodal, SeparatesDistinctBranches)
{
    Bimodal bp;
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 1000; ++i) {
        seq.emplace_back(0x400, true);
        seq.emplace_back(0x404, false);
    }
    EXPECT_GT(accuracy(bp, seq), 0.98);
}

TEST(Bimodal, CannotLearnAlternation)
{
    Bimodal bp;
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 1000; ++i)
        seq.emplace_back(0x400, i % 2 == 0);
    EXPECT_LT(accuracy(bp, seq), 0.7);
}

TEST(Local, LearnsShortPattern)
{
    LocalHistory bp;
    // Period-3 loop pattern: T T N.
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 3000; ++i)
        seq.emplace_back(0x400, i % 3 != 2);
    EXPECT_GT(accuracy(bp, seq), 0.9);
}

TEST(Local, LearnsAlternation)
{
    LocalHistory bp;
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 2000; ++i)
        seq.emplace_back(0x400, i % 2 == 0);
    EXPECT_GT(accuracy(bp, seq), 0.95);
}

TEST(GShare, LearnsHistoryCorrelation)
{
    GShare bp;
    // One branch whose outcome is the XOR of the two previous outcomes:
    // pure global-history correlation.
    std::vector<std::pair<std::uint64_t, bool>> seq;
    bool h1 = false, h2 = true;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = h1 != h2;
        seq.emplace_back(0x400, taken);
        h2 = h1;
        h1 = taken;
    }
    EXPECT_GT(accuracy(bp, seq), 0.9);
}

TEST(Tournament, AtLeastAsGoodAsComponentsOnMixes)
{
    // A mix of a pattern branch (local-friendly) and biased branches.
    auto mkseq = [] {
        std::vector<std::pair<std::uint64_t, bool>> seq;
        for (int i = 0; i < 4000; ++i) {
            seq.emplace_back(0x400, i % 4 != 3); // local pattern
            seq.emplace_back(0x404, true);       // biased
            seq.emplace_back(0x408, i % 2 == 0); // alternation
        }
        return seq;
    };
    Tournament t;
    const double at = accuracy(t, mkseq());
    EXPECT_GT(at, 0.93);
}

TEST(Tournament, ResetClearsState)
{
    Tournament t;
    std::vector<std::pair<std::uint64_t, bool>> seq;
    for (int i = 0; i < 2000; ++i)
        seq.emplace_back(0x400, false);
    accuracy(t, seq);
    t.reset();
    // After reset the counters are weakly taken again.
    EXPECT_TRUE(t.predict(branchAt(0x400, true)));
}

TEST(Factory, BuildsEveryPredictor)
{
    for (const char *name :
         {"perfect", "taken", "bimodal", "gshare", "local", "tournament"}) {
        auto bp = makePredictor(name);
        ASSERT_NE(bp, nullptr) << name;
        EXPECT_STREQ(bp->name(),
                     std::string(name) == "taken" ? "always-taken" : name);
    }
}

// Accuracy ordering on the real synthetic workloads: the tournament
// predictor must beat bimodal and always-taken on every benchmark class.
class SuiteAccuracy : public ::testing::TestWithParam<const char *>
{
  protected:
    double
    run(const char *predictor)
    {
        auto prof = fo4::trace::spec2000Profile(GetParam());
        fo4::trace::SyntheticTraceGenerator gen(prof);
        auto bp = makePredictor(predictor);
        std::uint64_t branches = 0, correct = 0;
        for (int i = 0; i < 200000; ++i) {
            const MicroOp op = gen.next();
            if (!op.isBranch())
                continue;
            ++branches;
            correct += bp->predict(op) == op.taken;
            bp->update(op, op.taken);
        }
        return double(correct) / double(branches);
    }
};

TEST_P(SuiteAccuracy, TournamentBeatsSimplerPredictors)
{
    const double tournament = run("tournament");
    const double bimodal = run("bimodal");
    const double taken = run("taken");
    EXPECT_GE(tournament + 0.01, bimodal);
    EXPECT_GT(tournament, taken);
    EXPECT_GT(tournament, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SuiteAccuracy,
                         ::testing::Values("164.gzip", "300.twolf",
                                           "171.swim", "188.ammp"));

TEST_P(SuiteAccuracy, GccAliasingDegradesButStaysUseful)
{
    // gcc's 2048 static branches alias the 1024-entry local history
    // table, so the tournament loses some ground to the larger bimodal
    // table — a real 21264 effect — but it must remain far better than
    // static prediction.
    if (std::string(GetParam()) != "164.gzip")
        GTEST_SKIP() << "run once";
    auto prof = fo4::trace::spec2000Profile("176.gcc");
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto bp = makePredictor("tournament");
    auto stat = makePredictor("taken");
    std::uint64_t branches = 0, correct = 0, staticCorrect = 0;
    for (int i = 0; i < 200000; ++i) {
        const MicroOp op = gen.next();
        if (!op.isBranch())
            continue;
        ++branches;
        correct += bp->predict(op) == op.taken;
        bp->update(op, op.taken);
        staticCorrect += stat->predict(op) == op.taken;
    }
    EXPECT_GT(double(correct) / branches, 0.7);
    EXPECT_GT(correct, staticCorrect);
}
