/**
 * @file
 * The persistent result store's robustness matrix: every way a cache
 * entry or the disk under it can fail must degrade to a typed miss —
 * never a wrong byte, never an exception on the fetch/store paths.
 *
 * Covered here, against util::BlobStore directly and svc::ResultStore
 * above it: round trips and cross-instance persistence, corrupt /
 * truncated / renamed entries (quarantined), format version skew (a
 * miss that does NOT delete the entry), injected ENOSPC and short
 * writes, unlink races, size-cap LRU eviction — including eviction
 * racing concurrent readers, where every lookup must be linearizable
 * to "hit with the exact bytes" or "miss" — and cell records that
 * frame correctly but decode to the wrong grid slot.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "study/checkpoint.hh"
#include "svc/store.hh"
#include "util/blob_store.hh"
#include "util/status.hh"

using namespace fo4;

namespace
{

/** A fresh, empty store directory under the gtest temp root. */
std::string
tempDir(const std::string &name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "/" + name + "." +
        std::to_string(::getpid());
    // Clear leftovers from a previous run of the same test binary.
    std::system(("rm -rf '" + dir + "'").c_str());
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).is_open();
}

/** A cell record with recognisable, bit-exact-checkable content. */
study::CellRecord
makeCell(std::size_t point, std::size_t job)
{
    study::CellRecord cell;
    cell.point = point;
    cell.job = job;
    cell.result.name = "164.gzip";
    cell.result.bips = 1.25;
    cell.result.sim.cycles = 12345;
    cell.result.sim.instructions = 67890;
    return cell;
}

} // namespace

// ---------------------------------------------------------------------
// BlobStore: round trips, persistence, identity
// ---------------------------------------------------------------------

TEST(BlobStore, RoundTripPersistsAcrossInstances)
{
    const std::string dir = tempDir("blob_roundtrip");
    const std::string payload("bytes \x00\xff with binary\n", 22);
    {
        util::BlobStore store(dir, 0, "test.blob");
        EXPECT_FALSE(store.get("absent").has_value());
        EXPECT_EQ(store.stats().misses.load(), 1u);
        EXPECT_TRUE(store.put("k1", payload));
        const auto hit = store.get("k1");
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, payload);
        EXPECT_EQ(store.stats().hits.load(), 1u);
        EXPECT_EQ(store.entries(), 1u);
        EXPECT_GT(store.sizeBytes(), payload.size());
    }
    // A second instance over the same directory serves the same bytes:
    // the store is persistent state, not process state.
    util::BlobStore store(dir, 0, "test.blob");
    const auto hit = store.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
}

TEST(BlobStore, OverwriteReplacesPayload)
{
    util::BlobStore store(tempDir("blob_overwrite"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "old"));
    ASSERT_TRUE(store.put("k", "new"));
    EXPECT_EQ(store.get("k"), "new");
    EXPECT_EQ(store.entries(), 1u);
}

TEST(BlobStore, UncreatableDirectoryIsConfigError)
{
    // A path under a regular file can never become a directory.
    const std::string file = tempDir("blob_notadir");
    spew(file, "i am a file");
    EXPECT_THROW(util::BlobStore(file + "/sub", 0, "test.blob"),
                 util::ConfigError);
    EXPECT_THROW(util::BlobStore(file, 0, "test.blob"),
                 util::ConfigError);
}

// ---------------------------------------------------------------------
// BlobStore: the corruption matrix
// ---------------------------------------------------------------------

TEST(BlobStore, FlippedPayloadByteIsQuarantinedMiss)
{
    util::BlobStore store(tempDir("blob_flip"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "payload-bytes"));
    const std::string path = store.pathFor("k");
    std::string bytes = slurp(path);
    bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^
                                                0x20);
    spew(path, bytes);

    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
    // Quarantined: the rotten file is gone, so the next lookup is a
    // plain miss that does not re-count corruption.
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
}

TEST(BlobStore, TruncatedEntryIsQuarantinedMiss)
{
    util::BlobStore store(tempDir("blob_trunc"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "a payload long enough to truncate"));
    const std::string path = store.pathFor("k");
    const std::string bytes = slurp(path);
    // Sever mid-payload and, separately, mid-header.
    spew(path, bytes.substr(0, bytes.size() - 5));
    EXPECT_FALSE(store.get("k").has_value());
    ASSERT_TRUE(store.put("k", "again"));
    spew(path, slurp(path).substr(0, 10));
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 2u);
}

TEST(BlobStore, RenamedBlobCannotMasqueradeAsAnotherKey)
{
    util::BlobStore store(tempDir("blob_rename"), 0, "test.blob");
    ASSERT_TRUE(store.put("honest", "honest bytes"));
    // An attacker (or a confused operator) renames the file to a
    // different key: the echoed key inside the frame gives it away.
    spew(store.pathFor("imposter"), slurp(store.pathFor("honest")));
    EXPECT_FALSE(store.get("imposter").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
    // The honest entry still serves.
    EXPECT_EQ(store.get("honest"), "honest bytes");
}

TEST(BlobStore, VersionSkewIsMissButNotDeleted)
{
    util::BlobStore store(tempDir("blob_version"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "future bytes"));
    const std::string path = store.pathFor("k");
    std::string bytes = slurp(path);
    bytes[8] = static_cast<char>(util::kBlobVersion + 1); // version field
    spew(path, bytes);

    EXPECT_FALSE(store.get("k").has_value());
    // Skew is a layout disagreement, not rot: no corruption counted,
    // and the file is left for whichever build speaks that version.
    EXPECT_EQ(store.stats().corrupt.load(), 0u);
    EXPECT_TRUE(fileExists(path));
}

TEST(BlobStore, BadMagicIsQuarantinedMiss)
{
    util::BlobStore store(tempDir("blob_magic"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "payload"));
    const std::string path = store.pathFor("k");
    std::string bytes = slurp(path);
    bytes[0] = 'X';
    spew(path, bytes);
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
    EXPECT_FALSE(fileExists(path));
}

// ---------------------------------------------------------------------
// BlobStore: injected disk faults
// ---------------------------------------------------------------------

TEST(BlobStore, EnospcOnWriteDropsTheStoreNotTheCaller)
{
    util::BlobStore store(tempDir("blob_enospc"), 0, "test.blob");
    util::BlobStoreHooks hooks;
    hooks.onWrite = [](const std::string &) {
        return util::DiskFault{}; // immediate ENOSPC
    };
    store.setHooks(hooks);
    EXPECT_FALSE(store.put("k", "doomed"));
    EXPECT_EQ(store.stats().diskErrors.load(), 1u);
    EXPECT_EQ(store.entries(), 0u); // no blob, no tmp leftover
    EXPECT_FALSE(fileExists(store.pathFor("k")));

    // Clear the fault: the same store works again.
    store.setHooks({});
    EXPECT_TRUE(store.put("k", "landed"));
    EXPECT_EQ(store.get("k"), "landed");
}

TEST(BlobStore, ShortWriteNeverPublishesAPartialBlob)
{
    util::BlobStore store(tempDir("blob_short"), 0, "test.blob");
    util::BlobStoreHooks hooks;
    hooks.onWrite = [](const std::string &) {
        // The disk fills 10 bytes into the record.
        return util::DiskFault{.failErrno = 28, .shortWriteBytes = 10};
    };
    store.setHooks(hooks);
    EXPECT_FALSE(store.put("k", "a payload that will be cut short"));
    // The partial record lived only in the tmp file, which was dropped:
    // nothing is visible under the final name, so no reader can ever
    // see the torn prefix.
    EXPECT_FALSE(fileExists(store.pathFor("k")));
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_EQ(store.stats().diskErrors.load(), 1u);
}

TEST(BlobStore, UnlinkRaceBeforeReadIsACleanMiss)
{
    util::BlobStore store(tempDir("blob_race"), 0, "test.blob");
    ASSERT_TRUE(store.put("k", "soon gone"));
    util::BlobStoreHooks hooks;
    hooks.beforeRead = [](const std::string &, const std::string &path) {
        ::unlink(path.c_str()); // evicted between lookup and open
    };
    store.setHooks(hooks);
    EXPECT_FALSE(store.get("k").has_value());
    // ENOENT is an honest miss: neither corruption nor a disk error.
    EXPECT_EQ(store.stats().corrupt.load(), 0u);
    EXPECT_EQ(store.stats().diskErrors.load(), 0u);
}

TEST(BlobStore, ByteFlippedAfterPublishIsCaughtOnRead)
{
    util::BlobStore store(tempDir("blob_afterpub"), 0, "test.blob");
    util::BlobStoreHooks hooks;
    hooks.afterPublish = [](const std::string &,
                            const std::string &path) {
        std::string bytes;
        {
            std::ifstream in(path, std::ios::binary);
            bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        }
        bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };
    store.setHooks(hooks);
    ASSERT_TRUE(store.put("k", "rots on the platter"));
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
}

// ---------------------------------------------------------------------
// BlobStore: size cap and eviction
// ---------------------------------------------------------------------

TEST(BlobStore, SizeCapEvictsOldestFirst)
{
    // Records are 32 (header) + 2 (key) + 40 (payload) = 74 bytes; a
    // 160-byte cap holds two.
    util::BlobStore store(tempDir("blob_evict"), 160, "test.blob");
    const std::string payload(40, 'p');
    ASSERT_TRUE(store.put("k1", payload));
    ASSERT_TRUE(store.put("k2", payload));
    EXPECT_EQ(store.entries(), 2u);

    // The third put must evict exactly one entry — the oldest, k1 (the
    // mtime tie, if the clock is too coarse, breaks by name, which
    // also picks k1).
    ASSERT_TRUE(store.put("k3", payload));
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_EQ(store.stats().evictions.load(), 1u);
    EXPECT_FALSE(store.get("k1").has_value());
    EXPECT_TRUE(store.get("k2").has_value());
    EXPECT_TRUE(store.get("k3").has_value());
}

TEST(BlobStore, PayloadLargerThanCapIsRefusedOutright)
{
    util::BlobStore store(tempDir("blob_toolarge"), 100, "test.blob");
    ASSERT_TRUE(store.put("small", "fits"));
    EXPECT_FALSE(store.put("big", std::string(200, 'x')));
    // Refused before evicting anything: the store was not drained in a
    // doomed attempt to fit the oversize record.
    EXPECT_EQ(store.stats().evictions.load(), 0u);
    EXPECT_TRUE(store.get("small").has_value());
}

TEST(BlobStore, EvictionUnderConcurrentReadersIsLinearizableToMiss)
{
    // The satellite contract: while a size-capped store is churning
    // (every put evicts), concurrent readers of a hot key must see
    // either the exact published bytes or a clean miss — never torn
    // bytes, never an exception.  POSIX keeps an already-open fd
    // readable after unlink, so even "evicted mid-read" resolves to
    // one of the two legal outcomes.
    const std::string dir = tempDir("blob_evict_race");
    util::BlobStore store(dir, 200, "test.blob");
    const std::string hotPayload(40, 'H');
    ASSERT_TRUE(store.put("hot", hotPayload));

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> hits{0}, misses{0};
    std::atomic<bool> wrongBytes{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!done.load()) {
                const auto got = store.get("hot");
                if (!got.has_value()) {
                    misses.fetch_add(1);
                } else if (*got != hotPayload) {
                    wrongBytes.store(true); // the one forbidden outcome
                } else {
                    hits.fetch_add(1);
                }
            }
        });
    }

    // Churn: filler puts crowd the cap and evict "hot"; periodic
    // re-puts bring it back, racing the readers both ways.
    for (int i = 0; i < 200; ++i) {
        store.put("filler-" + std::to_string(i), std::string(40, 'f'));
        if (i % 5 == 0)
            store.put("hot", hotPayload);
    }
    done.store(true);
    for (auto &r : readers)
        r.join();

    EXPECT_FALSE(wrongBytes.load());
    EXPECT_GT(store.stats().evictions.load(), 0u);
    EXPECT_GT(hits.load() + misses.load(), 0u);
}

// ---------------------------------------------------------------------
// svc::ResultStore: the service layer above the blobs
// ---------------------------------------------------------------------

TEST(ResultStore, SweepPayloadRoundTripsAcrossInstances)
{
    const std::string dir = tempDir("rs_sweep");
    const std::string payload = "point,job,bips\n0,0,1.5\n";
    {
        svc::ResultStore store(dir, 0);
        EXPECT_FALSE(store.fetchSweep(0xabcd).has_value());
        store.storeSweep(0xabcd, payload);
        EXPECT_EQ(store.fetchSweep(0xabcd), payload);
    }
    svc::ResultStore store(dir, 0);
    EXPECT_EQ(store.fetchSweep(0xabcd), payload);
    // A different fingerprint is a different identity entirely.
    EXPECT_FALSE(store.fetchSweep(0xabce).has_value());
}

TEST(ResultStore, CellRoundTripIsBitExact)
{
    svc::ResultStore store(tempDir("rs_cell"), 0);
    const study::CellRecord cell = makeCell(3, 1);
    store.storeCell(0xf00d, cell);
    const auto got = store.fetchCell(0xf00d, 3, 1);
    ASSERT_TRUE(got.has_value());
    // Bit-for-bit: the encoded forms must agree exactly, doubles and
    // all — this is what lets a cached cell substitute for execution.
    EXPECT_EQ(study::encodeCellRecord(*got),
              study::encodeCellRecord(cell));
    // The neighbouring slot is a miss, not a mis-delivery.
    EXPECT_FALSE(store.fetchCell(0xf00d, 3, 2).has_value());
}

TEST(ResultStore, CellSlotMismatchIsQuarantined)
{
    svc::ResultStore store(tempDir("rs_slot"), 0);
    // Frame a perfectly valid cell record for slot (1, 2) under the
    // blob key of slot (0, 0): the frame verifies, the decode works,
    // and only the slot cross-check can catch the mis-filing.
    const std::string payload =
        study::encodeCellRecord(makeCell(1, 2));
    ASSERT_TRUE(
        store.blobs().put(svc::ResultStore::cellKey(0x1, 0, 0), payload));
    EXPECT_FALSE(store.fetchCell(0x1, 0, 0).has_value());
    // Quarantined: the entry is gone, so it cannot mis-file twice.
    EXPECT_FALSE(
        fileExists(store.blobs().pathFor(
            svc::ResultStore::cellKey(0x1, 0, 0))));
}

TEST(ResultStore, UndecodableCellPayloadIsQuarantined)
{
    svc::ResultStore store(tempDir("rs_garbage"), 0);
    ASSERT_TRUE(store.blobs().put(svc::ResultStore::cellKey(0x2, 0, 0),
                                  "not a cell record"));
    EXPECT_FALSE(store.fetchCell(0x2, 0, 0).has_value());
    EXPECT_FALSE(
        fileExists(store.blobs().pathFor(
            svc::ResultStore::cellKey(0x2, 0, 0))));
}

TEST(ResultStore, KeysAreDistinctPerKindAndSlot)
{
    EXPECT_NE(svc::ResultStore::sweepKey(1),
              svc::ResultStore::cellKey(1, 0, 0));
    EXPECT_NE(svc::ResultStore::cellKey(1, 0, 1),
              svc::ResultStore::cellKey(1, 1, 0));
    EXPECT_NE(svc::ResultStore::sweepKey(1), svc::ResultStore::sweepKey(2));
}
