/**
 * @file
 * Wire-protocol corruption matrix, mirroring test_util_journal: every
 * kind of frame damage — truncation, a corrupt CRC, an unknown record
 * type, an oversize or runt length word, a version mismatch — maps to
 * a typed SvcError(Protocol), never a crash, a hang, or a partially
 * believed frame.  Plus round-trip fuzz of every typed body.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "study/runner.hh"
#include "svc/protocol.hh"
#include "svc/sweep.hh"
#include "util/journal.hh"
#include "util/net.hh"
#include "util/random.hh"
#include "util/status.hh"

using namespace fo4;
using svc::Frame;
using svc::MsgType;
using util::ErrorCode;

namespace
{

/** Decode a raw frame string the way a reader would. */
Frame
decodeRaw(const std::string &raw)
{
    EXPECT_GE(raw.size(), svc::kFrameHeaderBytes);
    unsigned char header[svc::kFrameHeaderBytes];
    std::memcpy(header, raw.data(), sizeof(header));
    const svc::FrameHeader h = svc::decodeFrameHeader(header);
    return svc::decodePayload(
        h, std::string_view(raw).substr(svc::kFrameHeaderBytes));
}

ErrorCode
decodeError(const std::string &raw)
{
    try {
        decodeRaw(raw);
    } catch (const util::SvcError &e) {
        return e.code();
    }
    return ErrorCode::Ok;
}

/** A loopback (listener, client, accepted server stream) triple. */
struct Loopback
{
    util::TcpListener listener{0};
    util::TcpStream client;
    util::TcpStream server;

    Loopback()
    {
        client = util::TcpStream::connect("127.0.0.1", listener.port());
        auto accepted = listener.accept(2000);
        EXPECT_TRUE(accepted.has_value());
        server = std::move(*accepted);
    }
};

svc::SweepRequest
sampleRequest()
{
    svc::SweepRequest req;
    req.tUseful = {8.0, 6.0};
    svc::WireJob a;
    a.name = "164.gzip";
    req.jobs.push_back(a);
    return req;
}

} // namespace

// ---------------------------------------------------------------------
// Frame round trip and the corruption matrix
// ---------------------------------------------------------------------

TEST(SvcFrame, RoundTripsTypeAndBody)
{
    const std::string raw =
        svc::encodeFrame(MsgType::SubmitSweep, "hello\nworld");
    const Frame frame = decodeRaw(raw);
    EXPECT_EQ(frame.type, MsgType::SubmitSweep);
    EXPECT_EQ(frame.body, "hello\nworld");
}

TEST(SvcFrame, EmptyBodyRoundTrips)
{
    const Frame frame = decodeRaw(svc::encodeFrame(MsgType::Stats, ""));
    EXPECT_EQ(frame.type, MsgType::Stats);
    EXPECT_TRUE(frame.body.empty());
}

TEST(SvcFrame, CorruptPayloadByteIsRefused)
{
    std::string raw = svc::encodeFrame(MsgType::Poll, "id=7\n");
    raw[svc::kFrameHeaderBytes + 5] ^= 0x40; // damage one body byte
    EXPECT_EQ(decodeError(raw), ErrorCode::Protocol);
}

TEST(SvcFrame, CorruptCrcWordIsRefused)
{
    std::string raw = svc::encodeFrame(MsgType::Poll, "id=7\n");
    raw[5] ^= 0x01; // damage the stored CRC itself
    EXPECT_EQ(decodeError(raw), ErrorCode::Protocol);
}

TEST(SvcFrame, UnknownRecordTypeIsRefused)
{
    // Patch the type word to 999 and re-seal the CRC: the frame is
    // well-formed, just meaningless — exactly the case the matrix
    // distinguishes from corruption.
    std::string payload;
    payload.push_back(static_cast<char>(svc::kProtocolVersion));
    payload.push_back(static_cast<char>(svc::kProtocolVersion >> 8));
    payload.push_back(static_cast<char>(999 & 0xff));
    payload.push_back(static_cast<char>(999 >> 8));
    std::string raw;
    raw.resize(svc::kFrameHeaderBytes);
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = util::crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
        raw[i] = static_cast<char>(len >> (8 * i));
        raw[4 + i] = static_cast<char>(crc >> (8 * i));
    }
    raw += payload;
    EXPECT_FALSE(svc::msgTypeKnown(999));
    EXPECT_EQ(decodeError(raw), ErrorCode::Protocol);
}

TEST(SvcFrame, VersionMismatchIsRefused)
{
    std::string payload;
    const std::uint16_t wrongVersion = svc::kProtocolVersion + 1;
    payload.push_back(static_cast<char>(wrongVersion));
    payload.push_back(static_cast<char>(wrongVersion >> 8));
    payload.push_back(static_cast<char>(
        static_cast<std::uint16_t>(MsgType::Stats)));
    payload.push_back(static_cast<char>(
        static_cast<std::uint16_t>(MsgType::Stats) >> 8));
    std::string raw;
    raw.resize(svc::kFrameHeaderBytes);
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = util::crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
        raw[i] = static_cast<char>(len >> (8 * i));
        raw[4 + i] = static_cast<char>(crc >> (8 * i));
    }
    raw += payload;
    EXPECT_EQ(decodeError(raw), ErrorCode::Protocol);
}

TEST(SvcFrame, OversizeLengthIsRefusedBeforeAllocation)
{
    unsigned char header[svc::kFrameHeaderBytes] = {};
    const std::uint32_t huge = svc::kMaxPayloadBytes + 1;
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<unsigned char>(huge >> (8 * i));
    try {
        svc::decodeFrameHeader(header);
        FAIL() << "oversize length word accepted";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
}

TEST(SvcFrame, RuntLengthIsRefused)
{
    // 3 bytes cannot hold the version and type words.
    unsigned char header[svc::kFrameHeaderBytes] = {3, 0, 0, 0,
                                                    0, 0, 0, 0};
    try {
        svc::decodeFrameHeader(header);
        FAIL() << "runt length word accepted";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
}

// ---------------------------------------------------------------------
// Stream framing over a real socket
// ---------------------------------------------------------------------

TEST(SvcStream, FrameSurvivesTheSocket)
{
    Loopback loop;
    svc::writeFrame(loop.client, MsgType::Poll, "id=42\n");
    const auto frame = svc::readFrame(loop.server, 2000);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Poll);
    EXPECT_EQ(frame->body, "id=42\n");
}

TEST(SvcStream, OrderlyEofBetweenFramesIsNullopt)
{
    Loopback loop;
    loop.client.close();
    EXPECT_FALSE(svc::readFrame(loop.server, 2000).has_value());
}

TEST(SvcStream, TruncatedHeaderIsProtocolError)
{
    Loopback loop;
    const std::string raw = svc::encodeFrame(MsgType::Poll, "id=1\n");
    loop.client.writeAll(raw.data(), 3); // 3 of 8 header bytes
    loop.client.close();
    try {
        svc::readFrame(loop.server, 2000);
        FAIL() << "truncated header accepted";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
}

TEST(SvcStream, TruncatedPayloadIsProtocolError)
{
    Loopback loop;
    const std::string raw = svc::encodeFrame(MsgType::Poll, "id=1\n");
    loop.client.writeAll(raw.data(), raw.size() - 2);
    loop.client.close();
    try {
        svc::readFrame(loop.server, 2000);
        FAIL() << "truncated payload accepted";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
}

// ---------------------------------------------------------------------
// Field escaping
// ---------------------------------------------------------------------

TEST(SvcEscape, RoundTripsStructuralCharacters)
{
    const std::string nasty = "a\\b\nc\td\\n\\\\e";
    EXPECT_EQ(svc::unescapeField(svc::escapeField(nasty)), nasty);
    EXPECT_EQ(svc::escapeField(nasty).find('\n'), std::string::npos);
    EXPECT_EQ(svc::escapeField(nasty).find('\t'), std::string::npos);
}

TEST(SvcEscape, DanglingEscapeIsRefused)
{
    EXPECT_THROW(svc::unescapeField("oops\\"), util::SvcError);
    EXPECT_THROW(svc::unescapeField("bad\\qescape"), util::SvcError);
}

// ---------------------------------------------------------------------
// Typed-body round trips
// ---------------------------------------------------------------------

TEST(SvcBodies, SweepRequestRoundTripsExactly)
{
    svc::SweepRequest req = sampleRequest();
    req.model = "inorder";
    req.predictor = "bimodal";
    req.instructions = 12345;
    req.warmup = 99;
    req.prewarm = 777;
    req.cycleLimit = 31337;
    req.overheadFo4 = 1.7999999999999998; // survives only via hexfloat
    req.tUseful = {15.999999999999996, 6.0, 2.0000000000000004};
    svc::WireJob traceJob;
    traceJob.name = "weird name\twith\nstructure";
    traceJob.cls = trace::BenchClass::VectorFp;
    traceJob.fromTrace = true;
    traceJob.tracePath = "/tmp/some\npath.fo4t";
    traceJob.cycleLimit = 10;
    req.jobs.push_back(traceJob);

    const svc::SweepRequest back =
        svc::SweepRequest::decode(req.encode());
    EXPECT_EQ(back.model, req.model);
    EXPECT_EQ(back.predictor, req.predictor);
    EXPECT_EQ(back.instructions, req.instructions);
    EXPECT_EQ(back.warmup, req.warmup);
    EXPECT_EQ(back.prewarm, req.prewarm);
    EXPECT_EQ(back.cycleLimit, req.cycleLimit);
    EXPECT_EQ(back.overheadFo4, req.overheadFo4); // bit-exact
    ASSERT_EQ(back.tUseful.size(), req.tUseful.size());
    for (std::size_t i = 0; i < req.tUseful.size(); ++i)
        EXPECT_EQ(back.tUseful[i], req.tUseful[i]);
    ASSERT_EQ(back.jobs.size(), req.jobs.size());
    for (std::size_t i = 0; i < req.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].name, req.jobs[i].name);
        EXPECT_EQ(back.jobs[i].cls, req.jobs[i].cls);
        EXPECT_EQ(back.jobs[i].fromTrace, req.jobs[i].fromTrace);
        EXPECT_EQ(back.jobs[i].tracePath, req.jobs[i].tracePath);
        EXPECT_EQ(back.jobs[i].cycleLimit, req.jobs[i].cycleLimit);
    }
}

TEST(SvcBodies, SweepRequestFuzzedDoublesRoundTrip)
{
    // Hexfloat is the whole identity story: any double the axis can
    // hold must decode to the same bits.
    util::Rng rng(0xf04dLL);
    svc::SweepRequest req = sampleRequest();
    req.tUseful.clear();
    for (int i = 0; i < 200; ++i)
        req.tUseful.push_back(2.0 + 14.0 * rng.uniform());
    const svc::SweepRequest back =
        svc::SweepRequest::decode(req.encode());
    ASSERT_EQ(back.tUseful.size(), req.tUseful.size());
    for (std::size_t i = 0; i < req.tUseful.size(); ++i)
        EXPECT_EQ(back.tUseful[i], req.tUseful[i]) << i;
}

TEST(SvcBodies, MalformedRequestsAreTypedErrors)
{
    const char *broken[] = {
        "",                                     // no fields at all
        "model=ooo\n",                          // no axis, no jobs
        "t_useful=6.0\n",                       // no jobs
        "job=profile\t0\t0\tgzip\n",            // no axis
        "t_useful=6.0\njob=magic\t0\t0\tx\n",   // bad job kind
        "t_useful=6.0\njob=profile\t9\t0\tx\n", // bad class
        "t_useful=6.0\njob=profile\t0\t0\t\n",  // empty name
        "t_useful=nope\njob=profile\t0\t0\tx\n", // bad double
        "instructions=-4\n",                    // negative unsigned
        "mystery=1\nt_useful=6\njob=profile\t0\t0\tx\n", // unknown key
        "no-equals-sign",                       // not key=value
    };
    for (const char *body : broken) {
        try {
            svc::SweepRequest::decode(body);
            FAIL() << "accepted: " << body;
        } catch (const util::SvcError &e) {
            EXPECT_EQ(e.code(), ErrorCode::Protocol) << body;
        }
    }
}

TEST(SvcBodies, JobStatusRoundTrips)
{
    svc::JobStatusInfo info;
    info.id = 77;
    info.state = svc::JobState::Failed;
    info.queuePosition = 3;
    info.cellsTotal = 42;
    info.cellsStarted = 17;
    info.errorCode = ErrorCode::Deadlock;
    info.errorMessage = "watchdog fired\nat cycle 10";
    const svc::JobStatusInfo back =
        svc::JobStatusInfo::decode(info.encode());
    EXPECT_EQ(back.id, info.id);
    EXPECT_EQ(back.state, info.state);
    EXPECT_EQ(back.queuePosition, info.queuePosition);
    EXPECT_EQ(back.cellsTotal, info.cellsTotal);
    EXPECT_EQ(back.cellsStarted, info.cellsStarted);
    EXPECT_EQ(back.errorCode, info.errorCode);
    EXPECT_EQ(back.errorMessage, info.errorMessage);
    EXPECT_TRUE(back.terminal());
}

TEST(SvcBodies, StatsRoundTrips)
{
    svc::StatsSnapshot s;
    s.queueDepth = 2;
    s.maxQueue = 8;
    s.runningJobs = 1;
    s.runningCellsStarted = 5;
    s.runningCellsTotal = 12;
    s.submitted = 10;
    s.rejected = 3;
    s.completed = 6;
    s.failed = 1;
    s.cancelled = 2;
    s.latencyBuckets = {0, 1, 5, 2};
    s.latencySamples = 8;
    s.latencyMeanMs = 2.125;
    s.counters = {{"svc.connections", 4}, {"weird\tname", 9}};
    const svc::StatsSnapshot back =
        svc::StatsSnapshot::decode(s.encode());
    EXPECT_EQ(back.queueDepth, s.queueDepth);
    EXPECT_EQ(back.maxQueue, s.maxQueue);
    EXPECT_EQ(back.runningJobs, s.runningJobs);
    EXPECT_EQ(back.runningCellsStarted, s.runningCellsStarted);
    EXPECT_EQ(back.runningCellsTotal, s.runningCellsTotal);
    EXPECT_EQ(back.submitted, s.submitted);
    EXPECT_EQ(back.rejected, s.rejected);
    EXPECT_EQ(back.completed, s.completed);
    EXPECT_EQ(back.failed, s.failed);
    EXPECT_EQ(back.cancelled, s.cancelled);
    EXPECT_EQ(back.latencyBuckets, s.latencyBuckets);
    EXPECT_EQ(back.latencySamples, s.latencySamples);
    EXPECT_EQ(back.latencyMeanMs, s.latencyMeanMs);
    EXPECT_EQ(back.counters, s.counters);
}

TEST(SvcBodies, ErrorAndIdBodiesRoundTrip)
{
    const auto [code, message] = svc::decodeError(
        svc::encodeError(ErrorCode::Overloaded, "queue full\nretry"));
    EXPECT_EQ(code, ErrorCode::Overloaded);
    EXPECT_EQ(message, "queue full\nretry");

    EXPECT_EQ(svc::decodeId(svc::encodeId(918273645)), 918273645u);
    const auto [id, cells] =
        svc::decodeSubmitOk(svc::encodeSubmitOk(7, 84));
    EXPECT_EQ(id, 7u);
    EXPECT_EQ(cells, 84u);

    // An unknown remote code degrades to Internal, staying typed.
    EXPECT_EQ(util::errorCodeFromName("FutureProtocolCode"),
              ErrorCode::Internal);
    EXPECT_EQ(util::errorCodeFromName("Deadlock"), ErrorCode::Deadlock);
}

TEST(SvcBodies, JobStateNamesRoundTrip)
{
    for (const svc::JobState s :
         {svc::JobState::Queued, svc::JobState::Running,
          svc::JobState::Done, svc::JobState::Failed,
          svc::JobState::Cancelled}) {
        EXPECT_EQ(svc::jobStateFromName(svc::jobStateName(s)), s);
    }
    EXPECT_THROW(svc::jobStateFromName("Exploded"), util::SvcError);
}

// ---------------------------------------------------------------------
// Results rendering: the serializeSuite discipline over the wire
// ---------------------------------------------------------------------

TEST(SvcResults, RenderMatchesSerializeSuiteBytes)
{
    // A tiny real sweep: rendering is header + point lines + the exact
    // serializeSuite bytes, so wire results inherit the byte-identity
    // contract of the parallel engine.
    svc::SweepRequest req = sampleRequest();
    req.instructions = 2000;
    req.warmup = 200;
    req.prewarm = 10000;
    const svc::SweepPlan plan = svc::planSweep(req);
    const std::string a = svc::runSweep(plan, 1, "", nullptr, {});
    const std::string b = svc::runSweep(plan, 1, "", nullptr, {});
    EXPECT_EQ(a, b); // deterministic end to end
    EXPECT_EQ(a.rfind("fo4-sweep-results v1\n", 0), 0u);
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        EXPECT_NE(a.find(util::strprintf("point=%zu t_useful=%a", i,
                                         plan.tUseful[i])),
                  std::string::npos);
    }

    // serializeSuite round trip: the canonical bytes of a real sweep,
    // framed as a Results record and read back over a real socket,
    // arrive bit-exact — the opaque-payload half of the identity
    // guarantee.
    Loopback sockets;
    svc::writeFrame(sockets.client, svc::MsgType::Results, a);
    const auto got = svc::readFrame(sockets.server, 2000);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, svc::MsgType::Results);
    EXPECT_EQ(got->body, a);
}

TEST(SvcResults, FuzzedOpaquePayloadsSurviveFraming)
{
    // Length-prefixed framing promises "no escaping needed": any byte
    // string — embedded NULs, newlines, tabs, 0xFF runs, hexfloat text —
    // crosses the wire unchanged.  Fuzz that promise.
    util::Rng rng(0x5eedf04dULL);
    Loopback sockets;
    for (int round = 0; round < 50; ++round) {
        const std::size_t size =
            static_cast<std::size_t>(rng.uniform() * 4096);
        std::string payload;
        payload.reserve(size + 32);
        for (std::size_t i = 0; i < size; ++i)
            payload.push_back(
                static_cast<char>(rng.uniform() * 256.0));
        // Splice in the structural characters escaping would fear.
        payload += '\n';
        payload += '\t';
        payload += '\0'; // printf-style rendering would truncate here
        payload += util::strprintf("|%a\n", rng.uniform());
        svc::writeFrame(sockets.client, svc::MsgType::Results, payload);
        const auto got = svc::readFrame(sockets.server, 2000);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->body, payload) << "round " << round;
    }
}

// ---------------------------------------------------------------------
// Monte Carlo request fields (protocol v4)
// ---------------------------------------------------------------------

TEST(SvcBodies, MonteCarloFieldsRoundTripExactly)
{
    svc::SweepRequest req = sampleRequest();
    req.mcSamples = 64;
    req.mcDist = "lognormal";
    req.mcSigmaLatch = 0.08000000000000007; // survives only via hexfloat
    req.mcSigmaSkew = 0.019999999999999997;
    req.mcSigmaJitter = 0.03;
    req.mcSigmaDie = 1e-17;
    req.mcSeed = 0xdeadbeefcafef00dULL;

    const svc::SweepRequest back =
        svc::SweepRequest::decode(req.encode());
    EXPECT_EQ(back.mcSamples, req.mcSamples);
    EXPECT_EQ(back.mcDist, req.mcDist);
    EXPECT_EQ(back.mcSigmaLatch, req.mcSigmaLatch); // bit-exact
    EXPECT_EQ(back.mcSigmaSkew, req.mcSigmaSkew);
    EXPECT_EQ(back.mcSigmaJitter, req.mcSigmaJitter);
    EXPECT_EQ(back.mcSigmaDie, req.mcSigmaDie);
    EXPECT_EQ(back.mcSeed, req.mcSeed);
}

TEST(SvcBodies, DeterministicRequestOmitsMonteCarloFields)
{
    // mcSamples == 0 must keep the body byte-stable with pre-v4
    // encoders: no mc_* key may appear.
    const svc::SweepRequest req = sampleRequest();
    ASSERT_EQ(req.mcSamples, 0u);
    const std::string body = req.encode();
    EXPECT_EQ(body.find("mc_"), std::string::npos) << body;
    const svc::SweepRequest back = svc::SweepRequest::decode(body);
    EXPECT_EQ(back.mcSamples, 0u);
    EXPECT_EQ(back.mcDist, "normal");
    EXPECT_EQ(back.mcSigmaLatch, 0.0);
    EXPECT_EQ(back.mcSeed, 0u);
}

TEST(SvcBodies, MalformedMonteCarloFieldsAreTypedErrors)
{
    const char *broken[] = {
        "mc_samples=nope\nt_useful=6\njob=profile\t0\t0\tx\n",
        "mc_dist=cauchy\nt_useful=6\njob=profile\t0\t0\tx\n",
        "mc_sigma_latch=zzz\nt_useful=6\njob=profile\t0\t0\tx\n",
        "mc_seed=-3\nt_useful=6\njob=profile\t0\t0\tx\n",
    };
    for (const char *body : broken) {
        try {
            svc::SweepRequest::decode(body);
            FAIL() << "accepted: " << body;
        } catch (const util::SvcError &e) {
            EXPECT_EQ(e.code(), ErrorCode::Protocol) << body;
        }
    }
}

TEST(SvcBodies, MonteCarloPlanExpandsSampleMajor)
{
    svc::SweepRequest req = sampleRequest();
    req.tUseful = {8.0, 6.0};
    req.mcSamples = 3;
    req.mcSigmaLatch = 0.05;
    req.mcSeed = 7;
    const svc::SweepPlan plan =
        svc::planSweep(svc::SweepRequest::decode(req.encode()));
    // 3 dice x 2 base points, sample-major; t_useful repeats in step.
    ASSERT_EQ(plan.points.size(), 6u);
    ASSERT_EQ(plan.tUseful.size(), 6u);
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(plan.tUseful[s * 2 + 0], 8.0);
        EXPECT_EQ(plan.tUseful[s * 2 + 1], 6.0);
        EXPECT_EQ(plan.points[s * 2 + 0].clock.tUsefulFo4, 8.0);
        EXPECT_EQ(plan.points[s * 2 + 1].clock.tUsefulFo4, 6.0);
    }
    // Dice drew distinct clocks; replanning the same body reproduces
    // them bit-exactly (what lets a fleet worker re-derive the grid).
    EXPECT_NE(plan.points[0].clock.overhead.latchFo4,
              plan.points[2].clock.overhead.latchFo4);
    const svc::SweepPlan again =
        svc::planSweep(svc::SweepRequest::decode(req.encode()));
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        EXPECT_EQ(plan.points[i].clock.overhead.latchFo4,
                  again.points[i].clock.overhead.latchFo4);
        EXPECT_EQ(plan.points[i].clock.overhead.skewFo4,
                  again.points[i].clock.overhead.skewFo4);
        EXPECT_EQ(plan.points[i].clock.overhead.jitterFo4,
                  again.points[i].clock.overhead.jitterFo4);
    }
    EXPECT_EQ(svc::planFingerprint(plan), svc::planFingerprint(again));
}
