/**
 * @file
 * Randomized stress tests for the issue window: thousands of random
 * insert/select cycles against invariant checks, across monolithic,
 * segmented and partitioned configurations.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/window.hh"
#include "util/random.hh"

using namespace fo4::core;
using fo4::util::Rng;

namespace
{

/** Oracle over a mutable table of producer ready-cycles. */
class FuzzOracle : public WakeupOracle
{
  public:
    std::map<InflightRef, std::int64_t> readyBase; // -1 absent = unknown

    std::int64_t
    dependentReadyCycle(InflightRef ref, int stage) const override
    {
        auto it = readyBase.find(ref);
        if (it == readyBase.end())
            return -1;
        return it->second + stage;
    }
};

struct FuzzCase
{
    WindowConfig cfg;
    std::uint64_t seed;
};

class WindowFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

} // namespace

TEST_P(WindowFuzz, InvariantsHoldUnderRandomTraffic)
{
    const auto &fc = GetParam();
    IssueWindow window(fc.cfg);
    FuzzOracle oracle;
    Rng rng(fc.seed);

    std::uint64_t nextSeq = 0;
    InflightRef nextRef = 0;
    std::uint64_t inserted = 0, issued = 0;
    std::set<InflightRef> everIssued;
    // Entries currently in the window with their producer list.
    std::map<InflightRef, std::vector<InflightRef>> live;

    for (std::int64_t cycle = 0; cycle < 3000; ++cycle) {
        // Insert a random burst.
        const int burst = static_cast<int>(rng.below(4));
        for (int i = 0; i < burst && !window.full(); ++i) {
            WindowInsert ins;
            ins.ref = nextRef;
            ins.seq = nextSeq++;
            ins.fp = rng.chance(0.3);
            ins.mem = !ins.fp && rng.chance(0.3);
            std::vector<InflightRef> producers;
            // Depend on recent refs with 50% probability each slot.
            for (int s = 0; s < 2; ++s) {
                if (nextRef > 0 && rng.chance(0.5)) {
                    const InflightRef p = static_cast<InflightRef>(
                        rng.below(nextRef));
                    ins.producers[s] = p;
                    producers.push_back(p);
                }
            }
            live[ins.ref] = producers;
            window.insert(ins);
            ++nextRef;
            ++inserted;
        }

        // Randomly resolve some producers: anything ever created may
        // become ready at a cycle in the near future or past.
        if (rng.chance(0.7) && nextRef > 0) {
            const InflightRef p =
                static_cast<InflightRef>(rng.below(nextRef));
            if (!oracle.readyBase.count(p))
                oracle.readyBase[p] = cycle + rng.range(-2, 6);
        }

        // Select with random limits.
        const SelectLimits limits{static_cast<int>(1 + rng.below(4)),
                                  static_cast<int>(rng.below(3)),
                                  static_cast<int>(rng.below(3))};
        const auto picks = window.selectAndRemove(cycle, limits, oracle);

        // Invariant: never exceed the requested bandwidth.
        int ints = 0, fps = 0, mems = 0;
        for (const InflightRef ref : picks) {
            ASSERT_TRUE(live.count(ref)) << "issued unknown entry";
            // Invariant: no double issue.
            ASSERT_FALSE(everIssued.count(ref));
            everIssued.insert(ref);

            // Invariant: every producer was resolved and its stage-0
            // wakeup time has passed (stage delays only add).
            for (const InflightRef p : live[ref]) {
                ASSERT_TRUE(oracle.readyBase.count(p))
                    << "issued before producer resolved";
                ASSERT_LE(oracle.readyBase[p], cycle)
                    << "issued before stage-0 wakeup";
            }
            live.erase(ref);
            ++issued;
        }
        (void)ints;
        (void)fps;
        (void)mems;

        // Invariant: occupancy accounting.
        ASSERT_EQ(window.size(), inserted - issued);
        ASSERT_LE(window.size(), static_cast<std::size_t>(fc.cfg.capacity));
    }

    // The window must have made real progress.
    EXPECT_GT(issued, 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WindowFuzz,
    ::testing::Values(
        FuzzCase{WindowConfig{32, 1, SelectModel::Full, {}}, 1},
        FuzzCase{WindowConfig{32, 4, SelectModel::Full, {}}, 2},
        FuzzCase{WindowConfig{32, 10, SelectModel::Full, {}}, 3},
        FuzzCase{WindowConfig{32, 4, SelectModel::Partitioned,
                              {5, 2, 1, 1, 1, 1, 1, 1}}, 4},
        FuzzCase{WindowConfig{16, 2, SelectModel::Partitioned,
                              {3, 2, 1, 1, 1, 1, 1, 1}}, 5},
        FuzzCase{WindowConfig{64, 8, SelectModel::Full, {}}, 6}));

TEST(WindowFuzzDirected, SelectionIsAgeOrderedWithinCluster)
{
    // With generous limits and all entries ready, issue order must be
    // exactly age order.
    WindowConfig cfg;
    cfg.capacity = 16;
    IssueWindow window(cfg);
    FuzzOracle oracle;
    for (InflightRef r = 0; r < 16; ++r)
        window.insert({r, r, false, false, {invalidRef, invalidRef}});
    const auto picks =
        window.selectAndRemove(0, SelectLimits{16, 0, 0}, oracle);
    ASSERT_EQ(picks.size(), 16u);
    for (std::size_t i = 0; i < picks.size(); ++i)
        EXPECT_EQ(picks[i], i);
}

TEST(WindowFuzzDirected, StarvationFreeUnderFullLoad)
{
    // Keep the window full of ready entries; every entry must issue
    // within a bounded number of cycles (oldest-first guarantees it).
    WindowConfig cfg;
    cfg.capacity = 8;
    IssueWindow window(cfg);
    FuzzOracle oracle;
    InflightRef next = 0;
    std::map<InflightRef, std::int64_t> insertedAt;
    for (std::int64_t cycle = 0; cycle < 200; ++cycle) {
        while (!window.full()) {
            window.insert(
                {next, next, false, false, {invalidRef, invalidRef}});
            insertedAt[next] = cycle;
            ++next;
        }
        for (const InflightRef ref :
             window.selectAndRemove(cycle, SelectLimits{2, 0, 0},
                                    oracle)) {
            EXPECT_LE(cycle - insertedAt[ref], 8) << "entry starved";
            insertedAt.erase(ref);
        }
    }
}
