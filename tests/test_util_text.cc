/**
 * @file
 * Unit tests for text tables, CSV output and the config store.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/config.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace fo4::util;

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header present, rule present, rows present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Each line of the body starts at column 0 with the first cell.
    EXPECT_EQ(out.find("x"), out.find("x"));
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(std::int64_t{-42}), "-42");
}

TEST(TextTable, CountsRowsAndColumns)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 3u);
}

TEST(TextTable, MismatchedRowPanics)
{
    TextTable t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Csv, PlainFieldsUnquoted)
{
    EXPECT_EQ(CsvWriter::escape("hello"), "hello");
    EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
}

TEST(Csv, FieldsWithCommasQuoted)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesDoubled)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.writeRow({"a", "b,c"});
    w.writeRow({"1", "2"});
    EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

TEST(Config, ParsesKeyValuesAndPositional)
{
    const char *argv[] = {"prog", "t_useful=6", "run", "bips=1.5"};
    const Config cfg = Config::fromArgs(4, argv);
    EXPECT_EQ(cfg.getInt("t_useful", 0), 6);
    EXPECT_DOUBLE_EQ(cfg.getDouble("bips", 0.0), 1.5);
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "run");
}

TEST(Config, FallbacksWhenMissing)
{
    const Config cfg;
    EXPECT_EQ(cfg.getInt("missing", 7), 7);
    EXPECT_EQ(cfg.getString("missing", "dflt"), "dflt");
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, ParsesBooleans)
{
    Config cfg;
    cfg.set("a", "true");
    cfg.set("b", "0");
    cfg.set("c", "yes");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
}

TEST(Config, HexIntegers)
{
    Config cfg;
    cfg.set("addr", "0x10");
    EXPECT_EQ(cfg.getInt("addr", 0), 16);
}
