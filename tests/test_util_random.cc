/**
 * @file
 * Unit and property tests for the RNG and sampling distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/random.hh"

using fo4::util::DiscreteSampler;
using fo4::util::Rng;
using fo4::util::ZipfSampler;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.below(8)];
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[v, count] : seen)
        EXPECT_GT(count, 900); // roughly uniform
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyTracksP)
{
    Rng rng(123);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng rng(77);
    const double p = 0.25;
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(DiscreteSampler, NormalizesProbabilities)
{
    DiscreteSampler s({2.0, 6.0, 2.0});
    EXPECT_DOUBLE_EQ(s.probability(0), 0.2);
    EXPECT_DOUBLE_EQ(s.probability(1), 0.6);
    EXPECT_DOUBLE_EQ(s.probability(2), 0.2);
}

TEST(DiscreteSampler, EmpiricalFrequenciesMatch)
{
    DiscreteSampler s({1.0, 3.0, 6.0});
    Rng rng(55);
    const int n = 300000;
    std::vector<int> counts(3, 0);
    for (int i = 0; i < n; ++i)
        ++counts[s.sample(rng)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled)
{
    DiscreteSampler s({1.0, 0.0, 1.0});
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_NE(s.sample(rng), 1u);
}

TEST(DiscreteSampler, SingleOutcome)
{
    DiscreteSampler s({5.0});
    Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(s.sample(rng), 0u);
}

TEST(ZipfSampler, FirstRankMostFrequent)
{
    ZipfSampler z(100, 1.0);
    Rng rng(6);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSampler, UniformWhenExponentZero)
{
    ZipfSampler z(10, 0.0);
    Rng rng(14);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c / double(n), 0.1, 0.01);
}

TEST(ZipfSampler, InRange)
{
    ZipfSampler z(5, 2.0);
    Rng rng(21);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 5u);
}

// Property sweep: geometric mean tracks (1-p)/p across p values.
class GeometricSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GeometricSweep, MeanMatches)
{
    const double p = GetParam();
    Rng rng(static_cast<std::uint64_t>(p * 1e6) + 17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, 0.05 * (expected + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Ps, GeometricSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

// ---------------------------------------------------------------------
// RandomStream: the counter-based splittable streams behind Monte Carlo
// overhead sampling and the retry policy's backoff jitter.
// ---------------------------------------------------------------------

using fo4::util::RandomStream;

TEST(RandomStream, DeterministicForSameCoordinates)
{
    const RandomStream a = RandomStream::root(99).child(3).child(7);
    const RandomStream b = RandomStream::root(99).child(3).child(7);
    EXPECT_EQ(a.key(), b.key());
    for (std::uint64_t c = 0; c < 64; ++c)
        EXPECT_EQ(a.bits(c), b.bits(c));
}

TEST(RandomStream, RandomAccessIsOrderFree)
{
    // bits(k) is a pure function of (key, k): reading counters out of
    // order, or skipping some entirely, changes nothing.
    const RandomStream s = RandomStream::root(5).child(1);
    const std::uint64_t late = s.bits(1000);
    const std::uint64_t early = s.bits(2);
    EXPECT_EQ(s.bits(1000), late);
    EXPECT_EQ(s.bits(2), early);
}

TEST(RandomStream, SiblingsAndSeedsDiverge)
{
    const RandomStream root = RandomStream::root(42);
    // Sibling children, parent-vs-child, and different roots must all
    // draw independently.
    const RandomStream kids[] = {root.child(0), root.child(1),
                                 root.child(2)};
    for (int i = 0; i < 3; ++i) {
        for (int j = i + 1; j < 3; ++j) {
            int same = 0;
            for (std::uint64_t c = 0; c < 64; ++c)
                same += kids[i].bits(c) == kids[j].bits(c);
            EXPECT_EQ(same, 0) << "children " << i << " vs " << j;
        }
        int sameAsParent = 0;
        for (std::uint64_t c = 0; c < 64; ++c)
            sameAsParent += kids[i].bits(c) == root.bits(c);
        EXPECT_EQ(sameAsParent, 0);
    }
    int sameSeed = 0;
    for (std::uint64_t c = 0; c < 64; ++c)
        sameSeed += RandomStream::root(1).bits(c) ==
                    RandomStream::root(2).bits(c);
    EXPECT_EQ(sameSeed, 0);
}

TEST(RandomStream, ChildIndexMatters)
{
    // child(i) and child(j) differ even for adjacent and huge indices.
    const RandomStream root = RandomStream::root(7);
    EXPECT_NE(root.child(0).key(), root.child(1).key());
    EXPECT_NE(root.child(0).key(),
              root.child(~std::uint64_t{0}).key());
    // Nested paths with equal flattened sums must not collide.
    EXPECT_NE(root.child(1).child(2).key(), root.child(2).child(1).key());
}

TEST(RandomStream, GoldenBitsPinCrossPlatformStability)
{
    // The streams feed grid fingerprints and journaled results, so the
    // exact values are part of the repo's byte-identity contract.  If
    // this test fails, the mixing constants changed and every Monte
    // Carlo golden is invalidated — bump them deliberately or not at
    // all.
    const RandomStream r = RandomStream::root(0xf04);
    EXPECT_EQ(r.bits(0), 0xd2173fb7996ca373ULL);
    EXPECT_EQ(r.bits(1), 0xa751eb30c4fe778aULL);
    EXPECT_EQ(r.child(7).bits(0), 0x46ffac8e46024a20ULL);
    EXPECT_EQ(r.uniform(0), 0x1.a42e7f6f32d94p-1);
    EXPECT_EQ(r.normal(0, 0.0, 1.0), 0x1.6ef03876cf54p-4);
}

TEST(RandomStream, UniformInUnitInterval)
{
    const RandomStream s = RandomStream::root(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = s.uniform(static_cast<std::uint64_t>(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomStream, NormalMomentsAndIrwinHallRange)
{
    const RandomStream s = RandomStream::root(23);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double z =
            s.normal(static_cast<std::uint64_t>(i), 0.0, 1.0);
        // Irwin-Hall n=12 is bounded: |z| <= 6 by construction.
        EXPECT_LE(std::abs(z), 6.0);
        sum += z;
        sq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RandomStream, ZeroSigmaNormalIsMeanBitExact)
{
    // The keystone of the zero-sigma Monte Carlo identity: with
    // sigma == 0 the draw *is* the mean, bit for bit, for every counter.
    const RandomStream s = RandomStream::root(31);
    for (std::uint64_t d = 0; d < 100; ++d) {
        EXPECT_EQ(s.normal(d, 1.8, 0.0), 1.8);
        EXPECT_EQ(s.normal(d, 0.3, 0.0), 0.3);
    }
    // And mean/sigma shift-scale exactly as documented.
    const double z = s.normal(4, 0.0, 1.0);
    EXPECT_EQ(s.normal(4, 2.0, 3.0), 2.0 + 3.0 * z);
}
