/**
 * @file
 * Unit and property tests for the RNG and sampling distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/random.hh"

using fo4::util::DiscreteSampler;
using fo4::util::Rng;
using fo4::util::ZipfSampler;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.below(8)];
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[v, count] : seen)
        EXPECT_GT(count, 900); // roughly uniform
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyTracksP)
{
    Rng rng(123);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng rng(77);
    const double p = 0.25;
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(DiscreteSampler, NormalizesProbabilities)
{
    DiscreteSampler s({2.0, 6.0, 2.0});
    EXPECT_DOUBLE_EQ(s.probability(0), 0.2);
    EXPECT_DOUBLE_EQ(s.probability(1), 0.6);
    EXPECT_DOUBLE_EQ(s.probability(2), 0.2);
}

TEST(DiscreteSampler, EmpiricalFrequenciesMatch)
{
    DiscreteSampler s({1.0, 3.0, 6.0});
    Rng rng(55);
    const int n = 300000;
    std::vector<int> counts(3, 0);
    for (int i = 0; i < n; ++i)
        ++counts[s.sample(rng)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled)
{
    DiscreteSampler s({1.0, 0.0, 1.0});
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_NE(s.sample(rng), 1u);
}

TEST(DiscreteSampler, SingleOutcome)
{
    DiscreteSampler s({5.0});
    Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(s.sample(rng), 0u);
}

TEST(ZipfSampler, FirstRankMostFrequent)
{
    ZipfSampler z(100, 1.0);
    Rng rng(6);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSampler, UniformWhenExponentZero)
{
    ZipfSampler z(10, 0.0);
    Rng rng(14);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c / double(n), 0.1, 0.01);
}

TEST(ZipfSampler, InRange)
{
    ZipfSampler z(5, 2.0);
    Rng rng(21);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 5u);
}

// Property sweep: geometric mean tracks (1-p)/p across p values.
class GeometricSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GeometricSweep, MeanMatches)
{
    const double p = GetParam();
    Rng rng(static_cast<std::uint64_t>(p * 1e6) + 17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, 0.05 * (expected + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Ps, GeometricSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));
