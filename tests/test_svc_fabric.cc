/**
 * @file
 * The sweep fabric under test, from pure bookkeeping to full chaos.
 *
 * Unit layer (fabricated clocks, no sockets, no sleeps): CellScheduler
 * lease lifecycle — grant, first-wins completion, expiry and
 * dead-worker reclaim — and the WorkerTable failure detector's
 * Live -> Suspect -> Dead ladder.
 *
 * Integration layer (real coordinator, real in-process workers, real
 * loopback sockets): the headline identity guarantee — a sweep sharded
 * across a fleet is byte-identical to the same sweep run locally,
 * *no matter what the fleet does*.  The chaos test is the acceptance
 * criterion: one worker SIGKILLed mid-sweep (in-process kill(): the
 * cell dies unreported), another frozen behind a black-holed proxy,
 * their cells re-dispatched, the remainder finished by local fallback
 * — and the fetched bytes still cmp-equal a plain local run.
 *
 * Also here: zero-worker fleets complete via local fallback, a client
 * with reconnect enabled survives a daemon restart on the same port,
 * and client timeout validation refuses non-positive deadlines.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "chaos_proxy.hh"
#include "svc/client.hh"
#include "svc/coordinator.hh"
#include "svc/lease.hh"
#include "svc/server.hh"
#include "svc/sweep.hh"
#include "svc/worker.hh"
#include "util/metrics.hh"
#include "util/status.hh"

using namespace fo4;
using util::ErrorCode;
using util::SvcError;

namespace
{

svc::FabricTime
t0()
{
    return svc::FabricClock::now();
}

svc::FabricTime
plus(svc::FabricTime base, std::uint64_t msOffset)
{
    return base + std::chrono::milliseconds(msOffset);
}

/** A modest grid: 2 depths x 2 benchmarks = 4 cells. */
svc::SweepRequest
smallRequest()
{
    svc::SweepRequest req;
    req.instructions = 6000;
    req.warmup = 500;
    req.prewarm = 20000;
    req.tUseful = {8.0, 6.0};
    for (const char *name : {"164.gzip", "181.mcf"}) {
        svc::WireJob job;
        job.name = name;
        req.jobs.push_back(std::move(job));
    }
    return req;
}

/** A bigger grid (8 cells, heavier cells) so chaos lands mid-sweep. */
svc::SweepRequest
chaosRequest()
{
    svc::SweepRequest req;
    req.instructions = 30000;
    req.warmup = 2000;
    req.prewarm = 50000;
    req.tUseful = {10.0, 8.0, 6.0, 4.6};
    for (const char *name : {"164.gzip", "256.bzip2"}) {
        svc::WireJob job;
        job.name = name;
        req.jobs.push_back(std::move(job));
    }
    return req;
}

std::string
localBytes(const svc::SweepRequest &request)
{
    // Round-trip through the wire codec first, exactly like the
    // coordinator will, so both sides plan from identical inputs.
    const svc::SweepRequest decoded =
        svc::SweepRequest::decode(request.encode());
    return svc::runSweep(svc::planSweep(decoded), 1, "", nullptr, {});
}

svc::CoordinatorOptions
fastCoordinator()
{
    svc::CoordinatorOptions opts;
    opts.port = 0;
    opts.detector.heartbeatMs = 50;
    opts.detector.suspectAfterMs = 150;
    opts.detector.deadAfterMs = 400;
    opts.leaseTimeoutMs = 2000;
    opts.tickMs = 20;
    opts.localFallback = true;
    opts.fallbackGraceMs = 300;
    return opts;
}

svc::WorkerOptions
workerFor(std::uint16_t port, const std::string &name,
          int ioTimeoutMs = 2000)
{
    svc::WorkerOptions opts;
    opts.port = port;
    opts.name = name;
    opts.connectTimeoutMs = 2000;
    opts.ioTimeoutMs = ioTimeoutMs;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// CellScheduler (pure, fabricated time)
// ---------------------------------------------------------------------

TEST(CellScheduler, GrantsEveryCellExactlyOnceThenNoWork)
{
    svc::CellScheduler sched(2, 3);
    const auto now = t0();
    std::size_t granted = 0;
    while (sched.grant(1, plus(now, 1000)))
        ++granted;
    EXPECT_EQ(6u, granted);
    EXPECT_EQ(6u, sched.leasedCount());
    EXPECT_EQ(0u, sched.pendingCount());
    EXPECT_FALSE(sched.grant(1, plus(now, 1000)).has_value());
}

TEST(CellScheduler, FirstCompletionWinsDuplicatesAreDropped)
{
    svc::CellScheduler sched(1, 2);
    const auto now = t0();
    ASSERT_TRUE(sched.grant(1, plus(now, 1000)).has_value());
    EXPECT_TRUE(sched.complete(0, 0));
    EXPECT_FALSE(sched.complete(0, 0)) << "duplicate must be dropped";
    EXPECT_EQ(1u, sched.doneCount());
    EXPECT_FALSE(sched.finished());
    EXPECT_TRUE(sched.complete(0, 1));
    EXPECT_TRUE(sched.finished());
}

TEST(CellScheduler, ExpiredLeasesReturnToPendingAndRegrant)
{
    svc::CellScheduler sched(1, 2);
    const auto now = t0();
    ASSERT_TRUE(sched.grant(7, plus(now, 100)).has_value());
    ASSERT_TRUE(sched.grant(7, plus(now, 5000)).has_value());

    // Only the first lease is past its expiry at +200ms.
    EXPECT_EQ(1u, sched.reclaimExpired(plus(now, 200)));
    EXPECT_EQ(1u, sched.pendingCount());
    EXPECT_EQ(1u, sched.leasedCount());

    // The reclaimed cell can be granted again — to another worker.
    const auto key = sched.grant(9, plus(now, 9000));
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(0u, sched.pendingCount());
}

TEST(CellScheduler, DeadWorkersLeasesAreReclaimedTogether)
{
    svc::CellScheduler sched(2, 2);
    const auto now = t0();
    ASSERT_TRUE(sched.grant(1, plus(now, 1000)).has_value());
    ASSERT_TRUE(sched.grant(2, plus(now, 1000)).has_value());
    ASSERT_TRUE(sched.grant(1, plus(now, 1000)).has_value());
    EXPECT_EQ(2u, sched.activeLeases(1));
    EXPECT_EQ(1u, sched.activeLeases(2));

    EXPECT_EQ(2u, sched.reclaimWorker(1));
    EXPECT_EQ(0u, sched.activeLeases(1));
    // 1 never-granted cell + 2 reclaimed; worker 2's lease survives.
    EXPECT_EQ(3u, sched.pendingCount());
    EXPECT_EQ(1u, sched.leasedCount());
}

TEST(CellScheduler, CompletionFromRevokedLeaseStillCounts)
{
    svc::CellScheduler sched(1, 1);
    const auto now = t0();
    ASSERT_TRUE(sched.grant(1, plus(now, 100)).has_value());
    EXPECT_EQ(1u, sched.reclaimExpired(plus(now, 200)));
    // The original owner finishes anyway (it was slow, not dead):
    // purity makes its bytes just as good, so the completion lands.
    EXPECT_TRUE(sched.complete(0, 0));
    EXPECT_TRUE(sched.finished());
    // The re-dispatched grant is skipped lazily.
    EXPECT_FALSE(sched.grant(2, plus(now, 9000)).has_value());
}

TEST(CellScheduler, ReplayedCellsAreNeverGranted)
{
    svc::CellScheduler sched(2, 2);
    sched.markDone(0, 0);
    sched.markDone(1, 1);
    sched.markDone(1, 1); // idempotent
    EXPECT_EQ(2u, sched.doneCount());
    const auto now = t0();
    std::size_t granted = 0;
    while (sched.grant(1, plus(now, 1000)))
        ++granted;
    EXPECT_EQ(2u, granted) << "only the two unreplayed cells remain";
}

// ---------------------------------------------------------------------
// WorkerTable failure detector (pure, fabricated time)
// ---------------------------------------------------------------------

TEST(WorkerTable, SilenceDegradesLiveToSuspectToDead)
{
    svc::WorkerTable fleet({50, 150, 400});
    const auto now = t0();
    const auto id = fleet.registerWorker("w", 1, now);
    EXPECT_EQ(1u, fleet.liveCount());

    EXPECT_TRUE(fleet.newlyDead(plus(now, 100)).empty());
    auto rows = fleet.snapshot(plus(now, 100),
                               [](std::uint64_t) { return 0u; });
    EXPECT_EQ(svc::WorkerState::Live, rows[0].state);

    EXPECT_TRUE(fleet.newlyDead(plus(now, 200)).empty());
    rows = fleet.snapshot(plus(now, 200),
                          [](std::uint64_t) { return 0u; });
    EXPECT_EQ(svc::WorkerState::Suspect, rows[0].state);
    EXPECT_EQ(1u, fleet.liveCount()) << "a suspect still counts";

    const auto died = fleet.newlyDead(plus(now, 500));
    ASSERT_EQ(1u, died.size());
    EXPECT_EQ(id, died[0]);
    EXPECT_EQ(0u, fleet.liveCount());
    EXPECT_TRUE(fleet.newlyDead(plus(now, 600)).empty())
        << "a worker dies exactly once";
}

TEST(WorkerTable, LateHeartbeatRevivesASuspectButNeverTheDead)
{
    svc::WorkerTable fleet({50, 150, 400});
    const auto now = t0();
    const auto id = fleet.registerWorker("w", 1, now);

    fleet.newlyDead(plus(now, 200)); // -> Suspect
    EXPECT_TRUE(fleet.touch(id, plus(now, 250)));
    const auto rows = fleet.snapshot(plus(now, 250),
                                     [](std::uint64_t) { return 0u; });
    EXPECT_EQ(svc::WorkerState::Live, rows[0].state);

    fleet.newlyDead(plus(now, 1000)); // -> Dead
    EXPECT_FALSE(fleet.touch(id, plus(now, 1001)))
        << "dead ids are final; the worker must re-register";
    EXPECT_FALSE(fleet.touch(9999, plus(now, 1001)))
        << "unknown ids are refused";
}

TEST(WorkerTable, FreshIdsAreNeverReused)
{
    svc::WorkerTable fleet({50, 150, 400});
    const auto now = t0();
    const auto a = fleet.registerWorker("w", 1, now);
    fleet.newlyDead(plus(now, 1000)); // a dies
    const auto b = fleet.registerWorker("w", 1, plus(now, 1000));
    EXPECT_NE(a, b);
    EXPECT_EQ(2u, fleet.registeredCount());
    EXPECT_EQ(1u, fleet.liveCount());
}

// ---------------------------------------------------------------------
// Fleet integration (real sockets, real workers)
// ---------------------------------------------------------------------

TEST(Fabric, FleetSweepIsByteIdenticalToLocal)
{
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    svc::Coordinator coord(fastCoordinator());
    svc::Worker w1(workerFor(coord.port(), "w1"));
    svc::Worker w2(workerFor(coord.port(), "w2"));

    svc::Client client("127.0.0.1", coord.port());
    const auto [id, cells] = client.submit(request);
    EXPECT_EQ(4u, cells);
    const auto status = client.waitUntilDone(id, 50);
    ASSERT_EQ(svc::JobState::Done, status.state);
    EXPECT_EQ(expected, client.fetchResults(id));

    // Both workers visible in the roster; every cell worker-computed.
    const auto fleet = client.workers();
    EXPECT_EQ(2u, fleet.size());
    w1.stop();
    w2.stop();
    w1.join();
    w2.join();
    EXPECT_EQ(4u, w1.cellsExecuted() + w2.cellsExecuted());

    coord.stop();
    coord.join();
}

TEST(Fabric, MonteCarloFleetSweepIsByteIdenticalToLocal)
{
    // A sampled grid is just more cells: workers re-derive the sampled
    // clocks from the request body alone (counter-based streams), so a
    // fleet-sharded Monte Carlo sweep must be byte-identical to the
    // local serial run.
    // The wire nominal is uniform(overhead_fo4) — skew and jitter
    // decompose to zero — so the variation rides the latch component.
    svc::SweepRequest request = smallRequest();
    request.mcSamples = 2;
    request.mcDist = "normal";
    request.mcSigmaLatch = 0.08;
    request.mcSigmaDie = 0.05;
    request.mcSeed = 42;
    const std::string expected = localBytes(request);

    svc::Coordinator coord(fastCoordinator());
    svc::Worker w1(workerFor(coord.port(), "w1"));
    svc::Worker w2(workerFor(coord.port(), "w2"));

    svc::Client client("127.0.0.1", coord.port());
    const auto [id, cells] = client.submit(request);
    EXPECT_EQ(8u, cells); // 2 dice x 2 depths x 2 benchmarks
    const auto status = client.waitUntilDone(id, 50);
    ASSERT_EQ(svc::JobState::Done, status.state);
    EXPECT_EQ(expected, client.fetchResults(id));

    w1.stop();
    w2.stop();
    w1.join();
    w2.join();
    EXPECT_EQ(8u, w1.cellsExecuted() + w2.cellsExecuted());

    coord.stop();
    coord.join();
}

TEST(Fabric, ZeroWorkerFleetCompletesViaLocalFallback)
{
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    auto opts = fastCoordinator();
    opts.fallbackGraceMs = 100; // no worker is coming; don't dawdle
    svc::Coordinator coord(opts);

    svc::Client client("127.0.0.1", coord.port());
    const auto [id, cells] = client.submit(request);
    (void)cells;
    const auto status = client.waitUntilDone(id, 50);
    ASSERT_EQ(svc::JobState::Done, status.state);
    EXPECT_EQ(expected, client.fetchResults(id));
    EXPECT_TRUE(client.workers().empty());

    coord.stop();
    coord.join();
}

TEST(Fabric, RedispatchAfterWorkerDeathWithASurvivor)
{
    const svc::SweepRequest request = chaosRequest();
    const std::string expected = localBytes(request);

    auto opts = fastCoordinator();
    opts.localFallback = false; // force the survivor to finish it all
    svc::Coordinator coord(opts);

    svc::Worker victim(workerFor(coord.port(), "victim"));
    svc::Worker survivor(workerFor(coord.port(), "survivor"));

    svc::Client client("127.0.0.1", coord.port());
    const auto [id, cells] = client.submit(request);
    (void)cells;

    // Let the fleet make progress, then SIGKILL the victim: its
    // in-flight cell dies unreported and must be re-dispatched.
    while (client.poll(id).cellsDone < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    victim.kill();
    victim.join();

    const auto status = client.waitUntilDone(id, 50);
    ASSERT_EQ(svc::JobState::Done, status.state);
    EXPECT_EQ(expected, client.fetchResults(id));

    // The roster must show the death — possibly a detector tick after
    // the survivor finished (the idle tick keeps judging the fleet).
    bool sawDead = false;
    for (int i = 0; i < 200 && !sawDead; ++i) {
        for (const auto &row : client.workers())
            sawDead |= row.state == svc::WorkerState::Dead;
        if (!sawDead)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    EXPECT_TRUE(sawDead);

    survivor.stop();
    survivor.join();
    EXPECT_GE(survivor.cellsExecuted() + victim.cellsExecuted(), 8u)
        << "re-dispatch means the fleet ran at least every cell";
    coord.stop();
    coord.join();
}

/**
 * The acceptance test: worker A SIGKILLed mid-sweep, worker B frozen
 * behind a black-holed proxy (connection open, no bytes moving — the
 * failure detector's hardest case), every orphaned cell re-dispatched,
 * the remainder finished locally — and the result bytes still equal an
 * uninterrupted local run exactly.
 */
TEST(Fabric, ChaosWorkersDieAndFreezeResultStaysByteIdentical)
{
    const svc::SweepRequest request = chaosRequest();
    const std::string expected = localBytes(request);

    svc::Coordinator coord(fastCoordinator());

    // Worker B dials through the chaos proxy; worker A is direct.
    // Short I/O deadline so the frozen B cycles its reconnect loop
    // instead of wedging inside one RPC for the whole test.
    tests::ChaosProxy proxy(coord.port());
    svc::Worker workerA(workerFor(coord.port(), "doomed"));
    svc::Worker workerB(workerFor(proxy.port(), "frozen", 500));

    svc::Client client("127.0.0.1", coord.port());
    const auto [id, cells] = client.submit(request);
    (void)cells;

    // Wait until both workers have registered and real progress exists,
    // so the chaos lands mid-sweep, not before it.
    while (client.poll(id).cellsDone < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    proxy.blackHole(); // B freezes: alive-looking socket, no bytes
    workerA.kill();    // A dies: leased cell evaporates unreported
    workerA.join();

    // The coordinator must now: declare A and B dead (silence), reclaim
    // their leases, see zero live workers, and fall back to finishing
    // the remainder locally.  No help is coming.
    const auto status = client.waitUntilDone(id, 50);
    ASSERT_EQ(svc::JobState::Done, status.state);
    EXPECT_EQ(expected, client.fetchResults(id))
        << "chaos must never change result bytes";

    bool sawDead = false;
    for (const auto &row : client.workers())
        sawDead |= row.state == svc::WorkerState::Dead;
    EXPECT_TRUE(sawDead);

    workerB.stop();
    workerB.join();
    proxy.stop();
    coord.stop();
    coord.join();
}

TEST(Fabric, WorkerDeclaredDeadReregistersUnderFreshId)
{
    auto opts = fastCoordinator();
    svc::Coordinator coord(opts);
    svc::Worker worker(workerFor(coord.port(), "lazarus", 300));
    svc::Client client("127.0.0.1", coord.port());

    // Wait for first registration.
    while (client.workers().empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto firstId = client.workers()[0].id;

    // Freeze the worker's world long enough to be declared dead —
    // cheaply simulated by just waiting: the worker only heartbeats
    // every 50ms, so instead we can't starve it that way.  Submit no
    // work and wait past deadAfterMs with the worker stopped.
    worker.stop();
    worker.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(600));

    // A new worker process re-registers; the old id stays Dead.
    svc::Worker reborn(workerFor(coord.port(), "lazarus", 300));
    bool sawFreshLive = false;
    for (int i = 0; i < 100 && !sawFreshLive; ++i) {
        for (const auto &row : client.workers()) {
            sawFreshLive |= row.id != firstId &&
                            row.state == svc::WorkerState::Live;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(sawFreshLive);

    reborn.stop();
    reborn.join();
    coord.stop();
    coord.join();
}

// ---------------------------------------------------------------------
// Client resilience
// ---------------------------------------------------------------------

TEST(ClientReconnect, PollSurvivesDaemonRestartOnSamePort)
{
    std::uint16_t port = 0;
    auto server = std::make_unique<svc::Server>(svc::ServerOptions{});
    port = server->port();

    svc::Client::Options copts;
    copts.ioTimeoutMs = 2000;
    copts.connectTimeoutMs = 2000;
    copts.retry.maxAttempts = 20;
    copts.retry.baseDelayMs = 50.0;
    copts.retry.maxDelayMs = 200.0;
    svc::Client client("127.0.0.1", port, copts);
    EXPECT_EQ(0u, client.stats().runningJobs);

    // Restart the daemon on the same port: the client's next call hits
    // a dead connection, reconnects with backoff, and completes.
    server->stop();
    server->join();
    server.reset();
    svc::ServerOptions sopts;
    sopts.port = port;
    server = std::make_unique<svc::Server>(std::move(sopts));

    EXPECT_EQ(0u, client.stats().runningJobs)
        << "the restart must cost a reconnect, not the call";

    // Polling a job the fresh daemon never saw is NotFound — a remote
    // verdict, proving the conversation reached the new daemon.
    EXPECT_THROW(
        {
            try {
                client.poll(12345);
            } catch (const SvcError &e) {
                EXPECT_EQ(ErrorCode::NotFound, e.code());
                throw;
            }
        },
        SvcError);

    server->stop();
    server->join();
}

TEST(ClientReconnect, DisabledReconnectFailsFastOnRestart)
{
    auto server = std::make_unique<svc::Server>(svc::ServerOptions{});
    const std::uint16_t port = server->port();

    svc::Client::Options copts;
    copts.reconnect = false;
    svc::Client client("127.0.0.1", port, copts);
    EXPECT_EQ(0u, client.stats().runningJobs);

    server->stop();
    server->join();
    server.reset();

    EXPECT_THROW(
        {
            try {
                client.stats();
            } catch (const SvcError &e) {
                EXPECT_EQ(ErrorCode::NetIo, e.code());
                throw;
            }
        },
        SvcError);
}

TEST(ClientOptions, NonPositiveTimeoutsAreRefused)
{
    svc::Client::Options zero;
    zero.ioTimeoutMs = 0;
    EXPECT_THROW(svc::Client("127.0.0.1", 1, zero), util::ConfigError);

    svc::Client::Options negative;
    negative.connectTimeoutMs = -5;
    EXPECT_THROW(svc::Client("127.0.0.1", 1, negative),
                 util::ConfigError);
}

TEST(Coordinator, AnswersTheSameClientProtocolAsAPlainDaemon)
{
    svc::Coordinator coord(fastCoordinator());
    svc::Client client("127.0.0.1", coord.port());

    // Unknown job id: NotFound, exactly like fo4d.
    EXPECT_THROW(
        {
            try {
                client.poll(42);
            } catch (const SvcError &e) {
                EXPECT_EQ(ErrorCode::NotFound, e.code());
                throw;
            }
        },
        SvcError);

    // Stats serves the coordinator's gauges over the same record.
    const auto stats = client.stats();
    EXPECT_EQ(0u, stats.queueDepth);

    coord.stop();
    coord.join();
}
