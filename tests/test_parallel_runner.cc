/**
 * @file
 * The determinism contract of the parallel sweep engine: at every
 * thread count, ParallelRunner and sweepScaling must produce results
 * bit-for-bit identical to the serial runner — including the position
 * and typed error of failed rows when faults are injected.  Identity
 * is stated in terms of study::serializeSuite, which renders every
 * field (doubles in hexfloat) so no difference can hide in rounding.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cacti/latency_cache.hh"
#include "study/batch.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/decoded_trace.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

using namespace fo4;

namespace
{

/** The thread counts the contract is verified at. */
const int kThreadCounts[] = {1, 2, 8};

study::RunSpec
smallSpec()
{
    study::RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 250;
    spec.prewarm = 20000;
    spec.cycleLimit = 1000000; // fail fast instead of hanging ctest
    return spec;
}

/** Write a short trace with one record's op-class byte destroyed. */
std::string
makeCorruptTrace(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 512);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 32 * 50 + 30);
    f.put(static_cast<char>(0xEE));
    return path;
}

/** A suite with healthy, corrupt-trace and watchdog-tripping jobs
 *  interleaved, so failed-row ordering is actually exercised. */
std::vector<study::BenchJob>
faultyJobs(const std::string &corruptPath)
{
    std::vector<study::BenchJob> jobs;
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("176.gcc")));
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt-a", trace::BenchClass::Integer, corruptPath));
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("181.mcf")));
    auto hung = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    hung.name = "hung";
    hung.cycleLimit = 20;
    jobs.push_back(hung);
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("256.bzip2")));
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt-b", trace::BenchClass::Integer, corruptPath));
    return jobs;
}

} // namespace

TEST(ParallelRunner, ThreadCountResolution)
{
    EXPECT_EQ(study::ParallelRunner(5).threads(), 5);
    EXPECT_EQ(study::ParallelRunner(1).threads(), 1);
    EXPECT_EQ(study::ParallelRunner(0).threads(),
              util::ThreadPool::hardwareThreads());
    EXPECT_EQ(study::ParallelRunner(-3).threads(),
              util::ThreadPool::hardwareThreads());
}

TEST(ParallelRunner, HealthySuiteByteIdenticalAtEveryThreadCount)
{
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    const auto serial =
        study::serializeSuite(study::runSuite(params, clock, profiles, spec));
    ASSERT_FALSE(serial.empty());

    for (const int threads : kThreadCounts) {
        const study::ParallelRunner runner(threads);
        const auto parallel = study::serializeSuite(
            runner.runSuite(params, clock, profiles, spec));
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(ParallelRunner, FailedRowOrderingSurvivesParallelExecution)
{
    const auto corrupt = makeCorruptTrace("parallel_corrupt.fo4t");
    const auto jobs = faultyJobs(corrupt);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    const auto serialSuite = study::runSuite(params, clock, jobs, spec);
    const auto serial = study::serializeSuite(serialSuite);

    // Sanity on the serial reference itself: three typed failures, in
    // job order, siblings unharmed.
    const auto failures = serialSuite.failures();
    ASSERT_EQ(failures.size(), 3u);
    EXPECT_EQ(failures[0]->name, "corrupt-a");
    EXPECT_EQ(failures[0]->error.code(), util::ErrorCode::TraceCorrupt);
    EXPECT_EQ(failures[1]->name, "hung");
    EXPECT_EQ(failures[1]->error.code(), util::ErrorCode::Deadlock);
    EXPECT_EQ(failures[2]->name, "corrupt-b");
    EXPECT_EQ(serialSuite.succeeded(), 3u);

    for (const int threads : kThreadCounts) {
        const study::ParallelRunner runner(threads);
        const auto parallel = study::serializeSuite(
            runner.runSuite(params, clock, jobs, spec));
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
    std::remove(corrupt.c_str());
}

TEST(ParallelRunner, SweepGridMatchesSerialPointByPoint)
{
    const std::vector<double> ts{4, 6, 8, 11};
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::VectorFp);
    const auto spec = smallSpec();

    // Serial reference: the plain runSuite loop every bench used to be.
    std::vector<std::string> reference;
    for (const double u : ts) {
        reference.push_back(study::serializeSuite(
            study::runSuite(study::scaledCoreParams(u, {}),
                            study::scaledClock(u), profiles, spec)));
    }

    for (const int threads : kThreadCounts) {
        study::SweepOptions options;
        options.threads = threads;
        const auto points =
            study::sweepScaling(ts, options, profiles, spec);
        ASSERT_EQ(points.size(), ts.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(points[i].tUseful, ts[i]);
            EXPECT_EQ(study::serializeSuite(points[i].suite), reference[i])
                << "threads=" << threads << " t=" << ts[i];
        }
    }
}

TEST(ParallelRunner, LatencyCacheServesRepeatSweepsFromMemory)
{
    // The structure-latency memo table is what makes repeated sweeps
    // cheap: the first pass over a grid computes each distinct
    // (calibration, structure, capacity) point once; a second identical
    // pass must be answered entirely from the table.
    auto &cache = cacti::LatencyCache::global();
    cache.clear();

    const std::vector<double> ts{5, 7};
    const std::vector<trace::BenchmarkProfile> profiles{
        trace::spec2000Profile("164.gzip")};
    study::SweepOptions options;
    options.threads = 1;

    (void)study::sweepScaling(ts, options, profiles, smallSpec());
    const auto first = cache.stats();
    EXPECT_GT(first.misses, 0u);
    EXPECT_GT(first.hits, 0u); // repeated structures within one sweep
    // Single-threaded, every miss inserts exactly once.
    EXPECT_EQ(first.inserts, first.misses);

    (void)study::sweepScaling(ts, options, profiles, smallSpec());
    const auto second = cache.stats();
    EXPECT_EQ(second.misses, first.misses) << "rerun recomputed latencies";
    EXPECT_EQ(second.inserts, first.inserts);
    EXPECT_GT(second.hits, first.hits);

    // clear() must forget entries *and* counters.
    cache.clear();
    const auto cleared = cache.stats();
    EXPECT_EQ(cleared.lookups(), 0u);
    EXPECT_EQ(cleared.inserts, 0u);
}

TEST(ParallelRunner, SuiteLevelMisconfigurationThrowsBeforeFanout)
{
    const study::ParallelRunner runner(4);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);

    const std::vector<study::BenchJob> none;
    EXPECT_THROW(runner.runSuite(params, clock, none, smallSpec()),
                 util::ConfigError);

    auto spec = smallSpec();
    spec.instructions = 0;
    const std::vector<trace::BenchmarkProfile> one{
        trace::spec2000Profile("164.gzip")};
    EXPECT_THROW(runner.runSuite(params, clock, one, spec),
                 util::ConfigError);

    // An invalid *point* in a grid poisons the whole grid up front.
    std::vector<study::GridPoint> points(2);
    points[0].params = params;
    points[0].clock = clock;
    points[1].params = params;
    points[1].clock.tUsefulFo4 = -1.0;
    std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    EXPECT_THROW(runner.runGrid(points, jobs, smallSpec()),
                 util::ConfigError);
}

// ---------------------------------------------------------------------------
// BatchRunner: the one-pass batched engine must be indistinguishable —
// serializeSuite-equal — from the serial reference runner on the full
// Table 2 suite, on grids, and on suites with injected faults.
// ---------------------------------------------------------------------------

TEST(BatchRunner, AllProfilesByteIdenticalAtEveryThreadCount)
{
    const auto profiles = trace::spec2000Profiles();
    ASSERT_EQ(profiles.size(), 18u); // the paper's full Table 2 suite
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    const auto serial =
        study::serializeSuite(study::runSuite(params, clock, profiles, spec));
    for (const int threads : kThreadCounts) {
        const study::BatchRunner runner(threads);
        const auto batched = study::serializeSuite(
            runner.runSuite(params, clock, profiles, spec));
        EXPECT_EQ(batched, serial) << "threads=" << threads;
    }
}

TEST(BatchRunner, ForcesBatchedImplementation)
{
    EXPECT_EQ(study::BatchRunner(3).threads(), 3);
    EXPECT_EQ(study::BatchRunner(0).threads(),
              util::ThreadPool::hardwareThreads());

    // The spec's impl field is overridden, not trusted: handing a
    // Reference spec to BatchRunner must still populate the decoded
    // registry (i.e. run on the batched path).
    trace::DecodedTraceRegistry::global().clear();
    const std::vector<trace::BenchmarkProfile> one{
        trace::spec2000Profile("197.parser")};
    auto spec = smallSpec();
    spec.impl = study::SimImpl::Reference;
    (void)study::BatchRunner(1).runSuite(study::scaledCoreParams(6.0, {}),
                                         study::scaledClock(6.0), one, spec);
    EXPECT_GE(trace::DecodedTraceRegistry::global().size(), 1u);
}

TEST(BatchRunner, SweepGridMatchesSerialReferencePointByPoint)
{
    const std::vector<double> ts{4, 6, 8, 11};
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::VectorFp);
    const auto spec = smallSpec();

    std::vector<std::string> reference;
    for (const double u : ts) {
        reference.push_back(study::serializeSuite(
            study::runSuite(study::scaledCoreParams(u, {}),
                            study::scaledClock(u), profiles, spec)));
    }

    for (const int threads : kThreadCounts) {
        study::SweepOptions options;
        options.threads = threads;
        const auto points =
            study::sweepScalingBatched(ts, options, profiles, spec);
        ASSERT_EQ(points.size(), ts.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(points[i].tUseful, ts[i]);
            EXPECT_EQ(study::serializeSuite(points[i].suite), reference[i])
                << "threads=" << threads << " t=" << ts[i];
        }
    }
}

TEST(BatchRunner, FaultRowsSurviveBatchedExecution)
{
    // Corrupt traces and watchdog trips must land in the same rows with
    // the same typed errors and messages as the serial reference —
    // through the decoded-trace registry, at every thread count.
    const auto corrupt = makeCorruptTrace("batch_corrupt.fo4t");
    const auto jobs = faultyJobs(corrupt);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    const auto serial =
        study::serializeSuite(study::runSuite(params, clock, jobs, spec));
    for (const int threads : kThreadCounts) {
        const study::BatchRunner runner(threads);
        const auto batched = study::serializeSuite(
            runner.runSuite(params, clock, jobs, spec));
        EXPECT_EQ(batched, serial) << "threads=" << threads;
    }
    std::remove(corrupt.c_str());
}

TEST(BatchRunner, MisconfigurationThrowsBeforeFanout)
{
    const study::BatchRunner runner(4);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);

    const std::vector<study::BenchJob> none;
    EXPECT_THROW(runner.runSuite(params, clock, none, smallSpec()),
                 util::ConfigError);

    std::vector<study::GridPoint> points(2);
    points[0].params = params;
    points[0].clock = clock;
    points[1].params = params;
    points[1].clock.tUsefulFo4 = -1.0;
    std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    EXPECT_THROW(runner.runGrid(points, jobs, smallSpec()),
                 util::ConfigError);
}
