/**
 * @file
 * Tests for the cache model and the two-level memory hierarchy, including
 * the fill-bus contention model and the flat Cray-style mode.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

using namespace fo4::mem;

namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.capacityBytes = 1024;
    p.lineBytes = 64;
    p.associativity = 2;
    return p;
}

HierarchyLatencies
testLatencies()
{
    HierarchyLatencies lat;
    lat.dl1 = 3;
    lat.l2 = 10;
    lat.memory = 100;
    lat.l2BusCycles = 4;
    lat.memBusCycles = 8;
    return lat;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103F, false)); // same 64B line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
}

TEST(Cache, CountsHitsAndMisses)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_NEAR(c.missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 8 sets; three lines in the same set evict the least
    // recently used.
    Cache c(smallCache());
    const std::uint64_t setStride = 8 * 64; // lines mapping to set 0
    c.access(0 * setStride, false);
    c.access(1 * setStride, false);
    c.access(0 * setStride, false); // touch way 0 again
    c.access(2 * setStride, false); // evicts line 1
    EXPECT_TRUE(c.probe(0 * setStride));
    EXPECT_FALSE(c.probe(1 * setStride));
    EXPECT_TRUE(c.probe(2 * setStride));
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(smallCache());
    c.access(0x0, false);
    const auto misses = c.misses();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.misses(), misses);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, FullyUsesCapacity)
{
    // Touch exactly capacity worth of distinct lines; all must fit.
    Cache c(smallCache());
    for (std::uint64_t a = 0; a < 1024; a += 64)
        c.access(a, false);
    for (std::uint64_t a = 0; a < 1024; a += 64)
        EXPECT_TRUE(c.probe(a)) << "line " << a;
}

TEST(Hierarchy, HitCostsAreLayered)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    // Cold: DL1 miss + L2 miss -> memory (plus both bus occupancies).
    const int cold = m.loadLatency(0x5000, 0);
    EXPECT_EQ(cold, 3 + 10 + 100 + 4 + 8);
    // Warm DL1 hit.
    EXPECT_EQ(m.loadLatency(0x5000, 1000), 3);
}

TEST(Hierarchy, L2HitCost)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    m.loadLatency(0x5000, 0); // allocate everywhere
    // Evict from tiny DL1 by touching its sets (same set: stride 512B).
    m.loadLatency(0x5000 + 512, 100);
    m.loadLatency(0x5000 + 1024, 200);
    // Now 0x5000 is out of DL1 but still in L2.
    const int lat = m.loadLatency(0x5000, 1000);
    EXPECT_EQ(lat, 3 + 10 + 4);
}

TEST(Hierarchy, FillBusQueuesBackToBackMisses)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    // Two cold misses in the same cycle: the second queues behind the
    // first at both the fill bus (+4) and the memory channel (+4 net).
    m.reset();
    const int first = m.loadLatency(0x10000, 50);
    const int second = m.loadLatency(0x20000, 50);
    EXPECT_EQ(second, first + 8);
}

TEST(Hierarchy, BusIdleAfterGap)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    m.loadLatency(0x10000, 0);
    // Far in the future the bus is idle again: same cost as the first.
    const int later = m.loadLatency(0x30000, 1000);
    const int baseline = 3 + 10 + 100 + 4 + 8;
    EXPECT_EQ(later, baseline);
}

TEST(Hierarchy, ResetContentionClearsBusOnly)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    m.loadLatency(0x10000, 0);
    m.resetContention();
    EXPECT_TRUE(m.dl1().probe(0x10000)); // cache contents kept
    const int lat = m.loadLatency(0x20000, 0);
    EXPECT_EQ(lat, 3 + 10 + 100 + 4 + 8); // no queueing carried over
}

TEST(Hierarchy, FlatModeIgnoresCaches)
{
    HierarchyLatencies lat = testLatencies();
    lat.flat = 12;
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8}, lat,
                      MemoryMode::Flat);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(m.loadLatency(0x1000, i), 12); // same address: still 12
}

TEST(Hierarchy, StoresUpdateCacheState)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    m.storeLatency(0x7000, 0);
    EXPECT_EQ(m.loadLatency(0x7000, 500), 3); // store allocated the line
}

TEST(Hierarchy, ResetRestoresColdState)
{
    MemoryHierarchy m(smallCache(), CacheParams{64 * 1024, 64, 8},
                      testLatencies());
    m.loadLatency(0x9000, 0);
    m.reset();
    EXPECT_FALSE(m.dl1().probe(0x9000));
    EXPECT_FALSE(m.l2().probe(0x9000));
}
