/**
 * @file
 * Tests for the synthetic trace generator and the SPEC 2000 profile set:
 * reproducibility, statistical properties, dependence structure and
 * address behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace fo4::trace;
using fo4::isa::MicroOp;
using fo4::isa::OpClass;

namespace
{

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.seed = 42;
    return p;
}

} // namespace

TEST(Generator, DeterministicAcrossInstances)
{
    const auto prof = testProfile();
    SyntheticTraceGenerator a(prof), b(prof);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a.next();
        const MicroOp y = b.next();
        EXPECT_EQ(x.seq, y.seq);
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.src1, y.src1);
        EXPECT_EQ(x.src2, y.src2);
        EXPECT_EQ(x.dst, y.dst);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.taken, y.taken);
    }
}

TEST(Generator, ResetRewindsExactly)
{
    SyntheticTraceGenerator gen(testProfile());
    std::vector<MicroOp> first;
    for (int i = 0; i < 2000; ++i)
        first.push_back(gen.next());
    gen.reset();
    for (int i = 0; i < 2000; ++i) {
        const MicroOp op = gen.next();
        EXPECT_EQ(op.cls, first[i].cls);
        EXPECT_EQ(op.addr, first[i].addr);
        EXPECT_EQ(op.taken, first[i].taken);
    }
}

TEST(Generator, SequenceNumbersAreContiguous)
{
    SyntheticTraceGenerator gen(testProfile());
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next().seq, i);
}

TEST(Generator, BlockSizeMatchesProfile)
{
    auto prof = testProfile();
    prof.meanBlockSize = 8.0;
    SyntheticTraceGenerator gen(prof);
    std::uint64_t branches = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        branches += gen.next().isBranch();
    const double mean_block =
        static_cast<double>(n - branches) / static_cast<double>(branches);
    EXPECT_NEAR(mean_block, 8.0, 0.8);
}

TEST(Generator, OpMixMatchesProfile)
{
    auto prof = testProfile();
    prof.wIntAlu = 0.5;
    prof.wLoad = 0.3;
    prof.wStore = 0.2;
    prof.wIntMult = 0.0;
    SyntheticTraceGenerator gen(prof);
    std::map<OpClass, int> counts;
    int nonBranch = 0;
    for (int i = 0; i < 100000; ++i) {
        const MicroOp op = gen.next();
        if (op.isBranch())
            continue;
        ++counts[op.cls];
        ++nonBranch;
    }
    EXPECT_NEAR(counts[OpClass::IntAlu] / double(nonBranch), 0.5, 0.02);
    EXPECT_NEAR(counts[OpClass::Load] / double(nonBranch), 0.3, 0.02);
    EXPECT_NEAR(counts[OpClass::Store] / double(nonBranch), 0.2, 0.02);
    EXPECT_EQ(counts[OpClass::FpAdd], 0);
}

TEST(Generator, LoadsCarryAddressesAndDest)
{
    SyntheticTraceGenerator gen(testProfile());
    int loads = 0;
    for (int i = 0; i < 20000 && loads < 500; ++i) {
        const MicroOp op = gen.next();
        if (!op.isLoad())
            continue;
        ++loads;
        EXPECT_NE(op.addr, 0u);
        EXPECT_NE(op.dst, fo4::isa::noReg);
        EXPECT_NE(op.src1, fo4::isa::noReg);
    }
    EXPECT_GE(loads, 500);
}

TEST(Generator, StoresHaveNoDest)
{
    SyntheticTraceGenerator gen(testProfile());
    int stores = 0;
    for (int i = 0; i < 20000 && stores < 500; ++i) {
        const MicroOp op = gen.next();
        if (!op.isStore())
            continue;
        ++stores;
        EXPECT_EQ(op.dst, fo4::isa::noReg);
        EXPECT_NE(op.src1, fo4::isa::noReg);
        EXPECT_NE(op.src2, fo4::isa::noReg);
    }
}

TEST(Generator, BranchOutcomeMatchesTakenField)
{
    // Taken branches redirect the following PC; not-taken fall through.
    SyntheticTraceGenerator gen(testProfile());
    MicroOp prev = gen.next();
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (prev.isBranch()) {
            if (prev.taken)
                EXPECT_EQ(op.pc, prev.addr);
            else
                EXPECT_EQ(op.pc, prev.pc + 4);
        }
        prev = op;
    }
}

TEST(Generator, MinimumDependenceDistanceHolds)
{
    auto prof = testProfile();
    prof.meanDepDistance = 12.0;
    prof.minDepDistance = 8.0;
    prof.wLoad = 0.0;
    prof.wStore = 0.0;
    prof.src2Prob = 0.0;
    SyntheticTraceGenerator gen(prof);

    // Track the most recent producer sequence of every register; the gap
    // between a consumer and its source's producer must respect the
    // minimum (in producer count).
    std::map<int, std::uint64_t> producerIndex; // reg -> producer ordinal
    std::uint64_t producers = 0;
    int checked = 0;
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = gen.next();
        if (op.src1 != fo4::isa::noReg && producerIndex.count(op.src1) &&
            producers > 64) {
            const std::uint64_t gap = producers - producerIndex[op.src1];
            EXPECT_GE(gap, 8u) << "at op " << i;
            ++checked;
        }
        if (op.dst != fo4::isa::noReg) {
            producerIndex[op.dst] = producers;
            ++producers;
        }
    }
    EXPECT_GT(checked, 1000);
}

TEST(Generator, WorkingSetBoundsZipfAddresses)
{
    auto prof = testProfile();
    prof.strideFraction = 0.0;
    prof.workingSetBytes = 64 * 1024;
    SyntheticTraceGenerator gen(prof);
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = gen.next();
        if (!fo4::isa::isMemory(op.cls))
            continue;
        EXPECT_GE(op.addr, 0x20000000u);
        EXPECT_LT(op.addr, 0x20000000u + prof.workingSetBytes + 64);
    }
}

TEST(Generator, StrideStreamsAdvanceMonotonically)
{
    auto prof = testProfile();
    prof.strideFraction = 1.0;
    prof.strideStreams = 1;
    prof.lineStrideProb = 0.0;
    SyntheticTraceGenerator gen(prof);
    std::uint64_t last = 0;
    int seen = 0;
    for (int i = 0; i < 5000; ++i) {
        const MicroOp op = gen.next();
        if (!fo4::isa::isMemory(op.cls))
            continue;
        if (seen > 0 && op.addr > last) {
            EXPECT_EQ(op.addr - last, 8u);
        }
        last = op.addr;
        ++seen;
    }
    EXPECT_GT(seen, 1000);
}

TEST(Spec2000, HasEighteenProfilesInThreeClasses)
{
    const auto all = spec2000Profiles();
    EXPECT_EQ(all.size(), 18u);
    EXPECT_EQ(spec2000Profiles(BenchClass::Integer).size(), 9u);
    EXPECT_EQ(spec2000Profiles(BenchClass::VectorFp).size(), 4u);
    EXPECT_EQ(spec2000Profiles(BenchClass::NonVectorFp).size(), 5u);
}

TEST(Spec2000, NamesMatchPaperTableTwo)
{
    const char *expected[] = {
        "164.gzip", "175.vpr", "176.gcc", "181.mcf", "197.parser",
        "252.eon", "253.perlbmk", "256.bzip2", "300.twolf", "171.swim",
        "172.mgrid", "173.applu", "183.equake", "177.mesa", "178.galgel",
        "179.art", "188.ammp", "189.lucas"};
    const auto all = spec2000Profiles();
    ASSERT_EQ(all.size(), std::size(expected));
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, expected[i]);
}

TEST(Spec2000, LookupByFullOrShortName)
{
    EXPECT_EQ(spec2000Profile("164.gzip").name, "164.gzip");
    EXPECT_EQ(spec2000Profile("gzip").name, "164.gzip");
    EXPECT_EQ(spec2000Profile("swim").cls, BenchClass::VectorFp);
}

TEST(Spec2000, VectorProfilesHaveMoreIlp)
{
    // The class distinction the paper relies on: vector FP exposes far
    // longer dependence distances than integer codes.
    double intMax = 0, vecMin = 1e9;
    for (const auto &p : spec2000Profiles()) {
        if (p.cls == BenchClass::Integer)
            intMax = std::max(intMax, p.meanDepDistance);
        if (p.cls == BenchClass::VectorFp)
            vecMin = std::min(vecMin, p.meanDepDistance);
    }
    EXPECT_GT(vecMin, intMax);
}

TEST(Spec2000, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : spec2000Profiles())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), 18u);
}

TEST(Spec2000, AllProfilesValidate)
{
    for (const auto &p : spec2000Profiles())
        EXPECT_TRUE(p.validate().isOk()) << p.validate().toString();
}

TEST(Spec2000, AllProfilesGenerate)
{
    for (const auto &p : spec2000Profiles()) {
        SyntheticTraceGenerator gen(p);
        for (int i = 0; i < 1000; ++i)
            gen.next();
    }
    SUCCEED();
}

TEST(VectorTrace, CyclesAndRenumbers)
{
    MicroOp a;
    a.cls = OpClass::IntAlu;
    MicroOp b;
    b.cls = OpClass::Load;
    VectorTrace trace({a, b});
    EXPECT_EQ(trace.next().cls, OpClass::IntAlu);
    EXPECT_EQ(trace.next().cls, OpClass::Load);
    const MicroOp third = trace.next();
    EXPECT_EQ(third.cls, OpClass::IntAlu); // wrapped
    EXPECT_EQ(third.seq, 2u);              // but renumbered
}
