/**
 * @file
 * Tests for the pulse latch and the latch-overhead extraction (paper
 * Section 2 / Table 1) and the ECL gate equivalence (Appendix A).
 */

#include <gtest/gtest.h>

#include "tech/circuit.hh"
#include "tech/ecl.hh"
#include "tech/fo4.hh"
#include "tech/gates.hh"
#include "tech/latch.hh"

using namespace fo4::tech;

namespace
{

const DeviceParams &
params()
{
    static const DeviceParams p = DeviceParams::at100nm();
    return p;
}

const Fo4Reference &
ref()
{
    static const Fo4Reference r = measureFo4(params());
    return r;
}

} // namespace

TEST(PulseLatch, TransparentWhileClockHigh)
{
    auto p = params();
    Circuit c(p);
    const auto d = c.addNode("d");
    c.drive(d, rampStep(100.0, 0.0, p.vdd, 15.0));
    const auto latch = addPulseLatch(c, d, c.vdd());
    c.run(600.0);
    EXPECT_GT(c.voltage(latch.q), 0.9 * p.vdd);
}

TEST(PulseLatch, OpaqueWhileClockLow)
{
    auto p = params();
    Circuit c(p);
    const auto d = c.addNode("d");
    // Data rises only after the clock (never asserted) would have closed.
    c.drive(d, rampStep(300.0, 0.0, p.vdd, 15.0));
    const auto latch = addPulseLatch(c, d, c.gnd());
    c.run(900.0);
    EXPECT_LT(c.voltage(latch.q), 0.1 * p.vdd);
}

TEST(PulseLatch, HoldsCapturedValueAfterClockFalls)
{
    auto p = params();
    Circuit c(p);
    const auto clk = c.addNode("clk");
    const double period = 600.0;
    c.drive(clk, clockWave(0.0, period, p.vdd, 15.0));
    const auto d = c.addNode("d");
    c.drive(d, rampStep(100.0, 0.0, p.vdd, 15.0));
    const auto latch = addPulseLatch(c, d, clk);
    // Run to just before the next rising edge: value must persist through
    // the opaque phase.
    c.run(0.95 * period);
    EXPECT_GT(c.voltage(latch.q), 0.9 * p.vdd);
    EXPECT_GT(c.voltage(latch.x), 0.9 * p.vdd);
}

TEST(LatchTrial, EarlyDataIsCaptured)
{
    const double period = 40.0 * ref().delayPs;
    const auto trial =
        runLatchTrial(params(), period / 2.0 - 8.0 * ref().delayPs, period);
    EXPECT_TRUE(trial.captured);
    EXPECT_GT(trial.tdq, 0.0);
    EXPECT_LT(trial.dArrival, trial.clkFall);
}

TEST(LatchTrial, LateDataIsRejected)
{
    const double period = 40.0 * ref().delayPs;
    const auto trial =
        runLatchTrial(params(), period / 2.0 + 5.0 * ref().delayPs, period);
    EXPECT_FALSE(trial.captured);
}

TEST(LatchTiming, OverheadNearOneFo4)
{
    const auto timing = measureLatchTiming(params(), ref());
    // Paper Table 1: latch overhead is 1 FO4.  Our switch-level model
    // should land in the same neighbourhood.
    EXPECT_GT(timing.overheadFo4, 0.5);
    EXPECT_LT(timing.overheadFo4, 2.0);
}

TEST(LatchTiming, OverheadIsMinimalTdq)
{
    const auto timing = measureLatchTiming(params(), ref());
    EXPECT_LE(timing.overheadPs, timing.nominalTdqPs + 1e-9);
    EXPECT_GT(timing.overheadPs, 0.0);
}

TEST(LatchTiming, FailurePointNearClockEdge)
{
    const auto timing = measureLatchTiming(params(), ref());
    // The last successful data arrival should be within a few FO4 of the
    // falling clock edge (on either side).
    EXPECT_LT(std::abs(timing.setupPs), 4.0 * ref().delayPs);
}

TEST(Ecl, LevelDelayIsOrderOneFo4)
{
    const double level = measureEclLevelFo4(params(), ref());
    // Paper: 1.36 FO4.  Accept the same order of magnitude from the
    // switch-level model; the bench prints both for comparison.
    EXPECT_GT(level, 0.8);
    EXPECT_LT(level, 3.5);
}

TEST(Ecl, KunkelSmithConversionsMatchPaper)
{
    // 8 gate levels -> ~10.9 FO4; 4 levels -> ~5.4 FO4 (paper Sec 4.2).
    EXPECT_NEAR(eclLevelsToFo4(kunkelSmithScalarLevels), 10.88, 0.05);
    EXPECT_NEAR(eclLevelsToFo4(kunkelSmithVectorLevels), 5.44, 0.05);
}

TEST(Ecl, ConversionScalesLinearly)
{
    EXPECT_DOUBLE_EQ(eclLevelsToFo4(2, 1.5), 3.0);
    EXPECT_DOUBLE_EQ(eclLevelsToFo4(1, 2.0), 2.0);
}
