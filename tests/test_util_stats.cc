/**
 * @file
 * Unit tests for counters, averages, histograms, stat sets and means.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/means.hh"
#include "util/stats.hh"

using namespace fo4::util;

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter, Reset)
{
    Counter c;
    c += 10;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 9.0);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(9); // clamps into last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, MeanUsesRawValues)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(2);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatSet, DumpContainsAllEntries)
{
    Counter instrs;
    instrs += 100;
    Counter cycles;
    cycles += 50;
    StatSet set;
    set.addCounter("sim.instructions", instrs);
    set.addCounter("sim.cycles", cycles);
    set.addFormula("sim.ipc", [&] {
        return double(instrs.value()) / double(cycles.value());
    });

    std::ostringstream os;
    set.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sim.instructions 100"), std::string::npos);
    EXPECT_NE(text.find("sim.cycles 50"), std::string::npos);
    EXPECT_NE(text.find("sim.ipc 2"), std::string::npos);
}

TEST(StatSet, LookupByName)
{
    Counter c;
    c += 42;
    StatSet set;
    set.addCounter("x", c);
    set.addFormula("twice", [&] { return 2.0 * double(c.value()); });
    EXPECT_EQ(set.counter("x"), 42u);
    EXPECT_DOUBLE_EQ(set.formula("twice"), 84.0);
}

TEST(StatSet, CounterReflectsLiveValue)
{
    Counter c;
    StatSet set;
    set.addCounter("live", c);
    EXPECT_EQ(set.counter("live"), 0u);
    c += 3;
    EXPECT_EQ(set.counter("live"), 3u);
}

TEST(Means, HarmonicOfEqualValues)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Means, HarmonicDominatedBySmallValues)
{
    const double h = harmonicMean({1.0, 100.0});
    EXPECT_LT(h, 2.0);
    EXPECT_GT(h, 1.0);
}

TEST(Means, HarmonicKnownValue)
{
    // HM(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7.
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 12.0 / 7.0, 1e-12);
}

TEST(Means, ArithmeticKnownValue)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Means, GeometricKnownValue)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Means, OrderingHarmonicLeGeometricLeArithmetic)
{
    const std::vector<double> v{1.5, 2.5, 7.0, 0.5};
    const double h = harmonicMean(v);
    const double g = geometricMean(v);
    const double a = arithmeticMean(v);
    EXPECT_LE(h, g + 1e-12);
    EXPECT_LE(g, a + 1e-12);
}
