/**
 * @file
 * End-to-end service tests over a real loopback socket: an in-process
 * svc::Server on an ephemeral port, driven by svc::Client.
 *
 * The headline assertion is the service's identity guarantee: a sweep
 * fetched over the wire is byte-identical to the same sweep run locally
 * through svc::runSweep — at thread count 1 and 8, including the
 * position and typed error of failed rows under injected faults (a
 * corrupt trace file and a watchdog-tripping cycle limit).
 *
 * Around it: admission control (queue bound 1 refuses with Overloaded),
 * cancellation of queued and running jobs, NotFound/NotReady lifecycle
 * errors, stats gauges, and a garbage-frame session that must cost the
 * connection but never the daemon.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "svc/client.hh"
#include "svc/server.hh"
#include "svc/sweep.hh"
#include "trace/generator.hh"
#include "trace/file_trace.hh"
#include "trace/spec2000.hh"
#include "util/metrics.hh"
#include "util/net.hh"
#include "util/status.hh"

using namespace fo4;
using util::ErrorCode;

namespace
{

std::string
tempPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    std::remove(path.c_str());
    return path;
}

/**
 * Record a short trace, then overwrite one record's op-class byte with
 * a value no ISA defines — the resilient_suite fault, injected here so
 * the wire sweep carries a deterministically failing row.
 */
std::string
makeCorruptTrace()
{
    const std::string path = tempPath("svc_loopback_corrupt.fo4t");
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 4096);
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    if (f == nullptr)
        throw std::runtime_error("cannot reopen " + path);
    // Record layout: 16-byte header, 32-byte records, cls at offset 30.
    std::fseek(f, 16 + 32 * 100 + 30, SEEK_SET);
    std::fputc(0xEE, f);
    std::fclose(f);
    return path;
}

/** A small but adversarial sweep: two healthy jobs, one corrupt-trace
 *  job, one hung job — failed rows must keep their place and verdict. */
svc::SweepRequest
faultedRequest(const std::string &corruptPath)
{
    svc::SweepRequest req;
    req.instructions = 2000;
    req.warmup = 250;
    req.prewarm = 10000;
    req.tUseful = {8.0, 6.0};

    svc::WireJob healthy;
    healthy.name = "164.gzip";
    req.jobs.push_back(healthy);

    svc::WireJob corrupt;
    corrupt.name = "corrupt-trace";
    corrupt.cls = trace::BenchClass::Integer;
    corrupt.fromTrace = true;
    corrupt.tracePath = corruptPath;
    req.jobs.push_back(corrupt);

    svc::WireJob hung;
    hung.name = "181.mcf";
    hung.cycleLimit = 10; // far below any real completion time
    req.jobs.push_back(hung);

    svc::WireJob healthy2;
    healthy2.name = "256.bzip2";
    req.jobs.push_back(healthy2);
    return req;
}

/** A sweep long enough to still be Running when we cancel it. */
svc::SweepRequest
longRequest()
{
    svc::SweepRequest req;
    req.instructions = 2000000;
    req.warmup = 1000;
    req.prewarm = 100000;
    req.tUseful = {6.0};
    svc::WireJob job;
    job.name = "164.gzip";
    req.jobs.push_back(job);
    return req;
}

svc::Server
makeServer(int threads, std::size_t maxQueue = 8)
{
    svc::ServerOptions options;
    options.port = 0;
    options.threads = threads;
    options.maxQueue = maxQueue;
    return svc::Server(std::move(options));
}

} // namespace

// ---------------------------------------------------------------------
// The identity guarantee
// ---------------------------------------------------------------------

TEST(SvcLoopback, FetchedResultsAreByteIdenticalToLocalRun)
{
    const std::string corruptPath = makeCorruptTrace();
    const svc::SweepRequest request = faultedRequest(corruptPath);

    // Local references: the wire form of the request, run in-process at
    // 1 and 8 threads, must agree with each other (the parallel
    // engine's contract) ...
    const svc::SweepPlan plan =
        svc::planSweep(svc::SweepRequest::decode(request.encode()));
    const std::string local1 = svc::runSweep(plan, 1, "", nullptr, {});
    const std::string local8 = svc::runSweep(plan, 8, "", nullptr, {});
    EXPECT_EQ(local1, local8);

    // ... and the failed rows must be present, in place, typed.
    EXPECT_NE(local1.find("TraceCorrupt"), std::string::npos);
    EXPECT_NE(local1.find("Deadlock"), std::string::npos);

    // Served at 8 worker threads.
    svc::Server server8 = makeServer(8);
    {
        svc::Client client("127.0.0.1", server8.port());
        const auto [id, cells] = client.submit(request);
        EXPECT_EQ(cells, 2u * 4u);
        const svc::JobStatusInfo done = client.waitUntilDone(id, 50);
        ASSERT_EQ(done.state, svc::JobState::Done) << done.errorMessage;
        EXPECT_EQ(done.cellsStarted, cells);
        EXPECT_EQ(client.fetchResults(id), local1);
    }
    server8.stop();
    server8.join();

    // Served serially: same bytes again.
    svc::Server server1 = makeServer(1);
    {
        svc::Client client("127.0.0.1", server1.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        client.waitUntilDone(id, 50);
        EXPECT_EQ(client.fetchResults(id), local1);
    }
    server1.stop();
    server1.join();
}

// ---------------------------------------------------------------------
// Lifecycle and admission control
// ---------------------------------------------------------------------

TEST(SvcLoopback, UnknownIdIsNotFound)
{
    svc::Server server = makeServer(1);
    svc::Client client("127.0.0.1", server.port());
    try {
        client.poll(424242);
        FAIL() << "poll of unknown id succeeded";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::NotFound);
    }
    try {
        client.fetchResults(424242);
        FAIL() << "fetch of unknown id succeeded";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::NotFound);
    }
    server.stop();
    server.join();
}

TEST(SvcLoopback, InvalidRequestIsRefusedAtSubmit)
{
    svc::Server server = makeServer(1);
    svc::Client client("127.0.0.1", server.port());
    svc::SweepRequest request;
    request.tUseful = {6.0};
    svc::WireJob job;
    job.name = "999.does-not-exist";
    request.jobs.push_back(job);
    try {
        client.submit(request);
        FAIL() << "unknown profile accepted";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
    }
    // The refusal cost nothing: the connection still works.
    EXPECT_EQ(client.stats().submitted, 0u);
    server.stop();
    server.join();
}

TEST(SvcLoopback, FullQueueRefusesWithOverloadedAndNotReadyWhileRunning)
{
    svc::Server server = makeServer(1, /*maxQueue=*/1);
    svc::Client client("127.0.0.1", server.port());

    const auto [running, runningCells] = client.submit(longRequest());
    (void)runningCells;
    // Wait until the dispatcher owns it, so the queue slot is free.
    while (client.poll(running).state == svc::JobState::Queued)
        ;

    // Results before completion: a typed NotReady, not a hang.
    try {
        client.fetchResults(running);
        FAIL() << "fetch of a running job succeeded";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::NotReady);
    }

    const auto [queued, queuedCells] = client.submit(longRequest());
    (void)queuedCells;
    EXPECT_EQ(client.poll(queued).state, svc::JobState::Queued);
    EXPECT_EQ(client.poll(queued).queuePosition, 1u);

    // The bound is 1 and the slot is taken: admission refuses.
    try {
        client.submit(longRequest());
        FAIL() << "submit beyond the queue bound succeeded";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Overloaded);
    }
    EXPECT_EQ(client.stats().rejected, 1u);

    // Cancel the queued job: it never ran, terminal immediately.
    const svc::JobStatusInfo cancelled = client.cancel(queued);
    EXPECT_EQ(cancelled.state, svc::JobState::Cancelled);
    EXPECT_EQ(cancelled.cellsStarted, 0u);

    // Cancel the running job: cooperative drain, then terminal.
    client.cancel(running);
    const svc::JobStatusInfo drained = client.waitUntilDone(running, 50);
    EXPECT_EQ(drained.state, svc::JobState::Cancelled);
    try {
        client.fetchResults(running);
        FAIL() << "fetch of a cancelled job succeeded";
    } catch (const util::SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Cancelled);
    }

    const svc::StatsSnapshot stats = client.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.cancelled, 2u);
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_EQ(stats.maxQueue, 1u);
    server.stop();
    server.join();
}

TEST(SvcLoopback, CancelIsIdempotentOnTerminalJobs)
{
    svc::Server server = makeServer(1);
    svc::Client client("127.0.0.1", server.port());
    const auto [id, cells] = client.submit(longRequest());
    (void)cells;
    client.cancel(id);
    const svc::JobStatusInfo first = client.waitUntilDone(id, 50);
    EXPECT_EQ(first.state, svc::JobState::Cancelled);
    const svc::JobStatusInfo second = client.cancel(id);
    EXPECT_EQ(second.state, svc::JobState::Cancelled);
    EXPECT_EQ(client.stats().cancelled, 1u);
    server.stop();
    server.join();
}

// ---------------------------------------------------------------------
// Hostile peers
// ---------------------------------------------------------------------

TEST(SvcLoopback, GarbageFramesCostTheSessionNeverTheServer)
{
    const bool wasEnabled = util::setMetricsEnabled(true);
    util::MetricsRegistry::global()
        .counter("svc.protocol_errors")
        .reset();
    svc::Server server = makeServer(1);

    {
        // A frame whose CRC cannot match: typed Error frame back, then
        // the server hangs up on us.
        util::TcpStream raw =
            util::TcpStream::connect("127.0.0.1", server.port());
        std::string frame = svc::encodeFrame(svc::MsgType::Stats, "");
        // flip a payload byte (body empty, so damage the type word)
        frame[svc::kFrameHeaderBytes + 2] ^= 0x55;
        raw.writeAll(frame.data(), frame.size());
        const auto reply = svc::readFrame(raw, 5000);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->type, svc::MsgType::Error);
        const auto [code, message] = svc::decodeError(reply->body);
        EXPECT_EQ(code, ErrorCode::Protocol);
        (void)message;
        // The server closes the session after a protocol error.
        EXPECT_FALSE(svc::readFrame(raw, 5000).has_value());
    }

    {
        // An oversize length word: refused before any allocation.
        util::TcpStream raw =
            util::TcpStream::connect("127.0.0.1", server.port());
        unsigned char header[svc::kFrameHeaderBytes] = {};
        const std::uint32_t huge = 0xffffffffu;
        for (int i = 0; i < 4; ++i)
            header[i] = static_cast<unsigned char>(huge >> (8 * i));
        raw.writeAll(header, sizeof(header));
        const auto reply = svc::readFrame(raw, 5000);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->type, svc::MsgType::Error);
    }

    {
        // A truncated frame: header promises more payload than we send.
        util::TcpStream raw =
            util::TcpStream::connect("127.0.0.1", server.port());
        const std::string frame =
            svc::encodeFrame(svc::MsgType::Stats, "padding-bytes");
        raw.writeAll(frame.data(), frame.size() - 6);
        raw.close();
    }

    // The daemon survived all three: a fresh, honest session works.
    svc::Client client("127.0.0.1", server.port());
    const svc::StatsSnapshot stats = client.stats();
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_GE(util::MetricsRegistry::global().value(
                  "svc.protocol_errors"),
              2u);
    server.stop();
    server.join();
    util::setMetricsEnabled(wasEnabled);
}

TEST(SvcLoopback, ResponseTypeSentAsRequestIsProtocolError)
{
    svc::Server server = makeServer(1);
    util::TcpStream raw =
        util::TcpStream::connect("127.0.0.1", server.port());
    svc::writeFrame(raw, svc::MsgType::Results, "not a request");
    const auto reply = svc::readFrame(raw, 5000);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, svc::MsgType::Error);
    const auto [code, message] = svc::decodeError(reply->body);
    EXPECT_EQ(code, ErrorCode::Protocol);
    (void)message;
    server.stop();
    server.join();
}

// ---------------------------------------------------------------------
// Shutdown drain
// ---------------------------------------------------------------------

TEST(SvcLoopback, StopDrainsQueuedAndRunningJobs)
{
    svc::Server server = makeServer(1);
    std::uint64_t runningId = 0;
    std::uint64_t queuedId = 0;
    {
        svc::Client client("127.0.0.1", server.port());
        runningId = client.submit(longRequest()).first;
        while (client.poll(runningId).state == svc::JobState::Queued)
            ;
        queuedId = client.submit(longRequest()).first;
    }
    // stop() must cancel the queued job outright, drain the running one
    // cooperatively, and return with every thread joined.
    server.stop();
    server.join();
    SUCCEED();
    (void)queuedId;
}
