/**
 * @file
 * Adversarial validation of the capture container (trace/capture.hh)
 * and its recording/replay machinery — DESIGN.md §16.
 *
 * The format's promise is that no damaged file ever replays silently:
 * every byte of a capture is either CRC-protected (bit rot throws a
 * typed TraceError), structurally implied (truncation is reported as a
 * torn tail and refused by RecordedTrace), or explicitly reserved.
 * These tests earn that promise the hard way — truncating a capture at
 * every byte boundary, flipping every byte, and hand-crafting each row
 * of the corruption ladder.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "trace/capture.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/recorded_trace.hh"
#include "trace/recorder.hh"
#include "trace/spec2000.hh"
#include "trace/trace_codec.hh"
#include "util/journal.hh"
#include "util/random.hh"
#include "util/status.hh"

using namespace fo4;
using fo4::util::Rng;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

std::vector<unsigned char>
readBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(f), {});
}

void
writeBytes(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(f.good()) << path;
}

bool
sameOp(const isa::MicroOp &a, const isa::MicroOp &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.cls == b.cls &&
           a.src1 == b.src1 && a.src2 == b.src2 && a.dst == b.dst &&
           a.addr == b.addr && a.taken == b.taken;
}

/** Deterministic valid ops; seq equals stream position, like every
 *  repo trace source. */
std::vector<isa::MicroOp>
makeOps(std::size_t n)
{
    Rng rng(0xF04CA0 + n);
    std::vector<isa::MicroOp> ops(n);
    for (std::size_t i = 0; i < n; ++i) {
        isa::MicroOp &op = ops[i];
        op.seq = i;
        op.pc = 0x400000 + 4 * i;
        op.cls = static_cast<isa::OpClass>(rng.below(isa::numOpClasses));
        op.src1 = static_cast<std::int16_t>(
            static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
        op.src2 = static_cast<std::int16_t>(
            static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
        op.dst = static_cast<std::int16_t>(
            static_cast<int>(rng.below(isa::numArchRegs + 1)) - 1);
        op.addr = rng.below(1u << 20);
        op.taken = rng.chance(0.5);
    }
    return ops;
}

void
writeCaptureFile(const std::string &path,
                 const std::vector<isa::MicroOp> &ops,
                 const trace::CaptureMeta &meta, std::size_t opsPerFrame)
{
    auto writer = trace::CaptureWriter::create(path, meta, opsPerFrame);
    for (const auto &op : ops)
        writer.append(op);
    writer.close();
}

// ---- hand-crafting helpers (mirror the documented byte layout) ------

void
putU32(std::vector<unsigned char> &out, std::size_t at, std::uint32_t v)
{
    out[at] = static_cast<unsigned char>(v);
    out[at + 1] = static_cast<unsigned char>(v >> 8);
    out[at + 2] = static_cast<unsigned char>(v >> 16);
    out[at + 3] = static_cast<unsigned char>(v >> 24);
}

/** The 32-byte capture header: magic, version, flags, CRC of [0,24). */
std::vector<unsigned char>
craftHeader()
{
    std::vector<unsigned char> h(32, 0);
    std::memcpy(h.data(), "FO4CAPTR", 8);
    putU32(h, 8, trace::kCaptureVersion);
    putU32(h, 24, util::crc32(h.data(), 24));
    return h;
}

/** Appends `u32 len | u32 crc | kind body` with a *correct* CRC. */
void
craftFrame(std::vector<unsigned char> &out, char kind,
           const std::vector<unsigned char> &body)
{
    std::vector<unsigned char> payload;
    payload.push_back(static_cast<unsigned char>(kind));
    payload.insert(payload.end(), body.begin(), body.end());
    const std::size_t head = out.size();
    out.resize(out.size() + 8);
    putU32(out, head, static_cast<std::uint32_t>(payload.size()));
    putU32(out, head + 4, util::crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<unsigned char>
craftEndBody(std::uint64_t count)
{
    std::vector<unsigned char> body(8, 0);
    putU32(body, 0, static_cast<std::uint32_t>(count));
    putU32(body, 4, static_cast<std::uint32_t>(count >> 32));
    return body;
}

std::vector<unsigned char>
craftRecordBytes(const isa::MicroOp &op)
{
    std::vector<unsigned char> bytes(sizeof(trace::TraceRecord));
    trace::encodeTraceRecord(trace::packTraceRecord(op), bytes.data());
    return bytes;
}

std::vector<unsigned char>
craftMetaBody(const std::string &text)
{
    return std::vector<unsigned char>(text.begin(), text.end());
}

/** Expect fn to throw TraceError with `code`, returning its message. */
template <typename Fn>
std::string
expectTraceError(Fn &&fn, util::ErrorCode code, const char *what)
{
    try {
        fn();
    } catch (const util::TraceError &e) {
        EXPECT_EQ(e.code(), code) << what << ": " << e.what();
        return e.what();
    } catch (const std::exception &e) {
        ADD_FAILURE() << what << ": wrong exception type: " << e.what();
        return "";
    }
    ADD_FAILURE() << what << ": no exception thrown";
    return "";
}

/** Clears the disk-fault hook even when a test assertion bails out. */
struct ScopedDiskFault
{
    explicit ScopedDiskFault(util::DiskFaultHook hook)
    {
        util::setDiskFaultHook(std::move(hook));
    }
    ~ScopedDiskFault() { util::setDiskFaultHook(nullptr); }
};

} // namespace

TEST(TraceRecord, WriterRoundTripPreservesOpsAndMeta)
{
    const std::string path = tmpPath("roundtrip.fo4cap");
    const auto ops = makeOps(40);
    const trace::CaptureMeta meta = {{"benchmark", "164.gzip"},
                                     {"instructions", "1500"},
                                     {"model", "ooo"}};
    // opsPerFrame=16 forces multiple 'O' frames (16+16+8 records).
    writeCaptureFile(path, ops, meta, 16);

    const auto contents = trace::readCapture(path);
    EXPECT_TRUE(contents.finalized);
    EXPECT_FALSE(contents.tornTail);
    EXPECT_EQ(contents.meta, meta);
    ASSERT_EQ(contents.ops.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_TRUE(sameOp(contents.ops[i], ops[i])) << "op " << i;

    trace::RecordedTrace replay(path);
    EXPECT_EQ(replay.recordedInstructions(), ops.size());
    EXPECT_EQ(replay.metaValue("benchmark"), "164.gzip");
    EXPECT_EQ(replay.metaValue("missing", "fallback"), "fallback");
    // Replay cycles past the end with seq renumbered by position.
    for (std::size_t i = 0; i < 2 * ops.size(); ++i) {
        const auto op = replay.next();
        EXPECT_EQ(op.seq, i) << "cycled seq must keep counting";
        EXPECT_EQ(op.pc, ops[i % ops.size()].pc) << "op " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceRecord, PublicationIsAtomic)
{
    const std::string path = tmpPath("atomic.fo4cap");
    writeCaptureFile(path, makeOps(4), {}, 16);
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"))
        << "close() must rename the tmp file away";
    std::remove(path.c_str());

    // A writer destroyed without close() publishes nothing — not the
    // final path, and not a stale tmp file either.
    const std::string aborted = tmpPath("aborted.fo4cap");
    {
        auto writer = trace::CaptureWriter::create(aborted, {}, 16);
        writer.append(makeOps(1)[0]);
        EXPECT_TRUE(fileExists(aborted + ".tmp"));
    }
    EXPECT_FALSE(fileExists(aborted));
    EXPECT_FALSE(fileExists(aborted + ".tmp"));
}

TEST(TraceRecord, EmptyCaptureIsRefused)
{
    const std::string path = tmpPath("empty.fo4cap");
    auto writer = trace::CaptureWriter::create(path, {}, 16);
    EXPECT_THROW(writer.close(), util::ConfigError);
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(TraceRecord, TruncationAtEveryByteIsNeverReplayable)
{
    const std::string whole = tmpPath("trunc_whole.fo4cap");
    const std::string cut = tmpPath("trunc_cut.fo4cap");
    const auto ops = makeOps(40);
    writeCaptureFile(whole, ops, {{"benchmark", "164.gzip"}}, 16);
    const auto bytes = readBytes(whole);
    ASSERT_GT(bytes.size(), 32u);

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeBytes(cut, std::vector<unsigned char>(bytes.begin(),
                                                   bytes.begin() + len));
        if (len < 32) {
            // Shorter than the header: not even a capture skeleton.
            expectTraceError([&] { trace::readCapture(cut); },
                             util::ErrorCode::TraceFormat,
                             "header prefix");
        } else {
            // Torn-tail salvage: readCapture recovers the valid frame
            // prefix and reports what is missing...
            trace::CaptureContents contents;
            ASSERT_NO_THROW(contents = trace::readCapture(cut))
                << "len=" << len;
            ASSERT_FALSE(contents.finalized) << "len=" << len;
            ASSERT_LE(contents.ops.size(), ops.size()) << "len=" << len;
            for (std::size_t i = 0; i < contents.ops.size(); ++i)
                ASSERT_TRUE(sameOp(contents.ops[i], ops[i]))
                    << "len=" << len << " op=" << i;
        }
        // ...but replaying any truncation is refused: simulating a
        // shortened stream would silently diverge from the recording.
        EXPECT_THROW(trace::RecordedTrace{cut}, util::TraceError)
            << "len=" << len;
    }
    std::remove(whole.c_str());
    std::remove(cut.c_str());
}

TEST(TraceRecord, BitRotNeverYieldsSilentlyDifferentData)
{
    const std::string whole = tmpPath("rot_whole.fo4cap");
    const std::string rotted = tmpPath("rot_flip.fo4cap");
    const auto ops = makeOps(20);
    const trace::CaptureMeta meta = {{"benchmark", "176.gcc"}};
    writeCaptureFile(whole, ops, meta, 8);
    const auto bytes = readBytes(whole);

    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto flipped = bytes;
        flipped[i] ^= 0xFF;
        writeBytes(rotted, flipped);

        // Every flip must be (a) caught with a typed error, (b) mapped
        // to a salvageable torn tail that replay then refuses, or
        // (c) provably harmless — a reserved byte whose decode is
        // bit-identical to the original.  Never: silently different.
        trace::CaptureContents contents;
        try {
            contents = trace::readCapture(rotted);
        } catch (const util::TraceError &) {
            continue; // (a)
        }
        if (!contents.finalized) { // (b)
            EXPECT_THROW(trace::RecordedTrace{rotted}, util::TraceError)
                << "byte " << i;
            continue;
        }
        ASSERT_EQ(contents.meta, meta) << "byte " << i; // (c)
        ASSERT_EQ(contents.ops.size(), ops.size()) << "byte " << i;
        for (std::size_t k = 0; k < ops.size(); ++k)
            ASSERT_TRUE(sameOp(contents.ops[k], ops[k]))
                << "byte " << i << " op " << k;
    }
    std::remove(whole.c_str());
    std::remove(rotted.c_str());
}

TEST(TraceRecord, VersionSkewIsAFormatErrorNotBitRot)
{
    const std::string path = tmpPath("version_skew.fo4cap");
    writeCaptureFile(path, makeOps(4), {}, 16);
    auto bytes = readBytes(path);
    bytes[8] = 2; // version field; deliberately *without* fixing the
                  // header CRC — skew must be diagnosed before rot.
    writeBytes(path, bytes);
    const auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceFormat,
        "version skew");
    EXPECT_NE(message.find("unsupported version 2"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, HeaderCrcMismatchIsCorrupt)
{
    const std::string path = tmpPath("header_rot.fo4cap");
    writeCaptureFile(path, makeOps(4), {}, 16);
    auto bytes = readBytes(path);
    bytes[13] ^= 0x40; // flags field: covered by the header CRC
    writeBytes(path, bytes);
    const auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceCorrupt,
        "header rot");
    EXPECT_NE(message.find("header CRC mismatch"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, ImplausibleFrameLengthRefusedBeforeAllocation)
{
    const std::string path = tmpPath("oversize.fo4cap");
    writeCaptureFile(path, makeOps(4), {}, 16);
    const auto bytes = readBytes(path);

    // An oversize length must not be misread as a torn tail (the file
    // *is* shorter than the declared frame) — and must be refused
    // before it can drive a giant allocation.
    auto oversize = bytes;
    putU32(oversize, 32, trace::kMaxCaptureFrame + 1);
    writeBytes(path, oversize);
    auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceCorrupt,
        "oversize frame");
    EXPECT_NE(message.find("refused before allocation"), std::string::npos)
        << message;

    auto zero = bytes;
    putU32(zero, 32, 0);
    writeBytes(path, zero);
    message = expectTraceError([&] { trace::readCapture(path); },
                               util::ErrorCode::TraceCorrupt,
                               "zero-length frame");
    EXPECT_NE(message.find("refused before allocation"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, StrayBytesInOpFrameRejectedExactlyLikeFileTrace)
{
    // Both on-disk containers funnel records through the shared codec;
    // a frame whose body is not a whole number of records must produce
    // the same refusal FileTrace gives a flat file with stray bytes.
    const auto ops = makeOps(1);
    auto body = craftRecordBytes(ops[0]);
    body.push_back(0xAB); // 33 bytes: one record plus one stray

    auto capture = craftHeader();
    craftFrame(capture, 'M', craftMetaBody("benchmark=x\n"));
    craftFrame(capture, 'O', body);
    craftFrame(capture, 'E', craftEndBody(1));
    const std::string capPath = tmpPath("stray.fo4cap");
    writeBytes(capPath, capture);
    const auto capMessage = expectTraceError(
        [&] { trace::readCapture(capPath); },
        util::ErrorCode::TraceCorrupt, "capture stray bytes");

    // Flat v1 file with the same payload: 16-byte header + 33 bytes.
    const std::string flatPath = tmpPath("stray.fo4t");
    {
        trace::VectorTrace vec(ops);
        trace::recordTrace(flatPath, vec, 1);
        std::ofstream f(flatPath,
                        std::ios::binary | std::ios::app);
        f.put(static_cast<char>(0xAB));
    }
    const auto flatMessage = expectTraceError(
        [&] { trace::FileTrace ft(flatPath); },
        util::ErrorCode::TraceCorrupt, "flat stray bytes");

    const std::string want = "1 stray bytes after 1 complete records";
    EXPECT_NE(capMessage.find(want), std::string::npos) << capMessage;
    EXPECT_NE(flatMessage.find(want), std::string::npos) << flatMessage;
    std::remove(capPath.c_str());
    std::remove(flatPath.c_str());
}

TEST(TraceRecord, InvalidRecordsRejectedExactlyLikeFileTrace)
{
    // A record with op class 0xEE, behind a *valid* frame CRC — the
    // codec's range check is the last line of defense, shared verbatim
    // with FileTrace.
    auto bad = makeOps(1)[0];
    auto body = craftRecordBytes(bad);
    body[30] = 0xEE; // cls byte of the packed record
    auto capture = craftHeader();
    craftFrame(capture, 'O', body);
    craftFrame(capture, 'E', craftEndBody(1));
    const std::string capPath = tmpPath("badcls.fo4cap");
    writeBytes(capPath, capture);
    const auto capMessage = expectTraceError(
        [&] { trace::readCapture(capPath); },
        util::ErrorCode::TraceCorrupt, "capture bad class");

    const std::string flatPath = tmpPath("badcls.fo4t");
    {
        trace::VectorTrace vec(makeOps(1));
        trace::recordTrace(flatPath, vec, 1);
        std::fstream f(flatPath,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(16 + 30);
        f.put(static_cast<char>(0xEE));
    }
    const auto flatMessage = expectTraceError(
        [&] { trace::FileTrace ft(flatPath); },
        util::ErrorCode::TraceCorrupt, "flat bad class");

    const std::string want = "record 0 has op class 238 out of range";
    EXPECT_NE(capMessage.find(want), std::string::npos) << capMessage;
    EXPECT_NE(flatMessage.find(want), std::string::npos) << flatMessage;
    std::remove(capPath.c_str());
    std::remove(flatPath.c_str());
}

TEST(TraceRecord, EndFrameCountMismatchIsCorrupt)
{
    auto capture = craftHeader();
    craftFrame(capture, 'O', craftRecordBytes(makeOps(1)[0]));
    craftFrame(capture, 'E', craftEndBody(3)); // lies: only 1 written
    const std::string path = tmpPath("count_lie.fo4cap");
    writeBytes(path, capture);
    const auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceCorrupt,
        "count mismatch");
    EXPECT_NE(message.find("end frame declares 3 records but 1 were read"),
              std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, FramesAfterTheEndFrameAreCorrupt)
{
    auto capture = craftHeader();
    craftFrame(capture, 'O', craftRecordBytes(makeOps(1)[0]));
    craftFrame(capture, 'E', craftEndBody(1));
    craftFrame(capture, 'M', craftMetaBody("late=frame\n"));
    const std::string path = tmpPath("late_frame.fo4cap");
    writeBytes(path, capture);
    const auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceCorrupt,
        "frame after end");
    EXPECT_NE(message.find("follows the end frame"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, UnknownFrameKindIsCorrupt)
{
    auto capture = craftHeader();
    craftFrame(capture, 'Z', craftMetaBody("mystery"));
    const std::string path = tmpPath("unknown_kind.fo4cap");
    writeBytes(path, capture);
    const auto message = expectTraceError(
        [&] { trace::readCapture(path); }, util::ErrorCode::TraceCorrupt,
        "unknown kind");
    EXPECT_NE(message.find("unknown frame kind"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, MalformedMetaLinesAreCorrupt)
{
    const std::string path = tmpPath("bad_meta.fo4cap");
    const char *const badMetas[] = {
        "noequalsign\n",   // no '='
        "=orphanvalue\n",  // empty key
        "key=unterminated" // text not ending in a newline
    };
    for (const char *text : badMetas) {
        auto capture = craftHeader();
        craftFrame(capture, 'M', craftMetaBody(text));
        craftFrame(capture, 'O', craftRecordBytes(makeOps(1)[0]));
        craftFrame(capture, 'E', craftEndBody(1));
        writeBytes(path, capture);
        const auto message = expectTraceError(
            [&] { trace::readCapture(path); },
            util::ErrorCode::TraceCorrupt, text);
        EXPECT_NE(message.find("malformed meta frame line"),
                  std::string::npos)
            << message;
    }
    std::remove(path.c_str());
}

TEST(TraceRecord, FinalizedButEmptyCaptureIsRefusedByReplay)
{
    // The writer refuses to record zero ops, but a crafted file can
    // still claim it; replay must refuse it like FileTrace refuses an
    // empty flat trace.
    auto capture = craftHeader();
    craftFrame(capture, 'M', craftMetaBody("benchmark=void\n"));
    craftFrame(capture, 'E', craftEndBody(0));
    const std::string path = tmpPath("void.fo4cap");
    writeBytes(path, capture);

    const auto contents = trace::readCapture(path);
    EXPECT_TRUE(contents.finalized);
    EXPECT_TRUE(contents.ops.empty());
    const auto message = expectTraceError(
        [&] { trace::RecordedTrace rt(path); },
        util::ErrorCode::TraceCorrupt, "empty replay");
    EXPECT_NE(message.find("contains no instructions"), std::string::npos)
        << message;
    std::remove(path.c_str());
}

TEST(TraceRecord, RecorderVerifiesTheRetiredStream)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::Recorder recorder(
        std::make_unique<trace::SyntheticTraceGenerator>(prof));

    std::vector<isa::MicroOp> pulled;
    for (int i = 0; i < 5; ++i)
        pulled.push_back(recorder.next());

    recorder.onRetire(pulled[0]); // in-order retirement verifies
    isa::MicroOp wrong = pulled[1];
    wrong.dst = wrong.dst == 3 ? 4 : 3;
    const auto message = expectTraceError(
        [&] { recorder.onRetire(wrong); }, util::ErrorCode::TraceCorrupt,
        "retire divergence");
    EXPECT_NE(message.find("recorder divergence at op 1"),
              std::string::npos)
        << message;

    // Retiring past the capture is equally a divergence, not a crash.
    trace::Recorder fresh(
        std::make_unique<trace::SyntheticTraceGenerator>(prof));
    EXPECT_THROW(fresh.onRetire(pulled[0]), util::TraceError);
}

TEST(TraceRecord, RecorderReplaysItsCaptureOnReset)
{
    auto prof = trace::spec2000Profile("171.swim");
    trace::Recorder recorder(
        std::make_unique<trace::SyntheticTraceGenerator>(prof));

    std::vector<isa::MicroOp> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(recorder.next());
    ASSERT_EQ(recorder.captured().size(), 10u);

    // reset() rewinds the replay cursor; the second pass must see the
    // identical stream without extending the capture.
    recorder.reset();
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(sameOp(recorder.next(), first[i])) << "op " << i;
    EXPECT_EQ(recorder.captured().size(), 10u);

    // Pulling past the high-water mark extends it; pad() extends it by
    // a margin without touching the cursor.
    recorder.next();
    EXPECT_EQ(recorder.captured().size(), 11u);
    recorder.pad(5);
    EXPECT_EQ(recorder.captured().size(), 16u);
}

TEST(TraceRecord, OpenTraceFileDispatchesOnMagic)
{
    auto prof = trace::spec2000Profile("176.gcc");

    // Capture container → RecordedTrace.
    const std::string cap = tmpPath("dispatch.fo4cap");
    const auto ops = makeOps(6);
    writeCaptureFile(cap, ops, {}, 16);
    auto fromCapture = trace::openTraceFile(cap);
    ASSERT_NE(fromCapture, nullptr);
    EXPECT_TRUE(sameOp(fromCapture->next(), ops[0]));

    // Flat v1 trace → FileTrace.
    const std::string flat = tmpPath("dispatch.fo4t");
    {
        trace::SyntheticTraceGenerator gen(prof);
        trace::recordTrace(flat, gen, 32);
    }
    auto fromFlat = trace::openTraceFile(flat);
    ASSERT_NE(fromFlat, nullptr);
    EXPECT_NO_THROW(fromFlat->next());

    // Garbage → the FileTrace format error; missing → typed I/O error.
    const std::string garbage = tmpPath("dispatch.txt");
    {
        std::ofstream f(garbage, std::ios::binary);
        f << "this is not a trace file of any kind whatsoever";
    }
    expectTraceError([&] { trace::openTraceFile(garbage); },
                     util::ErrorCode::TraceFormat, "garbage file");
    expectTraceError(
        [&] { trace::openTraceFile(tmpPath("no_such_file.fo4t")); },
        util::ErrorCode::TraceIo, "missing file");

    std::remove(cap.c_str());
    std::remove(flat.c_str());
    std::remove(garbage.c_str());
}

TEST(TraceRecord, InjectedDiskFaultPublishesNothing)
{
    const std::string path = tmpPath("faulty.fo4cap");

    // ENOSPC on the very first write (the header): create() throws the
    // typed I/O error and leaves no file behind.
    {
        ScopedDiskFault guard(
            [](const std::string &p) -> std::optional<util::DiskFault> {
                if (p.find("faulty.fo4cap") != std::string::npos)
                    return util::DiskFault{};
                return std::nullopt;
            });
        EXPECT_THROW(trace::CaptureWriter::create(path, {}, 16),
                     util::TraceError);
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));

    // ENOSPC mid-recording: the append that flushes a frame throws and
    // the writer abandons its tmp file.
    {
        auto writer = trace::CaptureWriter::create(path, {}, 2);
        const auto ops = makeOps(4);
        writer.append(ops[0]);
        ScopedDiskFault guard(
            [](const std::string &p) -> std::optional<util::DiskFault> {
                if (p.find("faulty.fo4cap") != std::string::npos)
                    return util::DiskFault{};
                return std::nullopt;
            });
        EXPECT_THROW(
            {
                writer.append(ops[1]); // reaches opsPerFrame: flushes
            },
            util::TraceError);
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}
