/**
 * @file
 * The crash-safe sweep engine's contract: a run interrupted after any K
 * of its N cells and resumed from the journal is byte-identical
 * (study::serializeSuite-equal) to an uninterrupted run, at any thread
 * count, including failed and exhausted-retry rows; a journal written by
 * different inputs is refused; retries happen only for transient-classed
 * failures; cancellation drains, flushes, and leaves a resumable
 * journal.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "study/checkpoint.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/journal.hh"
#include "util/metrics.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

using namespace fo4;

namespace
{

std::string
tempPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    std::remove(path.c_str());
    return path;
}

study::RunSpec
smallSpec()
{
    study::RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 250;
    spec.prewarm = 20000;
    spec.cycleLimit = 1000000; // fail fast instead of hanging ctest
    return spec;
}

/** Write a short trace with one record's op-class byte destroyed. */
std::string
makeCorruptTrace(const std::string &name)
{
    const std::string path = tempPath(name);
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 512);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 32 * 50 + 30);
    f.put(static_cast<char>(0xEE));
    return path;
}

/**
 * Healthy, corrupt-trace, watchdog-tripping and missing-file jobs
 * interleaved: the journal must round-trip successful rows, typed
 * failures, and a transient-classed failure that exhausts its retries.
 */
std::vector<study::BenchJob>
mixedJobs(const std::string &corruptPath)
{
    std::vector<study::BenchJob> jobs;
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("176.gcc")));
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt", trace::BenchClass::Integer, corruptPath));
    auto hung = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    hung.name = "hung";
    hung.cycleLimit = 20;
    jobs.push_back(hung);
    jobs.push_back(study::BenchJob::fromTraceFile(
        "missing", trace::BenchClass::Integer,
        std::string(::testing::TempDir()) + "/no_such_trace.fo4t"));
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("181.mcf")));
    return jobs;
}

std::vector<study::GridPoint>
twoPoints()
{
    std::vector<study::GridPoint> points(2);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);
    points[1].params = study::scaledCoreParams(9.0, {});
    points[1].clock = study::scaledClock(9.0);
    return points;
}

std::string
serializeAll(const std::vector<study::SuiteResult> &suites)
{
    std::string out;
    for (const auto &suite : suites)
        out += study::serializeSuite(suite);
    return out;
}

/** Rewrite `path` keeping only its first `keep` records. */
void
truncateJournalTo(const std::string &path, std::size_t keep)
{
    const auto contents = util::readJournal(path);
    ASSERT_GE(contents.records.size(), keep);
    auto writer =
        util::JournalWriter::create(path, contents.fingerprint);
    for (std::size_t i = 0; i < keep; ++i)
        writer.append(contents.records[i]);
    writer.close();
}

} // namespace

TEST(RetryPolicy, ClassifiesTransientVsPermanent)
{
    EXPECT_TRUE(study::RetryPolicy::transientCode(
        util::ErrorCode::TraceIo));
    EXPECT_TRUE(study::RetryPolicy::transientCode(
        util::ErrorCode::Internal));
    EXPECT_FALSE(study::RetryPolicy::transientCode(
        util::ErrorCode::InvalidConfig));
    EXPECT_FALSE(study::RetryPolicy::transientCode(
        util::ErrorCode::TraceFormat));
    EXPECT_FALSE(study::RetryPolicy::transientCode(
        util::ErrorCode::TraceCorrupt));
    EXPECT_FALSE(study::RetryPolicy::transientCode(
        util::ErrorCode::Deadlock));
    EXPECT_FALSE(study::RetryPolicy::transientCode(
        util::ErrorCode::Cancelled));
}

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndCapped)
{
    study::RetryPolicy policy;
    policy.baseDelayMs = 100.0;
    policy.backoffFactor = 2.0;
    policy.maxDelayMs = 250.0;
    policy.jitterFraction = 0.25;

    // Same (cell, attempt) -> same delay, different cells -> jitter.
    EXPECT_EQ(policy.delayMs(2, 7), policy.delayMs(2, 7));
    EXPECT_NE(policy.delayMs(2, 7), policy.delayMs(2, 8));

    for (const std::uint64_t cell : {0ull, 1ull, 42ull}) {
        const double first = policy.delayMs(2, cell);
        EXPECT_GE(first, 100.0 * 0.875);
        EXPECT_LE(first, 100.0 * 1.125);
        // Attempt 4 would be 400ms uncapped; the cap applies before
        // jitter.
        EXPECT_LE(policy.delayMs(4, cell), 250.0 * 1.125);
    }
}

TEST(RetryPolicy, ValidateReportsEveryViolationAtOnce)
{
    study::RetryPolicy policy;
    policy.maxAttempts = 0;
    policy.baseDelayMs = -1.0;
    policy.backoffFactor = 0.5;
    policy.jitterFraction = 3.0;
    const auto st = policy.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), util::ErrorCode::InvalidConfig);
    EXPECT_NE(st.message().find("maxAttempts"), std::string::npos);
    EXPECT_NE(st.message().find("baseDelayMs"), std::string::npos);
    EXPECT_NE(st.message().find("backoffFactor"), std::string::npos);
    EXPECT_NE(st.message().find("jitterFraction"), std::string::npos);

    EXPECT_TRUE(study::RetryPolicy{}.validate().isOk());
}

TEST(GridFingerprint, BindsToEveryResultInfluencingInput)
{
    const auto points = twoPoints();
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("176.gcc"))};
    const auto spec = smallSpec();

    const auto base = study::gridFingerprint(points, jobs, spec);
    EXPECT_EQ(base, study::gridFingerprint(points, jobs, spec));

    auto p2 = points;
    p2[1].params.robSize += 1;
    EXPECT_NE(base, study::gridFingerprint(p2, jobs, spec));

    auto p3 = points;
    p3[0].clock.tUsefulFo4 += 1e-9; // hexfloat catches tiny deltas
    EXPECT_NE(base, study::gridFingerprint(p3, jobs, spec));

    auto j2 = jobs;
    j2[0].profile->seed += 1;
    EXPECT_NE(base, study::gridFingerprint(points, j2, spec));

    auto s2 = spec;
    s2.instructions += 1;
    EXPECT_NE(base, study::gridFingerprint(points, jobs, s2));
}

TEST(CheckpointedRunner, ThreadCountResolution)
{
    study::CheckpointOptions opts;
    opts.threads = 5;
    EXPECT_EQ(study::CheckpointedRunner(opts).threads(), 5);
    opts.threads = 0;
    EXPECT_EQ(study::CheckpointedRunner(opts).threads(),
              util::ThreadPool::hardwareThreads());
}

TEST(CheckpointedRunner, JournallessRunMatchesParallelEngine)
{
    const auto corrupt = makeCorruptTrace("ckpt_nojournal_corrupt.fo4t");
    const auto jobs = mixedJobs(corrupt);
    const auto points = twoPoints();
    const auto spec = smallSpec();

    const auto reference = serializeAll(
        study::ParallelRunner(1).runGrid(points, jobs, spec));

    study::CheckpointOptions opts; // journalPath empty
    opts.threads = 2;
    study::CheckpointedRunner runner(opts);
    EXPECT_EQ(serializeAll(runner.runGrid(points, jobs, spec)),
              reference);
    EXPECT_EQ(runner.report().totalCells, points.size() * jobs.size());
    EXPECT_EQ(runner.report().executedCells,
              points.size() * jobs.size());
    EXPECT_FALSE(runner.report().resumed);
    std::remove(corrupt.c_str());
}

TEST(CheckpointedRunner, JournalWriteFailureDegradesToJournallessRun)
{
    // The disk fills mid-sweep: every record append to the journal
    // fails with ENOSPC.  The contract is graceful degradation — the
    // sweep keeps computing without crash-resume, produces the same
    // bytes as a journalless run, and counts the failure — never an
    // aborted sweep over lost durability.
    const bool wasEnabled = util::setMetricsEnabled(true);
    const auto corrupt = makeCorruptTrace("ckpt_degraded_corrupt.fo4t");
    const auto jobs = mixedJobs(corrupt);
    const auto points = twoPoints();
    const auto spec = smallSpec();

    const auto reference = serializeAll(
        study::ParallelRunner(1).runGrid(points, jobs, spec));

    const std::string journal = tempPath("ckpt_degraded.j");
    // Creation writes the header via <path>.tmp and is keyed off that
    // name, so only the per-cell record appends see the fault.
    util::setDiskFaultHook(
        [journal](const std::string &p)
            -> std::optional<util::DiskFault> {
            if (p == journal)
                return util::DiskFault{};
            return std::nullopt;
        });
    const std::uint64_t errs0 = util::MetricsRegistry::global().value(
        "study.journal.append_errors");

    study::CheckpointOptions opts;
    opts.journalPath = journal;
    opts.threads = 2;
    study::CheckpointedRunner runner(opts);
    const std::string bytes =
        serializeAll(runner.runGrid(points, jobs, spec));
    util::setDiskFaultHook(nullptr);

    EXPECT_EQ(bytes, reference);
    EXPECT_GE(util::MetricsRegistry::global().value(
                  "study.journal.append_errors") -
                  errs0,
              1u);
    // What remains on disk is still a trustworthy journal — just an
    // empty one (the failed first append never landed a byte), so a
    // later resume recomputes rather than trusting damaged state.
    const auto contents = util::readJournal(journal);
    EXPECT_TRUE(contents.records.empty());

    util::setMetricsEnabled(wasEnabled);
    std::remove(journal.c_str());
    std::remove(corrupt.c_str());
}

TEST(CheckpointedRunner, KofNResumeIsByteIdenticalAtEveryThreadCount)
{
    const auto corrupt = makeCorruptTrace("ckpt_resume_corrupt.fo4t");
    const auto jobs = mixedJobs(corrupt);
    const auto points = twoPoints();
    const auto spec = smallSpec();
    const std::size_t total = points.size() * jobs.size();

    // Uninterrupted reference, no journal involved.  maxAttempts=2
    // exercises the retry loop on the missing-trace cells (TraceIo is
    // transient) without changing any result byte.
    study::RetryPolicy retry;
    retry.maxAttempts = 2;
    study::CheckpointOptions refOpts;
    refOpts.retry = retry;
    study::CheckpointedRunner refRunner(refOpts);
    const auto reference =
        serializeAll(refRunner.runGrid(points, jobs, spec));
    // The missing-trace job is transient-classed: one retry per point.
    EXPECT_EQ(refRunner.report().retriedAttempts, points.size());

    for (const int threads : {1, 8}) {
        const auto path = tempPath(
            "ckpt_resume_t" + std::to_string(threads) + ".journal");

        // Full journaled run (simulates the pre-crash process).
        {
            study::CheckpointOptions opts;
            opts.journalPath = path;
            opts.threads = threads;
            opts.retry = retry;
            study::CheckpointedRunner runner(opts);
            EXPECT_EQ(serializeAll(runner.runGrid(points, jobs, spec)),
                      reference)
                << "threads=" << threads;
        }

        // Kill-and-resume at every possible interruption point: keep
        // only the first K journal records and rerun.
        for (std::size_t keep = 0; keep <= total; ++keep) {
            truncateJournalTo(path, keep);
            study::CheckpointOptions opts;
            opts.journalPath = path;
            opts.threads = threads;
            opts.retry = retry;
            study::CheckpointedRunner runner(opts);
            EXPECT_EQ(serializeAll(runner.runGrid(points, jobs, spec)),
                      reference)
                << "threads=" << threads << " keep=" << keep;
            EXPECT_TRUE(runner.report().resumed);
            EXPECT_EQ(runner.report().replayedCells, keep);
            EXPECT_EQ(runner.report().executedCells, total - keep);
        }
        std::remove(path.c_str());
    }
    std::remove(corrupt.c_str());
}

TEST(CheckpointedRunner, SweepScalingCheckpointAndResume)
{
    const std::vector<double> ts{4, 6};
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::VectorFp);
    const auto spec = smallSpec();
    const auto path = tempPath("ckpt_sweep.journal");

    study::SweepOptions sweep;
    const auto reference =
        study::sweepScaling(ts, sweep, profiles, spec);

    study::CheckpointOptions opts;
    opts.journalPath = path;
    study::CheckpointedRunner runner(opts);
    const auto first = runner.sweepScaling(ts, sweep, profiles, spec);
    ASSERT_EQ(first.size(), reference.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].tUseful, reference[i].tUseful);
        EXPECT_EQ(study::serializeSuite(first[i].suite),
                  study::serializeSuite(reference[i].suite));
    }

    // A complete journal resumes to a pure replay: zero simulation.
    study::CheckpointedRunner again(opts);
    const auto replayed = again.sweepScaling(ts, sweep, profiles, spec);
    EXPECT_EQ(again.report().executedCells, 0u);
    EXPECT_EQ(again.report().replayedCells,
              ts.size() * profiles.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(study::serializeSuite(replayed[i].suite),
                  study::serializeSuite(reference[i].suite));
    }
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, ResumeAgainstChangedInputsIsRefused)
{
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    const auto points = twoPoints();
    const auto spec = smallSpec();
    const auto path = tempPath("ckpt_mismatch.journal");

    study::CheckpointOptions opts;
    opts.journalPath = path;
    study::CheckpointedRunner(opts).runGrid(points, jobs, spec);

    auto changed = spec;
    changed.instructions += 1;
    study::CheckpointedRunner resume(opts);
    try {
        resume.runGrid(points, jobs, changed);
        FAIL() << "expected ResumeMismatch";
    } catch (const util::JournalError &e) {
        EXPECT_EQ(e.code(), util::ErrorCode::ResumeMismatch);
    }
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, TornTailInJournalIsDiscardedOnResume)
{
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    const auto points = twoPoints();
    const auto spec = smallSpec();
    const auto path = tempPath("ckpt_torn.journal");

    study::CheckpointOptions opts;
    opts.journalPath = path;
    const auto reference = serializeAll(
        study::CheckpointedRunner(opts).runGrid(points, jobs, spec));

    // Keep one intact record, then simulate a crash mid-append.
    truncateJournalTo(path, 1);
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f.write("\x40\x00\x00", 3); // incomplete frame words
    }

    study::CheckpointedRunner resume(opts);
    EXPECT_EQ(serializeAll(resume.runGrid(points, jobs, spec)),
              reference);
    EXPECT_TRUE(resume.report().tornTailDiscarded);
    EXPECT_EQ(resume.report().replayedCells, 1u);
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, RetriesOnlyUntilAttemptsExhausted)
{
    // One missing-trace job: TraceIo, transient, never succeeds.
    const std::vector<study::BenchJob> jobs{
        study::BenchJob::fromTraceFile(
            "missing", trace::BenchClass::Integer,
            std::string(::testing::TempDir()) + "/still_missing.fo4t")};
    std::vector<study::GridPoint> points(1);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);

    std::atomic<int> attempts{0};
    study::CheckpointOptions opts;
    opts.retry.maxAttempts = 3;
    opts.onAttempt = [&](std::size_t, std::size_t, int) {
        ++attempts;
    };
    study::CheckpointedRunner runner(opts);
    const auto results = runner.runGrid(points, jobs, smallSpec());
    EXPECT_EQ(attempts.load(), 3);
    EXPECT_EQ(runner.report().retriedAttempts, 2u);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].benchmarks[0].error.code(),
              util::ErrorCode::TraceIo);
}

TEST(CheckpointedRunner, PermanentFailuresAreNeverRetried)
{
    const auto corrupt = makeCorruptTrace("ckpt_noretry_corrupt.fo4t");
    const std::vector<study::BenchJob> jobs{
        study::BenchJob::fromTraceFile(
            "corrupt", trace::BenchClass::Integer, corrupt)};
    std::vector<study::GridPoint> points(1);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);

    std::atomic<int> attempts{0};
    study::CheckpointOptions opts;
    opts.retry.maxAttempts = 5;
    opts.onAttempt = [&](std::size_t, std::size_t, int) {
        ++attempts;
    };
    study::CheckpointedRunner runner(opts);
    const auto results = runner.runGrid(points, jobs, smallSpec());
    EXPECT_EQ(attempts.load(), 1) << "TraceCorrupt must not be retried";
    EXPECT_EQ(runner.report().retriedAttempts, 0u);
    EXPECT_EQ(results[0].benchmarks[0].error.code(),
              util::ErrorCode::TraceCorrupt);
    std::remove(corrupt.c_str());
}

TEST(CheckpointedRunner, RetrySucceedsWhenTheFileReappears)
{
    const auto path = tempPath("ckpt_reappearing.fo4t");
    const std::vector<study::BenchJob> jobs{
        study::BenchJob::fromTraceFile(
            "flaky", trace::BenchClass::Integer, path)};
    std::vector<study::GridPoint> points(1);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);

    study::CheckpointOptions opts;
    opts.threads = 1; // the hook mutates the filesystem; keep it serial
    opts.retry.maxAttempts = 3;
    opts.onAttempt = [&](std::size_t, std::size_t, int attempt) {
        if (attempt == 2) {
            // The "NFS hiccup" heals between attempts.
            auto prof = trace::spec2000Profile("164.gzip");
            trace::SyntheticTraceGenerator gen(prof);
            trace::recordTrace(path, gen, 4096);
        }
    };
    study::CheckpointedRunner runner(opts);
    auto spec = smallSpec();
    spec.prewarm = 2000; // short file trace; keep the replay small
    const auto results = runner.runGrid(points, jobs, spec);
    EXPECT_TRUE(results[0].benchmarks[0].error.isOk())
        << results[0].benchmarks[0].error.toString();
    EXPECT_EQ(runner.report().retriedAttempts, 1u);
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, CancelledUpFrontThrowsAndResumeCompletes)
{
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    const auto points = twoPoints();
    const auto spec = smallSpec();
    const auto path = tempPath("ckpt_cancel_upfront.journal");

    study::CheckpointOptions plain;
    plain.journalPath = path;
    const auto reference = serializeAll(
        study::CheckpointedRunner(plain).runGrid(points, jobs, spec));
    truncateJournalTo(path, 0); // start over with an empty journal

    util::CancelToken cancel;
    cancel.requestCancel();
    study::CheckpointOptions opts;
    opts.journalPath = path;
    opts.cancel = &cancel;
    study::CheckpointedRunner runner(opts);
    EXPECT_THROW(runner.runGrid(points, jobs, spec),
                 util::CancelledError);
    EXPECT_EQ(runner.report().executedCells, 0u);

    // The journal is intact and the run resumes to the full result.
    study::CheckpointedRunner resume(plain);
    EXPECT_EQ(serializeAll(resume.runGrid(points, jobs, spec)),
              reference);
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, CancelMidRunFlushesCompletedCellsAndResumes)
{
    const std::vector<study::BenchJob> jobs{
        study::BenchJob::fromProfile(trace::spec2000Profile("176.gcc")),
        study::BenchJob::fromProfile(trace::spec2000Profile("181.mcf")),
        study::BenchJob::fromProfile(
            trace::spec2000Profile("256.bzip2"))};
    const auto points = twoPoints();
    const auto spec = smallSpec();
    const auto path = tempPath("ckpt_cancel_mid.journal");

    study::CheckpointOptions plain;
    plain.journalPath = path;
    const auto reference = serializeAll(
        study::CheckpointedRunner(plain).runGrid(points, jobs, spec));
    truncateJournalTo(path, 0);

    // Serial run, cancel as the third cell begins: the in-flight
    // simulation aborts at its per-cycle check, cells 1-2 are already
    // durable, queued cells are skipped.
    util::CancelToken cancel;
    std::atomic<int> started{0};
    study::CheckpointOptions opts;
    opts.journalPath = path;
    opts.threads = 1;
    opts.cancel = &cancel;
    opts.onAttempt = [&](std::size_t, std::size_t, int) {
        if (++started == 3)
            cancel.requestCancel();
    };
    study::CheckpointedRunner runner(opts);
    EXPECT_THROW(runner.runGrid(points, jobs, spec),
                 util::CancelledError);

    const auto contents = util::readJournal(path);
    EXPECT_EQ(contents.records.size(), 2u)
        << "exactly the cells completed before the cancel are durable";

    study::CheckpointedRunner resume(plain);
    EXPECT_EQ(serializeAll(resume.runGrid(points, jobs, spec)),
              reference);
    EXPECT_EQ(resume.report().replayedCells, 2u);
    std::remove(path.c_str());
}

TEST(CheckpointedRunner, InvalidRetryPolicyIsConfigError)
{
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"))};
    std::vector<study::GridPoint> points(1);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);

    study::CheckpointOptions opts;
    opts.retry.maxAttempts = 0;
    study::CheckpointedRunner runner(opts);
    EXPECT_THROW(runner.runGrid(points, jobs, smallSpec()),
                 util::ConfigError);
}

TEST(GridFingerprint, IgnoresSimImplLikeTracers)
{
    // The batched and reference implementations are byte-identical by
    // contract (DESIGN.md §14), so the implementation choice — like an
    // attached tracer — must not change the journal identity: a sweep
    // journaled under one implementation resumes under the other.
    const auto points = twoPoints();
    const std::vector<study::BenchJob> jobs{study::BenchJob::fromProfile(
        trace::spec2000Profile("176.gcc"))};
    auto reference = smallSpec();
    reference.impl = study::SimImpl::Reference;
    auto batched = smallSpec();
    batched.impl = study::SimImpl::Batched;
    EXPECT_EQ(study::gridFingerprint(points, jobs, reference),
              study::gridFingerprint(points, jobs, batched));
}

TEST(CheckpointedRunner, CancelMidBatchedSweepResumesUnderEitherImpl)
{
    // The interrupted-sweep drill on the one-pass engine: cancel a
    // batched journaled run mid-grid, then resume it — once under the
    // batched implementation and once under the reference one — and
    // demand the uninterrupted reference runner's exact bytes both
    // times.
    const std::vector<study::BenchJob> jobs{
        study::BenchJob::fromProfile(trace::spec2000Profile("176.gcc")),
        study::BenchJob::fromProfile(trace::spec2000Profile("181.mcf")),
        study::BenchJob::fromProfile(
            trace::spec2000Profile("256.bzip2"))};
    const auto points = twoPoints();
    auto referenceSpec = smallSpec();
    auto batchedSpec = smallSpec();
    batchedSpec.impl = study::SimImpl::Batched;
    const auto path = tempPath("ckpt_cancel_batched.journal");

    const auto reference = serializeAll(
        study::ParallelRunner(1).runGrid(points, jobs, referenceSpec));

    // Serial batched run, cancelled as the third cell begins.
    util::CancelToken cancel;
    std::atomic<int> started{0};
    study::CheckpointOptions opts;
    opts.journalPath = path;
    opts.threads = 1;
    opts.cancel = &cancel;
    opts.onAttempt = [&](std::size_t, std::size_t, int) {
        if (++started == 3)
            cancel.requestCancel();
    };
    study::CheckpointedRunner runner(opts);
    EXPECT_THROW(runner.runGrid(points, jobs, batchedSpec),
                 util::CancelledError);
    EXPECT_EQ(util::readJournal(path).records.size(), 2u);

    // Resume under the batched implementation.
    study::CheckpointOptions plain;
    plain.journalPath = path;
    study::CheckpointedRunner resumeBatched(plain);
    EXPECT_EQ(
        serializeAll(resumeBatched.runGrid(points, jobs, batchedSpec)),
        reference);
    EXPECT_TRUE(resumeBatched.report().resumed);
    EXPECT_EQ(resumeBatched.report().replayedCells, 2u);

    // Cross-implementation resume: rewind to one durable record and
    // finish the batched-started journal on the reference engine.
    truncateJournalTo(path, 1);
    study::CheckpointedRunner resumeReference(plain);
    EXPECT_EQ(
        serializeAll(resumeReference.runGrid(points, jobs, referenceSpec)),
        reference);
    EXPECT_EQ(resumeReference.report().replayedCells, 1u);
    std::remove(path.c_str());
}
