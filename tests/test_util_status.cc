/**
 * @file
 * Tests for the recoverable-error subsystem: Status, ErrorCollector,
 * Expected, the SimError hierarchy, the top-level CLI handler and the
 * config-key spell check.
 */

#include <gtest/gtest.h>

#include "core/params.hh"
#include "mem/cache.hh"
#include "tech/clocking.hh"
#include "util/config.hh"
#include "util/status.hh"

using namespace fo4::util;

TEST(Status, DefaultIsOk)
{
    Status st;
    EXPECT_TRUE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::Ok);
    EXPECT_EQ(st.toString(), "ok");
}

TEST(Status, CarriesCodeAndMessage)
{
    Status st(ErrorCode::TraceCorrupt, "bit rot");
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::TraceCorrupt);
    EXPECT_EQ(st.message(), "bit rot");
    EXPECT_EQ(st.toString(), "[TraceCorrupt] bit rot");
}

TEST(Status, EveryCodeHasAName)
{
    for (const auto code :
         {ErrorCode::Ok, ErrorCode::InvalidConfig, ErrorCode::UnknownKey,
          ErrorCode::TraceIo, ErrorCode::TraceFormat,
          ErrorCode::TraceCorrupt, ErrorCode::Deadlock,
          ErrorCode::JournalIo, ErrorCode::JournalFormat,
          ErrorCode::JournalCorrupt, ErrorCode::ResumeMismatch,
          ErrorCode::Cancelled, ErrorCode::Internal}) {
        EXPECT_NE(errorCodeName(code), nullptr);
        EXPECT_STRNE(errorCodeName(code), "");
    }
}

TEST(ErrorCollector, EmptyCollectorIsOk)
{
    ErrorCollector errs;
    EXPECT_TRUE(errs.empty());
    EXPECT_TRUE(errs.status(ErrorCode::InvalidConfig).isOk());
}

TEST(ErrorCollector, AccumulatesAndJoins)
{
    ErrorCollector errs;
    errs.addf("first problem (%d)", 1);
    errs.addf("second problem (%s)", "two");
    EXPECT_EQ(errs.count(), 2u);
    const auto st = errs.status(ErrorCode::InvalidConfig);
    EXPECT_EQ(st.code(), ErrorCode::InvalidConfig);
    EXPECT_NE(st.message().find("first problem (1)"), std::string::npos);
    EXPECT_NE(st.message().find("second problem (two)"),
              std::string::npos);
}

TEST(SimErrorHierarchy, CodesAndCatchability)
{
    try {
        throw ConfigError("bad knob");
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
        EXPECT_STREQ(e.what(), "bad knob");
        EXPECT_EQ(e.toStatus().code(), ErrorCode::InvalidConfig);
    }
    try {
        throw TraceError(ErrorCode::TraceIo, "unreadable");
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "unreadable");
    }
}

TEST(SimErrorHierarchy, DeadlockErrorCarriesDump)
{
    DeadlockDump dump;
    dump.model = "out-of-order";
    dump.cycle = 12345;
    dump.cycleLimit = 12345;
    dump.committed = 7;
    dump.target = 1000;
    dump.robOccupancy = 64;
    dump.oldestStalled = "load seq=8";
    const DeadlockError err(dump);
    EXPECT_EQ(err.code(), ErrorCode::Deadlock);
    const std::string text = err.what();
    EXPECT_NE(text.find("out-of-order"), std::string::npos);
    EXPECT_NE(text.find("load seq=8"), std::string::npos);
    EXPECT_EQ(err.dump().robOccupancy, 64u);
}

TEST(Expected, HoldsValueOrStatus)
{
    Expected<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_TRUE(good.status().isOk());

    Expected<int> bad(Status(ErrorCode::TraceIo, "gone"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::TraceIo);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(RunTopLevel, MapsOutcomesToExitCodes)
{
    EXPECT_EQ(runTopLevel([] { return 0; }), 0);
    EXPECT_EQ(runTopLevel([] { return 3; }), 3);
    EXPECT_EQ(runTopLevel([]() -> int {
                  throw ConfigError("nope");
              }),
              1);
    EXPECT_EQ(runTopLevel([]() -> int {
                  throw std::runtime_error("surprise");
              }),
              2);
    // 128 + SIGINT: a cancelled run is resumable, not failed, and
    // scripts can tell the difference.
    EXPECT_EQ(runTopLevel([]() -> int {
                  throw CancelledError("ctrl-c");
              }),
              130);
}

TEST(SimErrorHierarchy, JournalAndCancelledErrors)
{
    const JournalError corrupt(ErrorCode::JournalCorrupt, "bit rot");
    EXPECT_EQ(corrupt.code(), ErrorCode::JournalCorrupt);
    const JournalError mismatch(ErrorCode::ResumeMismatch, "inputs");
    EXPECT_EQ(mismatch.code(), ErrorCode::ResumeMismatch);

    const CancelledError cancelled("ctrl-c");
    EXPECT_EQ(cancelled.code(), ErrorCode::Cancelled);

    // Both remain catchable as SimError, like every recoverable error.
    try {
        throw JournalError(ErrorCode::JournalIo, "disk");
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::JournalIo);
    }
}

TEST(ConfigCheckKnown, FlagsMisspelledKeys)
{
    Config cfg;
    cfg.set("t_usefull", "6"); // the motivating typo
    cfg.set("bench", "164.gzip");
    const auto unknown = cfg.checkKnown({"t_useful", "bench"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "t_usefull");

    EXPECT_TRUE(cfg.checkKnown({"t_usefull", "bench"}).empty());
}

TEST(ConfigAccessors, MalformedValuesThrowConfigError)
{
    Config cfg;
    cfg.set("n", "twelve");
    cfg.set("x", "fast");
    cfg.set("b", "maybe");
    EXPECT_THROW((void)cfg.getInt("n", 0), ConfigError);
    EXPECT_THROW((void)cfg.getDouble("x", 0.0), ConfigError);
    EXPECT_THROW((void)cfg.getBool("b", false), ConfigError);
    EXPECT_EQ(cfg.getInt("absent", 9), 9);
}

TEST(ConfigAccessors, PositiveIntRejectsZeroAndNegative)
{
    {
        Config cfg;
        cfg.set("jobs", "4");
        EXPECT_EQ(cfg.getPositiveInt("jobs", 1), 4);
        EXPECT_EQ(cfg.getPositiveInt("absent", 1), 1);
    }
    for (const char *bad : {"0", "-3", "four"}) {
        Config cfg;
        cfg.set("jobs", bad);
        EXPECT_THROW((void)cfg.getPositiveInt("jobs", 1), ConfigError);
    }
}

TEST(ConfigDuplicates, SecondSetOfSameKeyThrows)
{
    Config cfg;
    cfg.set("jobs", "4");
    try {
        cfg.set("jobs", "8");
        FAIL() << "duplicate set() must throw";
    } catch (const ConfigError &e) {
        // The first value wins and is named in the message.
        EXPECT_NE(std::string(e.what()).find("duplicate config key "
                                             "'jobs'"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("'4'"), std::string::npos);
    }
    EXPECT_EQ(cfg.getInt("jobs", 0), 4);
}

TEST(ConfigDuplicates, FromArgsNamesBothSpellings)
{
    // The regression: `bench jobs=4 --jobs=8` used to keep whichever
    // token was parsed last; now it refuses, citing both spellings.
    const char *argv[] = {"bench", "jobs=4", "--jobs=8"};
    try {
        (void)Config::fromArgs(3, argv);
        FAIL() << "duplicate key across spellings must throw";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate config key 'jobs'"),
                  std::string::npos);
        EXPECT_NE(msg.find("'jobs=4'"), std::string::npos);
        EXPECT_NE(msg.find("'--jobs=8'"), std::string::npos);
    }

    // Bare-flag spelling collides with its explicit form too.
    const char *argv2[] = {"bench", "--verbose", "verbose=0"};
    EXPECT_THROW((void)Config::fromArgs(3, argv2), ConfigError);

    // Distinct keys and repeated positionals stay legal.
    const char *argv3[] = {"bench", "jobs=4", "trace=/tmp/t.json", "go",
                           "go"};
    const auto cfg = Config::fromArgs(5, argv3);
    EXPECT_EQ(cfg.getInt("jobs", 0), 4);
    EXPECT_EQ(cfg.positional().size(), 2u);
}

TEST(ConfigAccessors, JobsValidationCoversBothArgumentSpellings)
{
    // The bench harnesses accept `jobs=N` and `--jobs=N` as the same
    // key; the positive-int rule must hold for both.
    for (const char *spelling : {"jobs=0", "--jobs=0", "jobs=-2",
                                 "--jobs=-2"}) {
        const char *argv[] = {"bench", spelling};
        const auto cfg = Config::fromArgs(2, argv);
        EXPECT_THROW((void)cfg.getPositiveInt("jobs", 1), ConfigError)
            << spelling;
    }
    for (const char *spelling : {"jobs=3", "--jobs=3"}) {
        const char *argv[] = {"bench", spelling};
        EXPECT_EQ(Config::fromArgs(2, argv).getPositiveInt("jobs", 1), 3)
            << spelling;
    }
}

TEST(Validation, CoreParamsReportAllViolationsAtOnce)
{
    auto p = fo4::core::CoreParams::alpha21264();
    p.fetchWidth = 0;
    p.robSize = 2;
    p.issueLatency = 0;
    const auto st = p.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::InvalidConfig);
    EXPECT_NE(st.message().find("widths must be positive"),
              std::string::npos);
    EXPECT_NE(st.message().find("ROB"), std::string::npos);
    EXPECT_NE(st.message().find("issue latency"), std::string::npos);
    EXPECT_THROW(p.validateOrThrow(), ConfigError);
}

TEST(Validation, DefaultParamsAreValid)
{
    EXPECT_TRUE(fo4::core::CoreParams::alpha21264().validate().isOk());
}

TEST(Validation, CacheGeometry)
{
    fo4::mem::CacheParams c;
    c.capacityBytes = 64 * 1024;
    c.lineBytes = 64;
    c.associativity = 2;
    EXPECT_TRUE(c.validate().isOk());

    c.lineBytes = 48; // not a power of two
    EXPECT_FALSE(c.validate().isOk());
    c.lineBytes = 64;
    c.associativity = 0;
    EXPECT_FALSE(c.validate().isOk());
}

TEST(Validation, ClockModel)
{
    fo4::tech::ClockModel clock;
    clock.tUsefulFo4 = 6.0;
    EXPECT_TRUE(clock.validate().isOk());
    clock.tUsefulFo4 = -1.0;
    EXPECT_FALSE(clock.validate().isOk());
}
