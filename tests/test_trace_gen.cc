/**
 * @file
 * The golden-test generator (study/goldengen.hh) end to end: generated
 * sources are byte-deterministic, their pinned rows match an
 * independent replay, the negative control really is sensitive to a
 * one-cycle core change, and the goldens committed under
 * tests/generated/ are exactly what regenerating from the committed
 * captures produces (the same check the generated-goldens CI job runs
 * as a directory diff).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "study/goldengen.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/recorded_trace.hh"
#include "trace/spec2000.hh"
#include "util/status.hh"

using namespace fo4;

namespace
{

/** The committed fixtures; regenerate with `fo4trace gen` (README). */
const char *const kCommittedCaptures[] = {
    "164.gzip.fo4cap",
    "171.swim.fo4cap",
    "176.gcc.fo4cap",
};

std::string
sourceDir()
{
    return FO4_SOURCE_DIR;
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f.good())
        return "";
    return std::string(std::istreambuf_iterator<char>(f), {});
}

/** Records a small capture for generator unit tests. */
std::string
recordSmallCapture(const std::string &fileName)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + fileName;
    study::CaptureRequest request;
    request.profile = trace::spec2000Profile("164.gzip");
    request.params = core::CoreParams::alpha21264();
    request.spec.instructions = 250;
    request.spec.warmup = 50;
    request.spec.prewarm = 400;
    request.spec.cycleLimit = 2000000;
    request.margin = 256;
    study::recordCapture(path, request);
    return path;
}

/** Replays a capture the way the generator pins it: reference impl,
 *  6 FO4, spec reconstructed from the capture's own metadata. */
std::string
independentPinnedRow(const std::string &capturePath, int extraLoadUse)
{
    const trace::RecordedTrace capture(capturePath);
    study::ScalingOptions options;
    options.extraLoadUse = extraLoadUse;
    const auto params = study::scaledCoreParams(6.0, options);
    const auto clock = study::scaledClock(6.0);
    study::RunSpec spec = study::specFromCaptureMeta(capture);
    spec.impl = study::SimImpl::Reference;
    const auto job = study::BenchJob::fromTraceFile(
        capture.metaValue("benchmark"),
        study::benchClassFromName(capture.metaValue("class", "integer")),
        capturePath);
    return study::serializeSuite(
        study::runSuite(params, clock, {job}, spec));
}

/** First line of a serialized suite — quote- and backslash-free, so it
 *  appears verbatim inside the generated source's pinned literal. */
std::string
firstLine(const std::string &text)
{
    const auto nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

} // namespace

TEST(TraceGen, GenerationIsByteDeterministic)
{
    const auto path = recordSmallCapture("gen_deterministic.fo4cap");
    const auto once =
        study::generateGoldenTest(path, "gen_deterministic.fo4cap");
    const auto twice =
        study::generateGoldenTest(path, "gen_deterministic.fo4cap");
    EXPECT_EQ(once.source, twice.source)
        << "regeneration must be byte-identical for the CI diff job";
    EXPECT_EQ(once.cmakeName, twice.cmakeName);
    EXPECT_EQ(study::generateGoldenCmake({once}),
              study::generateGoldenCmake({twice}));
    std::remove(path.c_str());
}

TEST(TraceGen, NamesAreSanitizedIdentifiers)
{
    const auto path = recordSmallCapture("gen_names.fo4cap");
    // A digit-leading benchmark stem must still yield legal C++ and
    // CMake identifiers.
    const auto test = study::generateGoldenTest(path, "164.gzip.fo4cap");
    EXPECT_EQ(test.cmakeName, "golden_g164_gzip");
    EXPECT_EQ(test.testName, "GoldenG164Gzip");
    EXPECT_EQ(test.fileName, "golden_g164_gzip.cc");

    const auto cmake = study::generateGoldenCmake({test});
    EXPECT_NE(cmake.find("golden_g164_gzip"), std::string::npos) << cmake;
    EXPECT_NE(cmake.find("FO4_CAPTURE_DIR"), std::string::npos) << cmake;
    std::remove(path.c_str());
}

TEST(TraceGen, PinnedRowMatchesAnIndependentReplay)
{
    const auto path = recordSmallCapture("gen_pin.fo4cap");
    const auto test = study::generateGoldenTest(path, "gen_pin.fo4cap");

    const auto row = independentPinnedRow(path, 0);
    ASSERT_NE(row.find("|Ok|"), std::string::npos) << row;
    const auto line = firstLine(row);
    ASSERT_FALSE(line.empty());
    EXPECT_NE(test.source.find(line), std::string::npos)
        << "generated source must embed the replayed row\nrow:  " << line
        << "\nsource:\n"
        << test.source;

    // The generated file must carry all three assertions.
    for (const char *name :
         {"ReferenceImplMatchesPinnedRow", "BatchedImplMatchesPinnedRow",
          "NegativeControlOffByOneBreaksThePin"}) {
        EXPECT_NE(test.source.find(name), std::string::npos) << name;
    }
    std::remove(path.c_str());
}

TEST(TraceGen, NegativeControlIsSensitiveAtGenTime)
{
    // The generated negative control asserts a one-cycle load-use bump
    // breaks the pin; prove that holds for the row we would pin, so a
    // generated golden can never be born vacuous.
    const auto path = recordSmallCapture("gen_control.fo4cap");
    const auto pinned = independentPinnedRow(path, 0);
    const auto bumped = independentPinnedRow(path, 1);
    EXPECT_NE(pinned, bumped);
    std::remove(path.c_str());
}

TEST(TraceGen, CommittedGoldensAreFreshAndComplete)
{
    // Regenerating from the committed captures must reproduce the
    // committed tests/generated/ files byte for byte — the in-tree
    // version of the CI `diff -r` job, so a stale golden fails close to
    // home.  This also re-runs each capture's pinned replay, proving
    // every committed capture still replays cleanly.
    const std::string dataDir = sourceDir() + "/tests/data";
    const std::string genDir = sourceDir() + "/tests/generated";

    std::vector<study::GoldenTest> tests;
    for (const char *name : kCommittedCaptures) {
        const std::string capture = dataDir + "/" + name;
        ASSERT_FALSE(readFileOrEmpty(capture).empty())
            << "missing committed capture " << capture;
        tests.push_back(study::generateGoldenTest(capture, name));
        const auto &test = tests.back();
        const auto committed = readFileOrEmpty(genDir + "/" + test.fileName);
        EXPECT_EQ(committed, test.source)
            << test.fileName
            << " is stale: regenerate with `fo4trace gen` (README, "
               "\"Golden update policy\")";
    }

    const auto committedCmake = readFileOrEmpty(genDir + "/goldens.cmake");
    EXPECT_EQ(committedCmake, study::generateGoldenCmake(tests))
        << "goldens.cmake is stale: regenerate with `fo4trace gen`";
    for (const auto &test : tests)
        EXPECT_NE(committedCmake.find(test.cmakeName), std::string::npos)
            << "goldens.cmake does not register " << test.cmakeName;
}
