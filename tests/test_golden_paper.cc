/**
 * @file
 * Golden-number regression harness: pins the paper's headline numbers
 * so they cannot drift while the engine underneath is rebuilt.  Two
 * kinds of pins live here:
 *
 *  - analytic numbers (Table 1 overhead, the clock period at the
 *    optimum, the Appendix A ECL equivalences) are pinned to the
 *    paper's printed values with explicit tolerances;
 *  - simulation-derived numbers (the Fig 4b / Fig 5 integer optimum,
 *    the Cray-1S optimum) are pinned as the argmax of a fixed-length
 *    sweep.  The synthetic traces are seeded, so these sweeps are
 *    exactly reproducible: a changed argmax means the model changed,
 *    not the weather.
 *
 * Policy (see README "Golden numbers"): a pinned value may only be
 * updated when a model change is *intended* to move it, the new value
 * is still consistent with the paper's claim, and the update is called
 * out in the commit message.  Never loosen a tolerance to make a red
 * build green.
 *
 * The sweeps run on every hardware thread; the determinism contract
 * (test_parallel_runner) guarantees thread count cannot change any
 * digit of the result.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "study/parallel.hh"
#include "study/scaling.hh"
#include "tech/clocking.hh"
#include "tech/ecl.hh"
#include "trace/spec2000.hh"

using namespace fo4;

namespace
{

/** The fixed sweep spec behind every simulation-derived golden number.
 *  Calibrated so each sweep runs in seconds while every optimum below
 *  is stable across neighbouring run lengths (4k-6k instructions). */
study::RunSpec
goldenSpec()
{
    study::RunSpec spec;
    spec.instructions = 5000;
    spec.warmup = 625;
    spec.prewarm = 100000;
    // A hung sweep must fail fast with a watchdog dump, not eat the
    // ctest timeout: ~200 cycles per instruction is 50x the worst IPC
    // any sane configuration produces here.
    spec.cycleLimit = 1000000;
    return spec;
}

/** Integer-class harmonic BIPS over the standard 2..16 FO4 sweep. */
std::vector<double>
integerSweep(const study::SweepOptions &options, const study::RunSpec &spec)
{
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto points =
        study::sweepScaling(bench::usefulSweep(), options, profiles, spec);
    std::vector<double> bips;
    bips.reserve(points.size());
    for (const auto &point : points)
        bips.push_back(point.suite.harmonicBips(trace::BenchClass::Integer));
    return bips;
}

} // namespace

// --- Analytic pins -------------------------------------------------------

TEST(GoldenPaper, Table1OverheadIs1p8Fo4)
{
    const auto overhead = tech::OverheadModel::paperDefault();
    EXPECT_NEAR(overhead.latchFo4, 1.0, 1e-12);
    EXPECT_NEAR(overhead.skewFo4, 0.3, 1e-12);
    EXPECT_NEAR(overhead.jitterFo4, 0.5, 1e-12);
    EXPECT_NEAR(overhead.totalFo4(), 1.8, 1e-12);
}

TEST(GoldenPaper, OooClockAtOptimumIs7p8Fo4)
{
    // 6 FO4 useful + 1.8 FO4 overhead = 7.8 FO4 -> ~3.6 GHz at 100nm.
    const auto clock = study::scaledClock(6.0);
    EXPECT_NEAR(clock.periodFo4(), 7.8, 1e-9);
    EXPECT_NEAR(clock.frequencyGhz(), 3.56, 0.05);
}

TEST(GoldenPaper, AppendixAEclEquivalences)
{
    // One Cray-1S ECL gate level = 1.36 FO4, so Kunkel & Smith's
    // optima translate to 8 x 1.36 = 10.9 and 4 x 1.36 = 5.4 FO4.
    EXPECT_NEAR(tech::paperEclLevelFo4, 1.36, 1e-12);
    EXPECT_NEAR(tech::eclLevelsToFo4(tech::kunkelSmithScalarLevels), 10.9,
                0.1);
    EXPECT_NEAR(tech::eclLevelsToFo4(tech::kunkelSmithVectorLevels), 5.4,
                0.1);
}

// --- Simulation-derived pins ---------------------------------------------

TEST(GoldenPaper, Fig5OooIntegerOptimumIs6Fo4)
{
    study::SweepOptions options;
    options.threads = 0; // all hardware threads; result is invariant
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, goldenSpec());

    EXPECT_EQ(bench::argmax(ts, bips), 6.0);
    // Tolerance statement: 6 FO4 must also be the *sole* point within
    // 0.5% of the maximum — the optimum is a peak, not a plateau edge.
    EXPECT_EQ(bench::plateau(ts, bips, 0.005), std::vector<double>{6.0});
}

TEST(GoldenPaper, Fig4bInorderIntegerOptimumIs6Fo4)
{
    study::SweepOptions options;
    options.threads = 0;
    auto spec = goldenSpec();
    spec.model = study::CoreModel::InOrder;
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, spec);

    EXPECT_EQ(bench::argmax(ts, bips), 6.0);
    // The scoreboarded in-order model's curve is flatter than the
    // paper's, so the pin is argmax plus plateau membership at 2%.
    EXPECT_TRUE(bench::onPlateau(bench::plateau(ts, bips, 0.02), 6.0));
}

TEST(GoldenPaper, CrayMemoryIntegerOptimumIs11Fo4)
{
    study::SweepOptions options;
    options.threads = 0;
    options.scaling.crayMemory = true;
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, goldenSpec());

    // Section 4.2: the flat 12-cycle memory moves the optimum to 11
    // FO4, next to Kunkel & Smith's 8 ECL levels = 10.9 FO4.
    EXPECT_EQ(bench::argmax(ts, bips), 11.0);
    EXPECT_TRUE(bench::onPlateau(bench::plateau(ts, bips, 0.005), 11.0));
}
