/**
 * @file
 * Golden-number regression harness: pins the paper's headline numbers
 * so they cannot drift while the engine underneath is rebuilt.  Two
 * kinds of pins live here:
 *
 *  - analytic numbers (Table 1 overhead, the clock period at the
 *    optimum, the Appendix A ECL equivalences) are pinned to the
 *    paper's printed values with explicit tolerances;
 *  - simulation-derived numbers (the Fig 4b / Fig 5 integer optimum,
 *    the Cray-1S optimum) are pinned as the argmax of a fixed-length
 *    sweep.  The synthetic traces are seeded, so these sweeps are
 *    exactly reproducible: a changed argmax means the model changed,
 *    not the weather.
 *
 * Policy (see README "Golden numbers"): a pinned value may only be
 * updated when a model change is *intended* to move it, the new value
 * is still consistent with the paper's claim, and the update is called
 * out in the commit message.  Never loosen a tolerance to make a red
 * build green.
 *
 * The sweeps run on every hardware thread; the determinism contract
 * (test_parallel_runner) guarantees thread count cannot change any
 * digit of the result.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "study/optimizer.hh"
#include "study/parallel.hh"
#include "study/scaling.hh"
#include "tech/clocking.hh"
#include "tech/ecl.hh"
#include "trace/spec2000.hh"

using namespace fo4;

namespace
{

/** The fixed sweep spec behind every simulation-derived golden number.
 *  Calibrated so each sweep runs in seconds while every optimum below
 *  is stable across neighbouring run lengths (4k-6k instructions). */
study::RunSpec
goldenSpec()
{
    study::RunSpec spec;
    spec.instructions = 5000;
    spec.warmup = 625;
    spec.prewarm = 100000;
    // A hung sweep must fail fast with a watchdog dump, not eat the
    // ctest timeout: ~200 cycles per instruction is 50x the worst IPC
    // any sane configuration produces here.
    spec.cycleLimit = 1000000;
    // The pins run on the one-pass engine — the implementation every
    // bench sweep uses — which the byte-identity contract (DESIGN.md
    // §14, test_core_differential) makes interchangeable with the
    // reference cores; Fig5OooIntegerOptimumIs6Fo4 cross-checks the
    // contract once at this exact golden scale.
    spec.impl = study::SimImpl::Batched;
    return spec;
}

/** Integer-class harmonic BIPS over the standard 2..16 FO4 sweep. */
std::vector<double>
integerSweep(const study::SweepOptions &options, const study::RunSpec &spec)
{
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto points =
        study::sweepScaling(bench::usefulSweep(), options, profiles, spec);
    std::vector<double> bips;
    bips.reserve(points.size());
    for (const auto &point : points)
        bips.push_back(point.suite.harmonicBips(trace::BenchClass::Integer));
    return bips;
}

} // namespace

// --- Analytic pins -------------------------------------------------------

TEST(GoldenPaper, Table1OverheadIs1p8Fo4)
{
    const auto overhead = tech::OverheadModel::paperDefault();
    EXPECT_NEAR(overhead.latchFo4, 1.0, 1e-12);
    EXPECT_NEAR(overhead.skewFo4, 0.3, 1e-12);
    EXPECT_NEAR(overhead.jitterFo4, 0.5, 1e-12);
    EXPECT_NEAR(overhead.totalFo4(), 1.8, 1e-12);
}

TEST(GoldenPaper, OooClockAtOptimumIs7p8Fo4)
{
    // 6 FO4 useful + 1.8 FO4 overhead = 7.8 FO4 -> ~3.6 GHz at 100nm.
    const auto clock = study::scaledClock(6.0);
    EXPECT_NEAR(clock.periodFo4(), 7.8, 1e-9);
    EXPECT_NEAR(clock.frequencyGhz(), 3.56, 0.05);
}

TEST(GoldenPaper, AppendixAEclEquivalences)
{
    // One Cray-1S ECL gate level = 1.36 FO4, so Kunkel & Smith's
    // optima translate to 8 x 1.36 = 10.9 and 4 x 1.36 = 5.4 FO4.
    EXPECT_NEAR(tech::paperEclLevelFo4, 1.36, 1e-12);
    EXPECT_NEAR(tech::eclLevelsToFo4(tech::kunkelSmithScalarLevels), 10.9,
                0.1);
    EXPECT_NEAR(tech::eclLevelsToFo4(tech::kunkelSmithVectorLevels), 5.4,
                0.1);
}

// --- Simulation-derived pins ---------------------------------------------

TEST(GoldenPaper, Fig5OooIntegerOptimumIs6Fo4)
{
    study::SweepOptions options;
    options.threads = 0; // all hardware threads; result is invariant
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, goldenSpec());

    EXPECT_EQ(bench::argmax(ts, bips), 6.0);
    // Tolerance statement: 6 FO4 must also be the *sole* point within
    // 0.5% of the maximum — the optimum is a peak, not a plateau edge.
    EXPECT_EQ(bench::plateau(ts, bips, 0.005), std::vector<double>{6.0});

    // One golden-scale byte-identity spot check at the optimum itself:
    // the pin above is meaningful for the reference cores exactly
    // because the two implementations cannot differ by a byte.
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    auto referenceSpec = goldenSpec();
    referenceSpec.impl = study::SimImpl::Reference;
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    EXPECT_EQ(study::serializeSuite(
                  study::runSuite(params, clock, profiles, goldenSpec())),
              study::serializeSuite(study::runSuite(params, clock, profiles,
                                                    referenceSpec)));
}

TEST(GoldenPaper, Fig4bInorderIntegerOptimumIs6Fo4)
{
    study::SweepOptions options;
    options.threads = 0;
    auto spec = goldenSpec();
    spec.model = study::CoreModel::InOrder;
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, spec);

    EXPECT_EQ(bench::argmax(ts, bips), 6.0);
    // The scoreboarded in-order model's curve is flatter than the
    // paper's, so the pin is argmax plus plateau membership at 2%.
    EXPECT_TRUE(bench::onPlateau(bench::plateau(ts, bips, 0.02), 6.0));
}

TEST(GoldenPaper, Fig6OptimumStaysAt6Fo4ForOverheads1To5)
{
    // Figure 6: the integer optimum is insensitive to the per-stage
    // overhead across 1..5 FO4.  Overhead changes only the clock (never
    // cycle counts), so one IPC sweep serves every overhead value.
    study::SweepOptions options;
    options.threads = 0;
    options.overhead = tech::OverheadModel::uniform(0);
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto ts = bench::usefulSweep();
    const auto points =
        study::sweepScaling(ts, options, profiles, goldenSpec());

    // Like Fig 4b, our model's curve is flatter than the paper's, so
    // the printed claim ("optimum stays exactly at 6 for overheads
    // 1..5") softens to the mechanism behind it, which the model does
    // reproduce deterministically:
    //  - the optimum only drifts *shallower* (larger t_useful) as
    //    overhead grows — overhead is what punishes deep pipelines;
    //  - the drift across 1..5 FO4 is a few sweep steps, not a regime
    //    change (argmax 4/6/6/9/9 at the golden scale);
    //  - at 2 and 3 FO4, bracketing the paper's 1.8, the optimum is
    //    exactly 6 and 6 sits on the tight 0.5% plateau.
    double previousArgmax = 0.0;
    std::vector<double> argmaxes;
    for (const double overhead : {1.0, 2.0, 3.0, 4.0, 5.0}) {
        std::vector<double> bips;
        bips.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto clock = study::scaledClock(
                ts[i], tech::OverheadModel::uniform(overhead));
            bips.push_back(clock.bips(
                points[i].suite.harmonicIpc(trace::BenchClass::Integer)));
        }
        const double opt = bench::argmax(ts, bips);
        EXPECT_GE(opt, previousArgmax) << "overhead=" << overhead;
        previousArgmax = opt;
        argmaxes.push_back(opt);
        if (overhead == 2.0 || overhead == 3.0) {
            EXPECT_EQ(opt, 6.0) << "overhead=" << overhead;
            EXPECT_TRUE(bench::onPlateau(
                bench::plateau(ts, bips, 0.005), 6.0))
                << "overhead=" << overhead;
        }
    }
    EXPECT_LE(argmaxes.back() - argmaxes.front(), 6.0)
        << "optimum drifted by more than a few FO4 across overheads 1..5";
}

TEST(GoldenPaper, Fig7OptimizedStructuresGainWithoutMovingTheOptimum)
{
    // Figure 7 / Section 4.5: per-clock optimized DL1/L2/window
    // capacities buy ~14% BIPS on average, and the optimum stays at
    // 6 FO4.  Pinned at the golden sweep scale over the points around
    // the optimum: 6 must beat its neighbours after optimization, and
    // the average gain must land in the paper's neighbourhood.
    const auto profiles =
        trace::spec2000Profiles(trace::BenchClass::Integer);
    const auto spec = goldenSpec();

    std::vector<double> ts{4, 5, 6, 7, 8};
    std::vector<double> base, tuned;
    double gainSum = 0;
    for (const double u : ts) {
        const auto clock = study::scaledClock(u);
        const auto baseline = study::runSuite(
            study::scaledCoreParams(u, {}), clock, profiles, spec);
        const auto best =
            study::optimizeStructures(u, clock, profiles, spec, {}, 0);
        base.push_back(baseline.harmonicBipsAll());
        tuned.push_back(best.harmonicBipsAll);
        // Optimization may never lose: the alpha capacities are inside
        // the search space.
        EXPECT_GE(tuned.back(), base.back()) << "t=" << u;
        gainSum += tuned.back() / base.back() - 1.0;
    }

    EXPECT_EQ(bench::argmax(ts, tuned), 6.0);
    // Paper: ~14% averaged over the full suite and sweep.  Our
    // synthetic-trace model realizes the same *shape* — a strictly
    // positive gain at every clock with the optimum unmoved — but a
    // smaller magnitude (~2.5% here, ~3% at bench scale), because the
    // synthetic working sets are less capacity-sensitive than SPEC's.
    // The pin brackets the model's measured value; see the README
    // golden-number policy before touching it.
    const double meanGain = gainSum / static_cast<double>(ts.size());
    EXPECT_GE(meanGain, 0.01);
    EXPECT_LE(meanGain, 0.10);
}

TEST(GoldenPaper, CrayMemoryIntegerOptimumIs11Fo4)
{
    study::SweepOptions options;
    options.threads = 0;
    options.scaling.crayMemory = true;
    const auto ts = bench::usefulSweep();
    const auto bips = integerSweep(options, goldenSpec());

    // Section 4.2: the flat 12-cycle memory moves the optimum to 11
    // FO4, next to Kunkel & Smith's 8 ECL levels = 10.9 FO4.
    EXPECT_EQ(bench::argmax(ts, bips), 11.0);
    EXPECT_TRUE(bench::onPlateau(bench::plateau(ts, bips, 0.005), 11.0));
}
