/**
 * @file
 * The observability layer's contracts:
 *
 *  - MetricsRegistry: find-or-create identity, stable references,
 *    exactness under concurrent increments (run under TSan), and the
 *    global enable gate (disabled increments are dropped).
 *  - TraceEventRing: window filtering, bounded overwrite, and the shape
 *    of the Chrome trace_event JSON it renders.
 *  - Determinism: the stats CSV rows derived from a suite — including
 *    one with injected faults — are byte-identical at jobs=1/2/8 and
 *    across a checkpoint/replay cycle.  Engineering metrics stay *out*
 *    of those artifacts; this file also pins their sums where the
 *    instrumented work is deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "study/checkpoint.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/metrics.hh"

using namespace fo4;

namespace
{

/** Save/restore the global metrics flag so tests cannot leak state. */
class MetricsFlagGuard
{
  public:
    explicit MetricsFlagGuard(bool enable)
        : previous(util::setMetricsEnabled(enable))
    {
    }
    ~MetricsFlagGuard() { util::setMetricsEnabled(previous); }

  private:
    bool previous;
};

study::RunSpec
smallSpec()
{
    study::RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 250;
    spec.prewarm = 20000;
    spec.cycleLimit = 1000000;
    return spec;
}

/** Write a short trace with one record's op-class byte destroyed. */
std::string
makeCorruptTrace(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, 512);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 32 * 50 + 30);
    f.put(static_cast<char>(0xEE));
    return path;
}

/** Healthy, corrupt-trace and watchdog-tripping jobs interleaved. */
std::vector<study::BenchJob>
faultyJobs(const std::string &corruptPath)
{
    std::vector<study::BenchJob> jobs;
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("176.gcc")));
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt-a", trace::BenchClass::Integer, corruptPath));
    auto hung = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    hung.name = "hung";
    hung.cycleLimit = 20;
    jobs.push_back(hung);
    jobs.push_back(study::BenchJob::fromProfile(
        trace::spec2000Profile("181.mcf")));
    return jobs;
}

} // namespace

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsTheSameCounter)
{
    util::MetricsRegistry reg;
    auto &a = reg.counter("x.hits");
    auto &b = reg.counter("x.hits");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.counterCount(), 1u);

    MetricsFlagGuard on(true);
    a.add(3);
    b.inc();
    EXPECT_EQ(reg.value("x.hits"), 4u);
    EXPECT_EQ(reg.value("never.registered"), 0u);
}

TEST(MetricsRegistry, DisabledIncrementsAreDropped)
{
    util::MetricsRegistry reg;
    auto &c = reg.counter("gated");

    MetricsFlagGuard off(false);
    c.add(100);
    c.inc();
    EXPECT_EQ(c.value(), 0u);

    util::setMetricsEnabled(true);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndResetAllZeroes)
{
    MetricsFlagGuard on(true);
    util::MetricsRegistry reg;
    reg.counter("zebra").add(2);
    reg.counter("alpha").add(1);
    reg.counter("mid").add(3);

    const auto snap = reg.snapshotCounters();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zebra");
    EXPECT_EQ(snap[0].second, 1u);
    EXPECT_EQ(snap[2].second, 2u);

    reg.resetAll();
    for (const auto &[name, value] : reg.snapshotCounters())
        EXPECT_EQ(value, 0u) << name;
    EXPECT_EQ(reg.counterCount(), 3u); // registrations survive
}

TEST(MetricsRegistry, HistogramBucketsClampAndAverage)
{
    MetricsFlagGuard on(true);
    util::MetricsRegistry reg;
    auto &h = reg.histogram("lat", 4);
    EXPECT_EQ(&h, &reg.histogram("lat", 99)); // first caller fixes size
    EXPECT_EQ(h.bucketCount(), 4u);

    for (const std::uint64_t v : {0ull, 1ull, 1ull, 3ull, 7ull, 100ull})
        h.sample(v);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 3u); // 3, 7 and 100 clamp into the last
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.total(), 112u);
    EXPECT_DOUBLE_EQ(h.mean(), 112.0 / 6.0);

    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact)
{
    // Run under the tsan preset this is the data-race canary for the
    // whole registry: shared-counter adds, racing registrations of the
    // same and of distinct names, and a racing snapshot.
    MetricsFlagGuard on(true);
    util::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg, t] {
            auto &shared = reg.counter("stress.shared");
            auto &own =
                reg.counter("stress.t" + std::to_string(t));
            auto &hist = reg.histogram("stress.hist", 8);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                shared.inc();
                own.inc();
                hist.sample(i & 7);
            }
            (void)reg.snapshotCounters();
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(reg.value("stress.shared"), kThreads * kPerThread);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(reg.value("stress.t" + std::to_string(t)), kPerThread);
    EXPECT_EQ(reg.histogram("stress.hist").samples(),
              kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

TEST(TraceEventRing, WindowFilterAndBoundedOverwrite)
{
    util::TraceEventRing ring(4, 100, 50); // window [100, 150)
    EXPECT_FALSE(ring.wants(99));
    EXPECT_TRUE(ring.wants(100));
    EXPECT_TRUE(ring.wants(149));
    EXPECT_FALSE(ring.wants(150));

    auto at = [](std::int64_t cycle, std::uint64_t seq) {
        util::TraceEvent e;
        e.name = "iadd";
        e.category = "pipeline";
        e.start = cycle;
        e.duration = 1;
        e.seq = seq;
        return e;
    };

    ring.emit(at(99, 0));  // before the window: dropped
    ring.emit(at(150, 1)); // after the window: dropped
    EXPECT_EQ(ring.size(), 0u);

    for (std::uint64_t s = 0; s < 6; ++s)
        ring.emit(at(100 + static_cast<std::int64_t>(s), 10 + s));
    EXPECT_EQ(ring.size(), 4u);      // capacity bound holds
    EXPECT_EQ(ring.overwritten(), 2u);

    // Oldest two were overwritten; survivors in chronological order.
    const auto events = ring.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().seq, 12u);
    EXPECT_EQ(events.back().seq, 15u);
}

TEST(TraceEventRing, ChromeJsonNamesLanesAndEvents)
{
    util::TraceEventRing ring(8, 0, 1000);
    util::TraceEvent e;
    e.name = "ld";
    e.category = "pipeline";
    e.track = 2;
    e.start = 42;
    e.duration = 3;
    e.seq = 7;
    ring.emit(e);

    std::ostringstream os;
    ring.writeChromeJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ld\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":42"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
    // Lane metadata for all four pipeline stages.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    for (int track = 0; track < 4; ++track)
        EXPECT_NE(json.find(util::TraceEventRing::trackName(track)),
                  std::string::npos)
            << track;
    // Braces balance — cheap structural sanity without a JSON parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------
// Stats determinism
// ---------------------------------------------------------------------

TEST(StatsDeterminism, RowsByteIdenticalAcrossThreadCountsUnderFaults)
{
    MetricsFlagGuard on(true); // live registry must not perturb results
    const auto corrupt = makeCorruptTrace("metrics_corrupt.fo4t");
    const auto jobs = faultyJobs(corrupt);
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    const auto serialSuite = study::runSuite(params, clock, jobs, spec);
    const auto reference =
        bench::statsRowsToString(bench::statsRows("6", serialSuite));
    ASSERT_NE(reference.find("TraceCorrupt"), std::string::npos);
    ASSERT_NE(reference.find("Deadlock"), std::string::npos);

    for (const int threads : {1, 2, 8}) {
        const study::ParallelRunner runner(threads);
        const auto suite = runner.runSuite(params, clock, jobs, spec);
        EXPECT_EQ(bench::statsRowsToString(bench::statsRows("6", suite)),
                  reference)
            << "jobs=" << threads;
    }
    std::remove(corrupt.c_str());
}

TEST(StatsDeterminism, CheckpointReplayReproducesStatsByteForByte)
{
    MetricsFlagGuard on(true);
    const auto corrupt = makeCorruptTrace("metrics_ckpt_corrupt.fo4t");
    const auto jobs = faultyJobs(corrupt);
    const auto spec = smallSpec();
    std::vector<study::GridPoint> points(1);
    points[0].params = study::scaledCoreParams(6.0, {});
    points[0].clock = study::scaledClock(6.0);

    const std::string journal =
        std::string(::testing::TempDir()) + "/metrics_stats.journal";
    std::remove(journal.c_str());

    auto statsOf = [&](int threads) {
        study::CheckpointOptions copts;
        copts.journalPath = journal;
        copts.threads = threads;
        study::CheckpointedRunner runner(std::move(copts));
        const auto suite = runner.runGrid(points, jobs, spec).front();
        return std::make_pair(
            bench::statsRowsToString(bench::statsRows("6", suite)),
            runner.report());
    };

    const auto [first, firstReport] = statsOf(8);
    EXPECT_EQ(firstReport.replayedCells, 0u);
    EXPECT_EQ(firstReport.executedCells, jobs.size());

    // Same journal, different thread count: every cell replays, and the
    // stats rows — failures included — are byte-identical.
    const auto [replayed, replayReport] = statsOf(2);
    EXPECT_TRUE(replayReport.resumed);
    EXPECT_EQ(replayReport.replayedCells, jobs.size());
    EXPECT_EQ(replayed, first);

    std::remove(journal.c_str());
    std::remove(corrupt.c_str());
}

TEST(StatsDeterminism, EngineeringMetricsStayOutOfSuiteArtifacts)
{
    // The registry observes; it must never influence.  Run the same
    // suite with metrics off and on — serialized results match.
    const auto profiles = std::vector<trace::BenchmarkProfile>{
        trace::spec2000Profile("164.gzip")};
    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto spec = smallSpec();

    std::string off, on;
    {
        MetricsFlagGuard g(false);
        off = study::serializeSuite(
            study::runSuite(params, clock, profiles, spec));
    }
    {
        MetricsFlagGuard g(true);
        on = study::serializeSuite(
            study::runSuite(params, clock, profiles, spec));
    }
    EXPECT_EQ(off, on);

    // And the sweep-engine counter sums are themselves deterministic:
    // cells.executed advances by exactly points x jobs per sweep.
    MetricsFlagGuard g(true);
    auto &reg = util::MetricsRegistry::global();
    const auto before = reg.value("study.cells.executed");
    const study::ParallelRunner runner(2);
    (void)runner.runSuite(params, clock, profiles, spec);
    EXPECT_EQ(reg.value("study.cells.executed"),
              before + profiles.size());
}
