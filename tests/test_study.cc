/**
 * @file
 * Tests for the scaling study machinery: configuration derivation,
 * the suite runner, the structure optimizer and the Figure 1 data.
 */

#include <gtest/gtest.h>

#include "study/intel_history.hh"
#include "study/optimizer.hh"
#include "study/runner.hh"
#include "study/scaling.hh"

using namespace fo4::study;
using fo4::core::CoreParams;
using fo4::isa::OpClass;

TEST(Scaling, DerivesTableThreeValuesAtSixFo4)
{
    const CoreParams p = scaledCoreParams(6.0, {});
    // Functional units (Table 3, t_useful = 6 column).
    EXPECT_EQ(p.execLatency(OpClass::IntAlu), 3);
    EXPECT_EQ(p.execLatency(OpClass::IntMult), 21);
    EXPECT_EQ(p.execLatency(OpClass::FpAdd), 12);
    EXPECT_EQ(p.execLatency(OpClass::FpDiv), 35);
    // Structures: ceil(anchor / 6).
    EXPECT_EQ(p.memLatencies.dl1, 6);     // ceil(32/6)
    EXPECT_EQ(p.regReadStages, 2);        // ceil(10.83/6)
    EXPECT_EQ(p.renameStages, 3);         // ceil(17.2/6)
    EXPECT_EQ(p.fetchStages, 4);          // ceil(19.5/6)
    EXPECT_EQ(p.issueLatency, 3);         // ceil(17.2/6)
}

TEST(Scaling, ShallowClockIsNearAlphaNative)
{
    const CoreParams p = scaledCoreParams(16.0, {});
    EXPECT_EQ(p.execLatency(OpClass::IntAlu), 2);
    EXPECT_EQ(p.memLatencies.dl1, 2);
    EXPECT_EQ(p.issueLatency, 2);
    EXPECT_EQ(p.regReadStages, 1);
}

TEST(Scaling, DeeperPipesHaveMoreStages)
{
    const CoreParams deep = scaledCoreParams(2.0, {});
    const CoreParams shallow = scaledCoreParams(16.0, {});
    EXPECT_GT(deep.fetchStages, shallow.fetchStages);
    EXPECT_GT(deep.memLatencies.dl1, shallow.memLatencies.dl1);
    EXPECT_GT(deep.issueLatency, shallow.issueLatency);
    EXPECT_GT(deep.execLatency(OpClass::FpSqrt),
              shallow.execLatency(OpClass::FpSqrt));
}

TEST(Scaling, CrayMemoryModeIsFlat)
{
    ScalingOptions opt;
    opt.crayMemory = true;
    const CoreParams p = scaledCoreParams(11.0, opt);
    EXPECT_EQ(p.memoryMode, fo4::mem::MemoryMode::Flat);
    // 171.6 FO4 of flat memory at 11 FO4 per stage.
    EXPECT_EQ(p.memLatencies.flat, 16);
}

TEST(Scaling, SegmentedWindowForcesSingleCycleLoop)
{
    ScalingOptions opt;
    opt.window.wakeupStages = 4;
    const CoreParams p = scaledCoreParams(4.0, opt);
    EXPECT_EQ(p.issueLatency, 1);
    EXPECT_EQ(p.window.wakeupStages, 4);
}

TEST(Scaling, CapacityOptionsChangeLatencies)
{
    ScalingOptions small;
    small.dl1Bytes = 8 << 10;
    ScalingOptions large;
    large.dl1Bytes = 128 << 10;
    const CoreParams ps = scaledCoreParams(6.0, small);
    const CoreParams pl = scaledCoreParams(6.0, large);
    EXPECT_LT(ps.memLatencies.dl1, pl.memLatencies.dl1);
    EXPECT_EQ(ps.dl1.capacityBytes, 8u << 10);
}

TEST(Scaling, LoopExtensionsPassThrough)
{
    ScalingOptions opt;
    opt.extraWakeup = 3;
    opt.extraLoadUse = 2;
    opt.extraMispredictPenalty = 5;
    const CoreParams p = scaledCoreParams(6.0, opt);
    EXPECT_EQ(p.extraWakeup, 3);
    EXPECT_EQ(p.extraLoadUse, 2);
    EXPECT_EQ(p.extraMispredictPenalty, 5);
}

TEST(Scaling, ClockFrequencyMatchesPaper)
{
    EXPECT_NEAR(scaledClock(6.0).frequencyGhz(), 3.56, 0.05);
    EXPECT_NEAR(scaledClock(4.0).frequencyGhz(), 4.79, 0.05);
}

TEST(Runner, SuiteAggregatesHarmonically)
{
    RunSpec spec;
    spec.instructions = 5000;
    spec.warmup = 500;
    spec.prewarm = 20000;
    const auto profiles = fo4::trace::spec2000Profiles(
        fo4::trace::BenchClass::VectorFp);
    const auto params = scaledCoreParams(8.0, {});
    const auto clock = scaledClock(8.0);
    const auto suite = runSuite(params, clock, profiles, spec);
    ASSERT_EQ(suite.benchmarks.size(), 4u);

    // Recompute the harmonic mean by hand.
    double denom = 0;
    for (const auto &b : suite.benchmarks) {
        EXPECT_GT(b.bips, 0.0);
        denom += 1.0 / b.bips;
    }
    EXPECT_NEAR(suite.harmonicBips(fo4::trace::BenchClass::VectorFp),
                4.0 / denom, 1e-9);
    EXPECT_NEAR(suite.harmonicBipsAll(), 4.0 / denom, 1e-9);
}

TEST(Runner, AbsentClassYieldsZero)
{
    RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 0;
    spec.prewarm = 0;
    const auto profiles = fo4::trace::spec2000Profiles(
        fo4::trace::BenchClass::VectorFp);
    const auto suite = runSuite(scaledCoreParams(8.0, {}), scaledClock(8.0),
                                profiles, spec);
    EXPECT_EQ(suite.harmonicBips(fo4::trace::BenchClass::Integer), 0.0);
}

TEST(Runner, BipsIsIpcTimesFrequency)
{
    RunSpec spec;
    spec.instructions = 5000;
    spec.warmup = 0;
    spec.prewarm = 20000;
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    const auto clock = scaledClock(6.0);
    const auto r = runBenchmark(scaledCoreParams(6.0, {}), clock, prof,
                                spec);
    EXPECT_NEAR(r.bips, r.sim.ipc() * clock.frequencyGhz(), 1e-9);
}

TEST(Runner, InOrderModelRuns)
{
    RunSpec spec;
    spec.model = CoreModel::InOrder;
    spec.instructions = 5000;
    spec.warmup = 0;
    spec.prewarm = 20000;
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    const auto r = runBenchmark(scaledCoreParams(6.0, {}), scaledClock(6.0),
                                prof, spec);
    EXPECT_GT(r.sim.ipc(), 0.0);
}

TEST(Optimizer, ReturnsConfigFromSearchSpace)
{
    RunSpec spec;
    spec.instructions = 3000;
    spec.warmup = 0;
    spec.prewarm = 30000;
    OptimizerSearchSpace space;
    space.dl1Bytes = {32 << 10, 64 << 10};
    space.l2Bytes = {2 << 20};
    space.windowEntries = {32};
    const auto profiles = std::vector<fo4::trace::BenchmarkProfile>{
        fo4::trace::spec2000Profile("164.gzip")};
    const auto best = optimizeStructures(6.0, scaledClock(6.0), profiles,
                                         spec, space);
    EXPECT_TRUE(best.options.dl1Bytes == (32u << 10) ||
                best.options.dl1Bytes == (64u << 10));
    EXPECT_GT(best.harmonicBipsAll, 0.0);
}

TEST(Optimizer, NeverWorseThanBaseline)
{
    RunSpec spec;
    spec.instructions = 3000;
    spec.warmup = 0;
    spec.prewarm = 30000;
    OptimizerSearchSpace space;
    space.dl1Bytes = {8 << 10, 64 << 10};
    space.l2Bytes = {2 << 20};
    space.windowEntries = {32};
    const auto profiles = std::vector<fo4::trace::BenchmarkProfile>{
        fo4::trace::spec2000Profile("164.gzip")};
    const auto clock = scaledClock(6.0);
    const auto best =
        optimizeStructures(6.0, clock, profiles, spec, space);
    const auto baseline = runSuite(scaledCoreParams(6.0, {}), clock,
                                   profiles, spec);
    EXPECT_GE(best.harmonicBipsAll, baseline.harmonicBipsAll() - 1e-9);
}

TEST(IntelHistory, SevenGenerations)
{
    const auto gens = intelGenerations();
    ASSERT_EQ(gens.size(), 7u);
    EXPECT_EQ(gens.front().year, 1990);
    EXPECT_EQ(gens.back().year, 2002);
}

TEST(IntelHistory, PeriodsInFo4ShrinkOverTime)
{
    const auto gens = intelGenerations();
    for (std::size_t i = 1; i < gens.size(); ++i)
        EXPECT_LT(gens[i].periodFo4(), gens[i - 1].periodFo4())
            << gens[i].name;
}

TEST(IntelHistory, EndpointsMatchPaperFigureOne)
{
    const auto gens = intelGenerations();
    // 33 MHz at 1000nm is ~84 FO4 per cycle (paper: 84).
    EXPECT_NEAR(gens.front().periodFo4(), 84.2, 0.5);
    // 2 GHz at 130nm is ~11 FO4 (paper quotes 12 with its rounding).
    EXPECT_NEAR(gens.back().periodFo4(), 10.7, 0.5);
}

TEST(IntelHistory, DecompositionMatchesPaperNarrative)
{
    // "a factor of 60 over the past twelve years ... an 8-fold
    //  improvement [technology] ... a factor of 7 [pipelining]".
    const auto d = decomposeFrequencyGains();
    EXPECT_NEAR(d.totalGain, 60.6, 1.0);
    EXPECT_NEAR(d.technologyGain, 7.7, 0.2);
    EXPECT_NEAR(d.pipeliningGain, 7.9, 0.3);
    EXPECT_NEAR(d.totalGain, d.technologyGain * d.pipeliningGain, 1.0);
}
