/**
 * @file
 * Adversarial tests of the util/net deadline machinery — the layer the
 * whole fabric's fault tolerance rests on.  Coverage the loopback
 * suite can't reach:
 *
 *  - partial writes: a tiny SO_SNDBUF plus a slow reader forces
 *    writeAll through its short-write loop (EAGAIN + poll + resume);
 *  - EINTR: a signal with a no-SA_RESTART handler lands mid-poll and
 *    mid-read; both must resume, not fail;
 *  - write deadline: a black-holed peer (never reads) must cost a
 *    typed NetIo timeout, not a wedged thread;
 *  - fragmented delivery: frames arriving a few bytes at a time (chaos
 *    proxy, Chunked) must reassemble byte-perfectly;
 *  - truncation: a peer dying mid-frame must surface as Protocol (not
 *    NetIo, not success) through readExact/readFrame;
 *  - connect: refused and timed-out connects both throw typed NetIo.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "chaos_proxy.hh"
#include "svc/protocol.hh"
#include "util/net.hh"
#include "util/status.hh"

using namespace fo4;
using util::ErrorCode;
using util::SvcError;
using util::TcpListener;
using util::TcpStream;

namespace
{

/** Accept one connection on `listener` in the background. */
std::thread
acceptOne(TcpListener &listener, TcpStream &out)
{
    return std::thread([&] {
        auto accepted = listener.accept(5000);
        ASSERT_TRUE(accepted.has_value());
        out = std::move(*accepted);
    });
}

ErrorCode
codeOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const SvcError &e) {
        return e.code();
    }
    return ErrorCode::Ok;
}

} // namespace

TEST(UtilNet, PartialWritesCompleteAgainstSlowReader)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);
    TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
    accepter.join();

    // Shrink the send buffer so a multi-hundred-KB write cannot fit in
    // one shot: writeAll must loop through partial sends while the
    // reader drains slowly.
    const int sndbuf = 4096;
    ASSERT_EQ(0, ::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF,
                              &sndbuf, sizeof(sndbuf)));

    std::string payload(512 * 1024, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 31 + (i >> 9));

    std::thread writer([&] {
        client.writeAll(payload.data(), payload.size(), 10000);
    });

    std::string received(payload.size(), '\0');
    std::size_t got = 0;
    while (got < received.size()) {
        // A deliberately slow, small-sips reader.
        const std::size_t want =
            std::min<std::size_t>(4096, received.size() - got);
        ASSERT_TRUE(server.readExact(&received[got], want, 10000));
        got += want;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    writer.join();
    EXPECT_EQ(payload, received);
}

TEST(UtilNet, WriteDeadlineFiresOnBlackHoledPeer)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);
    TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
    accepter.join();

    const int sndbuf = 4096;
    ASSERT_EQ(0, ::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF,
                              &sndbuf, sizeof(sndbuf)));

    // The server never reads: once the kernel buffers fill, writeAll
    // must give up at its deadline with NetIo — not block forever.
    std::string payload(8 * 1024 * 1024, 'x');
    const auto started = std::chrono::steady_clock::now();
    EXPECT_EQ(ErrorCode::NetIo, codeOf([&] {
                  client.writeAll(payload.data(), payload.size(), 300);
              }));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_GE(elapsed, 250);
    EXPECT_LT(elapsed, 5000);
}

namespace
{
std::atomic<int> gSignalsSeen{0};
void
countSignal(int)
{
    ++gSignalsSeen;
}
} // namespace

TEST(UtilNet, ReadAndWriteSurviveEintr)
{
    // Install a no-SA_RESTART handler so every SIGUSR1 makes blocking
    // syscalls return EINTR instead of resuming transparently.
    struct sigaction action = {};
    action.sa_handler = countSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // the point: no SA_RESTART
    struct sigaction old = {};
    ASSERT_EQ(0, ::sigaction(SIGUSR1, &action, &old));

    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);
    TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
    accepter.join();

    std::string payload(256 * 1024, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 131 + 7);

    const int sndbuf = 4096;
    ASSERT_EQ(0, ::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF,
                              &sndbuf, sizeof(sndbuf)));

    // Reader thread: starts late and sips slowly, so the writer spends
    // real time blocked in poll() while signals land.
    std::string received(payload.size(), '\0');
    std::thread reader([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::size_t got = 0;
        while (got < received.size()) {
            const std::size_t want =
                std::min<std::size_t>(8192, received.size() - got);
            ASSERT_TRUE(server.readExact(&received[got], want, 10000));
            got += want;
        }
    });

    const pthread_t writerTid = pthread_self();
    std::atomic<bool> done{false};
    std::thread pepper([&] {
        while (!done.load()) {
            ::pthread_kill(writerTid, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    client.writeAll(payload.data(), payload.size(), 20000);
    done = true;
    pepper.join();
    reader.join();

    EXPECT_EQ(payload, received);
    EXPECT_GT(gSignalsSeen.load(), 0);
    ::sigaction(SIGUSR1, &old, nullptr);
}

TEST(UtilNet, FragmentedFramesReassembleThroughChaosProxy)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);

    tests::ChaosProxy proxy(listener.port());
    proxy.chunk(/*bytes=*/7, /*delayMs=*/1);

    TcpStream client = TcpStream::connect("127.0.0.1", proxy.port());
    accepter.join();

    // A frame a few hundred bytes long, delivered 7 bytes at a time:
    // CRC must verify and the body must round-trip exactly.
    std::string body = "bench=164.gzip\nmodel=ooo\n";
    body += std::string(300, 'z');
    svc::writeFrame(client, svc::MsgType::SubmitSweep, body, 5000);

    const auto frame = svc::readFrame(server, 10000);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(svc::MsgType::SubmitSweep, frame->type);
    EXPECT_EQ(body, frame->body);
    proxy.stop();
}

TEST(UtilNet, MidFrameTruncationIsProtocolNotSuccess)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);

    tests::ChaosProxy proxy(listener.port());
    TcpStream client = TcpStream::connect("127.0.0.1", proxy.port());
    accepter.join();

    // Let the server's reply die 10 bytes in: the client sees a valid
    // header start and then EOF — a truncated frame, Protocol.
    proxy.truncateAfter(10);
    const std::string body(200, 'q');
    std::thread replier([&] {
        try {
            svc::writeFrame(server, svc::MsgType::Results, body, 5000);
        } catch (const SvcError &) {
            // The proxy may sever before the write drains; fine.
        }
    });

    EXPECT_EQ(ErrorCode::Protocol,
              codeOf([&] { svc::readFrame(client, 10000); }));
    replier.join();
    proxy.stop();
}

TEST(UtilNet, OrderlyEofBetweenFramesIsCleanNullopt)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);
    TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
    accepter.join();

    server.close();
    const auto frame = svc::readFrame(client, 5000);
    EXPECT_FALSE(frame.has_value());
}

TEST(UtilNet, ReadDeadlineFiresOnSilentPeer)
{
    TcpListener listener(0);
    TcpStream server;
    std::thread accepter = acceptOne(listener, server);
    TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
    accepter.join();

    char byte = 0;
    const auto started = std::chrono::steady_clock::now();
    EXPECT_EQ(ErrorCode::NetIo,
              codeOf([&] { client.readExact(&byte, 1, 200); }));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_GE(elapsed, 150);
}

TEST(UtilNet, RefusedConnectThrowsTypedNetIo)
{
    // Bind-then-close guarantees a port that refuses connections.
    std::uint16_t deadPort = 0;
    {
        TcpListener listener(0);
        deadPort = listener.port();
    }
    EXPECT_EQ(ErrorCode::NetIo, codeOf([&] {
                  TcpStream::connect("127.0.0.1", deadPort, 1000);
              }));
}

TEST(UtilNet, ConnectTimeoutIsTyped)
{
    // A listener with a zero backlog whose accept queue we saturate
    // and never drain: once the queue is full the kernel drops further
    // SYNs, so the final connect gets no answer and only its deadline
    // can end the attempt.  (Loopback-only on purpose: unroutable
    // external addresses behave differently under NAT/sandboxes.)
    const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listenFd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(0, ::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)));
    ASSERT_EQ(0, ::listen(listenFd, 0));
    socklen_t len = sizeof(addr);
    ASSERT_EQ(0, ::getsockname(
                     listenFd, reinterpret_cast<sockaddr *>(&addr), &len));
    const std::uint16_t port = ntohs(addr.sin_port);

    // Saturate the accept queue with non-blocking dials (never
    // accepted, never closed until the end of the test).
    std::vector<int> fillers;
    for (int i = 0; i < 4; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
        ASSERT_GE(fd, 0);
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        fillers.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto started = std::chrono::steady_clock::now();
    EXPECT_EQ(ErrorCode::NetIo, codeOf([&] {
                  TcpStream::connect("127.0.0.1", port, 300);
              }));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_GE(elapsed, 250);
    EXPECT_LT(elapsed, 5000);

    for (const int fd : fillers)
        ::close(fd);
    ::close(listenFd);
}
