/**
 * @file
 * Fault-injection harness: feed the simulator deliberately damaged
 * trace files and invalid configurations and assert that every fault
 * surfaces as the right typed error — never a crash, a hang, or a
 * silently wrong answer.  Also exercises the simulation watchdogs and
 * the suite-level fault isolation they enable.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/random.hh"
#include "util/status.hh"

using namespace fo4;
using util::ErrorCode;

namespace
{

/** Temporary file path scoped to a test. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(std::string(::testing::TempDir()) + "/" + name)
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Record a small healthy trace and return its raw bytes. */
std::vector<char>
healthyTraceBytes(const std::string &path, std::uint64_t count = 256)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    trace::recordTrace(path, gen, count);
    return readFile(path);
}

/** Expect loading `bytes` (written to a temp file) to raise `code`. */
void
expectLoadError(const std::vector<char> &bytes, ErrorCode code,
                const char *what)
{
    TempFile tmp("mutated.fo4t");
    writeFile(tmp.path(), bytes);
    try {
        trace::FileTrace t(tmp.path());
        FAIL() << what << ": corrupted trace accepted";
    } catch (const util::TraceError &e) {
        EXPECT_EQ(e.code(), code) << what << ": " << e.what();
    }
}

} // namespace

TEST(TraceCorruption, Matrix)
{
    TempFile healthy("healthy.fo4t");
    const auto good = healthyTraceBytes(healthy.path());
    ASSERT_EQ(good.size(), 16u + 256u * 32u);

    // Sanity: the unmutated bytes load fine.
    EXPECT_NO_THROW(trace::FileTrace t(healthy.path()));

    // Bad magic.
    auto mutated = good;
    mutated[0] = 'X';
    expectLoadError(mutated, ErrorCode::TraceFormat, "bad magic");

    // Version skew (u32 at offset 8).
    mutated = good;
    mutated[8] = 2;
    expectLoadError(mutated, ErrorCode::TraceFormat, "version skew");

    // Wrong declared record size (u32 at offset 12).
    mutated = good;
    mutated[12] = 16;
    expectLoadError(mutated, ErrorCode::TraceFormat, "record size");

    // Truncated mid-header.
    mutated.assign(good.begin(), good.begin() + 9);
    expectLoadError(mutated, ErrorCode::TraceFormat, "truncated header");

    // Trailing partial record (truncated mid-write).
    mutated.assign(good.begin(), good.end() - 7);
    expectLoadError(mutated, ErrorCode::TraceCorrupt, "partial record");

    // Header but no instructions.
    mutated.assign(good.begin(), good.begin() + 16);
    expectLoadError(mutated, ErrorCode::TraceCorrupt, "empty body");

    // Invalid op class inside a record (cls is byte 30 of each record).
    mutated = good;
    mutated[16 + 32 * 17 + 30] = static_cast<char>(0xEE);
    expectLoadError(mutated, ErrorCode::TraceCorrupt, "bad op class");

    // Register index out of range (src1 is bytes 24-25 of each record).
    mutated = good;
    mutated[16 + 32 * 5 + 24] = static_cast<char>(0xFF);
    mutated[16 + 32 * 5 + 25] = 0x7F;
    expectLoadError(mutated, ErrorCode::TraceCorrupt, "bad register");
}

TEST(TraceCorruption, RandomBitFlipsNeverCrash)
{
    TempFile healthy("flip_base.fo4t");
    const auto good = healthyTraceBytes(healthy.path());

    util::Rng rng(2002); // deterministic: same flips every run
    int loaded = 0, rejected = 0;
    for (int trial = 0; trial < 200; ++trial) {
        auto mutated = good;
        const auto byte = rng.below(mutated.size());
        mutated[byte] ^= static_cast<char>(1u << rng.below(8));

        TempFile tmp("flipped.fo4t");
        writeFile(tmp.path(), mutated);
        try {
            trace::FileTrace t(tmp.path());
            ++loaded; // flip hit a don't-care field; stream still sane
        } catch (const util::TraceError &) {
            ++rejected; // flip hit a checked field; typed rejection
        }
    }
    // Both outcomes must occur: flips in seq/pc/addr are tolerated,
    // flips in the header or class/register fields are rejected.
    EXPECT_GT(loaded, 0);
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(loaded + rejected, 200);
}

TEST(ConfigFaults, RandomizedInvalidParamsAlwaysThrowTyped)
{
    util::Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        auto p = core::CoreParams::alpha21264();
        // Corrupt one to three knobs with out-of-range values.
        const int faults = 1 + static_cast<int>(rng.below(3));
        for (int i = 0; i < faults; ++i) {
            switch (rng.below(6)) {
              case 0:
                p.fetchWidth = -static_cast<int>(rng.below(8));
                break;
              case 1:
                p.robSize = static_cast<int>(rng.below(8));
                break;
              case 2:
                p.issueLatency = 0;
                break;
              case 3:
                p.dl1.lineBytes = 48;
                break;
              case 4:
                p.window.capacity = 0;
                break;
              default:
                p.memLatencies.l2 = 0;
                break;
            }
        }
        const auto st = p.validate();
        ASSERT_FALSE(st.isOk()) << "trial " << trial;
        EXPECT_EQ(st.code(), ErrorCode::InvalidConfig);
        EXPECT_THROW(core::makeOooCore(p, "tournament"),
                     util::ConfigError)
            << "trial " << trial;
        EXPECT_THROW(core::makeInorderCore(p, "tournament"),
                     util::ConfigError)
            << "trial " << trial;
    }
}

TEST(ConfigFaults, UnknownPredictorAndProfileNames)
{
    const auto p = core::CoreParams::alpha21264();
    EXPECT_THROW(core::makeOooCore(p, "psychic"), util::ConfigError);
    EXPECT_THROW(trace::spec2000Profile("999.nonesuch"),
                 util::ConfigError);
}

TEST(Watchdog, OooCoreThrowsDeadlockWithDump)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    try {
        // 50 cycles cannot commit 50000 instructions on a 4-wide core.
        core->run(gen, 50000, 0, 0, 50);
        FAIL() << "watchdog did not fire";
    } catch (const util::DeadlockError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadlock);
        EXPECT_EQ(e.dump().model, "out-of-order");
        EXPECT_EQ(e.dump().cycleLimit, 50u);
        EXPECT_LT(e.dump().committed, e.dump().target);
        // The dump describes the stuck pipeline.
        const std::string text = e.dump().toString();
        EXPECT_NE(text.find("ROB"), std::string::npos);
        EXPECT_NE(text.find("cycle"), std::string::npos);
    }
}

TEST(Watchdog, InorderCoreThrowsDeadlockWithDump)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeInorderCore(core::CoreParams::alpha21264(),
                                      "tournament");
    try {
        core->run(gen, 50000, 0, 0, 50);
        FAIL() << "watchdog did not fire";
    } catch (const util::DeadlockError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadlock);
        EXPECT_EQ(e.dump().model, "in-order");
    }
}

TEST(Watchdog, GenerousBudgetDoesNotFire)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    const auto r = core->run(gen, 2000, 0, 0, 1000000);
    EXPECT_EQ(r.instructions, 2000u);
}

TEST(Watchdog, ZeroInstructionsIsAConfigError)
{
    auto prof = trace::spec2000Profile("164.gzip");
    trace::SyntheticTraceGenerator gen(prof);
    auto core = core::makeOooCore(core::CoreParams::alpha21264(),
                                  "tournament");
    EXPECT_THROW(core->run(gen, 0), util::ConfigError);
}

TEST(SuiteIsolation, BrokenJobsDoNotSinkTheSuite)
{
    // The acceptance scenario: N jobs, one with a corrupted trace file,
    // one that trips the watchdog; the other N-2 complete and aggregate.
    TempFile corrupt("suite_corrupt.fo4t");
    auto bytes = healthyTraceBytes(corrupt.path(), 512);
    bytes[16 + 32 * 40 + 30] = static_cast<char>(0xEE);
    writeFile(corrupt.path(), bytes);

    std::vector<study::BenchJob> jobs;
    for (const char *name : {"176.gcc", "181.mcf", "256.bzip2"}) {
        jobs.push_back(study::BenchJob::fromProfile(
            trace::spec2000Profile(name)));
    }
    jobs.push_back(study::BenchJob::fromTraceFile(
        "corrupt", trace::BenchClass::Integer, corrupt.path()));
    auto hung =
        study::BenchJob::fromProfile(trace::spec2000Profile("164.gzip"));
    hung.name = "hung";
    hung.cycleLimit = 20;
    jobs.push_back(hung);

    study::RunSpec spec;
    spec.instructions = 5000;
    spec.warmup = 500;
    spec.prewarm = 20000;

    const auto suite = study::runSuite(study::scaledCoreParams(6.0, {}),
                                       study::scaledClock(6.0), jobs, spec);

    ASSERT_EQ(suite.benchmarks.size(), 5u);
    EXPECT_EQ(suite.succeeded(), 3u);
    const auto failures = suite.failures();
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0]->name, "corrupt");
    EXPECT_EQ(failures[0]->error.code(), ErrorCode::TraceCorrupt);
    EXPECT_EQ(failures[1]->name, "hung");
    EXPECT_EQ(failures[1]->error.code(), ErrorCode::Deadlock);
    // The watchdog dump rides along in the recorded status.
    EXPECT_NE(failures[1]->error.message().find("watchdog"),
              std::string::npos);

    // Aggregates cover exactly the survivors and stay finite.
    EXPECT_GT(suite.harmonicIpcAll(), 0.0);
    EXPECT_GT(suite.harmonicBipsAll(), 0.0);

    // The printed report marks both failures with their typed codes.
    std::ostringstream os;
    study::printSuite(os, suite);
    const std::string report = os.str();
    EXPECT_NE(report.find("FAILED [TraceCorrupt]"), std::string::npos);
    EXPECT_NE(report.find("FAILED [Deadlock]"), std::string::npos);
    EXPECT_NE(report.find("3 of 5"), std::string::npos);
}

TEST(SuiteIsolation, ConcurrentFaultsStayIsolatedPerJob)
{
    // The parallel engine must not let one worker's fault leak into a
    // sibling running at the same time: inject a corrupt trace and
    // three watchdog deadlocks among nine healthy jobs and fan the lot
    // across 8 threads, repeatedly.
    TempFile corrupt("concurrent_corrupt.fo4t");
    auto bytes = healthyTraceBytes(corrupt.path(), 512);
    bytes[16 + 32 * 40 + 30] = static_cast<char>(0xEE);
    writeFile(corrupt.path(), bytes);

    std::vector<study::BenchJob> jobs;
    int sabotaged = 0;
    for (const char *name : {"164.gzip", "175.vpr", "176.gcc", "181.mcf",
                             "197.parser", "252.eon", "253.perlbmk",
                             "256.bzip2", "300.twolf"}) {
        jobs.push_back(study::BenchJob::fromProfile(
            trace::spec2000Profile(name)));
        // Every third job is followed by a saboteur so the failures are
        // spread across the grid, not clustered at one end.
        if (jobs.size() % 3 == 0 && sabotaged < 3) {
            if (++sabotaged == 2) {
                jobs.push_back(study::BenchJob::fromTraceFile(
                    "corrupt", trace::BenchClass::Integer,
                    corrupt.path()));
            } else {
                auto hung = study::BenchJob::fromProfile(
                    trace::spec2000Profile("164.gzip"));
                hung.name = util::strprintf("hung-%d", sabotaged);
                hung.cycleLimit = 20;
                jobs.push_back(hung);
            }
        }
    }

    study::RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 250;
    spec.prewarm = 20000;
    spec.cycleLimit = 1000000;

    const auto params = study::scaledCoreParams(6.0, {});
    const auto clock = study::scaledClock(6.0);
    const auto reference =
        study::serializeSuite(study::runSuite(params, clock, jobs, spec));

    const study::ParallelRunner runner(8);
    for (int round = 0; round < 3; ++round) {
        const auto suite = runner.runSuite(params, clock, jobs, spec);
        ASSERT_EQ(suite.benchmarks.size(), jobs.size());
        EXPECT_EQ(suite.succeeded(), jobs.size() - 3);

        const auto failures = suite.failures();
        ASSERT_EQ(failures.size(), 3u);
        EXPECT_EQ(failures[0]->name, "hung-1");
        EXPECT_EQ(failures[0]->error.code(), ErrorCode::Deadlock);
        EXPECT_EQ(failures[1]->name, "corrupt");
        EXPECT_EQ(failures[1]->error.code(), ErrorCode::TraceCorrupt);
        EXPECT_EQ(failures[2]->name, "hung-3");
        EXPECT_EQ(failures[2]->error.code(), ErrorCode::Deadlock);

        // And not just the failure pattern: the whole suite is
        // bit-for-bit the serial run, every round.
        EXPECT_EQ(study::serializeSuite(suite), reference)
            << "round " << round;
    }
}

TEST(SuiteIsolation, SuiteLevelMisconfigurationStillThrows)
{
    const std::vector<study::BenchJob> none;
    study::RunSpec spec;
    EXPECT_THROW(study::runSuite(study::scaledCoreParams(6.0, {}),
                                 study::scaledClock(6.0), none, spec),
                 util::ConfigError);

    auto job = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    spec.instructions = 0;
    EXPECT_THROW(study::runSuite(study::scaledCoreParams(6.0, {}),
                                 study::scaledClock(6.0), {job}, spec),
                 util::ConfigError);
}
