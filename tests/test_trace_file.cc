/**
 * @file
 * Tests for binary trace recording and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/core.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "util/status.hh"

using namespace fo4::trace;
using fo4::util::ErrorCode;
using fo4::util::TraceError;

namespace
{

/** Temporary file path scoped to a test. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(std::string(::testing::TempDir()) + "/" + name)
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(FileTrace, RoundTripsExactly)
{
    TempFile tmp("roundtrip.fo4t");
    auto prof = spec2000Profile("164.gzip");
    SyntheticTraceGenerator gen(prof);
    recordTrace(tmp.path(), gen, 5000);

    FileTrace replay(tmp.path());
    ASSERT_EQ(replay.recordedInstructions(), 5000u);

    gen.reset();
    for (int i = 0; i < 5000; ++i) {
        const auto a = gen.next();
        const auto b = replay.next();
        ASSERT_EQ(a.seq, b.seq) << "at " << i;
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.src1, b.src1);
        ASSERT_EQ(a.src2, b.src2);
        ASSERT_EQ(a.dst, b.dst);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST(FileTrace, CyclesWithRenumberedSequence)
{
    TempFile tmp("cycle.fo4t");
    auto prof = spec2000Profile("171.swim");
    SyntheticTraceGenerator gen(prof);
    recordTrace(tmp.path(), gen, 100);

    FileTrace replay(tmp.path());
    for (std::uint64_t i = 0; i < 250; ++i)
        EXPECT_EQ(replay.next().seq, i);
}

TEST(FileTrace, ResetRewinds)
{
    TempFile tmp("reset.fo4t");
    auto prof = spec2000Profile("176.gcc");
    SyntheticTraceGenerator gen(prof);
    recordTrace(tmp.path(), gen, 200);

    FileTrace replay(tmp.path());
    const auto first = replay.next();
    for (int i = 0; i < 57; ++i)
        replay.next();
    replay.reset();
    const auto again = replay.next();
    EXPECT_EQ(first.pc, again.pc);
    EXPECT_EQ(first.cls, again.cls);
    EXPECT_EQ(first.addr, again.addr);
}

TEST(FileTrace, RejectsGarbageFiles)
{
    TempFile tmp("garbage.fo4t");
    std::FILE *f = std::fopen(tmp.path().c_str(), "wb");
    std::fputs("this is definitely not a trace file", f);
    std::fclose(f);
    try {
        FileTrace t(tmp.path());
        FAIL() << "garbage file accepted";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceFormat);
        EXPECT_NE(std::string(e.what()).find("not a fo4pipe trace"),
                  std::string::npos);
    }
}

TEST(FileTrace, RejectsMissingFiles)
{
    try {
        FileTrace t("/nonexistent/path/x.fo4t");
        FAIL() << "missing file accepted";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIo);
    }
}

TEST(FileTrace, LoadReturnsStatusInsteadOfThrowing)
{
    const auto missing = FileTrace::load("/nonexistent/path/x.fo4t");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::TraceIo);

    TempFile tmp("load_ok.fo4t");
    auto prof = spec2000Profile("164.gzip");
    SyntheticTraceGenerator gen(prof);
    recordTrace(tmp.path(), gen, 64);
    auto loaded = FileTrace::load(tmp.path());
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().recordedInstructions(), 64u);
}

TEST(FileTrace, DrivesTheCore)
{
    // A recorded trace must produce the same simulation results as the
    // live generator it captured.
    TempFile tmp("sim.fo4t");
    auto prof = spec2000Profile("300.twolf");
    SyntheticTraceGenerator gen(prof);
    recordTrace(tmp.path(), gen, 30000);

    auto core = fo4::core::makeOooCore(
        fo4::core::CoreParams::alpha21264(), "tournament");
    gen.reset();
    const auto live = core->run(gen, 20000);

    FileTrace replay(tmp.path());
    const auto replayed = core->run(replay, 20000);

    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.mispredicts, replayed.mispredicts);
    EXPECT_EQ(live.dl1Misses, replayed.dl1Misses);
}
