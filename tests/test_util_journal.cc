/**
 * @file
 * Durability primitives: the write-ahead journal's corruption matrix —
 * every way a file can be damaged maps to either a clean recovery (the
 * one crash-legitimate state, a torn trailing record) or a typed
 * refusal — and the atomic CSV writer's publish-all-or-nothing
 * contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/csv.hh"
#include "util/journal.hh"
#include "util/status.hh"

using namespace fo4;

namespace
{

std::string
tempPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** A journal with `n` records "record-0".."record-<n-1>". */
std::string
makeJournal(const std::string &name, std::uint64_t fingerprint,
            int records)
{
    const std::string path = tempPath(name);
    auto writer = util::JournalWriter::create(path, fingerprint);
    for (int i = 0; i < records; ++i)
        writer.append("record-" + std::to_string(i));
    writer.close();
    return path;
}

/** Patch `bytes` back into a consistent header CRC (bytes [0, 24)). */
void
fixHeaderCrc(std::string &bytes)
{
    const std::uint32_t crc = util::crc32(bytes.data(), 24);
    bytes[24] = static_cast<char>(crc);
    bytes[25] = static_cast<char>(crc >> 8);
    bytes[26] = static_cast<char>(crc >> 16);
    bytes[27] = static_cast<char>(crc >> 24);
}

util::ErrorCode
readError(const std::string &path)
{
    try {
        util::readJournal(path);
    } catch (const util::JournalError &e) {
        return e.code();
    }
    return util::ErrorCode::Ok;
}

} // namespace

TEST(Crc32, MatchesIeeeCheckValue)
{
    // The standard CRC-32 check value for "123456789".
    EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
    // Chaining across a split equals one pass over the whole buffer.
    const std::uint32_t first = util::crc32("12345", 5);
    EXPECT_EQ(util::crc32("6789", 4, first), 0xCBF43926u);
}

TEST(Journal, RoundTripPreservesRecordsAndFingerprint)
{
    const auto path = makeJournal("journal_roundtrip.j", 0xfeedface, 3);
    const auto contents = util::readJournal(path);
    EXPECT_EQ(contents.fingerprint, 0xfeedfaceu);
    ASSERT_EQ(contents.records.size(), 3u);
    EXPECT_EQ(contents.records[0], "record-0");
    EXPECT_EQ(contents.records[2], "record-2");
    EXPECT_FALSE(contents.tornTail);
    EXPECT_EQ(contents.validBytes, slurp(path).size());
    std::remove(path.c_str());
}

TEST(Journal, EmptyPayloadAndBinaryPayloadSurvive)
{
    const std::string path = tempPath("journal_binary.j");
    auto writer = util::JournalWriter::create(path, 1);
    writer.append("");
    writer.append(std::string("\x00\xff\n\x01", 4));
    writer.close();
    const auto contents = util::readJournal(path);
    ASSERT_EQ(contents.records.size(), 2u);
    EXPECT_EQ(contents.records[0], "");
    EXPECT_EQ(contents.records[1], std::string("\x00\xff\n\x01", 4));
    std::remove(path.c_str());
}

TEST(Journal, MissingFileIsJournalIo)
{
    const auto path = tempPath("journal_missing.j");
    EXPECT_FALSE(util::journalExists(path));
    EXPECT_EQ(readError(path), util::ErrorCode::JournalIo);
}

TEST(Journal, TruncatedHeaderIsJournalFormat)
{
    const auto path = tempPath("journal_shortheader.j");
    spew(path, "");
    EXPECT_EQ(readError(path), util::ErrorCode::JournalFormat);
    spew(path, "FO4JRNL\n\x01\x00");
    EXPECT_EQ(readError(path), util::ErrorCode::JournalFormat);
    std::remove(path.c_str());
}

TEST(Journal, BadMagicIsJournalFormat)
{
    const auto path = tempPath("journal_badmagic.j");
    spew(path, std::string(64, 'x'));
    EXPECT_EQ(readError(path), util::ErrorCode::JournalFormat);
    std::remove(path.c_str());
}

TEST(Journal, VersionMismatchIsJournalFormat)
{
    const auto path = makeJournal("journal_version.j", 7, 1);
    auto bytes = slurp(path);
    bytes[8] = 99; // format version field
    fixHeaderCrc(bytes); // keep the header itself self-consistent
    spew(path, bytes);
    EXPECT_EQ(readError(path), util::ErrorCode::JournalFormat);
    std::remove(path.c_str());
}

TEST(Journal, HeaderBitRotIsJournalCorrupt)
{
    const auto path = makeJournal("journal_headerrot.j", 7, 1);
    auto bytes = slurp(path);
    bytes[16] = static_cast<char>(bytes[16] ^ 0x40); // fingerprint byte
    spew(path, bytes); // header CRC now disagrees
    EXPECT_EQ(readError(path), util::ErrorCode::JournalCorrupt);
    std::remove(path.c_str());
}

TEST(Journal, MidFileFlipIsJournalCorruptNotTornTail)
{
    const auto path = makeJournal("journal_midflip.j", 7, 3);
    auto bytes = slurp(path);
    // Flip one payload byte of the *first* record: frame complete, CRC
    // wrong — bit rot, not a crash artifact, so the journal is refused.
    bytes[32 + 8 + 2] = static_cast<char>(bytes[32 + 8 + 2] ^ 0x01);
    spew(path, bytes);
    EXPECT_EQ(readError(path), util::ErrorCode::JournalCorrupt);
    std::remove(path.c_str());
}

TEST(Journal, TornTrailingRecordRecoversAndAppendResumes)
{
    const auto path = makeJournal("journal_torn.j", 7, 3);
    const auto intact = slurp(path);

    // A crash mid-append can tear the new frame at any byte: a lone
    // length byte, a full length word with half a CRC, or a complete
    // frame header whose payload never finished.  Every such tail must
    // recover to the 3 intact records.
    const std::vector<std::string> tails = {
        std::string("\x08", 1),
        std::string("\x08\x00\x00\x00\xaa\xbb", 6),
        std::string("\x08\x00\x00\x00\xaa\xbb\xcc\xdd"
                    "rec",
                    11),
    };
    for (std::size_t i = 0; i < tails.size(); ++i) {
        spew(path, intact + tails[i]);
        const auto contents = util::readJournal(path);
        EXPECT_TRUE(contents.tornTail) << "tail=" << i;
        ASSERT_EQ(contents.records.size(), 3u) << "tail=" << i;
        EXPECT_EQ(contents.validBytes, intact.size()) << "tail=" << i;
    }

    // appendTo truncates the tail and continues on a record boundary.
    {
        auto recovered = util::readJournal(path);
        auto writer = util::JournalWriter::appendTo(path, recovered);
        writer.append("record-3");
        writer.close();
    }
    const auto contents = util::readJournal(path);
    EXPECT_FALSE(contents.tornTail);
    ASSERT_EQ(contents.records.size(), 4u);
    EXPECT_EQ(contents.records[3], "record-3");
    std::remove(path.c_str());
}

TEST(Journal, CreateReplacesExistingFileAtomically)
{
    const auto path = makeJournal("journal_replace.j", 1, 2);
    auto writer = util::JournalWriter::create(path, 2);
    writer.close();
    const auto contents = util::readJournal(path);
    EXPECT_EQ(contents.fingerprint, 2u);
    EXPECT_TRUE(contents.records.empty());
    std::remove(path.c_str());
}

TEST(AtomicCsv, FileAppearsOnlyOnCommit)
{
    const auto path = tempPath("atomic.csv");
    {
        util::AtomicCsvFile csv(path);
        csv.writeRow({"a", "b"});
        csv.writeRow({"1", "two,with comma"});
        // Mid-write: rows live in the temporary, the destination does
        // not exist — a reader can never observe a partial file.
        EXPECT_TRUE(std::ifstream(csv.tempPath()).is_open());
        EXPECT_FALSE(std::ifstream(path).is_open());
        csv.commit();
        EXPECT_TRUE(csv.committed());
    }
    EXPECT_EQ(slurp(path), "a,b\n1,\"two,with comma\"\n");
    std::remove(path.c_str());
}

TEST(AtomicCsv, AbandonedWriterLeavesNothingBehind)
{
    const auto path = tempPath("atomic_abandoned.csv");
    std::string tmp;
    {
        util::AtomicCsvFile csv(path);
        csv.writeRow({"partial"});
        tmp = csv.tempPath();
        // No commit: simulates a crash/exception mid-write.
    }
    EXPECT_FALSE(std::ifstream(path).is_open());
    EXPECT_FALSE(std::ifstream(tmp).is_open());
}

TEST(AtomicCsv, CommitReplacesPreviousComplete)
{
    const auto path = tempPath("atomic_replace.csv");
    {
        util::AtomicCsvFile csv(path);
        csv.writeRow({"old"});
        csv.commit();
    }
    {
        util::AtomicCsvFile csv(path);
        csv.writeRow({"new"});
        csv.commit();
    }
    EXPECT_EQ(slurp(path), "new\n");
    std::remove(path.c_str());
}

TEST(AtomicCsv, UnwritableDirectoryIsTypedJournalIo)
{
    try {
        util::AtomicCsvFile csv("/nonexistent-dir-fo4/out.csv");
        FAIL() << "expected JournalError";
    } catch (const util::JournalError &e) {
        EXPECT_EQ(e.code(), util::ErrorCode::JournalIo);
    }
}

// ---------------------------------------------------------------------
// Injected disk faults (the ENOSPC/short-write seam)
// ---------------------------------------------------------------------

namespace
{

/** Scoped disk-fault hook: fault every write to `path`, clear on exit. */
class ScopedDiskFault
{
  public:
    ScopedDiskFault(std::string path, util::DiskFault fault)
    {
        util::setDiskFaultHook(
            [path = std::move(path),
             fault](const std::string &p)
                -> std::optional<util::DiskFault> {
                if (p == path)
                    return fault;
                return std::nullopt;
            });
    }
    ~ScopedDiskFault() { util::setDiskFaultHook(nullptr); }
};

} // namespace

TEST(Journal, TryAppendSurfacesEnospcAsTypedStatus)
{
    const auto path = makeJournal("journal_enospc.j", 7, 2);
    auto recovered = util::readJournal(path);
    auto writer = util::JournalWriter::appendTo(path, recovered);

    {
        ScopedDiskFault fault(path, util::DiskFault{}); // immediate ENOSPC
        const util::Status st = writer.tryAppend("doomed-record");
        ASSERT_FALSE(st.isOk());
        EXPECT_EQ(st.code(), util::ErrorCode::JournalIo);
        // The status carries enough to act on: the file and the cause.
        EXPECT_NE(st.message().find(path), std::string::npos);
        EXPECT_NE(st.message().find("No space left"), std::string::npos);
    }

    // The fault cleared: the same writer appends again, and recovery
    // sees the 2 intact records plus the new one — the failed append
    // left at most a torn tail, which append-time truncation and
    // recovery both discard.
    writer.append("record-after-fault");
    writer.close();
    const auto contents = util::readJournal(path);
    ASSERT_GE(contents.records.size(), 3u);
    EXPECT_EQ(contents.records.back(), "record-after-fault");
    std::remove(path.c_str());
}

TEST(Journal, ShortWriteLandsAPrefixThenFailsTyped)
{
    const auto path = makeJournal("journal_shortwrite.j", 7, 3);
    const auto intactBytes = slurp(path).size();
    auto recovered = util::readJournal(path);
    auto writer = util::JournalWriter::appendTo(path, recovered);

    {
        // The disk fills 5 bytes into the frame: a torn tail on disk.
        ScopedDiskFault fault(
            path, util::DiskFault{.failErrno = 28, .shortWriteBytes = 5});
        const util::Status st = writer.tryAppend("never-completes");
        ASSERT_FALSE(st.isOk());
        EXPECT_EQ(st.code(), util::ErrorCode::JournalIo);
    }
    writer.close();

    // Exactly the crash-legitimate state: recovery reports a torn tail
    // and the full intact prefix — nothing corrupt, nothing lost.
    const auto contents = util::readJournal(path);
    EXPECT_TRUE(contents.tornTail);
    ASSERT_EQ(contents.records.size(), 3u);
    EXPECT_EQ(contents.validBytes, intactBytes);
    std::remove(path.c_str());
}

TEST(Journal, ThrowingAppendCarriesTheSameTypedCode)
{
    const auto path = makeJournal("journal_throwing.j", 7, 1);
    auto recovered = util::readJournal(path);
    auto writer = util::JournalWriter::appendTo(path, recovered);
    ScopedDiskFault fault(path, util::DiskFault{});
    try {
        writer.append("doomed");
        FAIL() << "append under ENOSPC succeeded";
    } catch (const util::JournalError &e) {
        EXPECT_EQ(e.code(), util::ErrorCode::JournalIo);
    }
    std::remove(path.c_str());
}

TEST(AtomicCsv, DiskFaultIsTypedAndCommitRefuses)
{
    const auto path = tempPath("atomic_enospc.csv");
    util::AtomicCsvFile csv(path);
    ASSERT_TRUE(csv.tryWriteRow({"landed", "row"}).isOk());

    {
        ScopedDiskFault fault(csv.tempPath(), util::DiskFault{});
        const util::Status st = csv.tryWriteRow({"doomed", "row"});
        ASSERT_FALSE(st.isOk());
        EXPECT_EQ(st.code(), util::ErrorCode::JournalIo);
        EXPECT_NE(st.message().find("No space left"), std::string::npos);
    }

    // A writer that has lost a row must not publish: commit refuses
    // (all-or-nothing), and the destination never appears.
    const util::Status commit = csv.tryCommit();
    ASSERT_FALSE(commit.isOk());
    EXPECT_EQ(commit.code(), util::ErrorCode::JournalIo);
    EXPECT_FALSE(csv.committed());
    EXPECT_FALSE(std::ifstream(path).is_open());
}

TEST(AtomicCsv, ShortRowWriteAlsoPoisonsTheCommit)
{
    const auto path = tempPath("atomic_shortwrite.csv");
    util::AtomicCsvFile csv(path);
    {
        ScopedDiskFault fault(
            csv.tempPath(),
            util::DiskFault{.failErrno = 28, .shortWriteBytes = 3});
        ASSERT_FALSE(csv.tryWriteRow({"half", "a", "row"}).isOk());
    }
    EXPECT_FALSE(csv.tryCommit().isOk());
    EXPECT_FALSE(std::ifstream(path).is_open());
}
