/**
 * @file
 * Property and stress tests for util::ThreadPool / util::TaskGroup: all
 * submitted tasks complete, exceptions are captured and rethrown
 * without abandoning siblings, nested submit-and-wait cannot deadlock
 * (the waiter helps), and a 1-thread pool is strictly serial.  The
 * whole file is data-race-clean under the tsan preset.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/status.hh"
#include "util/thread_pool.hh"

using fo4::util::TaskGroup;
using fo4::util::ThreadPool;

TEST(ThreadPool, ThreadCountFloorsAtOne)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1);
    EXPECT_EQ(ThreadPool(4).threadCount(), 4);
    EXPECT_EQ(ThreadPool(0).threadCount(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::atomic<int>> perTask(500);
    for (auto &p : perTask)
        p = 0;

    TaskGroup group(pool);
    for (int i = 0; i < 500; ++i) {
        group.submit([&, i] {
            ++perTask[static_cast<std::size_t>(i)];
            ++ran;
        });
    }
    group.wait();

    EXPECT_EQ(ran.load(), 500);
    for (const auto &p : perTask)
        EXPECT_EQ(p.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolIsStrictlySerialAndInline)
{
    // threads == 1 spawns no workers: tasks run on the waiting thread,
    // in submission order.  This is what makes jobs=1 *the* serial
    // engine rather than an approximation of it.
    ThreadPool pool(1);
    std::vector<int> order;
    std::set<std::thread::id> ids;

    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
        group.submit([&, i] {
            order.push_back(i);
            ids.insert(std::this_thread::get_id());
        });
    }
    group.wait();

    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, ExceptionIsRethrownWithoutAbandoningSiblings)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};

    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i) {
        group.submit([&, i] {
            if (i == 37)
                throw fo4::util::ConfigError("task 37 is broken");
            ++ran;
        });
    }
    try {
        group.wait();
        FAIL() << "exception was swallowed";
    } catch (const fo4::util::ConfigError &e) {
        EXPECT_STREQ(e.what(), "task 37 is broken");
    }
    // wait() returns only after the whole group drained: every healthy
    // sibling ran to completion despite the throwing task.
    EXPECT_EQ(ran.load(), 99);

    // The pool survives and the next group is clean.
    TaskGroup again(pool);
    again.submit([&] { ++ran; });
    EXPECT_NO_THROW(again.wait());
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, FirstOfManyExceptionsWins)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
        group.submit(
            [] { throw fo4::util::ConfigError("boom"); });
    }
    EXPECT_THROW(group.wait(), fo4::util::ConfigError);
}

TEST(ThreadPool, NestedSubmitAndWaitDoesNotDeadlock)
{
    // Each outer task opens its own group on the same pool and waits on
    // it.  With blocking waits this deadlocks as soon as every worker
    // sits in an outer task; with helping waits it must complete even
    // on a pool smaller than the nesting width.
    for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        std::atomic<int> inner{0};
        TaskGroup outer(pool);
        for (int i = 0; i < 8; ++i) {
            outer.submit([&] {
                TaskGroup nested(pool);
                for (int j = 0; j < 4; ++j)
                    nested.submit([&] { ++inner; });
                nested.wait();
            });
        }
        outer.wait();
        EXPECT_EQ(inner.load(), 8 * 4) << "threads=" << threads;
    }
}

TEST(ThreadPool, DeeplyNestedFanOut)
{
    ThreadPool pool(3);
    std::atomic<int> leaves{0};

    // 3 levels of fan-out, 3 children each: 27 leaves.
    std::function<void(int)> fan = [&](int depth) {
        if (depth == 0) {
            ++leaves;
            return;
        }
        TaskGroup group(pool);
        for (int i = 0; i < 3; ++i)
            group.submit([&, depth] { fan(depth - 1); });
        group.wait();
    };
    fan(3);
    EXPECT_EQ(leaves.load(), 27);
}

TEST(ThreadPool, AbandonedGroupStillDrainsInDestructor)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    {
        TaskGroup group(pool);
        for (int i = 0; i < 200; ++i)
            group.submit([&] { ++ran; });
        // No wait(): leaving scope must block until every task finished
        // (they capture `ran` by reference).
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(TaskGroupCancel, QueuedTasksAfterRequestAreSkipped)
{
    // threads == 1 runs tasks inline in submission order, so the cut
    // point is exact: task 4 requests cancellation, tasks 5..9 are
    // skipped at the boundary, their bodies never run.
    ThreadPool pool(1);
    fo4::util::CancelToken token;
    TaskGroup group(pool, &token);
    std::vector<int> ran;
    for (int i = 0; i < 10; ++i) {
        group.submit([&, i] {
            ran.push_back(i);
            if (i == 4)
                token.requestCancel();
        });
    }
    group.wait(); // returns normally; cancellation is not an error

    EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(group.skippedTasks(), 5u);
}

TEST(TaskGroupCancel, PreCancelledTokenSkipsEveryBody)
{
    ThreadPool pool(4);
    fo4::util::CancelToken token;
    token.requestCancel();
    std::atomic<int> ran{0};
    TaskGroup group(pool, &token);
    for (int i = 0; i < 100; ++i)
        group.submit([&] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(group.skippedTasks(), 100u);
}

TEST(TaskGroupCancel, NullTokenAndUncancelledTokenRunEverything)
{
    ThreadPool pool(4);
    fo4::util::CancelToken token;
    std::atomic<int> ran{0};
    {
        TaskGroup group(pool); // default: no token at all
        for (int i = 0; i < 50; ++i)
            group.submit([&] { ++ran; });
        group.wait();
        EXPECT_EQ(group.skippedTasks(), 0u);
    }
    {
        TaskGroup group(pool, &token); // token present, never fired
        for (int i = 0; i < 50; ++i)
            group.submit([&] { ++ran; });
        group.wait();
        EXPECT_EQ(group.skippedTasks(), 0u);
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(TaskGroupCancel, CancellationDoesNotMaskTaskExceptions)
{
    // A task throws, a later task cancels: wait() must still rethrow
    // the captured exception — skipping is bookkeeping, not recovery.
    ThreadPool pool(1);
    fo4::util::CancelToken token;
    TaskGroup group(pool, &token);
    group.submit([] { throw fo4::util::SimError(
        fo4::util::ErrorCode::Internal, "task failed"); });
    group.submit([&] { token.requestCancel(); });
    group.submit([] { FAIL() << "body after cancel must not run"; });
    EXPECT_THROW(group.wait(), fo4::util::SimError);
    EXPECT_EQ(group.skippedTasks(), 1u);
}

TEST(ThreadPool, StressManySmallTasksAcrossGroups)
{
    ThreadPool pool(8);
    std::atomic<long> sum{0};
    for (int round = 0; round < 20; ++round) {
        TaskGroup group(pool);
        for (int i = 0; i < 1000; ++i)
            group.submit([&, i] { sum += i; });
        group.wait();
    }
    EXPECT_EQ(sum.load(), 20l * (999l * 1000l / 2));
}
