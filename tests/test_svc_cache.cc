/**
 * @file
 * The service-level result cache and tenancy contracts, end to end over
 * real loopback sockets.
 *
 * Cache side: a daemon restarted onto a warm cache_dir serves a repeat
 * submission byte-identical with zero cells executed; an identical
 * in-flight/completed sweep in the same daemon is answered by
 * single-flight dedup without touching the store; a cache corrupted
 * between restarts degrades to recompute — same bytes, corruption
 * counted; a sweep containing failed rows is never cached (transient
 * verdicts must not be replayed from disk).
 *
 * Tenant side: per-tenant admission quotas starve the hog and admit the
 * neighbour, with typed Overloaded refusals whose detail names the
 * quota, per-tenant counters, and quota release on cancel.  A tenant
 * name the protocol cannot vouch for is a session-fatal Protocol error.
 *
 * Fleet side: a worker restarted onto a warm cell cache answers every
 * lease from disk (cellsFromCache == grid size, cellsExecuted == 0) and
 * the assembled sweep still cmp-equals a local run — the cross-node
 * identity check.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "svc/client.hh"
#include "svc/coordinator.hh"
#include "svc/server.hh"
#include "svc/sweep.hh"
#include "svc/worker.hh"
#include "util/metrics.hh"
#include "util/status.hh"

using namespace fo4;
using util::ErrorCode;
using util::SvcError;

namespace
{

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "/" + name + "." +
        std::to_string(::getpid());
    std::system(("rm -rf '" + dir + "'").c_str());
    return dir;
}

/** A modest grid: 2 depths x 2 benchmarks = 4 cells. */
svc::SweepRequest
smallRequest()
{
    svc::SweepRequest req;
    req.instructions = 6000;
    req.warmup = 500;
    req.prewarm = 20000;
    req.tUseful = {8.0, 6.0};
    for (const char *name : {"164.gzip", "181.mcf"}) {
        svc::WireJob job;
        job.name = name;
        req.jobs.push_back(std::move(job));
    }
    return req;
}

/** A sweep long enough to still be Running when we act on it. */
svc::SweepRequest
longRequest()
{
    svc::SweepRequest req;
    req.instructions = 2000000;
    req.warmup = 1000;
    req.prewarm = 100000;
    req.tUseful = {6.0};
    svc::WireJob job;
    job.name = "164.gzip";
    req.jobs.push_back(job);
    return req;
}

std::string
localBytes(const svc::SweepRequest &request)
{
    const svc::SweepRequest decoded =
        svc::SweepRequest::decode(request.encode());
    return svc::runSweep(svc::planSweep(decoded), 1, "", nullptr, {});
}

svc::Server
makeServer(const std::string &cacheDir, std::size_t tenantQuota = 0,
           std::size_t maxQueue = 8)
{
    svc::ServerOptions options;
    options.port = 0;
    options.threads = 1;
    options.maxQueue = maxQueue;
    options.cacheDir = cacheDir;
    options.tenantQuota = tenantQuota;
    return svc::Server(std::move(options));
}

std::uint64_t
counterValue(const std::string &name)
{
    return util::MetricsRegistry::global().value(name);
}

/** Flip the last byte of every blob under `dir` (chaos between runs). */
int
corruptEveryBlob(const std::string &dir)
{
    int flipped = 0;
    DIR *d = ::opendir(dir.c_str());
    EXPECT_NE(d, nullptr) << dir;
    if (!d)
        return 0;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".blob") != 0)
            continue;
        const std::string path = dir + "/" + name;
        std::string bytes;
        {
            std::ifstream in(path, std::ios::binary);
            bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        }
        EXPECT_FALSE(bytes.empty()) << path;
        if (bytes.empty())
            continue;
        bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        ++flipped;
    }
    ::closedir(d);
    return flipped;
}

class SvcCache : public ::testing::Test
{
  protected:
    void SetUp() override { wasEnabled = util::setMetricsEnabled(true); }
    void TearDown() override { util::setMetricsEnabled(wasEnabled); }
    bool wasEnabled = false;
};

} // namespace

// ---------------------------------------------------------------------
// The persistent cache across daemon restarts
// ---------------------------------------------------------------------

TEST_F(SvcCache, RestartedServerServesFromCacheByteIdentical)
{
    const std::string cacheDir = tempDir("svc_cache_restart");
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    // Cold run: computed, then published to the store.
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);
        server.stop();
        server.join();
    }

    // Warm run in a fresh daemon: the bytes must come from disk — no
    // cell executes — and still cmp-equal the local reference.
    const std::uint64_t hits0 = counterValue("svc.cache.hit");
    const std::uint64_t cells0 = counterValue("study.cells.executed");
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);

        const svc::StatsSnapshot stats = client.stats();
        EXPECT_GT(stats.cacheEntries, 0u);
        EXPECT_GT(stats.cacheBytes, 0u);
        server.stop();
        server.join();
    }
    EXPECT_EQ(counterValue("svc.cache.hit") - hits0, 1u);
    EXPECT_EQ(counterValue("study.cells.executed") - cells0, 0u);
}

TEST_F(SvcCache, IdenticalResubmissionIsDedupedWithoutAStore)
{
    // No cache_dir at all: dedup against the daemon's own completed
    // jobs is in-memory and independent of the persistent store.
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    svc::Server server = makeServer("");
    svc::Client client("127.0.0.1", server.port());

    const auto [first, cells1] = client.submit(request);
    (void)cells1;
    ASSERT_EQ(client.waitUntilDone(first, 50).state, svc::JobState::Done);

    const std::uint64_t dedup0 = counterValue("svc.cache.dedup");
    const std::uint64_t cells0 = counterValue("study.cells.executed");
    const auto [second, cells2] = client.submit(request);
    (void)cells2;
    ASSERT_EQ(client.waitUntilDone(second, 50).state,
              svc::JobState::Done);
    EXPECT_EQ(client.fetchResults(second), expected);
    EXPECT_EQ(client.fetchResults(first), client.fetchResults(second));
    EXPECT_EQ(counterValue("svc.cache.dedup") - dedup0, 1u);
    EXPECT_EQ(counterValue("study.cells.executed") - cells0, 0u);

    server.stop();
    server.join();
}

TEST_F(SvcCache, CorruptedStoreDegradesToRecomputeSameBytes)
{
    const std::string cacheDir = tempDir("svc_cache_chaos");
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        client.waitUntilDone(id, 50);
        EXPECT_EQ(client.fetchResults(id), expected);
        server.stop();
        server.join();
    }

    // Rot every blob on disk between daemon runs.
    EXPECT_GT(corruptEveryBlob(cacheDir), 0);

    // The restarted daemon must detect the rot, quarantine, recompute,
    // and serve the same bytes anyway — corruption costs compute, never
    // correctness, and never the daemon.
    const std::uint64_t corrupt0 = counterValue("svc.cache.corrupt");
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);
        server.stop();
        server.join();
    }
    EXPECT_GE(counterValue("svc.cache.corrupt") - corrupt0, 1u);

    // The recompute re-published a clean entry: one more restart hits.
    const std::uint64_t hits0 = counterValue("svc.cache.hit");
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        client.waitUntilDone(id, 50);
        EXPECT_EQ(client.fetchResults(id), expected);
        server.stop();
        server.join();
    }
    EXPECT_EQ(counterValue("svc.cache.hit") - hits0, 1u);
}

TEST_F(SvcCache, SweepsWithFailedRowsAreNeverCached)
{
    const std::string cacheDir = tempDir("svc_cache_failedrows");
    svc::SweepRequest request = smallRequest();
    request.jobs[1].cycleLimit = 10; // deterministic Deadlock row

    std::string firstBytes;
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        firstBytes = client.fetchResults(id);
        EXPECT_NE(firstBytes.find("Deadlock"), std::string::npos);
        server.stop();
        server.join();
    }

    // A failed row poisons cachability: the restarted daemon must
    // recompute (hit delta zero) yet still produce identical bytes.
    const std::uint64_t hits0 = counterValue("svc.cache.hit");
    {
        svc::Server server = makeServer(cacheDir);
        svc::Client client("127.0.0.1", server.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        client.waitUntilDone(id, 50);
        EXPECT_EQ(client.fetchResults(id), firstBytes);
        server.stop();
        server.join();
    }
    EXPECT_EQ(counterValue("svc.cache.hit") - hits0, 0u);
}

// ---------------------------------------------------------------------
// Tenancy: admission quotas
// ---------------------------------------------------------------------

TEST_F(SvcCache, TenantQuotaStarvesTheHogAndAdmitsTheNeighbour)
{
    svc::Server server = makeServer("", /*tenantQuota=*/1);
    svc::Client client("127.0.0.1", server.port());

    svc::SweepRequest alice = longRequest();
    alice.tenant = "alice";
    svc::SweepRequest bob = longRequest();
    bob.tenant = "bob";

    // alice's first sweep starts running (quota meters *queued* jobs).
    const auto [running, c1] = client.submit(alice);
    (void)c1;
    while (client.poll(running).state == svc::JobState::Queued)
        ;
    // Her second occupies her one queue slot.
    const auto [queued, c2] = client.submit(alice);
    (void)c2;
    EXPECT_EQ(client.poll(queued).state, svc::JobState::Queued);

    // Her third is refused — typed, with detail naming the quota — but
    // bob, same daemon, same instant, is admitted.
    const std::uint64_t shed0 = counterValue("svc.shed.tenant_quota");
    try {
        client.submit(alice);
        FAIL() << "submit beyond the tenant quota succeeded";
    } catch (const SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Overloaded);
        EXPECT_NE(std::string(e.what()).find("quota"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("alice"),
                  std::string::npos);
    }
    EXPECT_EQ(counterValue("svc.shed.tenant_quota") - shed0, 1u);
    const auto [bobJob, c3] = client.submit(bob);
    (void)c3;

    // Load-shed accounting: alice's refusal and everyone's admissions
    // are attributed per tenant.
    EXPECT_GE(counterValue("svc.tenant.alice.submitted"), 2u);
    EXPECT_GE(counterValue("svc.tenant.alice.rejected"), 1u);
    EXPECT_GE(counterValue("svc.tenant.bob.submitted"), 1u);
    EXPECT_EQ(counterValue("svc.tenant.bob.rejected"), 0u);

    // Cancelling her queued job releases the quota slot immediately.
    client.cancel(queued);
    const auto [retry, c4] = client.submit(alice);
    (void)c4;

    client.cancel(retry);
    client.cancel(bobJob);
    client.cancel(running);
    client.waitUntilDone(running, 50);
    server.stop();
    server.join();
}

TEST_F(SvcCache, UnvouchableTenantNameIsAProtocolError)
{
    svc::Server server = makeServer("");
    svc::Client client("127.0.0.1", server.port());
    svc::SweepRequest request = smallRequest();
    request.tenant = "not a valid tenant"; // spaces: refused strictly
    try {
        client.submit(request);
        FAIL() << "hostile tenant name accepted";
    } catch (const SvcError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
    // Session-fatal, daemon-safe: a fresh honest session still works.
    svc::Client again("127.0.0.1", server.port());
    EXPECT_EQ(again.stats().submitted, 0u);
    server.stop();
    server.join();
}

// ---------------------------------------------------------------------
// Fleet: warm-cache workers skip execution, bytes still identical
// ---------------------------------------------------------------------

TEST_F(SvcCache, WarmCacheWorkerAnswersEveryLeaseFromDisk)
{
    const std::string cacheDir = tempDir("worker_cell_cache");
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    svc::CoordinatorOptions opts;
    opts.port = 0;
    opts.detector.heartbeatMs = 50;
    opts.detector.suspectAfterMs = 150;
    opts.detector.deadAfterMs = 400;
    opts.leaseTimeoutMs = 2000;
    opts.tickMs = 20;
    opts.localFallback = false; // every cell must go through the fleet

    const auto workerOptions = [&](const std::string &name) {
        svc::WorkerOptions w;
        w.port = 0; // set per coordinator below
        w.name = name;
        w.connectTimeoutMs = 2000;
        w.ioTimeoutMs = 2000;
        w.cacheDir = cacheDir;
        return w;
    };

    // Cold fleet: the worker computes all 4 cells and publishes them.
    {
        svc::Coordinator coord(opts);
        auto wo = workerOptions("cold-node");
        wo.port = coord.port();
        svc::Worker worker(std::move(wo));

        svc::Client client("127.0.0.1", coord.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);

        worker.stop();
        worker.join();
        EXPECT_EQ(worker.cellsExecuted(), 4u);
        EXPECT_EQ(worker.cellsFromCache(), 0u);
        coord.stop();
        coord.join();
    }

    // Warm fleet, different "node": a fresh coordinator (no dedup
    // memory) and a fresh worker sharing only the cache directory.
    // Every lease is answered from disk, and the assembled result is
    // byte-identical — the cross-node identity check.
    {
        svc::Coordinator coord(opts);
        auto wo = workerOptions("warm-node");
        wo.port = coord.port();
        svc::Worker worker(std::move(wo));

        svc::Client client("127.0.0.1", coord.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);

        worker.stop();
        worker.join();
        EXPECT_EQ(worker.cellsFromCache(), 4u);
        EXPECT_EQ(worker.cellsExecuted(), 0u);
        coord.stop();
        coord.join();
    }
}

// ---------------------------------------------------------------------
// Coordinator-side persistent cache
// ---------------------------------------------------------------------

TEST_F(SvcCache, RestartedCoordinatorServesSweepFromCache)
{
    const std::string cacheDir = tempDir("coord_cache");
    const svc::SweepRequest request = smallRequest();
    const std::string expected = localBytes(request);

    svc::CoordinatorOptions opts;
    opts.port = 0;
    opts.tickMs = 20;
    opts.localFallback = true;
    opts.fallbackGraceMs = 100; // zero-worker fleet: compute locally
    opts.cacheDir = cacheDir;

    {
        svc::Coordinator coord(opts);
        svc::Client client("127.0.0.1", coord.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);
        coord.stop();
        coord.join();
    }

    const std::uint64_t hits0 = counterValue("svc.cache.hit");
    const std::uint64_t cells0 = counterValue("study.cells.executed");
    {
        svc::Coordinator coord(opts);
        svc::Client client("127.0.0.1", coord.port());
        const auto [id, cells] = client.submit(request);
        (void)cells;
        ASSERT_EQ(client.waitUntilDone(id, 50).state,
                  svc::JobState::Done);
        EXPECT_EQ(client.fetchResults(id), expected);
        coord.stop();
        coord.join();
    }
    EXPECT_EQ(counterValue("svc.cache.hit") - hits0, 1u);
    EXPECT_EQ(counterValue("study.cells.executed") - cells0, 0u);
}
