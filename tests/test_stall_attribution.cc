/**
 * @file
 * Golden checks on stall attribution, the observability layer's core
 * invariant: every zero-retire cycle is charged to exactly one cause,
 * so the per-cause counts *partition* SimResult::stallCycles — in both
 * pipeline models, at every depth, with warmup subtraction applied.
 * Plus the physical sanity checks the paper's model implies: deeper
 * pipelines spend more cycles in the branch-mispredict shadow, and
 * extending a critical loop inflates exactly the cause it feeds.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/core.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace fo4;

namespace
{

study::RunSpec
attributionSpec(study::CoreModel model)
{
    study::RunSpec spec;
    spec.model = model;
    spec.instructions = 6000;
    spec.warmup = 800;
    spec.prewarm = 40000;
    spec.cycleLimit = 2000000;
    return spec;
}

core::SimResult
runOne(const char *bench, double tUseful, study::CoreModel model)
{
    const auto job =
        study::BenchJob::fromProfile(trace::spec2000Profile(bench));
    const auto result = study::runJobIsolated(
        study::scaledCoreParams(tUseful),
        study::scaledClock(tUseful), job, attributionSpec(model));
    EXPECT_FALSE(result.failed()) << bench;
    return result.sim;
}

} // namespace

TEST(StallAttribution, CausesPartitionStallCyclesExactlyInBothCores)
{
    for (const auto model :
         {study::CoreModel::OutOfOrder, study::CoreModel::InOrder}) {
        for (const char *bench : {"164.gzip", "176.gcc", "171.swim"}) {
            for (const double u : {3.0, 6.0, 12.0}) {
                const auto sim = runOne(bench, u, model);
                EXPECT_EQ(sim.stalls.total(), sim.stallCycles)
                    << bench << " t=" << u << " model="
                    << (model == study::CoreModel::InOrder ? "inorder"
                                                           : "ooo");
                EXPECT_LE(sim.stallCycles, sim.cycles);
                // Retiring every cycle or stalling: the two partitions
                // cover the run (width > 1 lets a cycle both retire and
                // be a non-stall, so only the stall side is exact).
                EXPECT_GT(sim.stallCycles, 0u) << bench << " t=" << u;
            }
        }
    }
}

TEST(StallAttribution, StructuralZeroesStayZero)
{
    for (const auto model :
         {study::CoreModel::OutOfOrder, study::CoreModel::InOrder}) {
        const auto sim = runOne("176.gcc", 6.0, model);
        // No I-cache in the model: the IcacheMiss lane must stay empty
        // (schema stability — the column exists, the model never fills
        // it).
        EXPECT_EQ(sim.stalls[core::StallCause::IcacheMiss], 0u);
    }
    // A scoreboarded in-order pipeline has no issue window.
    const auto inorder = runOne("176.gcc", 6.0, study::CoreModel::InOrder);
    EXPECT_EQ(inorder.stalls[core::StallCause::WindowFull], 0u);
}

TEST(StallAttribution, MispredictStallsGrowWithPipelineDepth)
{
    // The paper's Figure 2 mechanism: the misprediction penalty is
    // front-end depth in cycles, and scaled pipelines get deeper as
    // t_useful shrinks.  The cycles charged to BranchMispredict must
    // grow monotonically as the pipeline deepens (t_useful 12 -> 3),
    // in both cores, on a branchy integer code.
    for (const auto model :
         {study::CoreModel::OutOfOrder, study::CoreModel::InOrder}) {
        std::uint64_t previous = 0;
        for (const double u : {12.0, 9.0, 6.0, 4.0, 3.0}) {
            const auto sim = runOne("176.gcc", u, model);
            const auto mispredict =
                sim.stalls[core::StallCause::BranchMispredict];
            EXPECT_GE(mispredict, previous)
                << "t_useful=" << u << " model="
                << (model == study::CoreModel::InOrder ? "inorder"
                                                       : "ooo");
            previous = mispredict;
        }
        EXPECT_GT(previous, 0u);
    }
}

TEST(StallAttribution, ExtendedLoopsInflateTheCauseTheyFeed)
{
    // Figure 8 in miniature: lengthening one critical loop must inflate
    // the stall cause that loop feeds, with everything else equal.
    const auto job = study::BenchJob::fromProfile(
        trace::spec2000Profile("164.gzip"));
    const auto clock = study::scaledClock(6.0);
    const auto spec = attributionSpec(study::CoreModel::OutOfOrder);

    auto stallsWith = [&](auto mutate) {
        auto params = core::CoreParams::alpha21264();
        mutate(params);
        const auto r = study::runJobIsolated(params, clock, job, spec);
        EXPECT_FALSE(r.failed());
        return r.sim.stalls;
    };

    const auto base = stallsWith([](core::CoreParams &) {});
    const auto wakeup =
        stallsWith([](core::CoreParams &p) { p.extraWakeup = 8; });
    const auto loadUse =
        stallsWith([](core::CoreParams &p) { p.extraLoadUse = 8; });
    const auto mispredict = stallsWith(
        [](core::CoreParams &p) { p.extraMispredictPenalty = 8; });

    using core::StallCause;
    EXPECT_GT(wakeup[StallCause::WindowFull],
              base[StallCause::WindowFull]);
    EXPECT_GT(loadUse[StallCause::RawLoadUse],
              base[StallCause::RawLoadUse]);
    EXPECT_GT(mispredict[StallCause::BranchMispredict],
              base[StallCause::BranchMispredict]);
}

TEST(StallAttribution, WarmupSubtractionPreservesThePartition)
{
    // SimResult::operator- subtracts every stall field at the warmup
    // boundary.  A warmup-free run over the same *total* instruction
    // count simulates the identical schedule (determinism), so it is
    // exactly the unsubtracted accumulation: measured = full - warmup
    // window, per cause, and every window satisfies the partition.
    const auto with = runOne("181.mcf", 6.0, study::CoreModel::OutOfOrder);

    auto spec = attributionSpec(study::CoreModel::OutOfOrder);
    spec.instructions += spec.warmup;
    spec.warmup = 0;
    const auto job = study::BenchJob::fromProfile(
        trace::spec2000Profile("181.mcf"));
    const auto full = study::runJobIsolated(
        study::scaledCoreParams(6.0), study::scaledClock(6.0), job, spec);
    ASSERT_FALSE(full.failed());

    EXPECT_EQ(with.stalls.total(), with.stallCycles);
    EXPECT_EQ(full.sim.stalls.total(), full.sim.stallCycles);

    // The warmup window (full minus measured) partitions too, and no
    // per-cause count may go negative under the subtraction.
    ASSERT_GE(full.sim.stallCycles, with.stallCycles);
    std::uint64_t warmupWindow = 0;
    for (int c = 0; c < core::numStallCauses; ++c) {
        const auto cause = static_cast<core::StallCause>(c);
        ASSERT_GE(full.sim.stalls[cause], with.stalls[cause])
            << core::stallCauseName(cause);
        warmupWindow += full.sim.stalls[cause] - with.stalls[cause];
    }
    EXPECT_EQ(warmupWindow, full.sim.stallCycles - with.stallCycles);
}
