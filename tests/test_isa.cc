/**
 * @file
 * Tests for op classes, micro-ops and the FO4-scaled functional-unit
 * latency model (the FU half of Table 3).
 */

#include <gtest/gtest.h>

#include "isa/latencies.hh"
#include "isa/microop.hh"
#include "tech/fo4.hh"

using namespace fo4::isa;
using fo4::tech::ClockModel;

TEST(OpClass, FloatClassification)
{
    EXPECT_TRUE(isFloat(OpClass::FpAdd));
    EXPECT_TRUE(isFloat(OpClass::FpMult));
    EXPECT_TRUE(isFloat(OpClass::FpDiv));
    EXPECT_TRUE(isFloat(OpClass::FpSqrt));
    EXPECT_FALSE(isFloat(OpClass::IntAlu));
    EXPECT_FALSE(isFloat(OpClass::Load));
    EXPECT_FALSE(isFloat(OpClass::Branch));
}

TEST(OpClass, MemoryClassification)
{
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Store));
    EXPECT_FALSE(isMemory(OpClass::IntAlu));
    EXPECT_FALSE(isMemory(OpClass::FpDiv));
}

TEST(OpClass, NamesAreDistinct)
{
    EXPECT_STRNE(opClassName(OpClass::IntAlu), opClassName(OpClass::Load));
    EXPECT_STRNE(opClassName(OpClass::FpAdd), opClassName(OpClass::FpMult));
}

TEST(MicroOp, PredicatesFollowClass)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    op.cls = OpClass::Store;
    EXPECT_TRUE(op.isStore());
    op.cls = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
}

TEST(MicroOp, ToStringMentionsClassAndRegs)
{
    MicroOp op;
    op.seq = 7;
    op.cls = OpClass::Load;
    op.dst = 3;
    op.src1 = 1;
    op.addr = 0x1000;
    const std::string s = op.toString();
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("dst=3"), std::string::npos);
    EXPECT_NE(s.find("0x1000"), std::string::npos);
}

TEST(Latencies, Alpha21264TableRow)
{
    // Table 3 last row.
    EXPECT_EQ(alpha21264Cycles(OpClass::IntAlu), 1);
    EXPECT_EQ(alpha21264Cycles(OpClass::IntMult), 7);
    EXPECT_EQ(alpha21264Cycles(OpClass::FpAdd), 4);
    EXPECT_EQ(alpha21264Cycles(OpClass::FpMult), 4);
    EXPECT_EQ(alpha21264Cycles(OpClass::FpDiv), 12);
    EXPECT_EQ(alpha21264Cycles(OpClass::FpSqrt), 18);
}

TEST(Latencies, Fo4IsCyclesTimesAlphaPeriod)
{
    EXPECT_DOUBLE_EQ(latencyFo4(OpClass::IntAlu), 17.4);
    EXPECT_DOUBLE_EQ(latencyFo4(OpClass::FpDiv), 12 * 17.4);
}

// Parameterized check of every functional-unit row of Table 3 against
// the paper's published cycle counts.
struct TableRow
{
    OpClass cls;
    int cycles[15]; // t_useful = 2..16
};

class Table3Fus : public ::testing::TestWithParam<TableRow>
{
};

TEST_P(Table3Fus, MatchesPaper)
{
    const TableRow &row = GetParam();
    for (int t = 2; t <= 16; ++t) {
        ClockModel clock;
        clock.tUsefulFo4 = t;
        EXPECT_EQ(executeCycles(row.cls, clock), row.cycles[t - 2])
            << opClassName(row.cls) << " at t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table3Fus,
    ::testing::Values(
        TableRow{OpClass::IntAlu,
                 {9, 6, 5, 4, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2}},
        TableRow{OpClass::IntMult,
                 {61, 41, 31, 25, 21, 18, 16, 14, 13, 12, 11, 10, 9, 9, 8}},
        TableRow{OpClass::FpAdd,
                 {35, 24, 18, 14, 12, 10, 9, 8, 7, 7, 6, 6, 5, 5, 5}},
        TableRow{OpClass::FpMult,
                 {35, 24, 18, 14, 12, 10, 9, 8, 7, 7, 6, 6, 5, 5, 5}},
        TableRow{OpClass::FpDiv,
                 {105, 70, 53, 42, 35, 30, 27, 24, 21, 19, 18, 17, 15, 14,
                  14}},
        TableRow{OpClass::FpSqrt,
                 {157, 105, 79, 63, 53, 45, 40, 35, 32, 29, 27, 25, 23, 21,
                  20}}));
