/**
 * @file
 * Unit tests for the circular buffer and saturating counters.
 */

#include <gtest/gtest.h>

#include "util/circular_buffer.hh"
#include "util/sat_counter.hh"

using fo4::util::CircularBuffer;
using fo4::util::SatCounter;

TEST(CircularBuffer, StartsEmpty)
{
    CircularBuffer<int> buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.free(), 4u);
}

TEST(CircularBuffer, FifoOrder)
{
    CircularBuffer<int> buf(3);
    buf.pushBack(1);
    buf.pushBack(2);
    buf.pushBack(3);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.front(), 1);
    buf.popFront();
    EXPECT_EQ(buf.front(), 2);
    buf.popFront();
    EXPECT_EQ(buf.front(), 3);
}

TEST(CircularBuffer, WrapsAround)
{
    CircularBuffer<int> buf(2);
    for (int i = 0; i < 100; ++i) {
        buf.pushBack(i);
        EXPECT_EQ(buf.front(), i);
        buf.popFront();
    }
    EXPECT_TRUE(buf.empty());
}

TEST(CircularBuffer, IndexedAccess)
{
    CircularBuffer<int> buf(4);
    buf.pushBack(10);
    buf.pushBack(20);
    buf.popFront();
    buf.pushBack(30);
    buf.pushBack(40);
    // Contents are now 20, 30, 40 with head wrapped.
    EXPECT_EQ(buf.at(0), 20);
    EXPECT_EQ(buf.at(1), 30);
    EXPECT_EQ(buf.at(2), 40);
}

TEST(CircularBuffer, ClearResets)
{
    CircularBuffer<int> buf(2);
    buf.pushBack(5);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    buf.pushBack(7);
    EXPECT_EQ(buf.front(), 7);
}

TEST(CircularBuffer, PushOnFullPanics)
{
    CircularBuffer<int> buf(1);
    buf.pushBack(1);
    EXPECT_DEATH(buf.pushBack(2), "full");
}

TEST(CircularBuffer, PopOnEmptyPanics)
{
    CircularBuffer<int> buf(1);
    EXPECT_DEATH(buf.popFront(), "empty");
}

TEST(SatCounter, StartsWeaklyTaken)
{
    SatCounter<2> c;
    EXPECT_EQ(c.value(), 2u);
    EXPECT_TRUE(c.predictTaken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, HysteresisNeedsTwoSteps)
{
    SatCounter<2> c(3); // strongly taken
    c.train(false);
    EXPECT_TRUE(c.predictTaken()); // still weakly taken
    c.train(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, OneBitFlipsImmediately)
{
    SatCounter<1> c(1);
    EXPECT_TRUE(c.predictTaken());
    c.train(false);
    EXPECT_FALSE(c.predictTaken());
    c.train(true);
    EXPECT_TRUE(c.predictTaken());
}

TEST(SatCounter, ThreeBitThreshold)
{
    SatCounter<3> c(3);
    EXPECT_FALSE(c.predictTaken()); // 3 < 4
    c.increment();
    EXPECT_TRUE(c.predictTaken()); // 4 >= 4
}
