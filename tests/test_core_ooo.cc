/**
 * @file
 * Integration tests for the out-of-order core using hand-built traces
 * with known timing behaviour.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"
#include "trace/trace.hh"

using namespace fo4::core;
using fo4::isa::MicroOp;
using fo4::isa::OpClass;
using fo4::trace::VectorTrace;

namespace
{

MicroOp
alu(std::int16_t dst, std::int16_t src1 = fo4::isa::noReg,
    std::int16_t src2 = fo4::isa::noReg)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.dst = dst;
    op.src1 = src1;
    op.src2 = src2;
    return op;
}

MicroOp
mult(std::int16_t dst, std::int16_t src1)
{
    MicroOp op;
    op.cls = OpClass::IntMult;
    op.dst = dst;
    op.src1 = src1;
    return op;
}

MicroOp
load(std::int16_t dst, std::uint64_t addr)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.dst = dst;
    op.src1 = 1;
    op.addr = addr;
    return op;
}

/** Independent ALU ops on distinct rotating registers. */
std::vector<MicroOp>
independentAlus(int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(alu(static_cast<std::int16_t>(i % 32)));
    return ops;
}

/** A serial chain: each op reads the previous op's destination. */
std::vector<MicroOp>
serialChain(int n, OpClass cls = OpClass::IntAlu)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i) {
        MicroOp op;
        op.cls = cls;
        op.dst = static_cast<std::int16_t>((i + 1) % 32);
        op.src1 = static_cast<std::int16_t>(i % 32);
        ops.push_back(op);
    }
    return ops;
}

double
ipcOf(const CoreParams &params, std::vector<MicroOp> ops,
      std::uint64_t n = 20000, const char *pred = "perfect")
{
    VectorTrace trace(std::move(ops));
    auto core = makeOooCore(params, pred);
    return core->run(trace, n).ipc();
}

} // namespace

TEST(OooCore, IndependentOpsReachFullWidth)
{
    const auto p = CoreParams::alpha21264();
    EXPECT_NEAR(ipcOf(p, independentAlus(64)), 4.0, 0.05);
}

TEST(OooCore, SerialAluChainIsBackToBack)
{
    // 1-cycle ALU with a 1-cycle wakeup loop: one op per cycle.
    const auto p = CoreParams::alpha21264();
    EXPECT_NEAR(ipcOf(p, serialChain(64)), 1.0, 0.02);
}

TEST(OooCore, SerialMultiplyChainPacedByLatency)
{
    // 7-cycle multiplies in a chain: one op per 7 cycles.
    const auto p = CoreParams::alpha21264();
    EXPECT_NEAR(ipcOf(p, serialChain(64, OpClass::IntMult), 5000),
                1.0 / 7.0, 0.005);
}

TEST(OooCore, WakeupLoopBreaksBackToBack)
{
    // A 2-cycle issue window spaces dependent 1-cycle ops 2 cycles apart
    // (paper Section 4.6: the issue-wakeup critical loop).
    auto p = CoreParams::alpha21264();
    p.issueLatency = 2;
    EXPECT_NEAR(ipcOf(p, serialChain(64)), 0.5, 0.01);
}

TEST(OooCore, WakeupLoopHidesUnderLongLatency)
{
    // The same 2-cycle loop is invisible under 7-cycle multiplies: tags
    // ripple while the producer executes.
    auto p = CoreParams::alpha21264();
    p.issueLatency = 2;
    EXPECT_NEAR(ipcOf(p, serialChain(64, OpClass::IntMult), 5000),
                1.0 / 7.0, 0.005);
}

TEST(OooCore, ExtraWakeupExtension)
{
    // Figure 8's loop extension: +3 cycles on the wakeup loop paces a
    // 1-cycle chain at one op per 4 cycles.
    auto p = CoreParams::alpha21264();
    p.extraWakeup = 3;
    EXPECT_NEAR(ipcOf(p, serialChain(64), 5000), 0.25, 0.01);
}

namespace
{

/** A true load-use chain: each load's address comes from the previous
 *  ALU result, and each ALU consumes the preceding load.  The register
 *  rotation closes the chain across the trace's wrap-around, so the
 *  dependence ring never breaks. */
std::vector<MicroOp>
loadUseChain(int pairs)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < pairs; ++i) {
        const auto lreg = static_cast<std::int16_t>(2 + (2 * i) % 30);
        const auto areg = static_cast<std::int16_t>(2 + (2 * i + 1) % 30);
        MicroOp ld = load(lreg, 0x100);
        ld.src1 = static_cast<std::int16_t>(2 + (2 * i - 1 + 30) % 30);
        ops.push_back(ld);
        ops.push_back(alu(areg, lreg));
    }
    return ops;
}

} // namespace

TEST(OooCore, LoadUseChainPacedByCacheLatency)
{
    // load -> alu -> load -> alu ... with 3-cycle DL1 hits: each pair
    // takes 3 + 1 cycles.
    const auto p = CoreParams::alpha21264();
    EXPECT_NEAR(ipcOf(p, loadUseChain(30), 10000), 2.0 / 4.0, 0.02);
}

TEST(OooCore, ExtraLoadUseExtension)
{
    auto p = CoreParams::alpha21264();
    p.extraLoadUse = 2;
    EXPECT_NEAR(ipcOf(p, loadUseChain(30), 10000), 2.0 / 6.0, 0.02);
}

TEST(OooCore, MemIssueWidthCapsLoads)
{
    // Independent loads (no address register, distinct destination
    // registers): limited to memIssueWidth per cycle.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 64; ++i) {
        MicroOp ld = load(static_cast<std::int16_t>(i % 32),
                          0x100 + 64 * (i % 4));
        ld.src1 = fo4::isa::noReg;
        ops.push_back(ld);
    }
    auto p = CoreParams::alpha21264();
    p.memIssueWidth = 2;
    EXPECT_NEAR(ipcOf(p, ops, 20000), 2.0, 0.05);
}

TEST(OooCore, OutOfOrderPassesStalledHead)
{
    // A multiply chain plus independent ALUs: the OoO core sustains the
    // ALU stream while multiplies crawl.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i) {
        ops.push_back(mult(0, 0));
        ops.push_back(alu(static_cast<std::int16_t>(1 + i % 16)));
        ops.push_back(alu(static_cast<std::int16_t>(17 + i % 15)));
    }
    const auto p = CoreParams::alpha21264();
    // Chain alone would give 1/7; with two independent ops per multiply
    // the core approaches 3 ops per 7 cycles.
    EXPECT_GT(ipcOf(p, ops, 10000), 0.40);
}

TEST(OooCore, MispredictsCostCycles)
{
    // All branches taken, "taken" predictor correct vs a never-taken
    // stream mispredicted by it: the latter must be much slower.
    auto mkops = [](bool taken) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 16; ++i) {
            ops.push_back(alu(static_cast<std::int16_t>(i % 32)));
            MicroOp br;
            br.cls = OpClass::Branch;
            br.pc = 0x1000 + i * 8;
            br.src1 = static_cast<std::int16_t>(i % 32);
            br.taken = taken;
            br.addr = 0x2000;
            ops.push_back(br);
        }
        return ops;
    };
    const auto p = CoreParams::alpha21264();
    const double good = ipcOf(p, mkops(true), 10000, "taken");
    const double bad = ipcOf(p, mkops(false), 10000, "taken");
    EXPECT_GT(good, 2.0 * bad);
}

TEST(OooCore, ExtraMispredictPenaltySlowsMispredictedStream)
{
    auto mkops = [] {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 16; ++i) {
            ops.push_back(alu(static_cast<std::int16_t>(i % 32)));
            MicroOp br;
            br.cls = OpClass::Branch;
            br.pc = 0x1000 + i * 8;
            br.taken = false;
            ops.push_back(br);
        }
        return ops;
    };
    auto p = CoreParams::alpha21264();
    const double base = ipcOf(p, mkops(), 10000, "taken");
    p.extraMispredictPenalty = 10;
    const double extended = ipcOf(p, mkops(), 10000, "taken");
    EXPECT_LT(extended, base);
}

TEST(OooCore, DeterministicAcrossRuns)
{
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    const auto p = CoreParams::alpha21264();
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto core = makeOooCore(p, "tournament");
    const auto r1 = core->run(gen, 20000, 2000, 50000);
    const auto r2 = core->run(gen, 20000, 2000, 50000);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.mispredicts, r2.mispredicts);
    EXPECT_EQ(r1.dl1Misses, r2.dl1Misses);
}

TEST(OooCore, PrewarmReducesColdMisses)
{
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    const auto p = CoreParams::alpha21264();
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto core = makeOooCore(p, "tournament");
    const auto cold = core->run(gen, 20000, 0, 0);
    const auto warm = core->run(gen, 20000, 0, 300000);
    EXPECT_LT(warm.dl1Misses, cold.dl1Misses);
    EXPECT_GE(warm.ipc(), cold.ipc());
}

TEST(OooCore, SegmentedWindowNeverFasterThanMonolithic)
{
    const auto prof = fo4::trace::spec2000Profile("176.gcc");
    auto p = CoreParams::alpha21264();
    double prev = 1e9;
    for (int stages : {1, 4, 10}) {
        p.window.wakeupStages = stages;
        fo4::trace::SyntheticTraceGenerator gen(prof);
        auto core = makeOooCore(p, "tournament");
        const double ipc = core->run(gen, 30000, 3000, 200000).ipc();
        EXPECT_LE(ipc, prev + 1e-9) << stages << " stages";
        prev = ipc;
    }
}

TEST(OooCore, PartitionedSelectCostsLittle)
{
    const auto prof = fo4::trace::spec2000Profile("176.gcc");
    auto p = CoreParams::alpha21264();
    p.window.wakeupStages = 4;
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto full = makeOooCore(p, "tournament");
    const double fullIpc = full->run(gen, 30000, 3000, 200000).ipc();

    p.window.select = SelectModel::Partitioned;
    auto part = makeOooCore(p, "tournament");
    const double partIpc = part->run(gen, 30000, 3000, 200000).ipc();

    EXPECT_LE(partIpc, fullIpc + 1e-9);
    EXPECT_GT(partIpc, 0.85 * fullIpc); // paper: about 4% loss
}

TEST(OooCore, CountsEventClasses)
{
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto core = makeOooCore(CoreParams::alpha21264(), "tournament");
    const auto r = core->run(gen, 20000);
    EXPECT_GT(r.branches, 1000u);
    EXPECT_GT(r.loads, 2000u);
    EXPECT_GT(r.stores, 1000u);
    EXPECT_GT(r.mispredicts, 0u);
    EXPECT_LT(r.mispredictRate(), 0.5);
}

TEST(OooCore, WarmupSubtractionKeepsRates)
{
    const auto prof = fo4::trace::spec2000Profile("164.gzip");
    fo4::trace::SyntheticTraceGenerator gen(prof);
    auto core = makeOooCore(CoreParams::alpha21264(), "tournament");
    const auto r = core->run(gen, 20000, 5000, 100000);
    EXPECT_EQ(r.instructions, 20000u);
    EXPECT_GT(r.cycles, 0u);
    // Rates must be sane after subtraction.
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LT(r.mispredictRate(), 0.5);
}
