/**
 * @file
 * Tests of the process-variation Monte Carlo subsystem (DESIGN.md §17):
 * the statistical identity contract (zero-sigma MC *is* the
 * deterministic sweep, byte for byte; nonzero-sigma runs are
 * byte-identical at any thread count and across kill/resume), the
 * sampling model's invariants (pure-function draws, lognormal
 * positivity, typed rejection of absurd sigmas), and the paper-level
 * property the subsystem exists to compute: variation pushes the
 * yield-weighted optimum toward shallower pipelines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "study/checkpoint.hh"
#include "study/montecarlo.hh"
#include "study/parallel.hh"
#include "study/runner.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"
#include "util/status.hh"

using namespace fo4;

namespace
{

/** Pinned seed-0 aggregate band (see GoldenPinSeedZeroAggregates). */
constexpr const char *kGoldenSeedZero =
    "mean=0x1.1b11a3090f24p+1 sd=0x1.2a27031fb4d98p-6 "
    "p5=0x1.17cbd0894f329p+1 p95=0x1.1d4771f8b0432p+1 yield=0x1p+0";

std::string
tempPath(const std::string &name)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/" + name;
    std::remove(path.c_str());
    return path;
}

study::RunSpec
smallSpec()
{
    study::RunSpec spec;
    spec.instructions = 2000;
    spec.warmup = 250;
    spec.prewarm = 20000;
    spec.cycleLimit = 1000000; // fail fast instead of hanging ctest
    return spec;
}

std::vector<study::BenchJob>
twoJobs()
{
    return {study::BenchJob::fromProfile(
                trace::spec2000Profile("164.gzip")),
            study::BenchJob::fromProfile(
                trace::spec2000Profile("181.mcf"))};
}

study::VariationModel
someVariation(int samples = 3)
{
    study::VariationModel v;
    v.sigmaLatch = 0.08;
    v.sigmaSkew = 0.02;
    v.sigmaJitter = 0.03;
    v.sigmaDie = 0.05;
    v.seed = 42;
    v.samples = samples;
    return v;
}

/** Canonical byte rendering of a whole MC result: every die's clock and
 *  suite, every aggregate band, doubles in hexfloat.  Two results are
 *  bit-identical iff these strings compare equal. */
std::string
serializeMc(const study::McSweepResult &r)
{
    std::string out;
    for (const auto &die : r.samples) {
        for (const auto &pt : die) {
            out += util::strprintf(
                "die t=%a latch=%a skew=%a jitter=%a\n", pt.tUseful,
                pt.clock.overhead.latchFo4, pt.clock.overhead.skewFo4,
                pt.clock.overhead.jitterFo4);
            out += study::serializeSuite(pt.suite);
        }
    }
    for (const auto &pt : r.points) {
        out += util::strprintf(
            "agg t=%a stages=%d mean=%a sd=%a p5=%a p95=%a yield=%a\n",
            pt.tUseful, pt.stages, pt.all.meanBips, pt.all.stddevBips,
            pt.all.p5Bips, pt.all.p95Bips, pt.yield);
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// The sampling model
// ---------------------------------------------------------------------

TEST(McSampling, DeeperPipelinesHaveMoreStages)
{
    const int deep = study::pipelineStageCount(study::scaledCoreParams(2));
    const int mid = study::pipelineStageCount(study::scaledCoreParams(6));
    const int shallow =
        study::pipelineStageCount(study::scaledCoreParams(16));
    EXPECT_GT(deep, mid);
    EXPECT_GT(mid, shallow);
    EXPECT_GE(shallow, 7); // seven pipeline segments, one cycle minimum
}

TEST(McSampling, OverheadIsAPureFunctionOfCoordinates)
{
    const auto v = someVariation();
    const auto nominal = tech::OverheadModel::paperDefault();
    const auto a = study::sampleOverhead(v, nominal, 12, 3, 1);
    const auto b = study::sampleOverhead(v, nominal, 12, 3, 1);
    EXPECT_EQ(a.latchFo4, b.latchFo4);
    EXPECT_EQ(a.skewFo4, b.skewFo4);
    EXPECT_EQ(a.jitterFo4, b.jitterFo4);

    // Different point or sample coordinates draw different dice.
    const auto otherPoint = study::sampleOverhead(v, nominal, 12, 4, 1);
    const auto otherDie = study::sampleOverhead(v, nominal, 12, 3, 2);
    EXPECT_NE(a.totalFo4(), otherPoint.totalFo4());
    EXPECT_NE(a.totalFo4(), otherDie.totalFo4());
}

TEST(McSampling, ZeroSigmaReturnsNominalBitExact)
{
    study::VariationModel v;
    v.samples = 8;
    v.seed = 99; // seed is irrelevant at sigma zero
    const auto nominal = tech::OverheadModel::paperDefault();
    for (std::size_t p = 0; p < 4; ++p) {
        for (std::size_t s = 0; s < 4; ++s) {
            const auto m = study::sampleOverhead(v, nominal, 20, p, s);
            EXPECT_EQ(m.latchFo4, nominal.latchFo4);
            EXPECT_EQ(m.skewFo4, nominal.skewFo4);
            EXPECT_EQ(m.jitterFo4, nominal.jitterFo4);
        }
    }
}

TEST(McSampling, WorstStageGrowsWithStageCount)
{
    // More stages, more draws under the max: the expected worst-stage
    // overhead must not shrink as the pipeline deepens.  Averaged over
    // dice to wash out per-die noise.
    const auto v = someVariation(64);
    const auto nominal = tech::OverheadModel::paperDefault();
    double few = 0.0, many = 0.0;
    for (std::size_t s = 0; s < 64; ++s) {
        few += study::sampleOverhead(v, nominal, 8, 0, s).totalFo4();
        many += study::sampleOverhead(v, nominal, 40, 0, s).totalFo4();
    }
    EXPECT_GT(many / 64.0, few / 64.0);
}

TEST(McSampling, LognormalDrawsStayPositive)
{
    study::VariationModel v;
    v.dist = study::McDist::Lognormal;
    v.sigmaLatch = 1.5; // wild, but lognormal cannot go negative
    v.sigmaSkew = 1.5;
    v.sigmaJitter = 1.5;
    v.sigmaDie = 1.0;
    v.seed = 7;
    v.samples = 50;
    const auto nominal = tech::OverheadModel::paperDefault();
    for (std::size_t s = 0; s < 50; ++s) {
        const auto m = study::sampleOverhead(v, nominal, 25, 0, s);
        EXPECT_GT(m.latchFo4, 0.0);
        EXPECT_GT(m.skewFo4, 0.0);
        EXPECT_GT(m.jitterFo4, 0.0);
    }
}

TEST(McSampling, AbsurdNormalSigmaIsATypedError)
{
    // A normal sigma that makes negative overheads routine exhausts the
    // deterministic rejection budget and is refused with ConfigError —
    // never silently clamped.
    study::VariationModel v;
    v.sigmaLatch = 100.0;
    v.seed = 5;
    v.samples = 1;
    const auto nominal = tech::OverheadModel::paperDefault();
    EXPECT_THROW(study::sampleOverhead(v, nominal, 20, 0, 0),
                 util::ConfigError);
}

TEST(McSampling, ValidateReportsEveryBadFieldAtOnce)
{
    study::VariationModel v;
    v.sigmaLatch = -1.0;
    v.sigmaDie = -0.5;
    v.samples = 0;
    const util::Status st = v.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("mc_sigma_latch"), std::string::npos);
    EXPECT_NE(st.message().find("mc_sigma_die"), std::string::npos);
    EXPECT_NE(st.message().find("mc_samples"), std::string::npos);
}

TEST(McSampling, ExpandedGridIsSampleMajor)
{
    std::vector<study::GridPoint> base;
    for (const double u : {8.0, 6.0}) {
        base.push_back({study::scaledCoreParams(u),
                        study::scaledClock(u)});
    }
    const auto expanded =
        study::expandMonteCarloGrid(base, someVariation(3));
    ASSERT_EQ(expanded.size(), 6u);
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(expanded[s * 2 + 0].clock.tUsefulFo4, 8.0);
        EXPECT_EQ(expanded[s * 2 + 1].clock.tUsefulFo4, 6.0);
        // Core parameters are untouched — only the clock varies.
        EXPECT_EQ(expanded[s * 2 + 0].params.fetchStages,
                  base[0].params.fetchStages);
    }
    // Dice differ across samples at the same base point.
    EXPECT_NE(expanded[0].clock.overhead.totalFo4(),
              expanded[2].clock.overhead.totalFo4());
}

TEST(McSampling, ZeroSigmaSingleSampleExpansionIsTheBaseGrid)
{
    std::vector<study::GridPoint> base;
    for (const double u : {8.0, 6.0}) {
        base.push_back({study::scaledCoreParams(u),
                        study::scaledClock(u)});
    }
    study::VariationModel v; // all sigmas zero, samples = 1
    const auto expanded = study::expandMonteCarloGrid(base, v);
    ASSERT_EQ(expanded.size(), base.size());
    // Identical inputs fingerprint identically: a zero-sigma MC journal
    // is resumable as (and by) the deterministic sweep.
    const auto jobs = twoJobs();
    const auto spec = smallSpec();
    EXPECT_EQ(study::gridFingerprint(base, jobs, spec),
              study::gridFingerprint(expanded, jobs, spec));
}

// ---------------------------------------------------------------------
// The runner: statistical identity contract
// ---------------------------------------------------------------------

TEST(McRunner, ZeroSigmaReproducesTheDeterministicSweepBitExact)
{
    const std::vector<double> ts = {8.0, 6.0};
    const auto jobs = twoJobs();
    const auto spec = smallSpec();

    const auto det =
        study::sweepScaling(ts, study::SweepOptions{}, jobs, spec);

    study::McOptions mopts;
    mopts.variation.samples = 2; // several dice, all identical
    study::MonteCarloRunner runner(mopts);
    const auto mc = runner.run(ts, jobs, spec);

    ASSERT_EQ(mc.samples.size(), 2u);
    for (const auto &die : mc.samples) {
        ASSERT_EQ(die.size(), det.size());
        for (std::size_t p = 0; p < det.size(); ++p) {
            EXPECT_EQ(die[p].clock.periodFo4(), det[p].clock.periodFo4());
            EXPECT_EQ(study::serializeSuite(die[p].suite),
                      study::serializeSuite(det[p].suite));
        }
    }
    // The aggregates collapse onto the deterministic curve bit-exactly:
    // Welford over identical values is exact, P2 markers never move.
    ASSERT_EQ(mc.points.size(), det.size());
    for (std::size_t p = 0; p < det.size(); ++p) {
        const double bips = det[p].suite.harmonicBipsAll();
        EXPECT_EQ(mc.points[p].all.meanBips, bips);
        EXPECT_EQ(mc.points[p].all.stddevBips, 0.0);
        EXPECT_EQ(mc.points[p].all.p5Bips, bips);
        EXPECT_EQ(mc.points[p].all.p95Bips, bips);
        EXPECT_EQ(mc.points[p].yield, 1.0);
        EXPECT_EQ(mc.points[p].integer.meanBips,
                  det[p].suite.harmonicBips(trace::BenchClass::Integer));
    }
}

TEST(McRunner, ByteIdenticalAtAnyThreadCount)
{
    const std::vector<double> ts = {8.0, 6.0};
    const auto jobs = twoJobs();
    const auto spec = smallSpec();

    std::string first;
    for (const int threads : {1, 2, 8}) {
        study::McOptions mopts;
        mopts.variation = someVariation(3);
        mopts.threads = threads;
        study::MonteCarloRunner runner(mopts);
        const std::string bytes = serializeMc(runner.run(ts, jobs, spec));
        if (first.empty())
            first = bytes;
        else
            EXPECT_EQ(first, bytes) << "jobs=" << threads;
    }
}

TEST(McRunner, KillAndResumeReplayIsByteIdentical)
{
    const std::vector<double> ts = {8.0, 6.0};
    const auto jobs = twoJobs();
    const auto spec = smallSpec();

    // The uninterrupted reference.
    study::McOptions ref;
    ref.variation = someVariation(3);
    study::MonteCarloRunner refRunner(ref);
    const std::string expected =
        serializeMc(refRunner.run(ts, jobs, spec));

    // Same run, cancelled as its fourth cell begins.
    const std::string journal = tempPath("mc_resume.journal");
    util::CancelToken cancel;
    int started = 0;
    study::McOptions interrupted;
    interrupted.variation = someVariation(3);
    interrupted.journalPath = journal;
    interrupted.cancel = &cancel;
    interrupted.onAttempt = [&](std::size_t, std::size_t, int) {
        if (++started == 4)
            cancel.requestCancel();
    };
    study::MonteCarloRunner killed(interrupted);
    EXPECT_THROW(killed.run(ts, jobs, spec), util::CancelledError);

    // Resume from the journal; the replayed cells plus the freshly
    // simulated remainder must be byte-identical to the reference.
    study::McOptions resumed;
    resumed.variation = someVariation(3);
    resumed.journalPath = journal;
    study::MonteCarloRunner resumer(resumed);
    const auto result = resumer.run(ts, jobs, spec);
    EXPECT_TRUE(resumer.report().resumed);
    EXPECT_GT(resumer.report().replayedCells, 0u);
    EXPECT_EQ(expected, serializeMc(result));
    std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// The result the subsystem exists to compute
// ---------------------------------------------------------------------

TEST(McRunner, VariationPushesTheOptimumNoDeeper)
{
    // Fig 5's deterministic optimum against the yield-weighted one:
    // with per-stage variation, deeper pipelines clock at the worst of
    // more draws, so the optimum may only move to shallower (>= FO4)
    // pipelines, never deeper.  Deterministic at this seed.
    const std::vector<double> ts = {4.0, 6.0, 8.0};
    const std::vector<study::BenchJob> jobs = {
        study::BenchJob::fromProfile(trace::spec2000Profile("164.gzip"))};
    const auto spec = smallSpec();

    study::McOptions zero;
    zero.variation.samples = 1; // sigma 0: the deterministic curve
    study::MonteCarloRunner zeroRunner(zero);
    const double detOpt =
        zeroRunner.run(ts, jobs, spec).optimumTUseful();

    study::McOptions noisy;
    noisy.variation = someVariation(12);
    noisy.variation.sigmaLatch = 0.30;
    noisy.variation.sigmaDie = 0.20;
    study::MonteCarloRunner noisyRunner(noisy);
    const double mcOpt =
        noisyRunner.run(ts, jobs, spec).optimumTUseful();

    EXPECT_GE(mcOpt, detOpt);
}

TEST(McRunner, GoldenPinSeedZeroAggregates)
{
    // Golden pin of the seed-0 yield-weighted aggregate at one grid
    // cell.  Guards the whole statistical stack at once: RandomStream
    // mixing, Irwin-Hall normals, worst-stage sampling, Welford and P2
    // aggregation.  A change here is a deliberate identity break: bump
    // DESIGN.md §17 and regenerate every MC golden together.
    const std::vector<double> ts = {6.0};
    const std::vector<study::BenchJob> jobs = {
        study::BenchJob::fromProfile(trace::spec2000Profile("164.gzip"))};
    const auto spec = smallSpec();

    study::McOptions mopts;
    mopts.variation = someVariation(4);
    mopts.variation.seed = 0;
    study::MonteCarloRunner runner(mopts);
    const auto result = runner.run(ts, jobs, spec);
    ASSERT_EQ(result.points.size(), 1u);
    const auto &pt = result.points[0];
    const std::string got = util::strprintf(
        "mean=%a sd=%a p5=%a p95=%a yield=%a", pt.all.meanBips,
        pt.all.stddevBips, pt.all.p5Bips, pt.all.p95Bips, pt.yield);
    EXPECT_EQ(got, std::string(kGoldenSeedZero));
}
