/**
 * @file
 * Unit tests for the streaming statistics in util/means.hh: Welford
 * moments (exact against a two-pass reference) and the P² streaming
 * quantile (exact for small n, close to the exact sample quantile for
 * large n).  These aggregates sit behind the Monte Carlo confidence
 * bands, so their determinism — same insertion order, same bits — is
 * part of the statistical identity contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/means.hh"
#include "util/random.hh"

using fo4::util::P2Quantile;
using fo4::util::RandomStream;
using fo4::util::StreamingMoments;

namespace
{

/** Two-pass reference mean/variance (n-1 denominator). */
std::pair<double, double>
twoPass(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    const double mean = sum / static_cast<double>(xs.size());
    double m2 = 0.0;
    for (const double x : xs)
        m2 += (x - mean) * (x - mean);
    const double var =
        xs.size() < 2 ? 0.0 : m2 / static_cast<double>(xs.size() - 1);
    return {mean, var};
}

std::vector<double>
randomData(std::uint64_t seed, int n, double mean, double sigma)
{
    const RandomStream s = RandomStream::root(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (int i = 0; i < n; ++i)
        xs.push_back(s.normal(static_cast<std::uint64_t>(i), mean, sigma));
    return xs;
}

/** Exact sample quantile, nearest-rank on the sorted data. */
double
exactQuantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    const auto n = xs.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return xs[rank - 1];
}

} // namespace

TEST(StreamingMoments, EmptyAndSingle)
{
    StreamingMoments m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.variance(), 0.0);
    m.add(3.25);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.mean(), 3.25);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.min(), 3.25);
    EXPECT_EQ(m.max(), 3.25);
}

TEST(StreamingMoments, MatchesTwoPassOnRandomData)
{
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto xs = randomData(seed, 5000, 2.5, 0.7);
        StreamingMoments m;
        for (const double x : xs)
            m.add(x);
        const auto [mean, var] = twoPass(xs);
        EXPECT_EQ(m.count(), xs.size());
        EXPECT_NEAR(m.mean(), mean, 1e-12);
        EXPECT_NEAR(m.variance(), var, 1e-12);
        EXPECT_NEAR(m.stddev(), std::sqrt(var), 1e-12);
        EXPECT_EQ(m.min(), *std::min_element(xs.begin(), xs.end()));
        EXPECT_EQ(m.max(), *std::max_element(xs.begin(), xs.end()));
    }
}

TEST(StreamingMoments, IdenticalValuesAreBitExact)
{
    // Feeding n copies of x must return exactly x with exactly zero
    // variance — Welford's delta goes to 0.0, no drift.  This is what
    // lets a zero-sigma Monte Carlo mean reproduce the deterministic
    // BIPS value byte-for-byte.
    const double x = 0x1.23456789abcdep+1;
    StreamingMoments m;
    for (int i = 0; i < 1000; ++i)
        m.add(x);
    EXPECT_EQ(m.mean(), x);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.stddev(), 0.0);
}

TEST(StreamingMoments, DeterministicGivenOrder)
{
    const auto xs = randomData(9, 1000, 0.0, 1.0);
    StreamingMoments a, b;
    for (const double x : xs) {
        a.add(x);
        b.add(x);
    }
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
}

TEST(P2Quantile, ExactForFirstFiveObservations)
{
    // Below 5 observations P² stores the data, so the estimate is the
    // exact nearest-rank quantile.
    P2Quantile median(0.5);
    median.add(5.0);
    EXPECT_EQ(median.value(), 5.0);
    median.add(1.0);
    median.add(9.0);
    EXPECT_EQ(median.count(), 3u);
    EXPECT_EQ(median.value(),
              exactQuantile({5.0, 1.0, 9.0}, 0.5));
    median.add(7.0);
    median.add(3.0);
    EXPECT_EQ(median.value(),
              exactQuantile({5.0, 1.0, 9.0, 7.0, 3.0}, 0.5));
}

TEST(P2Quantile, ConstantStreamIsExact)
{
    P2Quantile p95(0.95);
    for (int i = 0; i < 500; ++i)
        p95.add(4.25);
    EXPECT_EQ(p95.value(), 4.25);
}

TEST(P2Quantile, TracksExactQuantileOnRandomData)
{
    for (const double q : {0.05, 0.5, 0.95}) {
        const auto xs = randomData(77, 20000, 10.0, 2.0);
        P2Quantile est(q);
        for (const double x : xs)
            est.add(x);
        const double exact = exactQuantile(xs, q);
        // P² is an approximation; on 20k smooth normal samples the
        // median lands very close, and the tail markers — which see far
        // fewer relevant observations — within ~0.15 of a standard
        // deviation (sigma is 2.0 here).
        const double tol = q == 0.5 ? 0.1 : 0.3;
        EXPECT_NEAR(est.value(), exact, tol)
            << "quantile " << q;
        EXPECT_EQ(est.count(), xs.size());
    }
}

TEST(P2Quantile, DeterministicGivenOrder)
{
    const auto xs = randomData(13, 5000, 0.0, 1.0);
    P2Quantile a(0.9), b(0.9);
    for (const double x : xs) {
        a.add(x);
        b.add(x);
    }
    EXPECT_EQ(a.value(), b.value());
}

TEST(P2Quantile, MonotoneAcrossQuantiles)
{
    const auto xs = randomData(21, 10000, 0.0, 1.0);
    P2Quantile p5(0.05), p50(0.5), p95(0.95);
    for (const double x : xs) {
        p5.add(x);
        p50.add(x);
        p95.add(x);
    }
    EXPECT_LT(p5.value(), p50.value());
    EXPECT_LT(p50.value(), p95.value());
}
