/**
 * @file
 * One-pass batched sweep execution.  A scaling sweep is a (clock-period
 * x benchmark) grid; the reference engine walks it point-major, so each
 * benchmark's instruction stream is regenerated and its caches re-warmed
 * once per clock period.  BatchRunner walks the transpose: all cells of
 * one benchmark *column* run consecutively against the batched cores
 * (study::SimImpl::Batched), so the column's stream is decoded once into
 * the process-wide trace::DecodedTraceRegistry and its prewarm state is
 * computed once in core::WarmStartCache — every later cell replays and
 * copies instead of regenerating.
 *
 * Byte-identity contract (DESIGN.md §14, pinned by test_parallel_runner
 * and test_core_differential): every cell still runs through
 * study::runJobIsolated into its own preallocated result slot, so
 * BatchRunner's merged results are serializeSuite-equal to
 * ParallelRunner's and to the serial runSuite's, at every thread count,
 * on every input — including failed rows and their typed errors.
 */

#ifndef FO4_STUDY_BATCH_HH
#define FO4_STUDY_BATCH_HH

#include <vector>

#include "study/parallel.hh"
#include "study/runner.hh"

namespace fo4::study
{

/**
 * Fans sweep grids across a fixed number of threads, column-major, on
 * the batched core implementation.  `threads == 1` (the default) is
 * strictly serial; `threads <= 0` selects the hardware thread count.
 */
class BatchRunner
{
  public:
    explicit BatchRunner(int threads = 1);

    /** Actual parallelism this runner fans out to (>= 1). */
    int threads() const { return nThreads; }

    /**
     * Run the full (point x job) grid one benchmark column at a time;
     * the spec's impl is forced to SimImpl::Batched (that is the point
     * of this runner).  Same validation, same per-cell isolation and
     * the same merged results as ParallelRunner::runGrid.
     */
    std::vector<SuiteResult> runGrid(const std::vector<GridPoint> &points,
                                     const std::vector<BenchJob> &jobs,
                                     const RunSpec &spec,
                                     GridProfile *profile = nullptr) const;

    /** Batched drop-in for study::runSuite (a one-point grid). */
    SuiteResult runSuite(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const std::vector<BenchJob> &jobs,
                         const RunSpec &spec) const;

    /** Convenience overload: every profile becomes a plain job. */
    SuiteResult runSuite(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const std::vector<trace::BenchmarkProfile>
                             &profiles,
                         const RunSpec &spec) const;

  private:
    int nThreads;
};

/**
 * The paper's standard experiment on the one-pass engine: identical
 * points and results to study::sweepScaling, executed by BatchRunner.
 */
std::vector<SweepPointResult>
sweepScalingBatched(const std::vector<double> &tUseful,
                    const SweepOptions &options,
                    const std::vector<BenchJob> &jobs, const RunSpec &spec);

/** Convenience overload for profile lists. */
std::vector<SweepPointResult>
sweepScalingBatched(const std::vector<double> &tUseful,
                    const SweepOptions &options,
                    const std::vector<trace::BenchmarkProfile> &profiles,
                    const RunSpec &spec);

} // namespace fo4::study

#endif // FO4_STUDY_BATCH_HH
