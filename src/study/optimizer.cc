#include "study/optimizer.hh"

#include "study/parallel.hh"
#include "util/logging.hh"

namespace fo4::study
{

namespace
{

double
evaluate(double tUseful, const tech::ClockModel &clock,
         const ScalingOptions &options,
         const std::vector<trace::BenchmarkProfile> &profiles,
         const RunSpec &spec, const ParallelRunner &runner,
         SuiteResult &out)
{
    const core::CoreParams params = scaledCoreParams(tUseful, options);
    out = runner.runSuite(params, clock, profiles, spec);
    return out.harmonicBipsAll();
}

} // namespace

OptimizedConfig
optimizeStructures(double tUseful, const tech::ClockModel &clock,
                   const std::vector<trace::BenchmarkProfile> &profiles,
                   const RunSpec &spec, const OptimizerSearchSpace &space,
                   int threads)
{
    FO4_ASSERT(!space.dl1Bytes.empty() && !space.l2Bytes.empty() &&
                   !space.windowEntries.empty(),
               "empty search space");

    const ParallelRunner runner(threads);
    OptimizedConfig best;
    best.harmonicBipsAll = evaluate(tUseful, clock, best.options, profiles,
                                    spec, runner, best.result);

    // Greedy passes: DL1, then L2, then window.
    for (const std::uint64_t dl1 : space.dl1Bytes) {
        ScalingOptions candidate = best.options;
        candidate.dl1Bytes = dl1;
        SuiteResult result;
        const double bips =
            evaluate(tUseful, clock, candidate, profiles, spec, runner,
                     result);
        if (bips > best.harmonicBipsAll) {
            best.options = candidate;
            best.result = std::move(result);
            best.harmonicBipsAll = bips;
        }
    }
    for (const std::uint64_t l2 : space.l2Bytes) {
        ScalingOptions candidate = best.options;
        candidate.l2Bytes = l2;
        SuiteResult result;
        const double bips =
            evaluate(tUseful, clock, candidate, profiles, spec, runner,
                     result);
        if (bips > best.harmonicBipsAll) {
            best.options = candidate;
            best.result = std::move(result);
            best.harmonicBipsAll = bips;
        }
    }
    for (const int window : space.windowEntries) {
        ScalingOptions candidate = best.options;
        candidate.windowEntries = window;
        SuiteResult result;
        const double bips =
            evaluate(tUseful, clock, candidate, profiles, spec, runner,
                     result);
        if (bips > best.harmonicBipsAll) {
            best.options = candidate;
            best.result = std::move(result);
            best.harmonicBipsAll = bips;
        }
    }
    return best;
}

} // namespace fo4::study
