#include "study/batch.hh"

#include <chrono>
#include <mutex>

#include "util/metrics.hh"
#include "util/thread_pool.hh"

namespace fo4::study
{

namespace
{

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

std::vector<BenchJob>
jobsFromProfiles(const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<BenchJob> jobs;
    jobs.reserve(profiles.size());
    for (const auto &profile : profiles)
        jobs.push_back(BenchJob::fromProfile(profile));
    return jobs;
}

} // namespace

BatchRunner::BatchRunner(int threads)
    : nThreads(threads <= 0 ? util::ThreadPool::hardwareThreads() : threads)
{
}

std::vector<SuiteResult>
BatchRunner::runGrid(const std::vector<GridPoint> &points,
                     const std::vector<BenchJob> &jobs, const RunSpec &spec,
                     GridProfile *profile) const
{
    RunSpec batched = spec;
    batched.impl = SimImpl::Batched;

    // Fail fast on any misconfigured point before fanning anything out,
    // with the serial runner's exact validation and exception.
    for (const auto &point : points)
        validateSuiteInputs(point.params, point.clock, jobs, batched);

    const auto runStart = std::chrono::steady_clock::now();
    const cacti::LatencyCacheStats cache0 =
        cacti::LatencyCache::global().stats();
    std::mutex profileMutex;
    if (profile != nullptr) {
        *profile = GridProfile{};
        profile->cells.reserve(points.size() * jobs.size());
    }

    // Preallocate every result slot: each cell writes results[p][j] and
    // nothing else, so the merge order is the grid order no matter the
    // execution order — which here is the grid's *transpose*.  Walking
    // a benchmark's cells consecutively means the first one decodes the
    // stream and builds the prewarm state, and the rest reuse both.
    std::vector<SuiteResult> results(points.size());
    for (auto &suite : results)
        suite.benchmarks.resize(jobs.size());

    util::ThreadPool pool(nThreads);
    util::TaskGroup group(pool);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        for (std::size_t p = 0; p < points.size(); ++p) {
            group.submit([&, p, j] {
                const auto cellStart = std::chrono::steady_clock::now();
                results[p].benchmarks[j] = runJobIsolated(
                    points[p].params, points[p].clock, jobs[j], batched);
                static util::MetricCounter &cellsExecuted =
                    util::MetricsRegistry::global().counter(
                        "study.cells.executed");
                cellsExecuted.inc();
                if (profile != nullptr) {
                    std::lock_guard<std::mutex> lock(profileMutex);
                    profile->cells.push_back(
                        {p, j, elapsedMs(cellStart)});
                }
            });
        }
    }
    group.wait();

    if (profile != nullptr) {
        profile->wallMs = elapsedMs(runStart);
        const cacti::LatencyCacheStats cache1 =
            cacti::LatencyCache::global().stats();
        profile->cacheDelta.hits = cache1.hits - cache0.hits;
        profile->cacheDelta.misses = cache1.misses - cache0.misses;
        profile->cacheDelta.inserts = cache1.inserts - cache0.inserts;
    }
    return results;
}

SuiteResult
BatchRunner::runSuite(const core::CoreParams &params,
                      const tech::ClockModel &clock,
                      const std::vector<BenchJob> &jobs,
                      const RunSpec &spec) const
{
    std::vector<GridPoint> point(1);
    point[0].params = params;
    point[0].clock = clock;
    return std::move(runGrid(point, jobs, spec).front());
}

SuiteResult
BatchRunner::runSuite(const core::CoreParams &params,
                      const tech::ClockModel &clock,
                      const std::vector<trace::BenchmarkProfile> &profiles,
                      const RunSpec &spec) const
{
    return runSuite(params, clock, jobsFromProfiles(profiles), spec);
}

std::vector<SweepPointResult>
sweepScalingBatched(const std::vector<double> &tUseful,
                    const SweepOptions &options,
                    const std::vector<BenchJob> &jobs, const RunSpec &spec)
{
    std::vector<GridPoint> points;
    points.reserve(tUseful.size());
    for (const double u : tUseful) {
        GridPoint point;
        point.params = scaledCoreParams(u, options.scaling);
        point.clock = scaledClock(u, options.overhead);
        points.push_back(std::move(point));
    }

    const BatchRunner runner(options.threads);
    auto suites = runner.runGrid(points, jobs, spec);

    std::vector<SweepPointResult> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepPointResult r;
        r.tUseful = tUseful[i];
        r.clock = points[i].clock;
        r.suite = std::move(suites[i]);
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<SweepPointResult>
sweepScalingBatched(const std::vector<double> &tUseful,
                    const SweepOptions &options,
                    const std::vector<trace::BenchmarkProfile> &profiles,
                    const RunSpec &spec)
{
    return sweepScalingBatched(tUseful, options, jobsFromProfiles(profiles),
                               spec);
}

} // namespace fo4::study
