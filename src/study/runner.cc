#include "study/runner.hh"

#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/means.hh"

namespace fo4::study
{

namespace
{

std::vector<double>
collect(const SuiteResult &suite, const trace::BenchClass *cls, bool ipc)
{
    std::vector<double> values;
    for (const auto &b : suite.benchmarks) {
        if (cls && b.cls != *cls)
            continue;
        values.push_back(ipc ? b.sim.ipc() : b.bips);
    }
    return values;
}

} // namespace

double
SuiteResult::harmonicBips(trace::BenchClass cls) const
{
    const auto values = collect(*this, &cls, false);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicBipsAll() const
{
    const auto values = collect(*this, nullptr, false);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicIpc(trace::BenchClass cls) const
{
    const auto values = collect(*this, &cls, true);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicIpcAll() const
{
    const auto values = collect(*this, nullptr, true);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

BenchResult
runBenchmark(const core::CoreParams &params, const tech::ClockModel &clock,
             const trace::BenchmarkProfile &profile, const RunSpec &spec)
{
    trace::SyntheticTraceGenerator gen(profile);
    auto core = spec.model == CoreModel::OutOfOrder
                    ? core::makeOooCore(params, spec.predictor)
                    : core::makeInorderCore(params, spec.predictor);

    BenchResult result;
    result.name = profile.name;
    result.cls = profile.cls;
    result.sim = core->run(gen, spec.instructions, spec.warmup,
                           spec.prewarm);
    result.bips = clock.bips(result.sim.ipc());
    return result;
}

SuiteResult
runSuite(const core::CoreParams &params, const tech::ClockModel &clock,
         const std::vector<trace::BenchmarkProfile> &profiles,
         const RunSpec &spec)
{
    FO4_ASSERT(!profiles.empty(), "no profiles to run");
    SuiteResult suite;
    for (const auto &profile : profiles)
        suite.benchmarks.push_back(
            runBenchmark(params, clock, profile, spec));
    return suite;
}

} // namespace fo4::study
