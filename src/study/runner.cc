#include "study/runner.hh"

#include "trace/decoded_trace.hh"
#include "trace/file_trace.hh"
#include "trace/generator.hh"
#include "trace/recorded_trace.hh"
#include "util/logging.hh"
#include "util/means.hh"
#include "util/table.hh"

namespace fo4::study
{

namespace
{

std::vector<double>
collect(const SuiteResult &suite, const trace::BenchClass *cls, bool ipc)
{
    std::vector<double> values;
    for (const auto &b : suite.benchmarks) {
        if (b.failed())
            continue;
        if (cls && b.cls != *cls)
            continue;
        values.push_back(ipc ? b.sim.ipc() : b.bips);
    }
    return values;
}

} // namespace

std::vector<const BenchResult *>
SuiteResult::failures() const
{
    std::vector<const BenchResult *> out;
    for (const auto &b : benchmarks) {
        if (b.failed())
            out.push_back(&b);
    }
    return out;
}

double
SuiteResult::harmonicBips(trace::BenchClass cls) const
{
    const auto values = collect(*this, &cls, false);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicBipsAll() const
{
    const auto values = collect(*this, nullptr, false);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicIpc(trace::BenchClass cls) const
{
    const auto values = collect(*this, &cls, true);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

double
SuiteResult::harmonicIpcAll() const
{
    const auto values = collect(*this, nullptr, true);
    return values.empty() ? 0.0 : util::harmonicMean(values);
}

core::StallBreakdown
SuiteResult::aggregateStalls() const
{
    core::StallBreakdown sum;
    for (const auto &b : benchmarks) {
        if (!b.failed())
            sum += b.sim.stalls;
    }
    return sum;
}

std::uint64_t
SuiteResult::totalCycles() const
{
    std::uint64_t sum = 0;
    for (const auto &b : benchmarks) {
        if (!b.failed())
            sum += b.sim.cycles;
    }
    return sum;
}

const char *
simImplName(SimImpl impl)
{
    switch (impl) {
    case SimImpl::Reference:
        return "reference";
    case SimImpl::Batched:
        return "batched";
    }
    return "?";
}

SimImpl
simImplFromName(const std::string &name)
{
    if (name == "reference")
        return SimImpl::Reference;
    if (name == "batched")
        return SimImpl::Batched;
    throw util::ConfigError(util::strprintf(
        "unknown sim_impl '%s' (expected 'reference' or 'batched')",
        name.c_str()));
}

util::Status
RunSpec::validate() const
{
    util::ErrorCollector errs;
    if (instructions == 0)
        errs.addf("instructions must be positive");
    if (predictor.empty())
        errs.addf("no branch predictor named");
    return errs.status(util::ErrorCode::InvalidConfig);
}

BenchJob
BenchJob::fromProfile(const trace::BenchmarkProfile &profile)
{
    BenchJob job;
    job.name = profile.name;
    job.cls = profile.cls;
    job.profile = profile;
    return job;
}

BenchJob
BenchJob::fromTraceFile(const std::string &name, trace::BenchClass cls,
                        const std::string &path)
{
    BenchJob job;
    job.name = name;
    job.cls = cls;
    job.tracePath = path;
    return job;
}

BenchResult
runJob(const core::CoreParams &params, const tech::ClockModel &clock,
       const BenchJob &job, const RunSpec &spec,
       const util::CancelToken *cancel)
{
    if (!job.profile && job.tracePath.empty()) {
        throw util::ConfigError(
            util::strprintf("job '%s' has neither a profile nor a trace "
                            "file",
                            job.name.c_str()));
    }

    // Build the instruction stream; a corrupt trace file or invalid
    // profile surfaces here as TraceError/ConfigError.  The batched
    // implementation replays the process-wide decoded cache instead of
    // regenerating the stream — identical ops (op.seq == position in
    // both paths), identical errors (load failures are never cached).
    std::unique_ptr<trace::TraceSource> source;
    if (spec.impl == SimImpl::Batched) {
        auto &registry = trace::DecodedTraceRegistry::global();
        source = job.profile ? registry.viewForProfile(*job.profile)
                             : registry.viewForFile(job.tracePath);
    } else if (job.profile) {
        source =
            std::make_unique<trace::SyntheticTraceGenerator>(*job.profile);
    } else {
        // Sniffs the format: capture files and flat v1 traces both work.
        source = trace::openTraceFile(job.tracePath);
    }

    const core::CoreParams &effective = job.params ? *job.params : params;
    std::unique_ptr<core::Core> core;
    if (spec.impl == SimImpl::Batched) {
        core = spec.model == CoreModel::OutOfOrder
                   ? core::makeBatchedOooCore(effective, spec.predictor)
                   : core::makeBatchedInorderCore(effective,
                                                  spec.predictor);
    } else {
        core = spec.model == CoreModel::OutOfOrder
                   ? core::makeOooCore(effective, spec.predictor)
                   : core::makeInorderCore(effective, spec.predictor);
    }

    if (spec.tracer != nullptr)
        core->setTracer(spec.tracer);
    if (spec.retireSink != nullptr)
        core->setRetireSink(spec.retireSink);

    BenchResult result;
    result.name = job.name;
    result.cls = job.cls;
    result.sim =
        core->run(*source, spec.instructions, spec.warmup, spec.prewarm,
                  job.cycleLimit ? *job.cycleLimit : spec.cycleLimit,
                  cancel);
    result.bips = clock.bips(result.sim.ipc());
    return result;
}

BenchResult
runBenchmark(const core::CoreParams &params, const tech::ClockModel &clock,
             const trace::BenchmarkProfile &profile, const RunSpec &spec)
{
    return runJob(params, clock, BenchJob::fromProfile(profile), spec);
}

BenchResult
runJobIsolated(const core::CoreParams &params,
               const tech::ClockModel &clock, const BenchJob &job,
               const RunSpec &spec, const util::CancelToken *cancel)
{
    try {
        return runJob(params, clock, job, spec, cancel);
    } catch (const util::CancelledError &) {
        // Cancellation is the caller stopping the run, not the job
        // failing; recording it as a row would make interrupted and
        // uninterrupted sweeps disagree.  Let it escape.
        throw;
    } catch (const util::SimError &e) {
        BenchResult failed;
        failed.name = job.name;
        failed.cls = job.cls;
        failed.error = e.toStatus();
        return failed;
    } catch (const std::exception &e) {
        BenchResult failed;
        failed.name = job.name;
        failed.cls = job.cls;
        failed.error = util::Status(util::ErrorCode::Internal, e.what());
        return failed;
    }
}

void
validateSuiteInputs(const core::CoreParams &params,
                    const tech::ClockModel &clock,
                    const std::vector<BenchJob> &jobs, const RunSpec &spec)
{
    // Suite-level misconfiguration is the caller's bug, not a benchmark
    // fault, so it throws instead of degrading.
    if (jobs.empty())
        throw util::ConfigError("no benchmarks to run");
    if (const auto st = spec.validate(); !st.isOk())
        throw util::ConfigError("run spec: " + st.message());
    params.validateOrThrow();
    if (const auto st = clock.validate(); !st.isOk())
        throw util::ConfigError("clock model: " + st.message());
}

SuiteResult
runSuite(const core::CoreParams &params, const tech::ClockModel &clock,
         const std::vector<BenchJob> &jobs, const RunSpec &spec)
{
    validateSuiteInputs(params, clock, jobs, spec);

    SuiteResult suite;
    suite.benchmarks.reserve(jobs.size());
    for (const auto &job : jobs)
        suite.benchmarks.push_back(runJobIsolated(params, clock, job, spec));
    return suite;
}

SuiteResult
runSuite(const core::CoreParams &params, const tech::ClockModel &clock,
         const std::vector<trace::BenchmarkProfile> &profiles,
         const RunSpec &spec)
{
    std::vector<BenchJob> jobs;
    jobs.reserve(profiles.size());
    for (const auto &profile : profiles)
        jobs.push_back(BenchJob::fromProfile(profile));
    return runSuite(params, clock, jobs, spec);
}

std::string
serializeSuite(const SuiteResult &suite)
{
    std::string out;
    out.reserve(suite.benchmarks.size() * 320);
    for (const auto &b : suite.benchmarks) {
        out += util::strprintf(
            "%s|%d|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu",
            b.name.c_str(), static_cast<int>(b.cls),
            static_cast<unsigned long long>(b.sim.instructions),
            static_cast<unsigned long long>(b.sim.cycles),
            static_cast<unsigned long long>(b.sim.branches),
            static_cast<unsigned long long>(b.sim.mispredicts),
            static_cast<unsigned long long>(b.sim.loads),
            static_cast<unsigned long long>(b.sim.stores),
            static_cast<unsigned long long>(b.sim.dl1Misses),
            static_cast<unsigned long long>(b.sim.l2Misses));
        // Stall attribution and occupancy are result statistics, so they
        // are part of the byte-identity contract too.
        out += util::strprintf(
            "|%llu", static_cast<unsigned long long>(b.sim.stallCycles));
        for (const auto v : b.sim.stalls.byCause)
            out += util::strprintf("|%llu",
                                   static_cast<unsigned long long>(v));
        out += util::strprintf(
            "|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu",
            static_cast<unsigned long long>(b.sim.dispatchWindowFull),
            static_cast<unsigned long long>(b.sim.dispatchRobFull),
            static_cast<unsigned long long>(b.sim.dispatchLsqFull),
            static_cast<unsigned long long>(b.sim.occupancy.cycles),
            static_cast<unsigned long long>(b.sim.occupancy.frontSum),
            static_cast<unsigned long long>(b.sim.occupancy.windowSum),
            static_cast<unsigned long long>(b.sim.occupancy.robSum),
            static_cast<unsigned long long>(b.sim.occupancy.lsqSum));
        out += util::strprintf("|%a|%s|%s\n", b.bips,
                               util::errorCodeName(b.error.code()),
                               b.error.message().c_str());
    }
    return out;
}

void
printSuite(std::ostream &os, const SuiteResult &suite)
{
    util::TextTable table;
    table.setHeader({"benchmark", "class", "status", "IPC", "BIPS"});
    for (const auto &b : suite.benchmarks) {
        if (b.failed()) {
            table.addRow({b.name, trace::benchClassName(b.cls),
                          util::strprintf(
                              "FAILED [%s]",
                              util::errorCodeName(b.error.code())),
                          "-", "-"});
        } else {
            table.addRow({b.name, trace::benchClassName(b.cls), "ok",
                          util::TextTable::num(b.sim.ipc()),
                          util::TextTable::num(b.bips)});
        }
    }
    table.print(os);

    const auto failed = suite.failures();
    if (!failed.empty()) {
        os << "\n" << failed.size() << " of " << suite.benchmarks.size()
           << " benchmarks failed:\n";
        for (const auto *b : failed)
            os << "  " << b->name << ": " << b->error.toString() << "\n";
    }

    const core::StallBreakdown stalls = suite.aggregateStalls();
    const std::uint64_t stallTotal = stalls.total();
    const std::uint64_t cycleTotal = suite.totalCycles();
    if (stallTotal > 0 && cycleTotal > 0) {
        os << "\nstall cycles: " << stallTotal << " of " << cycleTotal
           << util::strprintf(
                  " (%.1f%%), by cause:",
                  100.0 * static_cast<double>(stallTotal) /
                      static_cast<double>(cycleTotal))
           << "\n";
        for (int i = 0; i < core::numStallCauses; ++i) {
            const std::uint64_t v = stalls.byCause[i];
            if (v == 0)
                continue;
            os << util::strprintf(
                "  %-17s %12llu (%.1f%%)\n",
                core::stallCauseName(static_cast<core::StallCause>(i)),
                static_cast<unsigned long long>(v),
                100.0 * static_cast<double>(v) /
                    static_cast<double>(stallTotal));
        }
    }

    os << "\nharmonic mean over " << suite.succeeded() << " of "
       << suite.benchmarks.size()
       << " benchmarks: IPC=" << util::TextTable::num(suite.harmonicIpcAll())
       << " BIPS=" << util::TextTable::num(suite.harmonicBipsAll()) << "\n";
}

} // namespace fo4::study
