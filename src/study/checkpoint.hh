/**
 * @file
 * Crash-safe sweep execution: a checkpoint/resume layer over the
 * parallel sweep engine, built on util::Journal.
 *
 * A Fig 5-sized (benchmark x clock-period) grid can represent hours of
 * simulation; this layer makes such a run *durable*.  Every completed
 * grid cell is appended to a write-ahead journal the moment it
 * finishes, so a crash, OOM kill or Ctrl-C loses at most the cells that
 * were in flight.  A restarted run replays the journal, skips the
 * completed cells, simulates only the remainder, and produces output
 * **byte-identical** (study::serializeSuite-equal) to an uninterrupted
 * run at any thread count — the determinism contract of the parallel
 * engine extends across process lifetimes.
 *
 * Resume identity: the journal header carries a fingerprint of every
 * input that can influence a result — each grid point's CoreParams and
 * ClockModel, every job (profile fields, trace path, overrides) and the
 * RunSpec, all doubles rendered in hexfloat so no precision is lost.
 * A resume whose inputs hash differently is refused with a typed
 * ErrorCode::ResumeMismatch instead of silently merging incompatible
 * results.  Thread count and retry policy are deliberately *excluded*:
 * neither can change a cell's bytes, so neither should block a resume.
 *
 * Retry: transient-classed failures (I/O, unexpected internal errors)
 * are retried per RetryPolicy — exponential backoff with deterministic
 * jitter — before a cell is recorded as failed.  Deterministic-by-
 * construction failures (invalid configuration, corrupt trace payload,
 * tripped watchdogs) are never retried: rerunning them buys nothing.
 *
 * Cancellation: a util::CancelToken is polled at cell boundaries (via
 * util::TaskGroup) and inside each simulation's per-cycle watchdog
 * check.  On request, queued cells are skipped, in-flight cells drain
 * or abort, the journal is flushed, and CancelledError is raised — the
 * run exits resumable, and util::runTopLevel maps that to exit code
 * 130.
 */

#ifndef FO4_STUDY_CHECKPOINT_HH
#define FO4_STUDY_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/parallel.hh"
#include "util/cancel.hh"
#include "util/status.hh"

namespace fo4::study
{

/**
 * When and how often a failed cell is re-attempted.  Only failures
 * whose ErrorCode is transient-classed (see transientCode) are
 * retried; a ConfigError or a deterministic simulation failure is
 * final on the first attempt.
 */
struct RetryPolicy
{
    /** Total attempts per cell, including the first; 1 = no retry. */
    int maxAttempts = 1;
    /** Backoff before attempt k (k >= 2): base * factor^(k-2), capped. */
    double baseDelayMs = 0.0;
    double backoffFactor = 2.0;
    double maxDelayMs = 5000.0;
    /** Jitter width: each delay is scaled by a deterministic factor in
     *  [1 - jitterFraction/2, 1 + jitterFraction/2]. */
    double jitterFraction = 0.25;
    /** Seed of the jitter stream (a util::RandomStream split per cell
     *  and per attempt, so each delay is a pure function of
     *  (seed, cell, attempt)). */
    std::uint64_t jitterSeed = 0xf04;

    /**
     * Is a failure with this code worth retrying?  TraceIo (a file
     * that may reappear — NFS hiccup, racing writer) and Internal (an
     * unclassified escape) are transient; InvalidConfig / UnknownKey /
     * TraceFormat / TraceCorrupt / Deadlock are deterministic verdicts
     * and retrying them cannot change the outcome.
     */
    static bool transientCode(util::ErrorCode code);

    /**
     * Backoff before retry attempt `attempt` (2-based: the delay that
     * precedes the second attempt is attempt=2) of cell `cellKey`,
     * with deterministic jitter — the same (policy, cell, attempt)
     * always waits the same time, so reproductions reproduce.
     */
    double delayMs(int attempt, std::uint64_t cellKey) const;

    /** Report every out-of-range field at once. */
    util::Status validate() const;
};

/**
 * One completed grid cell keyed by its slot — the unit the journal
 * stores and the sweep fabric ships between processes.
 */
struct CellRecord
{
    std::size_t point = 0;
    std::size_t job = 0;
    BenchResult result;
};

/**
 * Binary little-endian payload of one cell: slot key, simulation
 * counters, doubles as raw bit patterns — so a decoded BenchResult is
 * bit-for-bit the one encoded.  This is both the journal record format
 * (util::Journal payloads) and the wire format of a fabric CellDone.
 */
std::string encodeCellRecord(const CellRecord &cell);

/** Inverse of encodeCellRecord; `origin` names the journal file or
 *  peer for error text.  Throws JournalError(JournalCorrupt) on a
 *  truncated or oversize payload. */
CellRecord decodeCellRecord(const std::string &payload,
                            const std::string &origin);

/** Knobs of the checkpointed runner. */
struct CheckpointOptions
{
    /**
     * Journal file backing the run.  Empty disables durability: the
     * runner degrades to the plain parallel engine (plus retry and
     * cancellation).  If the file exists it is recovered and the run
     * *resumes*; otherwise it is created.
     */
    std::string journalPath;

    /** Worker threads; 1 = serial, <= 0 = hardware thread count. */
    int threads = 1;

    RetryPolicy retry;

    /** Cooperative cancellation source (e.g. a SIGINT handler);
     *  nullptr = not cancellable. */
    const util::CancelToken *cancel = nullptr;

    /** fsync after every record (durable) vs. at flush points only. */
    bool syncEveryRecord = true;

    /**
     * Observability hook, called before each execution attempt of a
     * cell with (pointIndex, jobIndex, attempt); attempt counts from 1.
     * Called from worker threads; must be thread-safe.  Used by tests
     * to count retries and to inject cancellation at exact boundaries.
     */
    std::function<void(std::size_t point, std::size_t job, int attempt)>
        onAttempt;

    /**
     * Cells completed elsewhere (e.g. by fleet workers), landed in
     * their slots before execution exactly like replayed journal
     * records.  Slots the journal already restored win the tie — both
     * sources hold byte-identical results for a cell, so the skip is
     * an economy, not a choice.  Seeds are *not* re-journaled: the
     * process that produced them already holds their durable record.
     */
    std::vector<CellRecord> seedCells;
};

/** Wall-clock profile of one executed (not replayed) cell. */
struct CellTiming
{
    std::size_t point = 0;
    std::size_t job = 0;
    double wallMs = 0.0;
    /** Attempts this run made on the cell (>= 1; > 1 means retried). */
    int attempts = 1;
};

/** What a runGrid/sweepScaling call did (progress accounting). */
struct CheckpointReport
{
    std::size_t totalCells = 0;
    /** Cells restored from the journal instead of simulated. */
    std::size_t replayedCells = 0;
    /** Cells landed from CheckpointOptions::seedCells. */
    std::size_t seededCells = 0;
    /** Cells simulated (to completion) by this run. */
    std::size_t executedCells = 0;
    /** Extra attempts beyond each cell's first (retry activity). */
    std::size_t retriedAttempts = 0;
    /** True if an existing journal was recovered. */
    bool resumed = false;
    /** True if recovery discarded a torn trailing record. */
    bool tornTailDiscarded = false;

    /**
     * Per-cell wall times and attempt counts, in completion order.
     * Engineering diagnostics: scheduling-dependent, so never part of
     * the byte-identity contract (unlike everything journaled).
     */
    std::vector<CellTiming> cellTimings;
    /** Wall time of the whole runGrid call, milliseconds. */
    double wallMs = 0.0;
    /** LatencyCache::global() stats delta across the run. */
    cacti::LatencyCacheStats cacheDelta;
};

/**
 * Crash-safe drop-in for ParallelRunner::runGrid / study::sweepScaling.
 * See the file comment for the durability contract.
 */
class CheckpointedRunner
{
  public:
    explicit CheckpointedRunner(CheckpointOptions options);

    /** Actual parallelism this runner fans out to (>= 1). */
    int threads() const { return nThreads; }

    /**
     * Run the (point x job) grid with journaling, retry and
     * cancellation.  Byte-identical to ParallelRunner::runGrid — and
     * to itself across an interrupt/resume cycle.  Throws ConfigError
     * on invalid inputs, JournalError (ResumeMismatch) when an
     * existing journal's identity does not match, CancelledError when
     * cancellation is requested (after flushing the journal).
     */
    std::vector<SuiteResult> runGrid(const std::vector<GridPoint> &points,
                                     const std::vector<BenchJob> &jobs,
                                     const RunSpec &spec);

    /**
     * The paper's standard sweep, checkpointed.  Uses `options.scaling`
     * and `options.overhead` to derive the grid; `options.threads` is
     * ignored in favour of this runner's thread count.
     */
    std::vector<SweepPointResult>
    sweepScaling(const std::vector<double> &tUseful,
                 const SweepOptions &options,
                 const std::vector<BenchJob> &jobs, const RunSpec &spec);

    /** Convenience overload for profile lists. */
    std::vector<SweepPointResult>
    sweepScaling(const std::vector<double> &tUseful,
                 const SweepOptions &options,
                 const std::vector<trace::BenchmarkProfile> &profiles,
                 const RunSpec &spec);

    /** Accounting for the most recent runGrid/sweepScaling call. */
    const CheckpointReport &report() const { return lastReport; }

  private:
    CheckpointOptions opts;
    int nThreads = 1;
    CheckpointReport lastReport;
};

/**
 * Identity fingerprint of a grid run: FNV-1a over a canonical rendering
 * of every result-influencing input, doubles in hexfloat (the
 * serializeSuite discipline).  Two runs with equal fingerprints would
 * produce byte-identical results; a journal may only be resumed by a
 * run whose fingerprint matches its header.
 */
std::uint64_t gridFingerprint(const std::vector<GridPoint> &points,
                              const std::vector<BenchJob> &jobs,
                              const RunSpec &spec);

} // namespace fo4::study

#endif // FO4_STUDY_CHECKPOINT_HH
