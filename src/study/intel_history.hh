/**
 * @file
 * The processor-history data behind the paper's Figure 1: seven
 * generations of Intel x86 processors with their introduction year,
 * fabrication technology and nominal clock frequency, plus the conversion
 * of clock period into FO4 (360 ps x drawn gate length in microns).
 */

#ifndef FO4_STUDY_INTEL_HISTORY_HH
#define FO4_STUDY_INTEL_HISTORY_HH

#include <string>
#include <vector>

#include "tech/fo4.hh"

namespace fo4::study
{

/** One processor generation from Figure 1. */
struct ProcessorGeneration
{
    std::string name;
    int year;
    double techNm;      ///< drawn gate length
    double clockMhz;

    double periodPs() const { return 1e6 / clockMhz; }

    /** Clock period in FO4 at the processor's own technology. */
    double
    periodFo4() const
    {
        return tech::Technology::nm(techNm).toFo4(periodPs());
    }
};

/** The seven generations plotted in Figure 1 (1990-2002). */
std::vector<ProcessorGeneration> intelGenerations();

/**
 * Decompose the total clock-frequency improvement between the first and
 * last generation into its technology-scaling part (FO4 getting faster)
 * and its pipelining part (fewer FO4 per cycle), as in the paper's
 * introduction (roughly 8x from technology and 7x from pipelining).
 */
struct FrequencyDecomposition
{
    double totalGain;
    double technologyGain;
    double pipeliningGain;
};

FrequencyDecomposition decomposeFrequencyGains();

} // namespace fo4::study

#endif // FO4_STUDY_INTEL_HISTORY_HH
