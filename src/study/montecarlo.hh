/**
 * @file
 * Process-variation Monte Carlo: yield-aware optimal pipeline depth.
 *
 * The paper's sweep assumes the per-stage latch+skew+jitter overhead is
 * a *constant* 1.8 FO4.  In sub-100nm nodes it is a per-stage random
 * variable (Datta et al., "Statistical Modeling of Pipeline Delay under
 * Process Variation"), and because a die clocks at the speed of its
 * slowest stage, deeper pipelines — more stages — pay a growing
 * max-of-samples penalty.  That shifts the *yield-weighted* optimal
 * logic depth away from the deterministic optimum, a result the 2002
 * paper could not compute.  This module computes it.
 *
 * Model (DESIGN.md §17): for each sweep point (t_useful) and each Monte
 * Carlo sample (die), every pipeline stage draws its own overhead
 * components around the nominal OverheadModel — normal (additive
 * sigma, FO4) or lognormal (multiplicative shape sigma) — plus one
 * die-level systematic component shared by all stages.  The die's
 * effective overhead is the worst stage's total; its clock period is
 * t_useful + that total; BIPS follows at the die's own binned
 * frequency.  A zero-sigma model reproduces the nominal overhead
 * bit-exactly, so a zero-sigma Monte Carlo run *is* the deterministic
 * sweep, byte for byte.
 *
 * Statistical identity contract: sampling is counter-based and
 * splittable (util::RandomStream keyed by (mc_seed, point, sample,
 * attempt, stage)), never stateful, so a sampled grid is a pure
 * function of its inputs.  Samples are therefore *just more grid
 * cells*: the expanded (sample x point, job) grid runs through the
 * same ParallelRunner/CheckpointedRunner engine as every other sweep,
 * and inherits its contracts wholesale — byte-identical results at any
 * jobs=, across checkpoint/resume (the grid fingerprint hashes every
 * sampled clock), and when cells are sharded across the fo4coord
 * fabric (workers re-derive identical sampled grids from the request).
 */

#ifndef FO4_STUDY_MONTECARLO_HH
#define FO4_STUDY_MONTECARLO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/checkpoint.hh"
#include "study/parallel.hh"
#include "util/means.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace fo4::study
{

/** Distribution family of the per-stage overhead draws. */
enum class McDist
{
    /** Components are nominal + sigma * z (sigma additive, in FO4). */
    Normal,
    /** Components are nominal * exp(sigma * z) (sigma is the lognormal
     *  shape; medians equal the nominal, draws stay positive). */
    Lognormal,
};

/** Stable name of a distribution ("normal", "lognormal"). */
const char *mcDistName(McDist dist);

/** Parse a distribution name; throws ConfigError on unknown values. */
McDist mcDistFromName(const std::string &name);

/**
 * The variation model of one Monte Carlo study: per-stage sigmas for
 * each overhead component, a die-level systematic sigma, the sample
 * count and the stream seed.
 */
struct VariationModel
{
    McDist dist = McDist::Normal;
    /** Per-stage (within-die) variation of each overhead component. */
    double sigmaLatch = 0.0;
    double sigmaSkew = 0.0;
    double sigmaJitter = 0.0;
    /** Die-level systematic component, shared by every stage of a
     *  sample: additive sigma (FO4) under Normal, multiplicative shape
     *  under Lognormal. */
    double sigmaDie = 0.0;
    /** Root seed of the sampling streams (mc_seed=). */
    std::uint64_t seed = 0;
    /** Dice per grid point (mc_samples=); >= 1. */
    int samples = 1;

    /** All sigmas exactly zero: the study degenerates to the
     *  deterministic sweep (and is guaranteed to reproduce it). */
    bool zeroSigma() const;

    /** Report every out-of-range field at once. */
    util::Status validate() const;
};

/**
 * Latch boundaries that draw independent variation at a scaled design
 * point: the depth of the scaled pipeline (front end + issue + execute
 * + commit segments).  Grows as t_useful shrinks — the mechanism by
 * which variation penalizes deep pipelines.
 */
int pipelineStageCount(const core::CoreParams &params);

/**
 * Sample the effective overhead of die `sample` at sweep point `point`:
 * worst stage total of `stages` per-stage draws around `nominal`, plus
 * the die-level systematic component.  A pure function of its
 * arguments (counter-based streams; see the file comment), so every
 * process that knows the coordinates derives the same die.  Zero-sigma
 * models return `nominal` unchanged, bit for bit.
 *
 * Negative totals (possible under Normal with large sigmas) are
 * rejection-sampled deterministically — the draw moves to the next
 * substream — and after 64 rejected attempts the model is refused with
 * a typed ConfigError (the sigma is physically absurd); draws are
 * never silently clamped.
 */
tech::OverheadModel sampleOverhead(const VariationModel &variation,
                                   const tech::OverheadModel &nominal,
                                   int stages, std::size_t point,
                                   std::size_t sample);

/**
 * Expand a base sweep grid into its Monte Carlo sample grid,
 * sample-major: expanded[s * base.size() + p] is die `s` of base point
 * `p` — identical core parameters, clock overhead resampled per die.
 * With a zero-sigma model the expansion is the base grid repeated
 * verbatim (and with samples == 1, the base grid itself, equal
 * gridFingerprint and all).
 */
std::vector<GridPoint>
expandMonteCarloGrid(const std::vector<GridPoint> &base,
                     const VariationModel &variation);

/**
 * Frequency guardband of the yield bin: a die yields when its sampled
 * period is within this fraction of the nominal period.  Binning at the
 * bare nominal would be useless under worst-stage sampling — the max of
 * many mean-centred draws beats the nominal almost never — so shipping
 * parts are binned with margin, per industry practice.  Aggregation
 * only: never touches simulation results or the identity contract.
 */
constexpr double kYieldGuardbandFraction = 0.10;

/** One class's confidence band at one sweep point. */
struct McBand
{
    std::uint64_t samples = 0;
    double meanBips = 0.0;
    double stddevBips = 0.0;
    double p5Bips = 0.0;
    double p95Bips = 0.0;
};

/** Aggregated Monte Carlo outcome of one base sweep point. */
struct McPointResult
{
    double tUseful = 0.0;
    /** The deterministic (nominal-overhead) clock of the point. */
    tech::ClockModel nominalClock;
    /** Stages that drew independent variation at this depth. */
    int stages = 0;
    /** Bands per benchmark class and overall (harmonic BIPS per die,
     *  arithmetic statistics over dice). */
    McBand integer, vectorFp, nonVectorFp, all;
    /** Fraction of dice whose sampled period meets the nominal period
     *  plus the kYieldGuardbandFraction margin (1.0 for zero-sigma
     *  models). */
    double yield = 0.0;
};

/** A whole Monte Carlo sweep. */
struct McSweepResult
{
    /** Aggregates, one per base sweep point, in sweep order. */
    std::vector<McPointResult> points;
    /** Raw per-die sweeps, sample-major: samples[s][p] is die s at base
     *  point p, carrying the die's own sampled clock. */
    std::vector<std::vector<SweepPointResult>> samples;

    /** t_useful maximizing the mean ("yield-weighted") overall BIPS. */
    double optimumTUseful() const;
};

/** Knobs of the Monte Carlo runner. */
struct McOptions
{
    /** Scaling, nominal overhead and (ignored) threads of the base
     *  sweep; `threads` below is the one that counts. */
    SweepOptions sweep;
    VariationModel variation;
    /** Journal file; empty disables durability (see CheckpointOptions). */
    std::string journalPath;
    /** Worker threads; 1 = serial, <= 0 = hardware thread count. */
    int threads = 1;
    RetryPolicy retry;
    const util::CancelToken *cancel = nullptr;
    /** Per-attempt observability hook (see CheckpointOptions::onAttempt);
     *  used by tests to inject cancellation at exact cell boundaries. */
    std::function<void(std::size_t point, std::size_t job, int attempt)>
        onAttempt;
};

/**
 * The Monte Carlo study engine: expands the (t_useful x sample) grid,
 * runs it through study::CheckpointedRunner (journaling, retry and
 * cancellation included), and aggregates yield-weighted BIPS curves
 * with confidence bands.  Throws ConfigError on invalid inputs —
 * including an invalid VariationModel — before any cell simulates.
 */
class MonteCarloRunner
{
  public:
    explicit MonteCarloRunner(McOptions options);

    /** Actual parallelism this runner fans out to (>= 1). */
    int threads() const { return nThreads; }

    McSweepResult run(const std::vector<double> &tUseful,
                      const std::vector<BenchJob> &jobs,
                      const RunSpec &spec);

    /** Convenience overload for profile lists. */
    McSweepResult run(const std::vector<double> &tUseful,
                      const std::vector<trace::BenchmarkProfile> &profiles,
                      const RunSpec &spec);

    /** Accounting for the most recent run() call. */
    const CheckpointReport &report() const { return lastReport; }

  private:
    McOptions opts;
    int nThreads = 1;
    CheckpointReport lastReport;
};

} // namespace fo4::study

#endif // FO4_STUDY_MONTECARLO_HH
