#include "study/checkpoint.hh"

#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>

#include "study/scaling.hh"
#include "util/journal.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace fo4::study
{

namespace
{

// ---------------------------------------------------------------------
// Identity fingerprint.
//
// Every input that can influence a result byte is rendered into one
// canonical text (doubles in hexfloat, strings length-prefixed so no
// concatenation can collide) and hashed with FNV-1a.  Anything *not*
// rendered here — thread count, retry policy, journal path — is
// asserted by the determinism contract to be unable to change results,
// and therefore must not block a resume.
// ---------------------------------------------------------------------

class IdentityHasher
{
  public:
    void
    i(long long v)
    {
        text += util::strprintf("i%lld;", v);
    }

    void
    u(unsigned long long v)
    {
        text += util::strprintf("u%llu;", v);
    }

    void
    d(double v)
    {
        text += util::strprintf("d%a;", v);
    }

    void
    s(const std::string &v)
    {
        text += util::strprintf("s%zu:", v.size());
        text += v;
        text += ';';
    }

    std::uint64_t
    hash() const
    {
        std::uint64_t h = 14695981039346656037ull;
        for (const char c : text) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        return h;
    }

  private:
    std::string text;
};

void
hashCacheParams(IdentityHasher &h, const mem::CacheParams &c)
{
    h.u(c.capacityBytes);
    h.u(c.lineBytes);
    h.u(c.associativity);
}

void
hashCoreParams(IdentityHasher &h, const core::CoreParams &p)
{
    h.i(p.fetchWidth);
    h.i(p.renameWidth);
    h.i(p.commitWidth);
    h.i(p.intIssueWidth);
    h.i(p.fpIssueWidth);
    h.i(p.memIssueWidth);
    h.i(p.robSize);
    h.i(p.lsqSize);
    h.i(p.fetchQueueSize);
    h.i(p.window.capacity);
    h.i(p.window.wakeupStages);
    h.i(static_cast<int>(p.window.select));
    for (const int cap : p.window.preselectCap)
        h.i(cap);
    h.i(p.fetchStages);
    h.i(p.decodeStages);
    h.i(p.renameStages);
    h.i(p.regReadStages);
    h.i(p.commitStages);
    h.i(p.issueLatency);
    for (const int cycles : p.execCycles)
        h.i(cycles);
    h.i(p.memLatencies.dl1);
    h.i(p.memLatencies.l2);
    h.i(p.memLatencies.memory);
    h.i(p.memLatencies.flat);
    h.i(p.memLatencies.l2BusCycles);
    h.i(p.memLatencies.memBusCycles);
    h.i(static_cast<int>(p.memoryMode));
    hashCacheParams(h, p.dl1);
    hashCacheParams(h, p.l2);
    h.i(p.extraMispredictPenalty);
    h.i(p.extraLoadUse);
    h.i(p.extraWakeup);
}

void
hashClock(IdentityHasher &h, const tech::ClockModel &c)
{
    h.d(c.tech.drawnGateLengthNm);
    h.d(c.tUsefulFo4);
    h.d(c.overhead.latchFo4);
    h.d(c.overhead.skewFo4);
    h.d(c.overhead.jitterFo4);
}

void
hashProfile(IdentityHasher &h, const trace::BenchmarkProfile &p)
{
    h.s(p.name);
    h.i(static_cast<int>(p.cls));
    h.d(p.wIntAlu);
    h.d(p.wIntMult);
    h.d(p.wFpAdd);
    h.d(p.wFpMult);
    h.d(p.wFpDiv);
    h.d(p.wFpSqrt);
    h.d(p.wLoad);
    h.d(p.wStore);
    h.d(p.meanDepDistance);
    h.d(p.minDepDistance);
    h.d(p.src2Prob);
    h.d(p.fpSourceAffinity);
    h.d(p.fpLoadFraction);
    h.d(p.meanBlockSize);
    h.i(p.staticBranches);
    h.d(p.biasedBranchFraction);
    h.d(p.strongBias);
    h.d(p.patternBranchFraction);
    h.d(p.correlatedBranchFraction);
    h.d(p.takenBiasFraction);
    h.d(p.branchDepDistance);
    h.u(p.workingSetBytes);
    h.d(p.strideFraction);
    h.i(p.strideStreams);
    h.d(p.lineStrideProb);
    h.d(p.zipfExponent);
    h.u(p.seed);
}

void
hashJob(IdentityHasher &h, const BenchJob &job)
{
    h.s(job.name);
    h.i(static_cast<int>(job.cls));
    h.i(job.profile.has_value());
    if (job.profile)
        hashProfile(h, *job.profile);
    h.s(job.tracePath);
    h.i(job.params.has_value());
    if (job.params)
        hashCoreParams(h, *job.params);
    h.i(job.cycleLimit.has_value());
    if (job.cycleLimit)
        h.u(*job.cycleLimit);
}

void
hashSpec(IdentityHasher &h, const RunSpec &spec)
{
    // spec.tracer is deliberately absent: tracing observes a run
    // without changing its bytes, so it must not block a resume.
    // spec.impl is absent for the same reason: the batched and
    // reference implementations are byte-identical by contract
    // (DESIGN.md §14), so a sweep may be resumed under either.
    h.i(static_cast<int>(spec.model));
    h.s(spec.predictor);
    h.u(spec.instructions);
    h.u(spec.warmup);
    h.u(spec.prewarm);
    h.u(spec.cycleLimit);
}

// ---------------------------------------------------------------------
// Cell record encoding (journal payloads).
//
// Binary little-endian; doubles as raw bit patterns so a replayed
// BenchResult is bit-for-bit the one that was journaled.
// ---------------------------------------------------------------------

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 24));
}

void
putU64(std::string &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/** Bounds-checked reader over a record payload. */
class Cursor
{
  public:
    Cursor(const std::string &data, const std::string &path)
        : p(reinterpret_cast<const unsigned char *>(data.data())),
          remaining(data.size()), path(path)
    {
    }

    std::uint32_t
    u32()
    {
        need(4);
        const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                                static_cast<std::uint32_t>(p[1]) << 8 |
                                static_cast<std::uint32_t>(p[2]) << 16 |
                                static_cast<std::uint32_t>(p[3]) << 24;
        p += 4;
        remaining -= 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | static_cast<std::uint64_t>(u32()) << 32;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        remaining -= n;
        return s;
    }

    void
    done() const
    {
        if (remaining != 0) {
            throw util::JournalError(
                util::ErrorCode::JournalCorrupt,
                util::strprintf("journal '%s': cell record has %zu "
                                "trailing bytes",
                                path.c_str(), remaining));
        }
    }

  private:
    void
    need(std::size_t n) const
    {
        if (remaining < n) {
            throw util::JournalError(
                util::ErrorCode::JournalCorrupt,
                util::strprintf("journal '%s': cell record truncated "
                                "(need %zu bytes, have %zu)",
                                path.c_str(), n, remaining));
        }
    }

    const unsigned char *p;
    std::size_t remaining;
    const std::string &path;
};

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
doubleFromBits(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::vector<BenchJob>
jobsFromProfiles(const std::vector<trace::BenchmarkProfile> &profiles)
{
    std::vector<BenchJob> jobs;
    jobs.reserve(profiles.size());
    for (const auto &profile : profiles)
        jobs.push_back(BenchJob::fromProfile(profile));
    return jobs;
}

} // namespace

std::string
encodeCellRecord(const CellRecord &cell)
{
    const BenchResult &r = cell.result;
    std::string out;
    out.reserve(240 + r.name.size() + r.error.message().size());
    putU32(out, static_cast<std::uint32_t>(cell.point));
    putU32(out, static_cast<std::uint32_t>(cell.job));
    putStr(out, r.name);
    putU32(out, static_cast<std::uint32_t>(r.cls));
    putU64(out, r.sim.instructions);
    putU64(out, r.sim.cycles);
    putU64(out, r.sim.branches);
    putU64(out, r.sim.mispredicts);
    putU64(out, r.sim.loads);
    putU64(out, r.sim.stores);
    putU64(out, r.sim.dl1Misses);
    putU64(out, r.sim.l2Misses);
    // Observability fields (journal format v2): stall attribution,
    // dispatch-block counters and occupancy sums are results too, so a
    // replayed cell must restore them bit-for-bit.
    putU64(out, r.sim.stallCycles);
    for (const auto v : r.sim.stalls.byCause)
        putU64(out, v);
    putU64(out, r.sim.dispatchWindowFull);
    putU64(out, r.sim.dispatchRobFull);
    putU64(out, r.sim.dispatchLsqFull);
    putU64(out, r.sim.occupancy.cycles);
    putU64(out, r.sim.occupancy.frontSum);
    putU64(out, r.sim.occupancy.windowSum);
    putU64(out, r.sim.occupancy.robSum);
    putU64(out, r.sim.occupancy.lsqSum);
    putU64(out, doubleBits(r.bips));
    putU32(out, static_cast<std::uint32_t>(r.error.code()));
    putStr(out, r.error.message());
    return out;
}

CellRecord
decodeCellRecord(const std::string &payload, const std::string &origin)
{
    Cursor c(payload, origin);
    CellRecord cell;
    cell.point = c.u32();
    cell.job = c.u32();
    cell.result.name = c.str();
    cell.result.cls = static_cast<trace::BenchClass>(c.u32());
    cell.result.sim.instructions = c.u64();
    cell.result.sim.cycles = c.u64();
    cell.result.sim.branches = c.u64();
    cell.result.sim.mispredicts = c.u64();
    cell.result.sim.loads = c.u64();
    cell.result.sim.stores = c.u64();
    cell.result.sim.dl1Misses = c.u64();
    cell.result.sim.l2Misses = c.u64();
    cell.result.sim.stallCycles = c.u64();
    for (auto &v : cell.result.sim.stalls.byCause)
        v = c.u64();
    cell.result.sim.dispatchWindowFull = c.u64();
    cell.result.sim.dispatchRobFull = c.u64();
    cell.result.sim.dispatchLsqFull = c.u64();
    cell.result.sim.occupancy.cycles = c.u64();
    cell.result.sim.occupancy.frontSum = c.u64();
    cell.result.sim.occupancy.windowSum = c.u64();
    cell.result.sim.occupancy.robSum = c.u64();
    cell.result.sim.occupancy.lsqSum = c.u64();
    cell.result.bips = doubleFromBits(c.u64());
    const auto code = static_cast<util::ErrorCode>(c.u32());
    const std::string message = c.str();
    c.done();
    cell.result.error = code == util::ErrorCode::Ok
                            ? util::Status::ok()
                            : util::Status(code, message);
    return cell;
}

std::uint64_t
gridFingerprint(const std::vector<GridPoint> &points,
                const std::vector<BenchJob> &jobs, const RunSpec &spec)
{
    IdentityHasher h;
    h.u(points.size());
    for (const auto &point : points) {
        hashCoreParams(h, point.params);
        hashClock(h, point.clock);
    }
    h.u(jobs.size());
    for (const auto &job : jobs)
        hashJob(h, job);
    hashSpec(h, spec);
    return h.hash();
}

bool
RetryPolicy::transientCode(util::ErrorCode code)
{
    return code == util::ErrorCode::TraceIo ||
           code == util::ErrorCode::Internal;
}

double
RetryPolicy::delayMs(int attempt, std::uint64_t cellKey) const
{
    FO4_ASSERT(attempt >= 2, "delayMs precedes a *re*try (attempt >= 2)");
    double delay = baseDelayMs;
    for (int k = 2; k < attempt; ++k)
        delay *= backoffFactor;
    delay = std::min(delay, maxDelayMs);

    // Deterministic jitter: the same (seed, cell, attempt) always draws
    // the same factor, so a reproduction of a retried run backs off
    // identically.  The draw is a counter-based util::RandomStream —
    // the same splittable-stream discipline the Monte Carlo sampler
    // uses — keyed by the jitter seed and split per cell, per attempt.
    const util::RandomStream jitter =
        util::RandomStream::root(jitterSeed)
            .child(cellKey)
            .child(static_cast<std::uint64_t>(attempt));
    const double factor = 1.0 + jitterFraction * (jitter.uniform(0) - 0.5);
    return delay * factor;
}

util::Status
RetryPolicy::validate() const
{
    util::ErrorCollector errs;
    if (maxAttempts < 1)
        errs.addf("maxAttempts must be >= 1 (got %d)", maxAttempts);
    if (baseDelayMs < 0.0)
        errs.addf("baseDelayMs must be >= 0 (got %g)", baseDelayMs);
    if (backoffFactor < 1.0)
        errs.addf("backoffFactor must be >= 1 (got %g)", backoffFactor);
    if (maxDelayMs < 0.0)
        errs.addf("maxDelayMs must be >= 0 (got %g)", maxDelayMs);
    if (jitterFraction < 0.0 || jitterFraction > 1.0)
        errs.addf("jitterFraction must be in [0, 1] (got %g)",
                  jitterFraction);
    return errs.status(util::ErrorCode::InvalidConfig);
}

CheckpointedRunner::CheckpointedRunner(CheckpointOptions options)
    : opts(std::move(options)),
      nThreads(opts.threads <= 0 ? util::ThreadPool::hardwareThreads()
                                 : opts.threads)
{
}

std::vector<SuiteResult>
CheckpointedRunner::runGrid(const std::vector<GridPoint> &points,
                            const std::vector<BenchJob> &jobs,
                            const RunSpec &spec)
{
    // Same fail-fast validation as the plain engine, plus the policy.
    for (const auto &point : points)
        validateSuiteInputs(point.params, point.clock, jobs, spec);
    if (const auto st = opts.retry.validate(); !st.isOk())
        throw util::ConfigError("retry policy: " + st.message());

    const std::size_t nJobs = jobs.size();
    lastReport = CheckpointReport{};
    lastReport.totalCells = points.size() * nJobs;
    const auto runStart = std::chrono::steady_clock::now();
    const cacti::LatencyCacheStats cache0 =
        cacti::LatencyCache::global().stats();
    const auto finishReport = [&] {
        lastReport.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - runStart)
                .count();
        const cacti::LatencyCacheStats cache1 =
            cacti::LatencyCache::global().stats();
        lastReport.cacheDelta.hits = cache1.hits - cache0.hits;
        lastReport.cacheDelta.misses = cache1.misses - cache0.misses;
        lastReport.cacheDelta.inserts = cache1.inserts - cache0.inserts;
    };

    std::vector<SuiteResult> results(points.size());
    for (auto &suite : results)
        suite.benchmarks.resize(nJobs);
    std::vector<char> done(points.size() * nJobs, 0);

    // --- recovery: replay the journal, bind to it for appends ---
    std::optional<util::JournalWriter> writer;
    std::mutex journalMutex;
    const std::uint64_t fingerprint = gridFingerprint(points, jobs, spec);
    if (!opts.journalPath.empty()) {
        if (util::journalExists(opts.journalPath)) {
            auto recovered = util::readJournal(opts.journalPath);
            if (recovered.fingerprint != fingerprint) {
                throw util::JournalError(
                    util::ErrorCode::ResumeMismatch,
                    util::strprintf(
                        "journal '%s' was written by a run with "
                        "different inputs (journal identity %016llx, "
                        "this run %016llx); refusing to merge — delete "
                        "the journal or restore the original "
                        "parameters",
                        opts.journalPath.c_str(),
                        static_cast<unsigned long long>(
                            recovered.fingerprint),
                        static_cast<unsigned long long>(fingerprint)));
            }
            lastReport.resumed = true;
            lastReport.tornTailDiscarded = recovered.tornTail;
            for (const auto &record : recovered.records) {
                auto cell = decodeCellRecord(record, opts.journalPath);
                if (cell.point >= points.size() || cell.job >= nJobs) {
                    throw util::JournalError(
                        util::ErrorCode::JournalCorrupt,
                        util::strprintf(
                            "journal '%s': cell (%zu, %zu) outside the "
                            "%zux%zu grid",
                            opts.journalPath.c_str(), cell.point,
                            cell.job, points.size(), nJobs));
                }
                auto &slot = done[cell.point * nJobs + cell.job];
                if (!slot) {
                    slot = 1;
                    ++lastReport.replayedCells;
                }
                results[cell.point].benchmarks[cell.job] =
                    std::move(cell.result);
            }
            writer.emplace(util::JournalWriter::appendTo(
                opts.journalPath, recovered, opts.syncEveryRecord));
        } else {
            writer.emplace(util::JournalWriter::create(
                opts.journalPath, fingerprint, opts.syncEveryRecord));
        }
    }

    // --- fabric seeds: cells completed elsewhere land in their slots
    // exactly like replayed records.  Journal-restored slots win the
    // tie — both sources hold byte-identical results for a cell.
    for (const auto &cell : opts.seedCells) {
        if (cell.point >= points.size() || cell.job >= nJobs) {
            throw util::ConfigError(util::strprintf(
                "seed cell (%zu, %zu) outside the %zux%zu grid",
                cell.point, cell.job, points.size(), nJobs));
        }
        auto &slot = done[cell.point * nJobs + cell.job];
        if (slot)
            continue;
        slot = 1;
        ++lastReport.seededCells;
        results[cell.point].benchmarks[cell.job] = cell.result;
    }

    std::mutex reportMutex;
    const auto flushJournal = [&] {
        std::lock_guard<std::mutex> lock(journalMutex);
        if (writer)
            writer->close();
    };
    // The user-facing cancellation story: how much is on disk and how
    // to get the rest.  Thrown from both cancel exits so the resume
    // hint survives no matter which cell noticed the request first.
    const auto cancelSummary = [&] {
        const std::size_t complete = lastReport.replayedCells +
                                     lastReport.seededCells +
                                     lastReport.executedCells;
        return util::strprintf(
            "sweep cancelled with %zu of %zu cells complete%s",
            complete, lastReport.totalCells,
            opts.journalPath.empty()
                ? ""
                : "; rerun with the same checkpoint to resume");
    };

    // --- fan out the incomplete cells ---
    const auto runCell = [&](std::size_t p, std::size_t j) {
        const std::uint64_t cellKey = p * nJobs + j;
        const auto cellStart = std::chrono::steady_clock::now();
        BenchResult result;
        int attempts = 0;
        for (int attempt = 1;; ++attempt) {
            attempts = attempt;
            if (opts.onAttempt)
                opts.onAttempt(p, j, attempt);
            result = runJobIsolated(points[p].params, points[p].clock,
                                    jobs[j], spec, opts.cancel);
            if (!result.failed() ||
                attempt >= opts.retry.maxAttempts ||
                !RetryPolicy::transientCode(result.error.code()))
                break;
            {
                std::lock_guard<std::mutex> lock(reportMutex);
                ++lastReport.retriedAttempts;
            }
            static util::MetricCounter &cellsRetried =
                util::MetricsRegistry::global().counter(
                    "study.cells.retried");
            cellsRetried.inc();
            const double delay =
                opts.retry.delayMs(attempt + 1, cellKey);
            if (delay > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(delay));
            }
            if (opts.cancel && opts.cancel->cancelled()) {
                throw util::CancelledError(util::strprintf(
                    "cell (%zu, %zu) cancelled during retry backoff",
                    p, j));
            }
        }
        results[p].benchmarks[j] = std::move(result);
        // Journal *after* the slot write: the record is the durable
        // acknowledgement, so a crash between the two just reruns the
        // cell.  Append order is completion order — irrelevant, because
        // replay lands each record back in its keyed slot.
        {
            std::lock_guard<std::mutex> lock(journalMutex);
            if (writer) {
                const util::Status st = writer->tryAppend(
                    encodeCellRecord({p, j, results[p].benchmarks[j]}));
                if (!st.isOk()) {
                    // A full or failing disk costs durability, never the
                    // sweep: drop the journal (its intact prefix is still
                    // a valid resume point — a torn tail is discarded on
                    // recovery) and keep computing without checkpoints.
                    util::warn("checkpoint journal disabled, sweep "
                               "continues without crash-resume: %s",
                               st.message().c_str());
                    writer.reset();
                    static util::MetricCounter &appendErrors =
                        util::MetricsRegistry::global().counter(
                            "study.journal.append_errors");
                    appendErrors.inc();
                }
            }
        }
        static util::MetricCounter &cellsExecuted =
            util::MetricsRegistry::global().counter(
                "study.cells.executed");
        cellsExecuted.inc();
        const double cellMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - cellStart)
                .count();
        std::lock_guard<std::mutex> lock(reportMutex);
        ++lastReport.executedCells;
        lastReport.cellTimings.push_back({p, j, cellMs, attempts});
    };

    {
        util::ThreadPool pool(nThreads);
        util::TaskGroup group(pool, opts.cancel);
        for (std::size_t p = 0; p < points.size(); ++p) {
            for (std::size_t j = 0; j < nJobs; ++j) {
                if (done[p * nJobs + j])
                    continue;
                group.submit([&runCell, p, j] { runCell(p, j); });
            }
        }
        try {
            group.wait();
        } catch (const util::CancelledError &) {
            // A cell aborted mid-simulation; everything acknowledged is
            // already on disk — make it durable and report resumable.
            finishReport();
            flushJournal();
            throw util::CancelledError(cancelSummary());
        }
    }

    if (opts.cancel && opts.cancel->cancelled()) {
        finishReport();
        flushJournal();
        throw util::CancelledError(cancelSummary());
    }

    finishReport();
    flushJournal();
    return results;
}

std::vector<SweepPointResult>
CheckpointedRunner::sweepScaling(const std::vector<double> &tUseful,
                                 const SweepOptions &options,
                                 const std::vector<BenchJob> &jobs,
                                 const RunSpec &spec)
{
    std::vector<GridPoint> points;
    points.reserve(tUseful.size());
    for (const double u : tUseful) {
        GridPoint point;
        point.params = scaledCoreParams(u, options.scaling);
        point.clock = scaledClock(u, options.overhead);
        points.push_back(std::move(point));
    }

    auto suites = runGrid(points, jobs, spec);

    std::vector<SweepPointResult> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepPointResult r;
        r.tUseful = tUseful[i];
        r.clock = points[i].clock;
        r.suite = std::move(suites[i]);
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<SweepPointResult>
CheckpointedRunner::sweepScaling(
    const std::vector<double> &tUseful, const SweepOptions &options,
    const std::vector<trace::BenchmarkProfile> &profiles,
    const RunSpec &spec)
{
    return sweepScaling(tUseful, options, jobsFromProfiles(profiles),
                        spec);
}

} // namespace fo4::study
