/**
 * @file
 * Structure-capacity optimization (paper Section 4.5 / Figure 7): at each
 * clock, choose the capacity (and therefore latency) of the DL1, L2 and
 * issue window that maximizes suite performance, following the paper's
 * per-structure sensitivity approach: optimize each structure greedily
 * while holding the others at the incumbent configuration.
 */

#ifndef FO4_STUDY_OPTIMIZER_HH
#define FO4_STUDY_OPTIMIZER_HH

#include <vector>

#include "study/runner.hh"
#include "study/scaling.hh"

namespace fo4::study
{

/** Candidate capacities for the optimizer's search. */
struct OptimizerSearchSpace
{
    std::vector<std::uint64_t> dl1Bytes{8 << 10, 16 << 10, 32 << 10,
                                        64 << 10, 128 << 10};
    std::vector<std::uint64_t> l2Bytes{256 << 10, 512 << 10, 1 << 20,
                                       2 << 20};
    std::vector<int> windowEntries{16, 32, 64};
};

/** Outcome of the optimization at one clock. */
struct OptimizedConfig
{
    ScalingOptions options;   ///< chosen capacities
    SuiteResult result;       ///< performance at the chosen configuration
    double harmonicBipsAll = 0.0;
};

/**
 * Greedy per-structure search at the given clock.  Each structure's
 * capacity is selected by rerunning the suite over its candidate values
 * (others held fixed), verifying the incumbent against neighbours,
 * exactly as the paper describes its "best configuration" validation.
 *
 * `threads` fans each candidate's suite across that many workers (1 =
 * serial).  The greedy decisions themselves stay sequential, and the
 * per-suite results are thread-count invariant, so the chosen
 * configuration is identical at any thread count.
 */
OptimizedConfig optimizeStructures(double tUseful,
                                   const tech::ClockModel &clock,
                                   const std::vector<trace::BenchmarkProfile>
                                       &profiles,
                                   const RunSpec &spec,
                                   const OptimizerSearchSpace &space =
                                       OptimizerSearchSpace{},
                                   int threads = 1);

} // namespace fo4::study

#endif // FO4_STUDY_OPTIMIZER_HH
