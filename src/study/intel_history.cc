#include "study/intel_history.hh"

#include "util/logging.hh"

namespace fo4::study
{

std::vector<ProcessorGeneration>
intelGenerations()
{
    // Figure 1 of the paper: year of introduction, technology and clock
    // of the last seven generations of Intel processors.
    return {
        {"i486DX", 1990, 1000.0, 33.0},
        {"i486DX2", 1992, 800.0, 66.0},
        {"Pentium", 1994, 600.0, 100.0},
        {"Pentium Pro", 1996, 350.0, 200.0},
        {"Pentium II", 1998, 250.0, 450.0},
        {"Pentium III", 2000, 180.0, 1000.0},
        {"Pentium 4", 2002, 130.0, 2000.0},
    };
}

FrequencyDecomposition
decomposeFrequencyGains()
{
    const auto gens = intelGenerations();
    FO4_ASSERT(gens.size() >= 2, "need at least two generations");
    const auto &first = gens.front();
    const auto &last = gens.back();

    FrequencyDecomposition d;
    d.totalGain = last.clockMhz / first.clockMhz;
    // Technology: how much faster one FO4 became.
    d.technologyGain = tech::Technology::nm(first.techNm).fo4Ps() /
                       tech::Technology::nm(last.techNm).fo4Ps();
    // Pipelining: how many fewer FO4 fit in one cycle.
    d.pipeliningGain = first.periodFo4() / last.periodFo4();
    return d;
}

} // namespace fo4::study
