#include "study/scaling.hh"

#include "cacti/latency_cache.hh"
#include "isa/latencies.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::study
{

tech::ClockModel
scaledClock(double tUseful, const tech::OverheadModel &overhead)
{
    tech::ClockModel clock;
    clock.tech = tech::tech100nm();
    clock.tUsefulFo4 = tUseful;
    clock.overhead = overhead;
    return clock;
}

core::CoreParams
scaledCoreParams(double tUseful, const ScalingOptions &options,
                 const cacti::StructureModel &model)
{
    if (tUseful <= 0.0) {
        throw util::ConfigError(
            util::strprintf("t_useful must be positive, got %g", tUseful));
    }

    // Only t_useful matters for cycle quantization; overhead changes the
    // frequency, not the latencies (paper Section 3.3).
    tech::ClockModel clock = scaledClock(tUseful);

    core::CoreParams p = core::CoreParams::alpha21264();
    using SK = cacti::StructureKind;

    // Structure latencies are pure functions of (calibration, kind,
    // capacity); the process-wide memo computes each distinct point
    // once across the whole sweep grid.
    const auto lat = [&model](SK kind, std::uint64_t capacity) {
        return cacti::LatencyCache::global().latencyFo4(model, kind,
                                                        capacity);
    };

    // Functional-unit latencies: 21264 cycles x 17.4 FO4, re-quantized.
    for (int i = 0; i < isa::numOpClasses; ++i) {
        p.execCycles[i] =
            isa::executeCycles(static_cast<isa::OpClass>(i), clock);
    }

    // Pipeline segment depths from structure access times.
    p.fetchStages =
        clock.latencyCycles(lat(SK::BranchPredictor,
                                model.alphaCapacity(SK::BranchPredictor)));
    p.decodeStages = clock.latencyCycles(options.baseStageFo4);
    p.renameStages = clock.latencyCycles(
        lat(SK::RenameTable, model.alphaCapacity(SK::RenameTable)));
    p.regReadStages = clock.latencyCycles(
        lat(SK::RegisterFile, model.alphaCapacity(SK::RegisterFile)));
    p.commitStages = clock.latencyCycles(options.baseStageFo4);

    // Issue window: a monolithic window's wakeup loop is its access
    // latency; a segmented window (Section 5) always has a one-cycle
    // loop per stage, with the ripple delay modelled by the window.
    p.window = options.window;
    p.window.capacity = options.windowEntries;
    if (options.window.wakeupStages > 1 ||
        options.window.select == core::SelectModel::Partitioned) {
        p.issueLatency = 1;
    } else {
        p.issueLatency = clock.latencyCycles(
            lat(SK::IssueWindow, options.windowEntries));
    }

    // Memory system.
    if (options.crayMemory) {
        p.memoryMode = mem::MemoryMode::Flat;
        p.memLatencies.flat =
            clock.latencyCycles(cacti::crayMemoryFo4());
    } else {
        p.memoryMode = mem::MemoryMode::TwoLevel;
        p.dl1.capacityBytes = options.dl1Bytes;
        p.l2.capacityBytes = options.l2Bytes;
        p.memLatencies.dl1 = clock.latencyCycles(
            lat(SK::DL1, options.dl1Bytes));
        p.memLatencies.l2 = clock.latencyCycles(
            lat(SK::L2, options.l2Bytes));
        p.memLatencies.memory =
            clock.latencyCycles(cacti::modernMemoryFo4());
        // The L1<->L2 fill bus is on-chip and clocked with the core, so
        // its occupancy stays constant in cycles; the memory channel has
        // fixed absolute bandwidth, so its occupancy is an FO4 figure.
        p.memLatencies.l2BusCycles = 8;
        p.memLatencies.memBusCycles =
            clock.latencyCycles(cacti::memoryBusFo4());
    }

    p.extraMispredictPenalty = options.extraMispredictPenalty;
    p.extraLoadUse = options.extraLoadUse;
    p.extraWakeup = options.extraWakeup;

    // Wire-delay extension (Section 7 future work): constant-FO4 wire
    // latency on the fetch-redirect and L2 paths.
    if (options.wirePenaltyFo4 > 0.0) {
        const int wireCycles = clock.latencyCycles(options.wirePenaltyFo4);
        p.extraMispredictPenalty += wireCycles;
        if (!options.crayMemory)
            p.memLatencies.l2 += wireCycles;
    }

    p.validateOrThrow();
    return p;
}

} // namespace fo4::study
