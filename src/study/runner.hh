/**
 * @file
 * Experiment runner: simulates a benchmark suite on a core configuration
 * and aggregates per-class performance the way the paper reports it
 * (harmonic means of BIPS = IPC x frequency).
 */

#ifndef FO4_STUDY_RUNNER_HH
#define FO4_STUDY_RUNNER_HH

#include <string>
#include <vector>

#include "core/core.hh"
#include "tech/clocking.hh"
#include "trace/spec2000.hh"

namespace fo4::study
{

/** Which pipeline model to run. */
enum class CoreModel
{
    InOrder,
    OutOfOrder,
};

/** One benchmark's outcome. */
struct BenchResult
{
    std::string name;
    trace::BenchClass cls = trace::BenchClass::Integer;
    core::SimResult sim;
    double bips = 0.0;
};

/** A whole suite's outcome. */
struct SuiteResult
{
    std::vector<BenchResult> benchmarks;

    /** Harmonic mean of BIPS over one class; 0 if the class is absent. */
    double harmonicBips(trace::BenchClass cls) const;

    /** Harmonic mean of BIPS over every benchmark. */
    double harmonicBipsAll() const;

    /** Harmonic mean of IPC over one class. */
    double harmonicIpc(trace::BenchClass cls) const;

    /** Harmonic mean of IPC over every benchmark. */
    double harmonicIpcAll() const;
};

/** How to run a suite. */
struct RunSpec
{
    CoreModel model = CoreModel::OutOfOrder;
    std::string predictor = "tournament";
    std::uint64_t instructions = 200000;
    /** Instructions simulated but discarded before measurement begins. */
    std::uint64_t warmup = 20000;
    /** Instructions streamed functionally through caches and predictor
     *  first (stands in for the paper's 500M-instruction skip). */
    std::uint64_t prewarm = 500000;
};

/**
 * Run every profile on a fresh core built from `params`, converting IPC
 * to BIPS with `clock`.
 */
SuiteResult runSuite(const core::CoreParams &params,
                     const tech::ClockModel &clock,
                     const std::vector<trace::BenchmarkProfile> &profiles,
                     const RunSpec &spec);

/** Run one profile. */
BenchResult runBenchmark(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const trace::BenchmarkProfile &profile,
                         const RunSpec &spec);

} // namespace fo4::study

#endif // FO4_STUDY_RUNNER_HH
