/**
 * @file
 * Experiment runner: simulates a benchmark suite on a core configuration
 * and aggregates per-class performance the way the paper reports it
 * (harmonic means of BIPS = IPC x frequency).
 *
 * Fault isolation: one broken benchmark (a corrupt trace file, a
 * pathological parameter override that deadlocks, an invalid profile)
 * must not take down a suite that may have hours of simulation behind
 * it.  runSuite() therefore catches SimErrors per benchmark, records
 * the typed error in that BenchResult, and aggregates the survivors;
 * only suite-level misconfiguration (no jobs, invalid base parameters)
 * throws.
 */

#ifndef FO4_STUDY_RUNNER_HH
#define FO4_STUDY_RUNNER_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/core.hh"
#include "tech/clocking.hh"
#include "trace/spec2000.hh"
#include "util/cancel.hh"
#include "util/status.hh"

namespace fo4::study
{

/** Which pipeline model to run. */
enum class CoreModel
{
    InOrder,
    OutOfOrder,
};

/**
 * Which core implementation services a run.  Both produce byte-identical
 * results — serializeSuite-equal on every input, including failed rows
 * (DESIGN.md §14) — so the choice is purely an engineering speed knob:
 * Reference is the plain per-cycle model, Batched is the one-pass
 * throughput path (decoded-trace replay, shared prewarm state,
 * idle-span skipping).  Excluded from gridFingerprint for the same
 * reason tracers are: unable to change bytes, must not block a resume.
 */
enum class SimImpl
{
    Reference,
    Batched,
};

/** Stable name of an implementation ("reference", "batched"). */
const char *simImplName(SimImpl impl);

/** Parse a sim_impl name; throws ConfigError on unknown values. */
SimImpl simImplFromName(const std::string &name);

/** One benchmark's outcome. */
struct BenchResult
{
    std::string name;
    trace::BenchClass cls = trace::BenchClass::Integer;
    core::SimResult sim;
    double bips = 0.0;
    /** Why the benchmark produced no result; Ok when it succeeded. */
    util::Status error;

    bool failed() const { return !error.isOk(); }
};

/** A whole suite's outcome. */
struct SuiteResult
{
    std::vector<BenchResult> benchmarks;

    /** Benchmarks that failed, in run order. */
    std::vector<const BenchResult *> failures() const;

    std::size_t succeeded() const
    {
        return benchmarks.size() - failures().size();
    }

    /**
     * Harmonic mean of BIPS over one class; 0 if the class is absent.
     * Failed benchmarks are excluded from every aggregate.
     */
    double harmonicBips(trace::BenchClass cls) const;

    /** Harmonic mean of BIPS over every benchmark. */
    double harmonicBipsAll() const;

    /** Harmonic mean of IPC over one class. */
    double harmonicIpc(trace::BenchClass cls) const;

    /** Harmonic mean of IPC over every benchmark. */
    double harmonicIpcAll() const;

    /** Per-cause stall cycles summed over the succeeded benchmarks. */
    core::StallBreakdown aggregateStalls() const;

    /** Cycles simulated by the succeeded benchmarks. */
    std::uint64_t totalCycles() const;
};

/** How to run a suite. */
struct RunSpec
{
    CoreModel model = CoreModel::OutOfOrder;
    std::string predictor = "tournament";
    std::uint64_t instructions = 200000;
    /** Instructions simulated but discarded before measurement begins. */
    std::uint64_t warmup = 20000;
    /** Instructions streamed functionally through caches and predictor
     *  first (stands in for the paper's 500M-instruction skip). */
    std::uint64_t prewarm = 500000;
    /** Watchdog budget in cycles; 0 picks the core's default. */
    std::uint64_t cycleLimit = 0;

    /** Core implementation (reference or batched; identical bytes). */
    SimImpl impl = SimImpl::Reference;

    /**
     * Optional pipeline event tracer attached to the core before the
     * run.  Pure observability: excluded from gridFingerprint and
     * unable to change results.  A ring is single-writer, so a spec
     * carrying one must never be fanned out across parallel cells —
     * trace one cell serially instead (see bench/common.hh).
     */
    util::TraceEventRing *tracer = nullptr;

    /**
     * Optional retired-microop observer attached to the core before
     * the run (trace::Recorder verification, capture tooling).  Same
     * rules as `tracer`: pure observability, excluded from
     * gridFingerprint, and never fanned out across parallel cells —
     * a sink sees one core's commit stream or none.
     */
    trace::RetireSink *retireSink = nullptr;

    /** Report every problem with the spec (all at once). */
    util::Status validate() const;
};

/**
 * One unit of work in a suite: a named instruction stream plus optional
 * per-job overrides.  The stream comes from a synthetic profile or from
 * a recorded trace file; either may fail independently of its siblings.
 */
struct BenchJob
{
    std::string name;
    trace::BenchClass cls = trace::BenchClass::Integer;

    /** Synthetic source: generate the stream from this profile. */
    std::optional<trace::BenchmarkProfile> profile;
    /** File source: replay this recorded trace (used when no profile). */
    std::string tracePath;

    /** Per-job core parameters (otherwise the suite's base params). */
    std::optional<core::CoreParams> params;
    /** Per-job watchdog budget (otherwise the spec's). */
    std::optional<std::uint64_t> cycleLimit;

    static BenchJob fromProfile(const trace::BenchmarkProfile &profile);
    static BenchJob fromTraceFile(const std::string &name,
                                  trace::BenchClass cls,
                                  const std::string &path);
};

/**
 * Run every job on a fresh core built from `params`, converting IPC to
 * BIPS with `clock`.  A job that raises a SimError is recorded as a
 * failure in its BenchResult and the suite continues; see failures().
 * Throws ConfigError if the job list is empty or params/spec/clock are
 * themselves invalid.
 */
SuiteResult runSuite(const core::CoreParams &params,
                     const tech::ClockModel &clock,
                     const std::vector<BenchJob> &jobs,
                     const RunSpec &spec);

/** Convenience overload: every profile becomes a plain job. */
SuiteResult runSuite(const core::CoreParams &params,
                     const tech::ClockModel &clock,
                     const std::vector<trace::BenchmarkProfile> &profiles,
                     const RunSpec &spec);

/**
 * Run one job; throws SimError on failure instead of recording it.
 * `cancel` (optional) is polled by the core's per-cycle watchdog check;
 * a cancellation request aborts the simulation with CancelledError.
 */
BenchResult runJob(const core::CoreParams &params,
                   const tech::ClockModel &clock, const BenchJob &job,
                   const RunSpec &spec,
                   const util::CancelToken *cancel = nullptr);

/**
 * Run one job with the suite's fault isolation: any SimError (or other
 * exception) is captured in the returned BenchResult instead of
 * propagating.  This is the one per-job code path shared by the serial
 * runSuite and the parallel sweep engine, which is what makes their
 * results bit-for-bit identical.
 *
 * CancelledError is the one deliberate exception to the isolation: a
 * cancelled job produced no result *by request*, which is not a fault
 * of the job, so it propagates instead of being recorded as a failed
 * row — otherwise an interrupted sweep would write rows that an
 * uninterrupted sweep would not, breaking resume byte-identity.
 */
BenchResult runJobIsolated(const core::CoreParams &params,
                           const tech::ClockModel &clock,
                           const BenchJob &job, const RunSpec &spec,
                           const util::CancelToken *cancel = nullptr);

/**
 * Validate the suite-level inputs of runSuite (job list, spec, params,
 * clock), throwing ConfigError exactly as runSuite would.  Exposed so
 * the parallel engine can fail fast before fanning out.
 */
void validateSuiteInputs(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const std::vector<BenchJob> &jobs,
                         const RunSpec &spec);

/**
 * Canonical byte-exact rendering of a suite: every field of every row,
 * doubles in hexfloat so no precision is lost.  Two SuiteResults are
 * bit-for-bit identical iff their serializations compare equal — the
 * determinism contract of the parallel engine is stated (and tested)
 * in terms of this string.
 */
std::string serializeSuite(const SuiteResult &suite);

/** Run one profile; throws SimError on failure. */
BenchResult runBenchmark(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const trace::BenchmarkProfile &profile,
                         const RunSpec &spec);

/**
 * Print the per-benchmark table (failed rows show their error code),
 * failure details, and harmonic means over the survivors.
 */
void printSuite(std::ostream &os, const SuiteResult &suite);

} // namespace fo4::study

#endif // FO4_STUDY_RUNNER_HH
