/**
 * @file
 * Pipeline scaling (paper Section 3.3): given an amount of useful logic
 * per stage, derive the complete core configuration — every structure's
 * access penalty in cycles, every functional unit's latency, and the
 * depth of every pipeline segment — using the quantization rule
 * cycles = ceil(latency_fo4 / t_useful).
 */

#ifndef FO4_STUDY_SCALING_HH
#define FO4_STUDY_SCALING_HH

#include "cacti/structures.hh"
#include "core/params.hh"
#include "tech/clocking.hh"

namespace fo4::study
{

/** Knobs of the scaling study. */
struct ScalingOptions
{
    /** Structure capacities; defaults are the Alpha 21264 configuration
     *  of paper Section 3.1 (64KB DL1, 2MB L2, 512-entry register file,
     *  32-entry window). */
    std::uint64_t dl1Bytes = 64 * 1024;
    std::uint64_t l2Bytes = 2 * 1024 * 1024;
    int windowEntries = 32;

    /** Use the flat Cray-1S memory system (Section 4.2) instead of the
     *  two-level hierarchy. */
    bool crayMemory = false;

    /** Latency of one logic stage of decode/commit logic, in FO4: one
     *  Alpha 21264 pipeline stage's worth. */
    double baseStageFo4 = tech::alpha21264PeriodFo4;

    /** Window pipelining (Section 5); wakeupStages > 1 replaces the
     *  monolithic window access latency with a segmented design whose
     *  wakeup loop is a single cycle per stage. */
    core::WindowConfig window;

    /** Critical-loop extensions, passed through to the core (Fig 8). */
    int extraMispredictPenalty = 0;
    int extraLoadUse = 0;
    int extraWakeup = 0;

    /**
     * Global wire latency in FO4 (an extension of the paper's "effects
     * of slower wires" future work, Section 7): cross-chip wires on the
     * fetch-redirect path and the L2 access path do not shrink with the
     * pipeline, so each scaled clock pays ceil(wire/t) extra cycles on
     * both.  The Pentium 4's two drive stages correspond to roughly
     * 20-40 FO4.
     */
    double wirePenaltyFo4 = 0.0;
};

/**
 * Build the core configuration for a pipeline clocked at tUseful FO4 of
 * logic per stage.
 */
core::CoreParams scaledCoreParams(double tUseful,
                                  const ScalingOptions &options = {},
                                  const cacti::StructureModel &model =
                                      cacti::StructureModel{});

/** The clock (frequency) that goes with a scaled configuration. */
tech::ClockModel scaledClock(double tUseful,
                             const tech::OverheadModel &overhead =
                                 tech::OverheadModel::paperDefault());

} // namespace fo4::study

#endif // FO4_STUDY_SCALING_HH
