/**
 * @file
 * Parallel sweep-execution engine.  Every figure in the paper is a
 * (benchmark x clock-period) grid of independent simulations; this
 * module fans that grid across a util::ThreadPool and merges the
 * results back in grid order.
 *
 * Determinism contract (tested by test_parallel_runner):
 *
 *  - each grid cell is simulated by study::runJobIsolated, the exact
 *    code path of the serial runSuite, on a private core, trace source
 *    and RNG — cells share no mutable state;
 *  - each cell writes only its own preallocated result slot, so the
 *    merged SuiteResult is ordered by job index, never by completion
 *    order — including failed rows, whose position and typed error are
 *    identical to the serial run's;
 *  - therefore runSuite/runGrid/sweepScaling produce results that are
 *    bit-for-bit identical (serializeSuite-equal) at every thread
 *    count, 1 thread being exactly the serial engine.
 *
 * Fault isolation is per cell: a DeadlockError or corrupt trace in one
 * cell is recorded in that cell's BenchResult and no sibling — in the
 * same suite or any other sweep point — is disturbed.  Suite-level
 * misconfiguration (empty job list, invalid params/spec/clock) throws
 * before any work is fanned out, exactly like the serial runner.
 */

#ifndef FO4_STUDY_PARALLEL_HH
#define FO4_STUDY_PARALLEL_HH

#include <vector>

#include "cacti/latency_cache.hh"
#include "study/runner.hh"
#include "study/scaling.hh"

namespace fo4::study
{

/** One fully-specified sweep point: a core configuration and its clock. */
struct GridPoint
{
    core::CoreParams params;
    tech::ClockModel clock;
};

/** Wall-clock profile of one executed grid cell. */
struct CellProfile
{
    std::size_t point = 0;
    std::size_t job = 0;
    double wallMs = 0.0;
};

/**
 * Engineering profile of a whole grid run: per-cell wall times (in
 * completion order — timing is scheduling-dependent, so this is
 * diagnostics, never part of the byte-identity contract), the run's
 * wall time, and the latency-cache activity it generated.
 */
struct GridProfile
{
    std::vector<CellProfile> cells;
    double wallMs = 0.0;
    /** LatencyCache::global() stats delta across the run. */
    cacti::LatencyCacheStats cacheDelta;
};

/**
 * Fans suites and sweep grids across a fixed number of threads.
 * `threads == 1` (the default) is strictly serial; `threads <= 0`
 * selects the hardware thread count.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(int threads = 1);

    /** Actual parallelism this runner fans out to (>= 1). */
    int threads() const { return nThreads; }

    /** Parallel drop-in for study::runSuite: same validation, same
     *  per-job isolation, same result, faster. */
    SuiteResult runSuite(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const std::vector<BenchJob> &jobs,
                         const RunSpec &spec) const;

    /** Convenience overload: every profile becomes a plain job. */
    SuiteResult runSuite(const core::CoreParams &params,
                         const tech::ClockModel &clock,
                         const std::vector<trace::BenchmarkProfile>
                             &profiles,
                         const RunSpec &spec) const;

    /**
     * Run the full (point x job) grid: one SuiteResult per GridPoint, in
     * point order.  All cells of all points share one fan-out, so a
     * point with a slow benchmark does not serialize the points after
     * it.  Throws ConfigError if any point's inputs are invalid (before
     * any simulation starts).
     *
     * `profile` (optional) receives per-cell wall times and the
     * latency-cache stats delta; it does not influence results.
     */
    std::vector<SuiteResult> runGrid(const std::vector<GridPoint> &points,
                                     const std::vector<BenchJob> &jobs,
                                     const RunSpec &spec,
                                     GridProfile *profile = nullptr) const;

  private:
    int nThreads;
};

/** One solved point of a scaling sweep. */
struct SweepPointResult
{
    double tUseful = 0.0;
    tech::ClockModel clock;
    SuiteResult suite;
};

/** Knobs of sweepScaling beyond the t_useful axis. */
struct SweepOptions
{
    /** Structure capacities, memory system, window — per Section 3. */
    ScalingOptions scaling;
    /** Clocking overhead applied at every point (Table 1 default). */
    tech::OverheadModel overhead = tech::OverheadModel::paperDefault();
    /** Worker threads; 1 = serial, <= 0 = hardware thread count. */
    int threads = 1;
};

/**
 * The paper's standard experiment: scale the pipeline to each t_useful,
 * run every job at every depth, and return the points in sweep order.
 * This is the parallel engine behind the figure benches (Fig 4/5/6)
 * and pipeline_explorer.
 */
std::vector<SweepPointResult>
sweepScaling(const std::vector<double> &tUseful, const SweepOptions &options,
             const std::vector<BenchJob> &jobs, const RunSpec &spec);

/** Convenience overload for profile lists. */
std::vector<SweepPointResult>
sweepScaling(const std::vector<double> &tUseful, const SweepOptions &options,
             const std::vector<trace::BenchmarkProfile> &profiles,
             const RunSpec &spec);

} // namespace fo4::study

#endif // FO4_STUDY_PARALLEL_HH
