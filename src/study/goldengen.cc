#include "study/goldengen.hh"

#include <memory>
#include <utility>

#include "study/scaling.hh"
#include "trace/generator.hh"
#include "trace/recorder.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::study
{

namespace
{

std::unique_ptr<core::Core>
buildCore(const core::CoreParams &params, const RunSpec &spec)
{
    if (spec.impl == SimImpl::Batched) {
        return spec.model == CoreModel::OutOfOrder
                   ? core::makeBatchedOooCore(params, spec.predictor)
                   : core::makeBatchedInorderCore(params, spec.predictor);
    }
    return spec.model == CoreModel::OutOfOrder
               ? core::makeOooCore(params, spec.predictor)
               : core::makeInorderCore(params, spec.predictor);
}

std::string
u64String(std::uint64_t v)
{
    return util::strprintf("%llu", static_cast<unsigned long long>(v));
}

std::uint64_t
metaU64(const trace::RecordedTrace &capture, const std::string &key,
        std::uint64_t fallback)
{
    const std::string text = capture.metaValue(key);
    if (text.empty())
        return fallback;
    try {
        return std::stoull(text);
    } catch (const std::exception &) {
        throw util::ConfigError(util::strprintf(
            "capture meta '%s' is not a number: '%s'", key.c_str(),
            text.c_str()));
    }
}

/** C++ enumerator spelling for a BenchClass, for generated sources. */
const char *
benchClassEnumerator(trace::BenchClass cls)
{
    switch (cls) {
      case trace::BenchClass::Integer:
        return "Integer";
      case trace::BenchClass::VectorFp:
        return "VectorFp";
      case trace::BenchClass::NonVectorFp:
        return "NonVectorFp";
    }
    return "Integer";
}

/** Escapes `text` for embedding inside a C string literal. */
std::string
escapeCString(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 16);
    for (const char c : text) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** "164.gzip.fo4cap" -> "164_gzip" (identifier-safe stem). */
std::string
sanitizedStem(const std::string &fileName)
{
    std::string stem = fileName;
    const std::string suffix = ".fo4cap";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        stem.resize(stem.size() - suffix.size());
    }
    std::string out;
    for (const char c : stem) {
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9');
        out += alnum ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), 'g');
    return out;
}

/** "164_gzip" -> "164Gzip" (gtest suite fragment). */
std::string
camelCased(const std::string &stem)
{
    std::string out;
    bool upper = true;
    for (const char c : stem) {
        if (c == '_') {
            upper = true;
            continue;
        }
        out += upper && c >= 'a' && c <= 'z'
                   ? static_cast<char>(c - 'a' + 'A')
                   : c;
        upper = false;
    }
    return out;
}

/** The depth every golden pins: the paper's 6 FO4 optimum. */
constexpr double kGoldenDepth = 6.0;

/** Replay `path` the exact way a generated golden test does. */
std::string
runGoldenSuite(const std::string &path, const std::string &name,
               trace::BenchClass cls, RunSpec spec, SimImpl impl,
               int extraLoadUse)
{
    ScalingOptions options;
    options.extraLoadUse = extraLoadUse;
    const core::CoreParams params =
        scaledCoreParams(kGoldenDepth, options);
    const tech::ClockModel clock = scaledClock(kGoldenDepth);
    spec.impl = impl;
    const BenchJob job = BenchJob::fromTraceFile(name, cls, path);
    return serializeSuite(runSuite(params, clock, {job}, spec));
}

} // namespace

CoreModel
coreModelFromName(const std::string &name)
{
    if (name == "ooo")
        return CoreModel::OutOfOrder;
    if (name == "inorder")
        return CoreModel::InOrder;
    throw util::ConfigError(util::strprintf(
        "unknown core model '%s' (want ooo | inorder)", name.c_str()));
}

const char *
coreModelName(CoreModel model)
{
    return model == CoreModel::OutOfOrder ? "ooo" : "inorder";
}

trace::BenchClass
benchClassFromName(const std::string &name)
{
    for (const trace::BenchClass cls :
         {trace::BenchClass::Integer, trace::BenchClass::VectorFp,
          trace::BenchClass::NonVectorFp}) {
        if (name == trace::benchClassName(cls))
            return cls;
    }
    throw util::ConfigError(util::strprintf(
        "unknown benchmark class '%s'", name.c_str()));
}

CaptureInfo
recordCapture(const std::string &path, const CaptureRequest &request)
{
    const util::Status specStatus = request.spec.validate();
    if (!specStatus.isOk())
        throw util::ConfigError(specStatus.message());
    const util::Status profileStatus = request.profile.validate();
    if (!profileStatus.isOk())
        throw util::ConfigError(profileStatus.message());

    trace::Recorder recorder(std::make_unique<trace::SyntheticTraceGenerator>(
        request.profile));
    std::unique_ptr<core::Core> core =
        buildCore(request.params, request.spec);
    core->setRetireSink(&recorder);

    CaptureInfo info;
    info.sim = core->run(recorder, request.spec.instructions,
                         request.spec.warmup, request.spec.prewarm,
                         request.spec.cycleLimit);
    core->setRetireSink(nullptr);
    recorder.pad(request.margin);

    trace::CaptureMeta meta;
    meta.emplace_back("benchmark", request.profile.name);
    meta.emplace_back("class",
                      trace::benchClassName(request.profile.cls));
    meta.emplace_back("model", coreModelName(request.spec.model));
    meta.emplace_back("predictor", request.spec.predictor);
    meta.emplace_back("instructions",
                      u64String(request.spec.instructions));
    meta.emplace_back("warmup", u64String(request.spec.warmup));
    meta.emplace_back("prewarm", u64String(request.spec.prewarm));
    meta.emplace_back("margin", u64String(request.margin));
    recorder.writeCapture(path, meta);

    info.capturedOps = recorder.captured().size();
    info.retiredOps = recorder.retiredOps();
    return info;
}

RunSpec
specFromCaptureMeta(const trace::RecordedTrace &capture)
{
    RunSpec spec;
    spec.model = coreModelFromName(capture.metaValue("model", "ooo"));
    spec.predictor = capture.metaValue("predictor", spec.predictor);
    spec.instructions =
        metaU64(capture, "instructions", spec.instructions);
    spec.warmup = metaU64(capture, "warmup", spec.warmup);
    spec.prewarm = metaU64(capture, "prewarm", spec.prewarm);
    return spec;
}

GoldenTest
generateGoldenTest(const std::string &capturePath,
                   const std::string &captureFileName)
{
    const trace::RecordedTrace capture(capturePath);
    const std::string stem = sanitizedStem(captureFileName);
    const std::string bench =
        capture.metaValue("benchmark", stem);
    const trace::BenchClass cls =
        benchClassFromName(capture.metaValue("class", "integer"));
    const RunSpec spec = specFromCaptureMeta(capture);

    const std::string pinned = runGoldenSuite(
        capturePath, bench, cls, spec, SimImpl::Reference, 0);
    // A golden of a failed row would pin the failure forever; refuse.
    if (pinned.find("|Ok|") == std::string::npos) {
        throw util::ConfigError(util::strprintf(
            "capture '%s' does not replay cleanly; refusing to pin: %s",
            capturePath.c_str(), pinned.c_str()));
    }

    GoldenTest test;
    test.cmakeName = "golden_" + stem;
    test.testName = "Golden" + camelCased(stem);
    test.fileName = test.cmakeName + ".cc";

    std::string src;
    src += "// " + test.fileName + " — generated by `fo4trace gen` from " +
           captureFileName + ".\n";
    src += "// Do not edit: regenerate with `fo4trace gen` (README, "
           "\"Golden update\n"
           "// policy\").  The pinned row is the serializeSuite output "
           "of replaying\n"
           "// the capture at the paper's 6 FO4 optimum under the "
           "reference\n"
           "// implementation; hexfloat keeps the pin bit-exact.\n\n";
    src += "#include <gtest/gtest.h>\n\n#include <string>\n\n";
    src += "#include \"study/runner.hh\"\n";
    src += "#include \"study/scaling.hh\"\n";
    src += "#include \"trace/profile.hh\"\n\n";
    src += "namespace\n{\n\nusing namespace fo4;\n\n";
    src += "const char kCapture[] = FO4_CAPTURE_DIR \"/" +
           captureFileName + "\";\n\n";
    src += "const char kPinned[] = \"" + escapeCString(pinned) +
           "\";\n\n";
    src += "std::string\nrunGolden(study::SimImpl impl, int "
           "extraLoadUse)\n{\n";
    src += "    study::ScalingOptions options;\n";
    src += "    options.extraLoadUse = extraLoadUse;\n";
    src += "    const core::CoreParams params =\n"
           "        study::scaledCoreParams(6.0, options);\n";
    src += "    const tech::ClockModel clock = "
           "study::scaledClock(6.0);\n\n";
    src += "    study::RunSpec spec;\n";
    src += util::strprintf(
        "    spec.model = study::CoreModel::%s;\n",
        spec.model == CoreModel::OutOfOrder ? "OutOfOrder" : "InOrder");
    src += "    spec.predictor = \"" + spec.predictor + "\";\n";
    src += "    spec.instructions = " + u64String(spec.instructions) +
           ";\n";
    src += "    spec.warmup = " + u64String(spec.warmup) + ";\n";
    src += "    spec.prewarm = " + u64String(spec.prewarm) + ";\n";
    src += "    spec.impl = impl;\n\n";
    src += "    const study::BenchJob job = "
           "study::BenchJob::fromTraceFile(\n";
    src += "        \"" + escapeCString(bench) +
           "\", trace::BenchClass::" +
           std::string(benchClassEnumerator(cls)) + ", kCapture);\n";
    src += "    return study::serializeSuite(\n"
           "        study::runSuite(params, clock, {job}, spec));\n}\n\n";
    src += "} // namespace\n\n";
    src += "TEST(" + test.testName + ", ReferenceImplMatchesPinnedRow)\n";
    src += "{\n    EXPECT_EQ(kPinned, "
           "runGolden(study::SimImpl::Reference, 0));\n}\n\n";
    src += "TEST(" + test.testName + ", BatchedImplMatchesPinnedRow)\n";
    src += "{\n    EXPECT_EQ(kPinned, "
           "runGolden(study::SimImpl::Batched, 0));\n}\n\n";
    src += "TEST(" + test.testName + ", NegativeControlOffByOneBreaksThePin)\n";
    src += "{\n    // One extra load-use cycle must perturb the pinned "
           "row — proof the\n    // golden is sensitive to a real core "
           "change.\n";
    src += "    EXPECT_NE(kPinned, "
           "runGolden(study::SimImpl::Reference, 1));\n";
    src += "    EXPECT_NE(kPinned, "
           "runGolden(study::SimImpl::Batched, 1));\n}\n";
    test.source = src;
    return test;
}

std::string
generateGoldenCmake(const std::vector<GoldenTest> &tests)
{
    std::string out;
    out += "# goldens.cmake — generated by `fo4trace gen`.  Do not "
           "edit; regenerate\n"
           "# from the captures in tests/data/ (README, \"Golden "
           "update policy\").\n";
    out += "include(GoogleTest)\n\n";
    out += "foreach(fo4_golden\n";
    for (const GoldenTest &test : tests)
        out += "    " + test.cmakeName + "\n";
    out += ")\n";
    out += "    add_executable(${fo4_golden}\n"
           "        \"${CMAKE_CURRENT_LIST_DIR}/${fo4_golden}.cc\")\n";
    out += "    target_link_libraries(${fo4_golden} PRIVATE fo4pipe\n"
           "        GTest::gtest GTest::gtest_main)\n";
    out += "    target_compile_definitions(${fo4_golden} PRIVATE\n"
           "        FO4_CAPTURE_DIR=\"${CMAKE_CURRENT_LIST_DIR}/"
           "../data\")\n";
    out += "    gtest_discover_tests(${fo4_golden} DISCOVERY_TIMEOUT "
           "60\n        PROPERTIES TIMEOUT 300)\nendforeach()\n";
    return out;
}

} // namespace fo4::study
