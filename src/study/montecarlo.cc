#include "study/montecarlo.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace fo4::study
{

const char *
mcDistName(McDist dist)
{
    switch (dist) {
      case McDist::Normal: return "normal";
      case McDist::Lognormal: return "lognormal";
    }
    return "?";
}

McDist
mcDistFromName(const std::string &name)
{
    if (name == "normal")
        return McDist::Normal;
    if (name == "lognormal")
        return McDist::Lognormal;
    throw util::ConfigError("unknown mc_dist '" + name +
                            "' (expected normal or lognormal)");
}

bool
VariationModel::zeroSigma() const
{
    return sigmaLatch == 0.0 && sigmaSkew == 0.0 && sigmaJitter == 0.0 &&
           sigmaDie == 0.0;
}

util::Status
VariationModel::validate() const
{
    util::ErrorCollector errs;
    const struct
    {
        const char *name;
        double value;
    } sigmas[] = {{"mc_sigma_latch", sigmaLatch},
                  {"mc_sigma_skew", sigmaSkew},
                  {"mc_sigma_jitter", sigmaJitter},
                  {"mc_sigma_die", sigmaDie}};
    for (const auto &s : sigmas) {
        if (!std::isfinite(s.value))
            errs.addf("%s must be finite (got %g)", s.name, s.value);
        else if (s.value < 0.0)
            errs.addf("%s cannot be negative (got %g)", s.name, s.value);
    }
    if (samples < 1)
        errs.addf("mc_samples %d must be at least 1", samples);
    return errs.status(util::ErrorCode::InvalidConfig);
}

int
pipelineStageCount(const core::CoreParams &params)
{
    // Latch boundaries of the scaled design: the in-order front end and
    // back end segments, the issue-wakeup loop, and the (possibly
    // segmented) window wakeup stages.  Every one is a latch-to-latch
    // path that draws its own overhead sample.
    const int stages = params.fetchStages + params.decodeStages +
                       params.renameStages + params.regReadStages +
                       params.issueLatency + params.window.wakeupStages +
                       params.commitStages;
    return stages < 1 ? 1 : stages;
}

namespace
{

/** Maximum deterministic redraws of one die before the sigma is
 *  declared physically absurd. */
constexpr std::uint64_t kMaxRejectedAttempts = 64;

/** One stage's sampled overhead decomposition. */
struct StageDraw
{
    double latch = 0.0;
    double skew = 0.0;
    double jitter = 0.0;

    double total() const { return latch + skew + jitter; }
    bool valid() const
    {
        return latch >= 0.0 && skew >= 0.0 && jitter >= 0.0;
    }
};

/**
 * Sample one component: additive sigma under Normal, multiplicative
 * shape under Lognormal.  The zero-sigma identities are bit-exact:
 * nominal + 0.0 * z == nominal and nominal * exp(0.0) == nominal.
 */
double
sampleComponent(McDist dist, double nominal, double z)
{
    if (dist == McDist::Lognormal)
        return nominal * std::exp(z);
    return nominal + z;
}

} // namespace

tech::OverheadModel
sampleOverhead(const VariationModel &variation,
               const tech::OverheadModel &nominal, int stages,
               std::size_t point, std::size_t sample)
{
    if (variation.zeroSigma())
        return nominal;
    FO4_ASSERT(stages >= 1, "a pipeline has at least one stage");

    const util::RandomStream die =
        util::RandomStream::root(variation.seed)
            .child(static_cast<std::uint64_t>(point))
            .child(static_cast<std::uint64_t>(sample));

    for (std::uint64_t attempt = 0; attempt < kMaxRejectedAttempts;
         ++attempt) {
        const util::RandomStream draw = die.child(attempt);

        // Die-level systematic: one z shared by every stage, carried by
        // the latch component — latch delay is the transistor-speed-
        // sensitive part of the overhead, so a chip-wide process corner
        // shifts it on every stage at once.
        const double zDie = draw.normal(0, 0.0, 1.0);
        const double dieLatch = variation.sigmaDie * zDie;

        StageDraw worst;
        bool haveWorst = false;
        bool rejected = false;
        for (int s = 0; s < stages; ++s) {
            const util::RandomStream stage =
                draw.child(1 + static_cast<std::uint64_t>(s));
            StageDraw d;
            d.latch = sampleComponent(
                variation.dist, nominal.latchFo4,
                stage.normal(0, 0.0, variation.sigmaLatch) + dieLatch);
            d.skew = sampleComponent(variation.dist, nominal.skewFo4,
                                     stage.normal(1, 0.0,
                                                  variation.sigmaSkew));
            d.jitter = sampleComponent(
                variation.dist, nominal.jitterFo4,
                stage.normal(2, 0.0, variation.sigmaJitter));
            if (!d.valid()) {
                rejected = true;
                break;
            }
            if (!haveWorst || d.total() > worst.total()) {
                worst = d;
                haveWorst = true;
            }
        }
        if (rejected)
            continue;
        return tech::OverheadModel::validated(worst.latch, worst.skew,
                                              worst.jitter);
    }
    throw util::ConfigError(
        "Monte Carlo overhead sampling rejected " +
        std::to_string(kMaxRejectedAttempts) +
        " consecutive draws at point " + std::to_string(point) +
        ", sample " + std::to_string(sample) +
        ": the configured sigmas make negative overheads routine; "
        "reduce mc_sigma_* or use mc_dist=lognormal");
}

std::vector<GridPoint>
expandMonteCarloGrid(const std::vector<GridPoint> &base,
                     const VariationModel &variation)
{
    const util::Status st = variation.validate();
    if (!st.isOk())
        throw util::ConfigError(st.message());

    std::vector<GridPoint> expanded;
    expanded.reserve(base.size() *
                     static_cast<std::size_t>(variation.samples));
    for (int s = 0; s < variation.samples; ++s) {
        for (std::size_t p = 0; p < base.size(); ++p) {
            GridPoint die = base[p];
            die.clock.overhead = sampleOverhead(
                variation, base[p].clock.overhead,
                pipelineStageCount(base[p].params), p,
                static_cast<std::size_t>(s));
            expanded.push_back(std::move(die));
        }
    }
    return expanded;
}

double
McSweepResult::optimumTUseful() const
{
    double best = 0.0;
    double bestBips = -1.0;
    for (const McPointResult &pt : points) {
        if (pt.all.meanBips > bestBips) {
            bestBips = pt.all.meanBips;
            best = pt.tUseful;
        }
    }
    return best;
}

namespace
{

/** Streams one class's per-die BIPS values in sample order. */
struct BandAccumulator
{
    util::StreamingMoments moments;
    util::P2Quantile p5{0.05};
    util::P2Quantile p95{0.95};

    void
    add(double bips)
    {
        moments.add(bips);
        p5.add(bips);
        p95.add(bips);
    }

    McBand
    band() const
    {
        McBand b;
        b.samples = moments.count();
        b.meanBips = moments.mean();
        b.stddevBips = moments.stddev();
        b.p5Bips = p5.value();
        b.p95Bips = p95.value();
        return b;
    }
};

} // namespace

MonteCarloRunner::MonteCarloRunner(McOptions options)
    : opts(std::move(options))
{
    const util::Status st = opts.variation.validate();
    if (!st.isOk())
        throw util::ConfigError(st.message());
    nThreads = ParallelRunner(opts.threads).threads();
}

McSweepResult
MonteCarloRunner::run(const std::vector<double> &tUseful,
                      const std::vector<BenchJob> &jobs, const RunSpec &spec)
{
    // The base grid, derived exactly as study::sweepScaling derives it.
    std::vector<GridPoint> base;
    base.reserve(tUseful.size());
    for (double u : tUseful) {
        base.push_back({scaledCoreParams(u, opts.sweep.scaling),
                        scaledClock(u, opts.sweep.overhead)});
    }
    const std::vector<GridPoint> expanded =
        expandMonteCarloGrid(base, opts.variation);

    CheckpointOptions copts;
    copts.journalPath = opts.journalPath;
    copts.threads = opts.threads;
    copts.retry = opts.retry;
    copts.cancel = opts.cancel;
    copts.onAttempt = opts.onAttempt;
    CheckpointedRunner runner(copts);
    std::vector<SuiteResult> suites = runner.runGrid(expanded, jobs, spec);
    lastReport = runner.report();

    const std::size_t nBase = base.size();
    const std::size_t nSamples =
        static_cast<std::size_t>(opts.variation.samples);

    McSweepResult result;
    result.samples.resize(nSamples);
    for (std::size_t s = 0; s < nSamples; ++s) {
        result.samples[s].reserve(nBase);
        for (std::size_t p = 0; p < nBase; ++p) {
            SweepPointResult die;
            die.tUseful = tUseful[p];
            die.clock = expanded[s * nBase + p].clock;
            die.suite = std::move(suites[s * nBase + p]);
            result.samples[s].push_back(std::move(die));
        }
    }

    result.points.reserve(nBase);
    for (std::size_t p = 0; p < nBase; ++p) {
        McPointResult pt;
        pt.tUseful = tUseful[p];
        pt.nominalClock = base[p].clock;
        pt.stages = pipelineStageCount(base[p].params);

        // Dice are folded in sample order — a fixed order independent of
        // thread count, resume history and fabric sharding, so the
        // streamed statistics inherit the grid's byte-identity.
        BandAccumulator accInteger, accVector, accNonVector, accAll;
        std::size_t meetsNominal = 0;
        const double nominalPeriod = pt.nominalClock.periodFo4();
        for (std::size_t s = 0; s < nSamples; ++s) {
            const SweepPointResult &die = result.samples[s][p];
            accInteger.add(
                die.suite.harmonicBips(trace::BenchClass::Integer));
            accVector.add(
                die.suite.harmonicBips(trace::BenchClass::VectorFp));
            accNonVector.add(
                die.suite.harmonicBips(trace::BenchClass::NonVectorFp));
            accAll.add(die.suite.harmonicBipsAll());
            if (die.clock.periodFo4() <=
                nominalPeriod * (1.0 + kYieldGuardbandFraction))
                ++meetsNominal;
        }
        pt.integer = accInteger.band();
        pt.vectorFp = accVector.band();
        pt.nonVectorFp = accNonVector.band();
        pt.all = accAll.band();
        pt.yield = nSamples == 0
                       ? 0.0
                       : static_cast<double>(meetsNominal) /
                             static_cast<double>(nSamples);
        result.points.push_back(std::move(pt));
    }
    return result;
}

McSweepResult
MonteCarloRunner::run(const std::vector<double> &tUseful,
                      const std::vector<trace::BenchmarkProfile> &profiles,
                      const RunSpec &spec)
{
    std::vector<BenchJob> jobs;
    jobs.reserve(profiles.size());
    for (const auto &profile : profiles)
        jobs.push_back(BenchJob::fromProfile(profile));
    return run(tUseful, jobs, spec);
}

} // namespace fo4::study
