#ifndef FO4_STUDY_GOLDENGEN_HH
#define FO4_STUDY_GOLDENGEN_HH

/**
 * @file
 * Capture recording and golden-test generation for the fo4trace CLI.
 *
 * recordCapture() runs a benchmark with a trace::Recorder teed between
 * the synthetic generator and the core, verifying the retired stream
 * against the capture as it goes, then publishes the capture atomically
 * with enough metadata to reconstruct the run.
 *
 * generateGoldenTest() turns a committed capture into a self-contained
 * gtest source: the suite row of a replay run (computed now, under the
 * reference implementation, at the paper's 6 FO4 optimum) is pinned as
 * a string — doubles in hexfloat, so the pin is exact — and the
 * generated tests assert both sim_impls still reproduce it, plus a
 * negative control proving a one-cycle core change breaks the pin.
 * Generation is byte-deterministic: regenerating from the same capture
 * yields identical files, which is what the generated-goldens CI job
 * diffs against the committed tree.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/core.hh"
#include "study/runner.hh"
#include "trace/profile.hh"
#include "trace/recorded_trace.hh"

namespace fo4::study
{

/** What recordCapture() should record. */
struct CaptureRequest
{
    trace::BenchmarkProfile profile;
    core::CoreParams params;
    RunSpec spec;
    /**
     * Extra ops captured past the deepest fetch of the recording run,
     * so a replaying configuration with a hungrier front end still
     * finds recorded ops instead of wrapping early.
     */
    std::uint64_t margin = 4096;
};

/** What recordCapture() did. */
struct CaptureInfo
{
    std::uint64_t capturedOps = 0;
    std::uint64_t retiredOps = 0;
    core::SimResult sim;
};

/**
 * Records `request` to a capture file at `path` (atomically, via the
 * CaptureWriter tmp+rename protocol).  The retired stream is verified
 * op-for-op against the capture during the run; a divergence throws
 * TraceError(TraceCorrupt).
 */
CaptureInfo recordCapture(const std::string &path,
                          const CaptureRequest &request);

/** Parse a "ooo" / "inorder" model name; throws ConfigError. */
CoreModel coreModelFromName(const std::string &name);

/** Stable inverse of coreModelFromName. */
const char *coreModelName(CoreModel model);

/** Parse a benchClassName() string back; throws ConfigError. */
trace::BenchClass benchClassFromName(const std::string &name);

/**
 * Reconstructs the RunSpec a capture was recorded under from its
 * metadata (model/predictor/instructions/warmup/prewarm); fields the
 * capture lacks keep RunSpec defaults.
 */
RunSpec specFromCaptureMeta(const trace::RecordedTrace &capture);

/** One generated golden test. */
struct GoldenTest
{
    std::string cmakeName; ///< e.g. "golden_164_gzip" (target name)
    std::string testName;  ///< e.g. "Golden164Gzip" (gtest suite)
    std::string fileName;  ///< e.g. "golden_164_gzip.cc"
    std::string source;    ///< full file contents
};

/**
 * Generates the golden test for one capture.  `captureFileName` is the
 * basename the generated test will open under FO4_CAPTURE_DIR at test
 * time; `capturePath` is where the capture lives right now (used to
 * compute the pinned row).
 */
GoldenTest generateGoldenTest(const std::string &capturePath,
                              const std::string &captureFileName);

/** CMake fragment registering `tests` into ctest (tests/generated/). */
std::string generateGoldenCmake(const std::vector<GoldenTest> &tests);

} // namespace fo4::study

#endif // FO4_STUDY_GOLDENGEN_HH
