/**
 * @file
 * Throughput-optimized in-order core (`sim_impl=batched`): the same
 * cycle-level model as InorderCore — byte-identical results, pinned by
 * tests/test_core_differential.cc — restructured for raw speed:
 *
 *  - struct-of-arrays issue queue (the hot per-cycle scalars live in
 *    dense arrays, not an array of structs);
 *  - devirtualized trace reads when fed a trace::DecodedTraceView
 *    (packed records from the shared one-pass cache);
 *  - shared prewarm state via core::WarmStartCache, so a sweep column
 *    prewarms once instead of once per clock-period cell;
 *  - idle-span skipping: stall spans whose per-cycle accounting is
 *    provably constant (empty-queue refill shadows, scoreboard stalls
 *    under a full queue) are charged in bulk instead of walked.
 *
 * DESIGN.md §14 is the contract: none of these may change bytes.
 */

#ifndef FO4_CORE_BATCHED_INORDER_CORE_HH
#define FO4_CORE_BATCHED_INORDER_CORE_HH

#include <array>
#include <memory>
#include <vector>

#include "bp/predictor.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "trace/decoded_trace.hh"
#include "util/status.hh"

namespace fo4::core
{

/** The batched in-order pipeline model. */
class BatchedInorderCore : public Core
{
  public:
    /**
     * `predictorKey` names the predictor's factory configuration and
     * enables the shared warm-state cache; empty disables sharing (the
     * core then prewarms per run, still byte-identically).
     */
    BatchedInorderCore(const CoreParams &params,
                       std::unique_ptr<bp::BranchPredictor> predictor,
                       std::string predictorKey = "");

    SimResult run(trace::TraceSource &trace, std::uint64_t instructions,
                  std::uint64_t warmup = 0, std::uint64_t prewarm = 0,
                  std::uint64_t cycleLimit = 0,
                  const util::CancelToken *cancel = nullptr) override;

    const CoreParams &params() const override { return prm; }

    void setTracer(util::TraceEventRing *ring) override { tracer = ring; }

    void setRetireSink(trace::RetireSink *sink) override
    {
        retireSink = sink;
    }

  private:
    void doIssue(SimResult &result);
    void doFetch(SimResult &result);
    isa::MicroOp nextOp();
    /** Bulk-account a provably-idle span; returns cycles skipped. */
    std::int64_t skipIdleSpan(SimResult &result, OccupancySample &occ,
                              std::uint64_t limit);
    util::DeadlockDump watchdogDump(const SimResult &result,
                                    std::uint64_t total,
                                    std::uint64_t limit) const;

    CoreParams prm;
    std::unique_ptr<bp::BranchPredictor> bpred;
    std::string bpredKey;
    mem::MemoryHierarchy memory;

    // Issue queue, struct-of-arrays over a fixed ring.
    std::vector<isa::MicroOp> qOp;
    std::vector<std::int64_t> qIssueReady;
    std::vector<std::uint8_t> qMispredicted;
    std::size_t qHead = 0;
    std::size_t qSize = 0;
    std::size_t qCap = 0;

    std::size_t qAt(std::size_t i) const
    {
        const std::size_t p = qHead + i;
        return p >= qCap ? p - qCap : p;
    }

    std::array<std::int64_t, isa::numArchRegs> regEarliestUse{};
    std::array<StallCause, isa::numArchRegs> regPendingKind{};

    std::int64_t now = 0;
    std::int64_t fetchResumeCycle = 0;
    bool fetchHalted = false;
    int frontDepth = 2;
    std::int64_t mispredictShadowEnd = 0;
    StallCause stallReason = StallCause::FrontEnd;

    util::TraceEventRing *tracer = nullptr;

    trace::RetireSink *retireSink = nullptr;

    trace::TraceSource *source = nullptr;
    trace::DecodedTraceView *view = nullptr;
};

} // namespace fo4::core

#endif // FO4_CORE_BATCHED_INORDER_CORE_HH
