#include "core/inorder_core.hh"

#include "bp/predictors.hh"
#include "core/prewarm.hh"
#include "isa/opclass.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::core
{

namespace
{

/** Reject invalid parameters before any member is constructed. */
const CoreParams &
validated(const CoreParams &params)
{
    params.validateOrThrow();
    return params;
}

} // namespace

InorderCore::InorderCore(const CoreParams &params,
                         std::unique_ptr<bp::BranchPredictor> predictor)
    : prm(validated(params)), bpred(std::move(predictor)),
      memory(params.dl1, params.l2, params.memLatencies, params.memoryMode),
      // Unlike the decoupled out-of-order front end, a classic in-order
      // pipeline holds only the instructions inside its fetch/decode
      // stages plus one issue buffer, so fetch fragmentation (taken
      // branches, redirect bubbles) shows through to the issue stage.
      queue(static_cast<std::size_t>(params.fetchStages +
                                     params.decodeStages + 2) *
            params.fetchWidth)
{
    FO4_ASSERT(bpred != nullptr, "core needs a branch predictor");
    frontDepth = prm.fetchStages + prm.decodeStages;
}

void
InorderCore::doIssue(SimResult &result)
{
    int intLeft = prm.intIssueWidth;
    int fpLeft = prm.fpIssueWidth;
    int memLeft = prm.memIssueWidth;

    for (int i = 0; i < prm.renameWidth; ++i) {
        // Stall attribution covers only the *first* slot each cycle: a
        // cycle that issues nothing has exactly one oldest blocker, and
        // that is the cause charged by the run loop.
        if (queue.empty()) {
            if (i == 0)
                stallReason = (fetchHalted || now < mispredictShadowEnd)
                                  ? StallCause::BranchMispredict
                                  : StallCause::FrontEnd;
            return;
        }
        QueuedInst &qi = queue.front();
        if (qi.issueReady > now) {
            if (i == 0)
                stallReason = now < mispredictShadowEnd
                                  ? StallCause::BranchMispredict
                                  : StallCause::FrontEnd;
            return;
        }

        // Scoreboard: all sources must be bypassable at execute, and —
        // with no register renaming — a destination with a pending write
        // is a WAW hazard that stalls issue (classic scoreboard rule).
        for (const std::int16_t src : {qi.op.src1, qi.op.src2}) {
            if (src != isa::noReg && regEarliestUse[src] > now) {
                if (i == 0)
                    stallReason = regPendingKind[src];
                return;
            }
        }
        if (qi.op.dst != isa::noReg && regEarliestUse[qi.op.dst] > now) {
            if (i == 0)
                stallReason = StallCause::Other;
            return;
        }

        // Structural: one functional-unit slot per cycle per op.
        const bool fp = isa::isFloat(qi.op.cls);
        const bool memOp = isa::isMemory(qi.op.cls);
        if (i == 0)
            stallReason = StallCause::WindowFull; // fewer slots than ops
        if (fp) {
            if (fpLeft <= 0)
                return;
            --fpLeft;
        } else if (memOp) {
            if (memLeft <= 0 || intLeft <= 0)
                return;
            --memLeft;
            --intLeft;
        } else {
            if (intLeft <= 0)
                return;
            --intLeft;
        }

        // Issue.
        int depLat = prm.execLatency(qi.op.cls);
        bool dl1Missed = false;
        if (qi.op.isLoad()) {
            const std::uint64_t missesBefore = memory.dl1().misses();
            depLat = memory.loadLatency(qi.op.addr, now) + prm.extraLoadUse;
            dl1Missed = memory.dl1().misses() != missesBefore;
        } else if (qi.op.isStore()) {
            memory.storeLatency(qi.op.addr, now);
        }

        if (qi.op.dst != isa::noReg) {
            regEarliestUse[qi.op.dst] = now + depLat;
            regPendingKind[qi.op.dst] =
                qi.op.isLoad() ? (dl1Missed ? StallCause::DcacheMiss
                                            : StallCause::RawLoadUse)
                               : StallCause::Other;
        }

        if (qi.op.isBranch() && qi.mispredicted) {
            const std::int64_t resolve =
                now + prm.regReadStages + prm.execLatency(qi.op.cls) +
                prm.extraMispredictPenalty;
            fetchResumeCycle = resolve + 1;
            fetchHalted = false;
            // Empty-queue cycles until refilled instructions reach the
            // issue stage are still the mispredict's fault.
            mispredictShadowEnd = fetchResumeCycle + frontDepth;
        }

        if (tracer != nullptr && tracer->wants(now)) {
            const char *name = isa::opClassName(qi.op.cls);
            tracer->emit({name, "pipeline", 0, qi.issueReady - frontDepth,
                          frontDepth, qi.op.seq});
            if (now > qi.issueReady)
                tracer->emit({name, "pipeline", 1, qi.issueReady,
                              now - qi.issueReady, qi.op.seq});
            tracer->emit({name, "pipeline", 2, now, depLat, qi.op.seq});
        }

        if (retireSink != nullptr)
            retireSink->onRetire(qi.op);

        queue.popFront();
        ++result.instructions;
    }
}

void
InorderCore::doFetch(SimResult &result)
{
    if (fetchHalted || now < fetchResumeCycle)
        return;

    for (int i = 0; i < prm.fetchWidth; ++i) {
        if (queue.full())
            return;
        isa::MicroOp op = source->next();

        QueuedInst qi;
        qi.op = op;
        qi.issueReady = now + frontDepth;

        if (op.isBranch()) {
            ++result.branches;
            const bool predicted = bpred->predict(op);
            bpred->update(op, op.taken);
            if (predicted != op.taken) {
                ++result.mispredicts;
                qi.mispredicted = true;
                queue.pushBack(qi);
                fetchHalted = true;
                return;
            }
            queue.pushBack(qi);
            if (op.taken) {
                // Redirect bubble on correctly predicted taken branches.
                fetchResumeCycle = now + 2;
                return;
            }
            continue;
        }

        if (op.isLoad())
            ++result.loads;
        else if (op.isStore())
            ++result.stores;
        queue.pushBack(qi);
    }
}

SimResult
InorderCore::run(trace::TraceSource &trace, std::uint64_t instructions,
                 std::uint64_t warmup, std::uint64_t prewarm,
                 std::uint64_t cycleLimit, const util::CancelToken *cancel)
{
    if (instructions == 0)
        throw util::ConfigError("nothing to simulate (instructions=0)");
    trace.reset();
    now = 0;
    fetchResumeCycle = 0;
    fetchHalted = false;
    mispredictShadowEnd = 0;
    stallReason = StallCause::FrontEnd;
    regEarliestUse.fill(0);
    regPendingKind.fill(StallCause::Other);
    queue.clear();
    memory.reset();
    bpred->reset();
    if (prewarm > 0)
        prewarmState(trace, prewarm, memory, *bpred);
    source = &trace;

    const std::uint64_t total = warmup + instructions;
    SimResult result;
    SimResult atWarmup;
    bool warmupDone = warmup == 0;
    const std::uint64_t dl1Miss0 = memory.dl1().misses();
    const std::uint64_t l2Miss0 = memory.l2().misses();

    // Occupancy integrals accumulate in locals so the sim loop updates
    // registers, not SimResult fields pinned in memory by the &result
    // calls below; they are flushed at the warmup snapshot and at exit.
    OccupancySample occ;
    const std::uint64_t limit =
        cycleLimit ? cycleLimit : total * 1000 + 100000;
    while (result.instructions < total) {
        const std::uint64_t issuedBefore = result.instructions;
        doIssue(result);
        if (result.instructions == issuedBefore) {
            // Zero-issue cycle: charge exactly one cause, so the
            // per-cause counts partition stallCycles exactly.
            ++result.stallCycles;
            ++result.stalls[stallReason];
        }
        occ.frontSum += queue.size();
        ++occ.cycles;
        if (!warmupDone && result.instructions >= warmup) {
            result.occupancy = occ;
            atWarmup = result;
            atWarmup.cycles = static_cast<std::uint64_t>(now);
            atWarmup.dl1Misses = memory.dl1().misses() - dl1Miss0;
            atWarmup.l2Misses = memory.l2().misses() - l2Miss0;
            warmupDone = true;
        }
        if (result.instructions >= total)
            break;
        doFetch(result);
        ++now;
        if (static_cast<std::uint64_t>(now) >= limit) {
            source = nullptr;
            throw util::DeadlockError(watchdogDump(result, total, limit));
        }
        // Cancellation rides the watchdog check: same cadence, same
        // cleanup, but a CancelledError — the run is abandoned, not
        // diagnosed as hung.
        if (cancel && cancel->cancelled()) {
            source = nullptr;
            throw util::CancelledError(util::strprintf(
                "in-order simulation cancelled at cycle %lld after "
                "%llu of %llu instructions",
                static_cast<long long>(now),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(total)));
        }
    }

    // Account for the tail of the pipeline: the final instruction still
    // traverses register read, execute, write back and commit.
    result.occupancy = occ;
    result.cycles = static_cast<std::uint64_t>(
        now + prm.regReadStages + 1 + prm.commitStages);
    result.dl1Misses = memory.dl1().misses() - dl1Miss0;
    result.l2Misses = memory.l2().misses() - l2Miss0;
    source = nullptr;
    return result - atWarmup;
}

util::DeadlockDump
InorderCore::watchdogDump(const SimResult &result, std::uint64_t total,
                          std::uint64_t limit) const
{
    util::DeadlockDump dump;
    dump.model = "in-order";
    dump.cycle = now;
    dump.cycleLimit = limit;
    dump.committed = result.instructions;
    dump.target = total;
    dump.queueOccupancy = queue.size();
    if (!queue.empty()) {
        const QueuedInst &front = queue.front();
        dump.oldestStalled = util::strprintf(
            "%s issueReady=%lld%s (fetch %s, resumes cycle %lld)",
            isa::opClassName(front.op.cls),
            static_cast<long long>(front.issueReady),
            front.mispredicted ? " [mispredicted]" : "",
            fetchHalted ? "halted" : "running",
            static_cast<long long>(fetchResumeCycle));
    }
    return dump;
}

std::unique_ptr<Core>
makeInorderCore(const CoreParams &params, const std::string &predictor)
{
    return std::make_unique<InorderCore>(params,
                                         bp::makePredictor(predictor));
}

} // namespace fo4::core
