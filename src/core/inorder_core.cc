#include "core/inorder_core.hh"

#include "bp/predictors.hh"
#include "core/prewarm.hh"
#include "util/logging.hh"

namespace fo4::core
{

InorderCore::InorderCore(const CoreParams &params,
                         std::unique_ptr<bp::BranchPredictor> predictor)
    : prm(params), bpred(std::move(predictor)),
      memory(params.dl1, params.l2, params.memLatencies, params.memoryMode),
      // Unlike the decoupled out-of-order front end, a classic in-order
      // pipeline holds only the instructions inside its fetch/decode
      // stages plus one issue buffer, so fetch fragmentation (taken
      // branches, redirect bubbles) shows through to the issue stage.
      queue(static_cast<std::size_t>(params.fetchStages +
                                     params.decodeStages + 2) *
            params.fetchWidth)
{
    prm.validate();
    FO4_ASSERT(bpred != nullptr, "core needs a branch predictor");
    frontDepth = prm.fetchStages + prm.decodeStages;
}

void
InorderCore::doIssue(SimResult &result)
{
    int intLeft = prm.intIssueWidth;
    int fpLeft = prm.fpIssueWidth;
    int memLeft = prm.memIssueWidth;

    for (int i = 0; i < prm.renameWidth; ++i) {
        if (queue.empty())
            return;
        QueuedInst &qi = queue.front();
        if (qi.issueReady > now)
            return;

        // Scoreboard: all sources must be bypassable at execute, and —
        // with no register renaming — a destination with a pending write
        // is a WAW hazard that stalls issue (classic scoreboard rule).
        for (const std::int16_t src : {qi.op.src1, qi.op.src2}) {
            if (src != isa::noReg && regEarliestUse[src] > now)
                return;
        }
        if (qi.op.dst != isa::noReg && regEarliestUse[qi.op.dst] > now)
            return;

        // Structural: one functional-unit slot per cycle per op.
        const bool fp = isa::isFloat(qi.op.cls);
        const bool memOp = isa::isMemory(qi.op.cls);
        if (fp) {
            if (fpLeft <= 0)
                return;
            --fpLeft;
        } else if (memOp) {
            if (memLeft <= 0 || intLeft <= 0)
                return;
            --memLeft;
            --intLeft;
        } else {
            if (intLeft <= 0)
                return;
            --intLeft;
        }

        // Issue.
        int depLat = prm.execLatency(qi.op.cls);
        if (qi.op.isLoad())
            depLat = memory.loadLatency(qi.op.addr, now) + prm.extraLoadUse;
        else if (qi.op.isStore())
            memory.storeLatency(qi.op.addr, now);

        if (qi.op.dst != isa::noReg)
            regEarliestUse[qi.op.dst] = now + depLat;

        if (qi.op.isBranch() && qi.mispredicted) {
            const std::int64_t resolve =
                now + prm.regReadStages + prm.execLatency(qi.op.cls) +
                prm.extraMispredictPenalty;
            fetchResumeCycle = resolve + 1;
            fetchHalted = false;
        }

        queue.popFront();
        ++result.instructions;
    }
}

void
InorderCore::doFetch(SimResult &result)
{
    if (fetchHalted || now < fetchResumeCycle)
        return;

    for (int i = 0; i < prm.fetchWidth; ++i) {
        if (queue.full())
            return;
        isa::MicroOp op = source->next();

        QueuedInst qi;
        qi.op = op;
        qi.issueReady = now + frontDepth;

        if (op.isBranch()) {
            ++result.branches;
            const bool predicted = bpred->predict(op);
            bpred->update(op, op.taken);
            if (predicted != op.taken) {
                ++result.mispredicts;
                qi.mispredicted = true;
                queue.pushBack(qi);
                fetchHalted = true;
                return;
            }
            queue.pushBack(qi);
            if (op.taken) {
                // Redirect bubble on correctly predicted taken branches.
                fetchResumeCycle = now + 2;
                return;
            }
            continue;
        }

        if (op.isLoad())
            ++result.loads;
        else if (op.isStore())
            ++result.stores;
        queue.pushBack(qi);
    }
}

SimResult
InorderCore::run(trace::TraceSource &trace, std::uint64_t instructions,
                 std::uint64_t warmup, std::uint64_t prewarm)
{
    FO4_ASSERT(instructions > 0, "nothing to simulate");
    trace.reset();
    now = 0;
    fetchResumeCycle = 0;
    fetchHalted = false;
    regEarliestUse.fill(0);
    queue.clear();
    memory.reset();
    bpred->reset();
    if (prewarm > 0)
        prewarmState(trace, prewarm, memory, *bpred);
    source = &trace;

    const std::uint64_t total = warmup + instructions;
    SimResult result;
    SimResult atWarmup;
    bool warmupDone = warmup == 0;
    const std::uint64_t dl1Miss0 = memory.dl1().misses();
    const std::uint64_t l2Miss0 = memory.l2().misses();

    const std::uint64_t cycleLimit = total * 1000 + 100000;
    while (result.instructions < total) {
        doIssue(result);
        if (!warmupDone && result.instructions >= warmup) {
            atWarmup = result;
            atWarmup.cycles = static_cast<std::uint64_t>(now);
            atWarmup.dl1Misses = memory.dl1().misses() - dl1Miss0;
            atWarmup.l2Misses = memory.l2().misses() - l2Miss0;
            warmupDone = true;
        }
        if (result.instructions >= total)
            break;
        doFetch(result);
        ++now;
        FO4_ASSERT(static_cast<std::uint64_t>(now) < cycleLimit,
                   "in-order simulation deadlock at %llu instructions",
                   static_cast<unsigned long long>(result.instructions));
    }

    // Account for the tail of the pipeline: the final instruction still
    // traverses register read, execute, write back and commit.
    result.cycles = static_cast<std::uint64_t>(
        now + prm.regReadStages + 1 + prm.commitStages);
    result.dl1Misses = memory.dl1().misses() - dl1Miss0;
    result.l2Misses = memory.l2().misses() - l2Miss0;
    source = nullptr;
    return result - atWarmup;
}

std::unique_ptr<Core>
makeInorderCore(const CoreParams &params, const std::string &predictor)
{
    return std::make_unique<InorderCore>(params,
                                         bp::makePredictor(predictor));
}

} // namespace fo4::core
