/**
 * @file
 * The instruction issue window, including the paper's two contributions:
 * the segmented (pipelined-wakeup) window of Section 5.1 / Figure 10 and
 * the partitioned selection logic of Section 5.2 / Figure 12.
 *
 * Entries are kept in age order and the window compacts every cycle as
 * instructions issue, so older instructions migrate toward stage 1 — the
 * behaviour the paper credits for the small IPC loss of segmentation.
 */

#ifndef FO4_CORE_WINDOW_HH
#define FO4_CORE_WINDOW_HH

#include <cstdint>
#include <vector>

#include "core/params.hh"

namespace fo4::core
{

/** Reference to an in-flight instruction slot owned by the core. */
using InflightRef = std::uint32_t;
constexpr InflightRef invalidRef = ~0u;

/**
 * Supplies producer timing to the window.  Implemented by the core; a
 * mock implementation makes the window testable in isolation.
 */
class WakeupOracle
{
  public:
    virtual ~WakeupOracle() = default;

    /**
     * Earliest cycle a dependent sitting in the given window stage could
     * issue, based on the producer's schedule, or -1 if the producer has
     * not been scheduled yet.  Stage 0 is the window's first (oldest)
     * stage; each further stage adds one cycle of tag-ripple delay.
     */
    virtual std::int64_t dependentReadyCycle(InflightRef producer,
                                             int stage) const = 0;
};

/** What the core tells the window about an inserted instruction. */
struct WindowInsert
{
    InflightRef ref = invalidRef;
    std::uint64_t seq = 0;           ///< age key (monotone)
    bool fp = false;                 ///< issues to the FP cluster
    bool mem = false;                ///< occupies a memory issue slot
    std::array<InflightRef, 2> producers{invalidRef, invalidRef};
};

/** Per-cycle selection bandwidth. */
struct SelectLimits
{
    int intSlots = 4;
    int fpSlots = 2;
    int memSlots = 2;
};

/** The issue window. */
class IssueWindow
{
  public:
    explicit IssueWindow(const WindowConfig &config);

    bool full() const { return entries.size() >= size_t(cfg.capacity); }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }

    /** Stage (0-based) of the entry at a given age position. */
    int stageOf(std::size_t position) const;

    void insert(const WindowInsert &ins);

    /**
     * Run wakeup + select for one cycle: returns the refs of issued
     * instructions (oldest first) and removes them from the window
     * (compaction).  For the partitioned scheme this also computes the
     * preselection latched for the next cycle.  The returned reference
     * is to internal scratch storage, valid until the next call.
     */
    const std::vector<InflightRef> &selectAndRemove(
        std::int64_t now, const SelectLimits &limits,
        const WakeupOracle &oracle);

    void reset();

    const WindowConfig &config() const { return cfg; }

    /** Aggregate behaviour counters (since construction or reset). */
    struct Stats
    {
        std::uint64_t cycles = 0;        ///< selectAndRemove invocations
        std::uint64_t occupancySum = 0;  ///< window entries per cycle
        std::uint64_t issued = 0;
        std::uint64_t issueStageSum = 0; ///< stage each entry issued from

        double
        meanOccupancy() const
        {
            return cycles ? double(occupancySum) / double(cycles) : 0.0;
        }

        double
        meanIssueStage() const
        {
            return issued ? double(issueStageSum) / double(issued) : 0.0;
        }
    };

    const Stats &stats() const { return stats_; }

  private:
    struct Entry
    {
        InflightRef ref;
        std::uint64_t seq;
        bool fp;
        bool mem;
        bool awake;     ///< cached wakeup result (monotone: stays true)
        bool preselected; ///< latched by a preselect block last cycle
        std::array<InflightRef, 2> producers;
        /** Frozen per-source wakeup cycles: a tag rippling through the
         *  window reaches the stage the consumer occupied when the
         *  broadcast began; compacting past it afterwards doesn't recall
         *  the tag. */
        std::array<std::int64_t, 2> srcReadyAt{-1, -1};
    };

    bool woken(Entry &entry, std::size_t position, std::int64_t now,
               const WakeupOracle &oracle) const;

    WindowConfig cfg;
    std::vector<Entry> entries;        // age order, oldest first
    std::vector<InflightRef> issuedScratch;
    Stats stats_;
};

} // namespace fo4::core

#endif // FO4_CORE_WINDOW_HH
