#include "core/warm_start.hh"

#include "util/metrics.hh"
#include "util/status.hh"

namespace fo4::core
{

WarmStartCache &
WarmStartCache::global()
{
    static WarmStartCache cache;
    return cache;
}

std::shared_ptr<const WarmState>
WarmStartCache::acquire(trace::DecodedTrace &trace, std::uint64_t prewarm,
                        const CoreParams &params,
                        const bp::BranchPredictor &prototype,
                        const std::string &predictorKey)
{
    const std::string key = util::strprintf(
        "%s;%llu;%s;%llu/%u/%u;%llu/%u/%u;%d", trace.key().c_str(),
        static_cast<unsigned long long>(prewarm), predictorKey.c_str(),
        static_cast<unsigned long long>(params.dl1.capacityBytes),
        params.dl1.lineBytes, params.dl1.associativity,
        static_cast<unsigned long long>(params.l2.capacityBytes),
        params.l2.lineBytes, params.l2.associativity,
        static_cast<int>(params.memoryMode));

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> guard(lock);
        auto &slot = entries[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    std::call_once(entry->once, [&] {
        static auto &built =
            util::MetricsRegistry::global().counter("core.warm_state.built");
        auto state = std::make_shared<WarmState>(
            WarmState{mem::MemoryHierarchy(params.dl1, params.l2,
                                           params.memLatencies,
                                           params.memoryMode),
                      prototype.clone()});
        state->bpred->reset();
        // The reference prewarm procedure (core/prewarm.hh), fed from
        // the decoded records: functional accesses in stream order,
        // then the bus bookkeeping resets.
        for (std::uint64_t i = 0; i < prewarm; ++i) {
            const isa::MicroOp op =
                trace::unpackTraceRecord(trace.record(i));
            if (op.isLoad()) {
                state->memory.loadLatency(op.addr,
                                          static_cast<std::int64_t>(i));
            } else if (op.isStore()) {
                state->memory.storeLatency(op.addr,
                                           static_cast<std::int64_t>(i));
            } else if (op.isBranch()) {
                state->bpred->predict(op);
                state->bpred->update(op, op.taken);
            }
        }
        state->memory.resetContention();
        entry->state = std::move(state);
        built.inc();
    });

    static auto &served =
        util::MetricsRegistry::global().counter("core.warm_state.served");
    served.inc();
    return entry->state;
}

std::size_t
WarmStartCache::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return entries.size();
}

void
WarmStartCache::clear()
{
    std::lock_guard<std::mutex> guard(lock);
    entries.clear();
}

} // namespace fo4::core
