/**
 * @file
 * The abstract processor-core interface and the simulation result record
 * shared by the in-order and out-of-order pipeline models.
 */

#ifndef FO4_CORE_CORE_HH
#define FO4_CORE_CORE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "core/params.hh"
#include "trace/trace.hh"
#include "util/cancel.hh"
#include "util/metrics.hh"

namespace fo4::core
{

/**
 * Why a cycle retired nothing.  Exactly one cause is charged per stall
 * cycle (priority: the oldest unretired instruction's blocker), so the
 * per-cause counts sum *exactly* to SimResult::stallCycles — the
 * invariant tests assert against.
 *
 * Two causes are structural zeros in the current model and kept for
 * schema stability: IcacheMiss (fetch hits an ideal I-side; a fetch
 * starved for any non-mispredict reason lands in FrontEnd) and, on the
 * in-order core, WindowFull (a scoreboarded pipeline has no window; the
 * first instruction each cycle always has a functional unit).
 */
enum class StallCause : int
{
    BranchMispredict, ///< unresolved mispredict, or its refill shadow
    IcacheMiss,       ///< reserved: no I-cache in the model (always 0)
    DcacheMiss,       ///< oldest op blocked by a DL1/L2-missing load
    WindowFull,       ///< oldest op ready but unselected (wakeup/select)
    RawLoadUse,       ///< load-use latency of a DL1 *hit* blocks retirement
    Execute,          ///< oldest op mid-execution (non-load latency)
    FrontEnd,         ///< nothing to retire; fetch bubbles / cold start
    Other,            ///< RAW on a non-load producer, WAW, spill-over
};

constexpr int numStallCauses = 8;

/** Stable name of a cause ("branch-mispredict", ...); never null. */
const char *stallCauseName(StallCause cause);

/** Per-cause stall-cycle counts; an exact partition of stallCycles. */
struct StallBreakdown
{
    std::array<std::uint64_t, numStallCauses> byCause{};

    std::uint64_t &
    operator[](StallCause cause)
    {
        return byCause[static_cast<int>(cause)];
    }

    std::uint64_t
    operator[](StallCause cause) const
    {
        return byCause[static_cast<int>(cause)];
    }

    /** Sum over every cause (== SimResult::stallCycles). */
    std::uint64_t total() const;

    StallBreakdown operator-(const StallBreakdown &other) const;
    StallBreakdown &operator+=(const StallBreakdown &other);
};

/**
 * Per-stage occupancy accumulators, sampled once per simulated cycle.
 * Sums (not means) are stored so warm-up subtraction and cross-cell
 * aggregation stay exact integer arithmetic; divide by `cycles` for the
 * mean.  The in-order core populates only frontSum (its issue queue).
 */
struct OccupancySample
{
    std::uint64_t cycles = 0;   ///< cycles observed
    std::uint64_t frontSum = 0; ///< fetched but not dispatched / queued
    std::uint64_t windowSum = 0; ///< issue-window entries (ooo)
    std::uint64_t robSum = 0;    ///< dispatched but not committed (ooo)
    std::uint64_t lsqSum = 0;    ///< loads/stores in flight (ooo)

    double
    mean(std::uint64_t sum) const
    {
        return cycles ? static_cast<double>(sum) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    OccupancySample operator-(const OccupancySample &other) const;
};

/** Aggregate outcome of one simulation run. */
struct SimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Misses = 0;

    // --- observability (deterministic; rides the byte-identity
    //     contract of study::serializeSuite) ---

    /** Cycles in which the retire stage (commit for the out-of-order
     *  core, issue for the in-order core) made zero progress. */
    std::uint64_t stallCycles = 0;
    /** Exact per-cause partition of stallCycles. */
    StallBreakdown stalls;
    /** Dispatch-blocked cycles by structural cause (ooo only). */
    std::uint64_t dispatchWindowFull = 0;
    std::uint64_t dispatchRobFull = 0;
    std::uint64_t dispatchLsqFull = 0;
    /** Per-structure occupancy, sampled every cycle. */
    OccupancySample occupancy;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }

    double
    dl1MissRate() const
    {
        const auto refs = loads + stores;
        return refs ? static_cast<double>(dl1Misses) /
                          static_cast<double>(refs)
                    : 0.0;
    }

    /** Element-wise difference; used to discard warm-up statistics. */
    SimResult
    operator-(const SimResult &other) const
    {
        SimResult d;
        d.instructions = instructions - other.instructions;
        d.cycles = cycles - other.cycles;
        d.branches = branches - other.branches;
        d.mispredicts = mispredicts - other.mispredicts;
        d.loads = loads - other.loads;
        d.stores = stores - other.stores;
        d.dl1Misses = dl1Misses - other.dl1Misses;
        d.l2Misses = l2Misses - other.l2Misses;
        d.stallCycles = stallCycles - other.stallCycles;
        d.stalls = stalls - other.stalls;
        d.dispatchWindowFull = dispatchWindowFull - other.dispatchWindowFull;
        d.dispatchRobFull = dispatchRobFull - other.dispatchRobFull;
        d.dispatchLsqFull = dispatchLsqFull - other.dispatchLsqFull;
        d.occupancy = occupancy - other.occupancy;
        return d;
    }
};

/** A cycle-level processor model. */
class Core
{
  public:
    virtual ~Core() = default;

    /**
     * Simulate until `warmup + instructions` have committed, pulling from
     * the trace source; statistics cover only the instructions after the
     * warm-up (caches and predictors stay warm).  The trace is reset
     * first, so repeated runs (and runs of differently-configured cores)
     * see identical streams.
     *
     * `prewarm` instructions are first streamed *functionally* through
     * the caches and branch predictor (no timing), then the trace is
     * reset again before the timed simulation.  This stands in for the
     * hundreds of millions of instructions the paper executes before its
     * measurement window: the measured region starts with warm caches.
     *
     * `cycleLimit` is the watchdog budget: a run that has not committed
     * its target within that many cycles throws a DeadlockError carrying
     * a pipeline-state diagnostic dump.  0 selects the default budget of
     * 1000 cycles per instruction plus 100k slack.  Invalid arguments
     * (zero instructions) throw ConfigError.
     *
     * `cancel` hooks the simulation into cooperative cancellation: the
     * token is polled alongside the per-cycle watchdog check, and a
     * cancellation request makes the run throw util::CancelledError at
     * the next cycle boundary — mid-simulation, not just between jobs,
     * so a Ctrl-C never waits behind a multi-second cell.  nullptr
     * (the default) disables the check.
     */
    virtual SimResult run(trace::TraceSource &trace,
                          std::uint64_t instructions,
                          std::uint64_t warmup = 0,
                          std::uint64_t prewarm = 0,
                          std::uint64_t cycleLimit = 0,
                          const util::CancelToken *cancel = nullptr) = 0;

    virtual const CoreParams &params() const = 0;

    /**
     * Attach (or detach, with nullptr) a pipeline event tracer.  The
     * ring must outlive the run; it is single-writer, so a ring is
     * never shared between cores running concurrently.  Tracing is
     * pure observability: it does not perturb timing or results.
     */
    virtual void setTracer(util::TraceEventRing *ring) = 0;

    /**
     * Attach (or detach, with nullptr) a retired-microop observer.  The
     * sink must outlive the run and is called once per committed
     * instruction, in commit order, with the op fetched for that stream
     * position.  Like the tracer this is pure observability — it must
     * not change any simulation result — and a sink is never shared
     * between cores running concurrently.
     */
    virtual void setRetireSink(trace::RetireSink *sink) = 0;
};

/** Build the dynamically-scheduled (Alpha 21264-like) core. */
std::unique_ptr<Core> makeOooCore(const CoreParams &params,
                                  const std::string &predictor =
                                      "tournament");

/** Build the in-order variant (paper Section 4.1). */
std::unique_ptr<Core> makeInorderCore(const CoreParams &params,
                                      const std::string &predictor =
                                          "tournament");

/**
 * Throughput-optimized variants (`sim_impl=batched`): the same models,
 * byte-identical results (DESIGN.md §14), restructured for speed —
 * struct-of-arrays state, devirtualized decoded-trace reads, shared
 * prewarm state, and idle-span skipping.
 */
std::unique_ptr<Core> makeBatchedOooCore(const CoreParams &params,
                                         const std::string &predictor =
                                             "tournament");
std::unique_ptr<Core> makeBatchedInorderCore(const CoreParams &params,
                                             const std::string &predictor =
                                                 "tournament");

} // namespace fo4::core

#endif // FO4_CORE_CORE_HH
