/**
 * @file
 * The abstract processor-core interface and the simulation result record
 * shared by the in-order and out-of-order pipeline models.
 */

#ifndef FO4_CORE_CORE_HH
#define FO4_CORE_CORE_HH

#include <cstdint>
#include <memory>

#include "core/params.hh"
#include "trace/trace.hh"
#include "util/cancel.hh"

namespace fo4::core
{

/** Aggregate outcome of one simulation run. */
struct SimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }

    double
    dl1MissRate() const
    {
        const auto refs = loads + stores;
        return refs ? static_cast<double>(dl1Misses) /
                          static_cast<double>(refs)
                    : 0.0;
    }

    /** Element-wise difference; used to discard warm-up statistics. */
    SimResult
    operator-(const SimResult &other) const
    {
        SimResult d;
        d.instructions = instructions - other.instructions;
        d.cycles = cycles - other.cycles;
        d.branches = branches - other.branches;
        d.mispredicts = mispredicts - other.mispredicts;
        d.loads = loads - other.loads;
        d.stores = stores - other.stores;
        d.dl1Misses = dl1Misses - other.dl1Misses;
        d.l2Misses = l2Misses - other.l2Misses;
        return d;
    }
};

/** A cycle-level processor model. */
class Core
{
  public:
    virtual ~Core() = default;

    /**
     * Simulate until `warmup + instructions` have committed, pulling from
     * the trace source; statistics cover only the instructions after the
     * warm-up (caches and predictors stay warm).  The trace is reset
     * first, so repeated runs (and runs of differently-configured cores)
     * see identical streams.
     *
     * `prewarm` instructions are first streamed *functionally* through
     * the caches and branch predictor (no timing), then the trace is
     * reset again before the timed simulation.  This stands in for the
     * hundreds of millions of instructions the paper executes before its
     * measurement window: the measured region starts with warm caches.
     *
     * `cycleLimit` is the watchdog budget: a run that has not committed
     * its target within that many cycles throws a DeadlockError carrying
     * a pipeline-state diagnostic dump.  0 selects the default budget of
     * 1000 cycles per instruction plus 100k slack.  Invalid arguments
     * (zero instructions) throw ConfigError.
     *
     * `cancel` hooks the simulation into cooperative cancellation: the
     * token is polled alongside the per-cycle watchdog check, and a
     * cancellation request makes the run throw util::CancelledError at
     * the next cycle boundary — mid-simulation, not just between jobs,
     * so a Ctrl-C never waits behind a multi-second cell.  nullptr
     * (the default) disables the check.
     */
    virtual SimResult run(trace::TraceSource &trace,
                          std::uint64_t instructions,
                          std::uint64_t warmup = 0,
                          std::uint64_t prewarm = 0,
                          std::uint64_t cycleLimit = 0,
                          const util::CancelToken *cancel = nullptr) = 0;

    virtual const CoreParams &params() const = 0;
};

/** Build the dynamically-scheduled (Alpha 21264-like) core. */
std::unique_ptr<Core> makeOooCore(const CoreParams &params,
                                  const std::string &predictor =
                                      "tournament");

/** Build the in-order variant (paper Section 4.1). */
std::unique_ptr<Core> makeInorderCore(const CoreParams &params,
                                      const std::string &predictor =
                                          "tournament");

} // namespace fo4::core

#endif // FO4_CORE_CORE_HH
