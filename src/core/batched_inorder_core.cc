#include "core/batched_inorder_core.hh"

#include <algorithm>

#include "bp/predictors.hh"
#include "core/prewarm.hh"
#include "core/warm_start.hh"
#include "isa/opclass.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::core
{

namespace
{

/** Reject invalid parameters before any member is constructed. */
const CoreParams &
validated(const CoreParams &params)
{
    params.validateOrThrow();
    return params;
}

} // namespace

BatchedInorderCore::BatchedInorderCore(
    const CoreParams &params, std::unique_ptr<bp::BranchPredictor> predictor,
    std::string predictorKey)
    : prm(validated(params)), bpred(std::move(predictor)),
      bpredKey(std::move(predictorKey)),
      memory(params.dl1, params.l2, params.memLatencies, params.memoryMode),
      // Same queue sizing as the reference InorderCore: the classic
      // pipeline holds fetch/decode contents plus one issue buffer.
      qCap(static_cast<std::size_t>(params.fetchStages +
                                    params.decodeStages + 2) *
           params.fetchWidth)
{
    FO4_ASSERT(bpred != nullptr, "core needs a branch predictor");
    frontDepth = prm.fetchStages + prm.decodeStages;
    qOp.resize(qCap);
    qIssueReady.resize(qCap);
    qMispredicted.resize(qCap);
}

isa::MicroOp
BatchedInorderCore::nextOp()
{
    // The decoded fast path skips the virtual TraceSource dispatch and
    // replays packed records; both paths yield identical op streams.
    if (view != nullptr)
        return trace::unpackTraceRecord(view->nextRecord());
    return source->next();
}

void
BatchedInorderCore::doIssue(SimResult &result)
{
    int intLeft = prm.intIssueWidth;
    int fpLeft = prm.fpIssueWidth;
    int memLeft = prm.memIssueWidth;

    for (int i = 0; i < prm.renameWidth; ++i) {
        // Stall attribution covers only the *first* slot each cycle, as
        // in the reference model.
        if (qSize == 0) {
            if (i == 0)
                stallReason = (fetchHalted || now < mispredictShadowEnd)
                                  ? StallCause::BranchMispredict
                                  : StallCause::FrontEnd;
            return;
        }
        const std::size_t f = qAt(0);
        const isa::MicroOp &op = qOp[f];
        if (qIssueReady[f] > now) {
            if (i == 0)
                stallReason = now < mispredictShadowEnd
                                  ? StallCause::BranchMispredict
                                  : StallCause::FrontEnd;
            return;
        }

        // Scoreboard: sources bypassable, destination free (WAW).
        for (const std::int16_t src : {op.src1, op.src2}) {
            if (src != isa::noReg && regEarliestUse[src] > now) {
                if (i == 0)
                    stallReason = regPendingKind[src];
                return;
            }
        }
        if (op.dst != isa::noReg && regEarliestUse[op.dst] > now) {
            if (i == 0)
                stallReason = StallCause::Other;
            return;
        }

        // Structural: one functional-unit slot per cycle per op.
        const bool fp = isa::isFloat(op.cls);
        const bool memOp = isa::isMemory(op.cls);
        if (i == 0)
            stallReason = StallCause::WindowFull;
        if (fp) {
            if (fpLeft <= 0)
                return;
            --fpLeft;
        } else if (memOp) {
            if (memLeft <= 0 || intLeft <= 0)
                return;
            --memLeft;
            --intLeft;
        } else {
            if (intLeft <= 0)
                return;
            --intLeft;
        }

        // Issue.
        int depLat = prm.execLatency(op.cls);
        bool dl1Missed = false;
        if (op.isLoad()) {
            const std::uint64_t missesBefore = memory.dl1().misses();
            depLat = memory.loadLatency(op.addr, now) + prm.extraLoadUse;
            dl1Missed = memory.dl1().misses() != missesBefore;
        } else if (op.isStore()) {
            memory.storeLatency(op.addr, now);
        }

        if (op.dst != isa::noReg) {
            regEarliestUse[op.dst] = now + depLat;
            regPendingKind[op.dst] =
                op.isLoad() ? (dl1Missed ? StallCause::DcacheMiss
                                         : StallCause::RawLoadUse)
                            : StallCause::Other;
        }

        if (op.isBranch() && qMispredicted[f]) {
            const std::int64_t resolve =
                now + prm.regReadStages + prm.execLatency(op.cls) +
                prm.extraMispredictPenalty;
            fetchResumeCycle = resolve + 1;
            fetchHalted = false;
            mispredictShadowEnd = fetchResumeCycle + frontDepth;
        }

        if (tracer != nullptr && tracer->wants(now)) {
            const char *name = isa::opClassName(op.cls);
            tracer->emit({name, "pipeline", 0, qIssueReady[f] - frontDepth,
                          frontDepth, op.seq});
            if (now > qIssueReady[f])
                tracer->emit({name, "pipeline", 1, qIssueReady[f],
                              now - qIssueReady[f], op.seq});
            tracer->emit({name, "pipeline", 2, now, depLat, op.seq});
        }

        if (retireSink != nullptr)
            retireSink->onRetire(qOp[f]);

        qHead = qHead + 1 == qCap ? 0 : qHead + 1;
        --qSize;
        ++result.instructions;
    }
}

void
BatchedInorderCore::doFetch(SimResult &result)
{
    if (fetchHalted || now < fetchResumeCycle)
        return;

    for (int i = 0; i < prm.fetchWidth; ++i) {
        if (qSize == qCap)
            return;
        const isa::MicroOp op = nextOp();

        const std::size_t b = qAt(qSize);
        qOp[b] = op;
        qIssueReady[b] = now + frontDepth;
        qMispredicted[b] = 0;

        if (op.isBranch()) {
            ++result.branches;
            const bool predicted = bpred->predict(op);
            bpred->update(op, op.taken);
            if (predicted != op.taken) {
                ++result.mispredicts;
                qMispredicted[b] = 1;
                ++qSize;
                fetchHalted = true;
                return;
            }
            ++qSize;
            if (op.taken) {
                // Redirect bubble on correctly predicted taken branches.
                fetchResumeCycle = now + 2;
                return;
            }
            continue;
        }

        if (op.isLoad())
            ++result.loads;
        else if (op.isStore())
            ++result.stores;
        ++qSize;
    }
}

std::int64_t
BatchedInorderCore::skipIdleSpan(SimResult &result, OccupancySample &occ,
                                 std::uint64_t limit)
{
    // A span may be skipped only when every stage is provably inert for
    // every cycle of the span; the bulk accounting below then charges
    // exactly what the reference per-cycle walk would have.

    // Case A: empty queue, fetch redirected — nothing moves until the
    // fetch resumes.  Attribution matches the reference empty-queue
    // rule: mispredict-shadow cycles first, then front-end.  (An empty
    // queue implies !fetchHalted: the halting branch sits in the queue
    // until it issues, which is what clears the halt.)
    if (qSize == 0 && now < fetchResumeCycle) {
        const std::int64_t end = std::min<std::int64_t>(
            fetchResumeCycle, static_cast<std::int64_t>(limit));
        const std::int64_t n = end - now;
        if (n <= 0)
            return 0;
        const std::int64_t shadow = std::clamp<std::int64_t>(
            mispredictShadowEnd - now, 0, n);
        result.stalls[StallCause::BranchMispredict] +=
            static_cast<std::uint64_t>(shadow);
        result.stalls[StallCause::FrontEnd] +=
            static_cast<std::uint64_t>(n - shadow);
        result.stallCycles += static_cast<std::uint64_t>(n);
        occ.cycles += static_cast<std::uint64_t>(n);
        now = end;
        return n;
    }

    // Case B: full queue (fetch is a no-op regardless of its redirect
    // state) with a blocked head.  The head's first failing check — the
    // one the reference charges — is constant up to the blocking
    // event's cycle, so the span is charged to a single cause and the
    // walk resumes exactly at the event.
    if (qSize == qCap) {
        const std::size_t f = qAt(0);
        const isa::MicroOp &op = qOp[f];
        std::int64_t event = -1;
        StallCause cause = StallCause::Other;
        bool shadowSplit = false;
        if (qIssueReady[f] > now) {
            event = qIssueReady[f];
            shadowSplit = true; // BM until the shadow ends, then FE
        } else {
            for (const std::int16_t src : {op.src1, op.src2}) {
                if (src != isa::noReg && regEarliestUse[src] > now) {
                    event = regEarliestUse[src];
                    cause = regPendingKind[src];
                    break;
                }
            }
            if (event < 0 && op.dst != isa::noReg &&
                regEarliestUse[op.dst] > now) {
                event = regEarliestUse[op.dst];
                cause = StallCause::Other;
            }
            if (event < 0 && isa::isFloat(op.cls) && prm.fpIssueWidth <= 0) {
                // No FP slot will ever open: the reference spins on a
                // structural stall until the watchdog fires.
                event = static_cast<std::int64_t>(limit);
                cause = StallCause::WindowFull;
            }
        }
        if (event < 0)
            return 0; // the head can issue this cycle
        const std::int64_t end =
            std::min<std::int64_t>(event, static_cast<std::int64_t>(limit));
        const std::int64_t n = end - now;
        if (n <= 0)
            return 0;
        if (shadowSplit) {
            const std::int64_t shadow = std::clamp<std::int64_t>(
                mispredictShadowEnd - now, 0, n);
            result.stalls[StallCause::BranchMispredict] +=
                static_cast<std::uint64_t>(shadow);
            result.stalls[StallCause::FrontEnd] +=
                static_cast<std::uint64_t>(n - shadow);
        } else {
            result.stalls[cause] += static_cast<std::uint64_t>(n);
        }
        result.stallCycles += static_cast<std::uint64_t>(n);
        occ.frontSum += static_cast<std::uint64_t>(n) * qSize;
        occ.cycles += static_cast<std::uint64_t>(n);
        now = end;
        return n;
    }

    return 0;
}

SimResult
BatchedInorderCore::run(trace::TraceSource &trace,
                        std::uint64_t instructions, std::uint64_t warmup,
                        std::uint64_t prewarm, std::uint64_t cycleLimit,
                        const util::CancelToken *cancel)
{
    if (instructions == 0)
        throw util::ConfigError("nothing to simulate (instructions=0)");
    trace.reset();
    now = 0;
    fetchResumeCycle = 0;
    fetchHalted = false;
    mispredictShadowEnd = 0;
    stallReason = StallCause::FrontEnd;
    regEarliestUse.fill(0);
    regPendingKind.fill(StallCause::Other);
    qHead = 0;
    qSize = 0;

    view = dynamic_cast<trace::DecodedTraceView *>(&trace);
    bool warmed = false;
    if (prewarm > 0 && view != nullptr && !bpredKey.empty()) {
        // One shared prewarm per sweep column instead of one per cell.
        const auto warm = WarmStartCache::global().acquire(
            view->trace(), prewarm, prm, *bpred, bpredKey);
        memory.adoptWarmState(warm->memory);
        bpred = warm->bpred->clone();
        warmed = true;
    }
    if (!warmed) {
        memory.reset();
        bpred->reset();
        if (prewarm > 0)
            prewarmState(trace, prewarm, memory, *bpred);
    }
    source = &trace;

    const std::uint64_t total = warmup + instructions;
    SimResult result;
    SimResult atWarmup;
    bool warmupDone = warmup == 0;
    const std::uint64_t dl1Miss0 = memory.dl1().misses();
    const std::uint64_t l2Miss0 = memory.l2().misses();

    OccupancySample occ;
    const std::uint64_t limit =
        cycleLimit ? cycleLimit : total * 1000 + 100000;
    while (result.instructions < total) {
        // The warmup snapshot can never land inside a skipped span: the
        // committed count is constant there and the snapshot condition
        // was already false when the preceding cycle checked it.
        if (skipIdleSpan(result, occ, limit) > 0) {
            if (static_cast<std::uint64_t>(now) >= limit) {
                source = nullptr;
                view = nullptr;
                throw util::DeadlockError(
                    watchdogDump(result, total, limit));
            }
            if (cancel && cancel->cancelled()) {
                source = nullptr;
                view = nullptr;
                throw util::CancelledError(util::strprintf(
                    "in-order simulation cancelled at cycle %lld after "
                    "%llu of %llu instructions",
                    static_cast<long long>(now),
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(total)));
            }
            continue;
        }
        const std::uint64_t issuedBefore = result.instructions;
        doIssue(result);
        if (result.instructions == issuedBefore) {
            ++result.stallCycles;
            ++result.stalls[stallReason];
        }
        occ.frontSum += qSize;
        ++occ.cycles;
        if (!warmupDone && result.instructions >= warmup) {
            result.occupancy = occ;
            atWarmup = result;
            atWarmup.cycles = static_cast<std::uint64_t>(now);
            atWarmup.dl1Misses = memory.dl1().misses() - dl1Miss0;
            atWarmup.l2Misses = memory.l2().misses() - l2Miss0;
            warmupDone = true;
        }
        if (result.instructions >= total)
            break;
        doFetch(result);
        ++now;
        if (static_cast<std::uint64_t>(now) >= limit) {
            source = nullptr;
            view = nullptr;
            throw util::DeadlockError(watchdogDump(result, total, limit));
        }
        if (cancel && cancel->cancelled()) {
            source = nullptr;
            view = nullptr;
            throw util::CancelledError(util::strprintf(
                "in-order simulation cancelled at cycle %lld after "
                "%llu of %llu instructions",
                static_cast<long long>(now),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(total)));
        }
    }

    // Account for the tail of the pipeline, as in the reference model.
    result.occupancy = occ;
    result.cycles = static_cast<std::uint64_t>(
        now + prm.regReadStages + 1 + prm.commitStages);
    result.dl1Misses = memory.dl1().misses() - dl1Miss0;
    result.l2Misses = memory.l2().misses() - l2Miss0;
    source = nullptr;
    view = nullptr;
    return result - atWarmup;
}

util::DeadlockDump
BatchedInorderCore::watchdogDump(const SimResult &result,
                                 std::uint64_t total,
                                 std::uint64_t limit) const
{
    util::DeadlockDump dump;
    dump.model = "in-order";
    dump.cycle = now;
    dump.cycleLimit = limit;
    dump.committed = result.instructions;
    dump.target = total;
    dump.queueOccupancy = qSize;
    if (qSize != 0) {
        const std::size_t f = qAt(0);
        dump.oldestStalled = util::strprintf(
            "%s issueReady=%lld%s (fetch %s, resumes cycle %lld)",
            isa::opClassName(qOp[f].cls),
            static_cast<long long>(qIssueReady[f]),
            qMispredicted[f] ? " [mispredicted]" : "",
            fetchHalted ? "halted" : "running",
            static_cast<long long>(fetchResumeCycle));
    }
    return dump;
}

std::unique_ptr<Core>
makeBatchedInorderCore(const CoreParams &params,
                       const std::string &predictor)
{
    return std::make_unique<BatchedInorderCore>(
        params, bp::makePredictor(predictor), predictor);
}

} // namespace fo4::core
