#include "core/params.hh"

#include "isa/latencies.hh"
#include "util/logging.hh"

namespace fo4::core
{

CoreParams
CoreParams::alpha21264()
{
    CoreParams p;
    // Native 21264 execution latencies (Table 3, last row).
    for (int i = 0; i < isa::numOpClasses; ++i) {
        p.execCycles[i] =
            isa::alpha21264Cycles(static_cast<isa::OpClass>(i));
    }
    // Native memory latencies: 3-cycle DL1, off-chip L2, DRAM.
    p.memLatencies.dl1 = 3;
    p.memLatencies.l2 = 16;
    p.memLatencies.memory = 130;
    p.memLatencies.l2BusCycles = 8;
    p.memLatencies.memBusCycles = 20;
    return p;
}

void
CoreParams::validate() const
{
    FO4_ASSERT(fetchWidth >= 1 && renameWidth >= 1 && commitWidth >= 1,
               "widths must be positive");
    FO4_ASSERT(intIssueWidth >= 1 && fpIssueWidth >= 0 && memIssueWidth >= 1,
               "issue widths must be sensible");
    FO4_ASSERT(robSize >= 8, "ROB too small");
    FO4_ASSERT(window.capacity >= 1, "window too small");
    FO4_ASSERT(window.wakeupStages >= 1 &&
                   window.wakeupStages <= window.capacity,
               "wakeup stages out of range");
    FO4_ASSERT(fetchStages >= 1 && decodeStages >= 0 && renameStages >= 1 &&
                   regReadStages >= 1 && commitStages >= 1,
               "stage depths must be positive");
    FO4_ASSERT(issueLatency >= 1, "issue latency below one cycle");
    for (int i = 0; i < isa::numOpClasses; ++i)
        FO4_ASSERT(execCycles[i] >= 1, "zero execution latency for class %d",
                   i);
    FO4_ASSERT(extraMispredictPenalty >= 0 && extraLoadUse >= 0 &&
                   extraWakeup >= 0,
               "loop extensions cannot be negative");
}

} // namespace fo4::core
