#include "core/params.hh"

#include "isa/latencies.hh"
#include "util/status.hh"

namespace fo4::core
{

CoreParams
CoreParams::alpha21264()
{
    CoreParams p;
    // Native 21264 execution latencies (Table 3, last row).
    for (int i = 0; i < isa::numOpClasses; ++i) {
        p.execCycles[i] =
            isa::alpha21264Cycles(static_cast<isa::OpClass>(i));
    }
    // Native memory latencies: 3-cycle DL1, off-chip L2, DRAM.
    p.memLatencies.dl1 = 3;
    p.memLatencies.l2 = 16;
    p.memLatencies.memory = 130;
    p.memLatencies.l2BusCycles = 8;
    p.memLatencies.memBusCycles = 20;
    return p;
}

util::Status
CoreParams::validate() const
{
    util::ErrorCollector errs;
    if (fetchWidth < 1 || renameWidth < 1 || commitWidth < 1) {
        errs.addf("widths must be positive (fetch %d, rename %d, "
                  "commit %d)",
                  fetchWidth, renameWidth, commitWidth);
    }
    if (intIssueWidth < 1 || fpIssueWidth < 0 || memIssueWidth < 1) {
        errs.addf("issue widths must be sensible (int %d, fp %d, mem %d)",
                  intIssueWidth, fpIssueWidth, memIssueWidth);
    }
    if (robSize < 8)
        errs.addf("ROB of %d entries too small (minimum 8)", robSize);
    if (lsqSize < 1)
        errs.addf("LSQ of %d entries too small", lsqSize);
    if (fetchQueueSize < 1)
        errs.addf("fetch queue of %d entries too small", fetchQueueSize);
    if (window.capacity < 1)
        errs.addf("window of %d entries too small", window.capacity);
    if (window.wakeupStages < 1 ||
        window.wakeupStages > window.capacity) {
        errs.addf("wakeup stages %d out of range [1, %d]",
                  window.wakeupStages, window.capacity);
    }
    if (fetchStages < 1 || decodeStages < 0 || renameStages < 1 ||
        regReadStages < 1 || commitStages < 1) {
        errs.addf("stage depths must be positive (fetch %d, decode %d, "
                  "rename %d, regread %d, commit %d)",
                  fetchStages, decodeStages, renameStages, regReadStages,
                  commitStages);
    }
    if (issueLatency < 1)
        errs.addf("issue latency %d below one cycle", issueLatency);
    for (int i = 0; i < isa::numOpClasses; ++i) {
        if (execCycles[i] < 1) {
            errs.addf("execution latency %d for class %s below one cycle",
                      execCycles[i],
                      isa::opClassName(static_cast<isa::OpClass>(i)));
        }
    }
    if (memLatencies.dl1 < 1 || memLatencies.l2 < 1 ||
        memLatencies.memory < 1 || memLatencies.flat < 1) {
        errs.addf("memory latencies must be at least one cycle (dl1 %d, "
                  "l2 %d, memory %d, flat %d)",
                  memLatencies.dl1, memLatencies.l2, memLatencies.memory,
                  memLatencies.flat);
    }
    if (memLatencies.l2BusCycles < 0 || memLatencies.memBusCycles < 0) {
        errs.addf("bus occupancies cannot be negative (l2 %d, mem %d)",
                  memLatencies.l2BusCycles, memLatencies.memBusCycles);
    }
    if (const auto st = dl1.validate(); !st.isOk())
        errs.addf("dl1: %s", st.message().c_str());
    if (const auto st = l2.validate(); !st.isOk())
        errs.addf("l2: %s", st.message().c_str());
    if (extraMispredictPenalty < 0 || extraLoadUse < 0 || extraWakeup < 0) {
        errs.addf("loop extensions cannot be negative (mispredict %d, "
                  "load-use %d, wakeup %d)",
                  extraMispredictPenalty, extraLoadUse, extraWakeup);
    }
    return errs.status(util::ErrorCode::InvalidConfig);
}

void
CoreParams::validateOrThrow() const
{
    if (const auto st = validate(); !st.isOk())
        throw util::ConfigError("core parameters: " + st.message());
}

} // namespace fo4::core
