/**
 * @file
 * Shared prewarm state for one-pass batched sweeps.  Every clock-period
 * cell of a sweep column prewarms the same caches and predictor with
 * the same instruction prefix: cache contents depend only on geometry
 * and the access order (never on latencies, which the prewarm streams
 * without timing), and predictor training depends only on the branch
 * stream.  This cache computes that state once per (trace, prewarm,
 * geometry, predictor) key and hands each cell a copy, replacing an
 * O(prewarm) replay per cell with an O(cache size) copy.
 *
 * Byte-identity: the donor state is produced by exactly the reference
 * prewarm procedure (core/prewarm.hh) from a cold hierarchy and a
 * reset predictor, so an adopting core starts from bit-identical state
 * — including hit/miss counters, which the cores subtract as deltas.
 */

#ifndef FO4_CORE_WARM_START_HH
#define FO4_CORE_WARM_START_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bp/predictor.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "trace/decoded_trace.hh"

namespace fo4::core
{

/** Prewarmed machine state shared (read-only) by the cells of a sweep
 *  column. */
struct WarmState
{
    mem::MemoryHierarchy memory;
    std::unique_ptr<bp::BranchPredictor> bpred;
};

/**
 * Process-wide cache of prewarmed states.  acquire() computes the state
 * for its key exactly once (other threads wanting the same key wait),
 * then serves shared references.
 */
class WarmStartCache
{
  public:
    static WarmStartCache &global();

    /**
     * The warm state after streaming `prewarm` records of `trace`
     * through a cold hierarchy with `params`' cache geometry and a
     * reset clone of `prototype`.  `predictorKey` names the prototype's
     * configuration (factory name); states are shared only between
     * cores whose predictors are interchangeable under that key.
     */
    std::shared_ptr<const WarmState>
    acquire(trace::DecodedTrace &trace, std::uint64_t prewarm,
            const CoreParams &params, const bp::BranchPredictor &prototype,
            const std::string &predictorKey);

    std::size_t size() const;
    void clear();

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const WarmState> state;
    };

    mutable std::mutex lock;
    std::map<std::string, std::shared_ptr<Entry>> entries;
};

} // namespace fo4::core

#endif // FO4_CORE_WARM_START_HH
