/**
 * @file
 * The in-order issue variant of the scaled machine (paper Section 4.1):
 * the same seven-segment pipeline (fetch, decode, issue, register read,
 * execute, write back, commit) and the same four-wide issue stage, but
 * instructions issue strictly in program order through a scoreboard, so
 * a stalled instruction blocks everything behind it.
 */

#ifndef FO4_CORE_INORDER_CORE_HH
#define FO4_CORE_INORDER_CORE_HH

#include <array>
#include <memory>

#include "bp/predictor.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "util/circular_buffer.hh"
#include "util/status.hh"

namespace fo4::core
{

/** The in-order pipeline model. */
class InorderCore : public Core
{
  public:
    InorderCore(const CoreParams &params,
                std::unique_ptr<bp::BranchPredictor> predictor);

    SimResult run(trace::TraceSource &trace, std::uint64_t instructions,
                  std::uint64_t warmup = 0, std::uint64_t prewarm = 0,
                  std::uint64_t cycleLimit = 0,
                  const util::CancelToken *cancel = nullptr) override;

    const CoreParams &params() const override { return prm; }

    void setTracer(util::TraceEventRing *ring) override { tracer = ring; }

    void setRetireSink(trace::RetireSink *sink) override
    {
        retireSink = sink;
    }

  private:
    struct QueuedInst
    {
        isa::MicroOp op;
        std::int64_t issueReady = 0; ///< end of fetch+decode traversal
        bool mispredicted = false;
    };

    void doIssue(SimResult &result);
    void doFetch(SimResult &result);
    /** Pipeline-state snapshot for the deadlock watchdog. */
    util::DeadlockDump watchdogDump(const SimResult &result,
                                    std::uint64_t total,
                                    std::uint64_t limit) const;

    CoreParams prm;
    std::unique_ptr<bp::BranchPredictor> bpred;
    mem::MemoryHierarchy memory;

    util::CircularBuffer<QueuedInst> queue;

    /** Earliest cycle a consumer of each register may issue (scoreboard
     *  with full bypass: producer issue + producer latency). */
    std::array<std::int64_t, isa::numArchRegs> regEarliestUse{};

    /** What kind of producer last wrote each register — attributes a
     *  scoreboard stall to the blocking instruction's class. */
    std::array<StallCause, isa::numArchRegs> regPendingKind{};

    std::int64_t now = 0;
    std::int64_t fetchResumeCycle = 0;
    bool fetchHalted = false;
    int frontDepth = 2;

    /** End of the refill shadow after a mispredicted branch issues:
     *  empty-queue cycles before this are charged to the mispredict. */
    std::int64_t mispredictShadowEnd = 0;

    /** Why doIssue retired nothing this cycle (valid when it did). */
    StallCause stallReason = StallCause::FrontEnd;

    util::TraceEventRing *tracer = nullptr;

    trace::RetireSink *retireSink = nullptr;

    trace::TraceSource *source = nullptr;
};

} // namespace fo4::core

#endif // FO4_CORE_INORDER_CORE_HH
