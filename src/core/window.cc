#include "core/window.hh"

#include "util/logging.hh"

namespace fo4::core
{

IssueWindow::IssueWindow(const WindowConfig &config)
    : cfg(config)
{
    FO4_ASSERT(cfg.capacity >= 1, "window capacity must be positive");
    FO4_ASSERT(cfg.wakeupStages >= 1 && cfg.wakeupStages <= cfg.capacity,
               "wakeup stages out of range");
    entries.reserve(cfg.capacity);
    issuedScratch.reserve(16);
}

int
IssueWindow::stageOf(std::size_t position) const
{
    const int stage = static_cast<int>(position) / cfg.entriesPerStage();
    return stage >= cfg.wakeupStages ? cfg.wakeupStages - 1 : stage;
}

void
IssueWindow::insert(const WindowInsert &ins)
{
    FO4_ASSERT(!full(), "insert into a full window");
    FO4_ASSERT(ins.ref != invalidRef, "invalid inflight ref");
    FO4_ASSERT(entries.empty() || entries.back().seq < ins.seq,
               "window inserts must be in age order");
    entries.push_back({ins.ref, ins.seq, ins.fp, ins.mem, false, false,
                       ins.producers, {-1, -1}});
}

bool
IssueWindow::woken(Entry &entry, std::size_t position, std::int64_t now,
                   const WakeupOracle &oracle) const
{
    // The per-source wakeup cycle is frozen at the stage the entry
    // occupies when its producer's broadcast is first visible; later
    // compaction does not replay the tag.
    const int stage = stageOf(position);
    bool all_ready = true;
    for (int s = 0; s < 2; ++s) {
        const InflightRef producer = entry.producers[s];
        if (producer == invalidRef)
            continue;
        if (entry.srcReadyAt[s] < 0) {
            const std::int64_t ready =
                oracle.dependentReadyCycle(producer, stage);
            if (ready < 0) {
                all_ready = false;
                continue;
            }
            entry.srcReadyAt[s] = ready;
        }
        if (entry.srcReadyAt[s] > now)
            all_ready = false;
    }
    return all_ready;
}

const std::vector<InflightRef> &
IssueWindow::selectAndRemove(std::int64_t now, const SelectLimits &limits,
                             const WakeupOracle &oracle)
{
    // Wakeup.  Entries only move toward lower-numbered stages
    // (compaction), and the tag-arrival cycle only gets earlier at lower
    // stages, so a cached awake result stays valid.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].awake)
            entries[i].awake = woken(entries[i], i, now, oracle);
    }

    // Select oldest-first within per-cluster bandwidth, and compact in
    // the same pass.  Under the partitioned scheme, entries beyond the
    // first stage must have been latched by a preselect block last cycle
    // to be visible to the select logic.
    const bool partitioned = cfg.select == SelectModel::Partitioned;
    int intLeft = limits.intSlots;
    int fpLeft = limits.fpSlots;
    int memLeft = limits.memSlots;
    ++stats_.cycles;
    stats_.occupancySum += entries.size();
    issuedScratch.clear();
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        bool take = e.awake &&
                    (!partitioned || stageOf(i) == 0 || e.preselected);
        if (take) {
            if (e.fp) {
                take = fpLeft > 0;
                fpLeft -= take;
            } else if (e.mem) {
                take = memLeft > 0 && intLeft > 0;
                memLeft -= take;
                intLeft -= take;
            } else {
                take = intLeft > 0;
                intLeft -= take;
            }
        }
        if (take) {
            issuedScratch.push_back(e.ref);
            ++stats_.issued;
            stats_.issueStageSum += stageOf(i);
        } else {
            entries[out++] = e;
        }
    }
    entries.resize(out);

    // Preselect for next cycle at the compacted positions.
    if (partitioned) {
        std::array<int, 8> capLeft = cfg.preselectCap;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            Entry &e = entries[i];
            e.preselected = false;
            const int stage = stageOf(i);
            if (stage == 0)
                continue;
            if (!e.awake)
                e.awake = woken(e, i, now, oracle);
            const int capIdx = stage - 1;
            if (e.awake && capIdx < static_cast<int>(capLeft.size()) &&
                capLeft[capIdx] > 0) {
                --capLeft[capIdx];
                e.preselected = true;
            }
        }
    }

    return issuedScratch;
}

void
IssueWindow::reset()
{
    entries.clear();
    stats_ = Stats{};
}

} // namespace fo4::core
