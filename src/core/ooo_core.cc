#include "core/ooo_core.hh"

#include <algorithm>

#include "bp/predictors.hh"
#include "core/prewarm.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::core
{

namespace
{

constexpr std::uint64_t noProducer = ~0ull;

/** Reject invalid parameters before any member is constructed. */
const CoreParams &
validated(const CoreParams &params)
{
    params.validateOrThrow();
    return params;
}

std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

OooCore::OooCore(const CoreParams &params,
                 std::unique_ptr<bp::BranchPredictor> predictor)
    : prm(validated(params)), bpred(std::move(predictor)),
      memory(params.dl1, params.l2, params.memLatencies, params.memoryMode),
      window(params.window)
{
    FO4_ASSERT(bpred != nullptr, "core needs a branch predictor");

    frontDepth = prm.fetchStages + prm.decodeStages + prm.renameStages;

    // In-flight slots must outlive every consumer that can still query a
    // producer: consumers sit within robSize of their producers, so a
    // couple of pipeline-lengths of slack is ample.
    const std::uint64_t needed =
        prm.robSize + prm.fetchQueueSize +
        static_cast<std::uint64_t>(frontDepth + 4) * prm.fetchWidth + 64;
    const std::uint64_t size = std::max<std::uint64_t>(
        4096, nextPowerOfTwo(needed * 2));
    inflight.resize(size);
    slotMask = size - 1;
}

std::int64_t
OooCore::dependentReadyCycle(InflightRef producer, int stage) const
{
    const DynInst &p = inflight[producer];
    if (p.issueCycle < 0)
        return -1;
    // Tag broadcast overlaps execution: the dependent waits for whichever
    // arrives later, the bypassed result (producer latency) or the wakeup
    // tag (window access plus per-stage ripple in a segmented window).
    // Back-to-back dependent issue therefore needs a wakeup loop no
    // longer than the producer's execution latency.
    const int wakeup = prm.issueLatency + prm.extraWakeup + stage;
    const int spacing = p.depLatency > wakeup ? p.depLatency : wakeup;
    return p.issueCycle + spacing;
}

void
OooCore::resetState()
{
    fetchSeq = 0;
    dispatchSeq = 0;
    commitSeq = 0;
    now = 0;
    fetchResumeCycle = 0;
    haltingBranch = ~0ull;
    lsqOccupancy = 0;
    mispredictShadowEnd = 0;
    renameMap.fill(noProducer);
    window.reset();
    memory.reset();
    bpred->reset();
}

void
OooCore::doCommit(SimResult &result)
{
    for (int i = 0; i < prm.commitWidth; ++i) {
        if (commitSeq == dispatchSeq)
            return;
        DynInst &di = slot(commitSeq);
        if (di.issueCycle < 0 ||
            di.doneCycle + (prm.commitStages - 1) > now) {
            return;
        }
        if (isa::isMemory(di.op.cls))
            --lsqOccupancy;
        if (tracer != nullptr && tracer->wants(now)) {
            // One lane per pipeline phase; spans that started before the
            // recording window are filtered by the ring itself.
            const char *name = isa::opClassName(di.op.cls);
            const std::uint64_t seq = di.op.seq;
            tracer->emit({name, "pipeline", 0,
                          di.dispatchReady - frontDepth, frontDepth, seq});
            if (di.issueCycle > di.dispatchReady)
                tracer->emit({name, "pipeline", 1, di.dispatchReady,
                              di.issueCycle - di.dispatchReady, seq});
            tracer->emit({name, "pipeline", 2, di.issueCycle,
                          di.doneCycle - di.issueCycle, seq});
            tracer->emit({name, "pipeline", 3, now, 1, seq});
        }
        if (retireSink != nullptr)
            retireSink->onRetire(di.op);
        ++result.instructions;
        ++commitSeq;
    }
}

void
OooCore::doIssue()
{
    const SelectLimits limits{prm.intIssueWidth, prm.fpIssueWidth,
                              prm.memIssueWidth};
    for (const InflightRef ref : window.selectAndRemove(now, limits, *this)) {
        DynInst &di = inflight[ref];
        di.issueCycle = now;
        di.doneCycle = now + prm.regReadStages + di.execLat;
        if (di.mispredicted && di.op.seq == haltingBranch) {
            fetchResumeCycle =
                di.doneCycle + prm.extraMispredictPenalty + 1;
            haltingBranch = ~0ull;
            // Empty-ROB cycles until refetched instructions traverse the
            // front end are still the mispredict's fault.
            mispredictShadowEnd = fetchResumeCycle + frontDepth;
        }
    }
}

void
OooCore::doDispatch(SimResult &result)
{
    for (int i = 0; i < prm.renameWidth; ++i) {
        if (dispatchSeq == fetchSeq)
            return;
        DynInst &di = slot(dispatchSeq);
        if (di.dispatchReady > now)
            return;
        // Structural dispatch blocks are counted at most once per cycle
        // (when the *first* slot is refused), giving "cycles blocked"
        // rather than "slots lost".
        if (window.full()) {
            if (i == 0)
                ++result.dispatchWindowFull;
            return;
        }
        if (dispatchSeq - commitSeq >=
            static_cast<std::uint64_t>(prm.robSize)) {
            if (i == 0)
                ++result.dispatchRobFull;
            return;
        }
        const bool memOp = isa::isMemory(di.op.cls);
        if (memOp && lsqOccupancy >= prm.lsqSize) {
            if (i == 0)
                ++result.dispatchLsqFull;
            return;
        }

        // Resolve producers through the rename map: a source whose
        // producer has already committed is simply ready.
        WindowInsert ins;
        ins.ref = static_cast<InflightRef>(dispatchSeq & slotMask);
        ins.seq = dispatchSeq;
        ins.fp = isa::isFloat(di.op.cls);
        ins.mem = memOp;
        int nsrc = 0;
        for (const std::int16_t src : {di.op.src1, di.op.src2}) {
            if (src == isa::noReg)
                continue;
            const std::uint64_t pseq = renameMap[src];
            if (pseq != noProducer && pseq >= commitSeq) {
                ins.producers[nsrc++] =
                    static_cast<InflightRef>(pseq & slotMask);
            }
        }

        // Execution latency and, for loads, the full load-use latency
        // dependents observe; the cache is accessed in program order at
        // dispatch so its state evolves identically across pipeline
        // configurations.
        di.execLat = prm.execLatency(di.op.cls);
        di.depLatency = di.execLat;
        if (di.op.isLoad()) {
            const std::uint64_t missesBefore = memory.dl1().misses();
            di.depLatency =
                memory.loadLatency(di.op.addr, now) + prm.extraLoadUse;
            di.execLat = di.depLatency;
            di.loadMiss = memory.dl1().misses() != missesBefore;
        } else if (di.op.isStore()) {
            memory.storeLatency(di.op.addr, now);
        }

        if (di.op.dst != isa::noReg)
            renameMap[di.op.dst] = dispatchSeq;
        if (memOp)
            ++lsqOccupancy;

        window.insert(ins);
        ++dispatchSeq;
    }
}

void
OooCore::doFetch(SimResult &result)
{
    if (now < fetchResumeCycle || haltingBranch != ~0ull)
        return;

    const std::uint64_t frontCap =
        prm.fetchQueueSize +
        static_cast<std::uint64_t>(frontDepth) * prm.fetchWidth;

    // Fetch follows the correct path (no wrong-path modelling); a taken
    // branch ends the fetch group.
    for (int i = 0; i < prm.fetchWidth; ++i) {
        if (fetchSeq - dispatchSeq >= frontCap)
            return;
        isa::MicroOp op = traceSource->next();
        op.seq = fetchSeq;

        DynInst &di = slot(fetchSeq);
        di = DynInst{};
        di.op = op;
        di.dispatchReady = now + frontDepth;
        ++fetchSeq;

        if (op.isBranch()) {
            ++result.branches;
            const bool predicted = bpred->predict(op);
            bpred->update(op, op.taken);
            if (predicted != op.taken) {
                ++result.mispredicts;
                di.mispredicted = true;
                haltingBranch = op.seq;
                return; // fetch halts until the branch resolves
            }
            if (op.taken) {
                // Correctly predicted taken branch: the fetch group ends
                // and the redirect costs one fetch bubble (as on the
                // 21264's line-predicted front end).
                fetchResumeCycle = now + 2;
                return;
            }
        } else if (op.isLoad()) {
            ++result.loads;
        } else if (op.isStore()) {
            ++result.stores;
        }
    }
}

core::StallCause
OooCore::classifyStall() const
{
    if (commitSeq == dispatchSeq) {
        // Empty ROB: the front end has nothing in flight.  Either we are
        // squashing/refilling after a mispredict or fetch simply has not
        // delivered (cold start, taken-branch bubbles).
        return (haltingBranch != ~0ull || now < mispredictShadowEnd)
                   ? StallCause::BranchMispredict
                   : StallCause::FrontEnd;
    }
    const DynInst &head = slot(commitSeq);
    if (head.issueCycle >= 0) {
        // Head issued but its result (or commit-stage traversal) is not
        // complete.  An in-flight load at the head is the load-use loop:
        // dependents and commit both wait on its data, so those cycles
        // are the RAW-on-load-use stall (dcache-miss when it missed).
        if (head.op.isLoad())
            return head.loadMiss ? StallCause::DcacheMiss
                                 : StallCause::RawLoadUse;
        return StallCause::Execute;
    }
    // Head dispatched but unissued.  Commit is in order, so everything
    // older than the head — including all its producers — has already
    // retired: the head is data-ready and merely waiting to be selected.
    // Charge that wakeup/select latency to the issue window.
    return StallCause::WindowFull;
}

SimResult
OooCore::run(trace::TraceSource &trace, std::uint64_t instructions,
             std::uint64_t warmup, std::uint64_t prewarm,
             std::uint64_t cycleLimit, const util::CancelToken *cancel)
{
    if (instructions == 0)
        throw util::ConfigError("nothing to simulate (instructions=0)");
    trace.reset();
    resetState();
    if (prewarm > 0)
        prewarmState(trace, prewarm, memory, *bpred);
    traceSource = &trace;

    const std::uint64_t total = warmup + instructions;
    SimResult result;
    SimResult atWarmup;
    bool warmupDone = warmup == 0;
    const std::uint64_t dl1Miss0 = memory.dl1().misses();
    const std::uint64_t l2Miss0 = memory.l2().misses();

    // Occupancy integrals accumulate in locals so the sim loop updates
    // registers, not SimResult fields pinned in memory by the &result
    // calls below; they are flushed at the warmup snapshot and at exit.
    OccupancySample occ;
    const std::uint64_t limit =
        cycleLimit ? cycleLimit : total * 1000 + 100000;
    while (result.instructions < total) {
        const std::uint64_t committedBefore = result.instructions;
        doCommit(result);
        if (result.instructions == committedBefore) {
            // Zero-commit cycle: charge exactly one cause, so the
            // per-cause counts partition stallCycles exactly.
            ++result.stallCycles;
            ++result.stalls[classifyStall()];
        }
        occ.robSum += dispatchSeq - commitSeq;
        occ.windowSum += window.size();
        occ.frontSum += fetchSeq - dispatchSeq;
        occ.lsqSum += static_cast<std::uint64_t>(lsqOccupancy);
        ++occ.cycles;
        if (!warmupDone && result.instructions >= warmup) {
            result.occupancy = occ;
            atWarmup = result;
            atWarmup.cycles = static_cast<std::uint64_t>(now);
            atWarmup.dl1Misses = memory.dl1().misses() - dl1Miss0;
            atWarmup.l2Misses = memory.l2().misses() - l2Miss0;
            warmupDone = true;
        }
        if (result.instructions >= total)
            break;
        doIssue();
        doDispatch(result);
        doFetch(result);
        ++now;
        if (static_cast<std::uint64_t>(now) >= limit) {
            traceSource = nullptr;
            throw util::DeadlockError(watchdogDump(result, total, limit));
        }
        // Cancellation rides the watchdog check: same cadence, same
        // cleanup, but a CancelledError — the run is abandoned, not
        // diagnosed as hung.
        if (cancel && cancel->cancelled()) {
            traceSource = nullptr;
            throw util::CancelledError(util::strprintf(
                "out-of-order simulation cancelled at cycle %lld after "
                "%llu of %llu instructions",
                static_cast<long long>(now),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(total)));
        }
    }

    result.occupancy = occ;
    result.cycles = static_cast<std::uint64_t>(now);
    result.dl1Misses = memory.dl1().misses() - dl1Miss0;
    result.l2Misses = memory.l2().misses() - l2Miss0;
    traceSource = nullptr;
    return result - atWarmup;
}

util::DeadlockDump
OooCore::watchdogDump(const SimResult &result, std::uint64_t total,
                      std::uint64_t limit) const
{
    util::DeadlockDump dump;
    dump.model = "out-of-order";
    dump.cycle = now;
    dump.cycleLimit = limit;
    dump.committed = result.instructions;
    dump.target = total;
    dump.robOccupancy = dispatchSeq - commitSeq;
    dump.windowOccupancy = window.size();
    dump.frontEndOccupancy = fetchSeq - dispatchSeq;
    dump.lsqOccupancy = lsqOccupancy;
    if (commitSeq != dispatchSeq) {
        const DynInst &oldest = slot(commitSeq);
        dump.oldestStalled = util::strprintf(
            "%s seq=%llu dispatchReady=%lld issue=%lld done=%lld",
            isa::opClassName(oldest.op.cls),
            static_cast<unsigned long long>(oldest.op.seq),
            static_cast<long long>(oldest.dispatchReady),
            static_cast<long long>(oldest.issueCycle),
            static_cast<long long>(oldest.doneCycle));
    } else if (dispatchSeq != fetchSeq) {
        const DynInst &oldest = slot(dispatchSeq);
        dump.oldestStalled = util::strprintf(
            "%s seq=%llu waiting to dispatch (ready cycle %lld)",
            isa::opClassName(oldest.op.cls),
            static_cast<unsigned long long>(oldest.op.seq),
            static_cast<long long>(oldest.dispatchReady));
    }
    return dump;
}

std::unique_ptr<Core>
makeOooCore(const CoreParams &params, const std::string &predictor)
{
    return std::make_unique<OooCore>(params, bp::makePredictor(predictor));
}

} // namespace fo4::core
