#include "core/batched_ooo_core.hh"

#include <algorithm>
#include <limits>

#include "bp/predictors.hh"
#include "core/prewarm.hh"
#include "core/warm_start.hh"
#include "isa/opclass.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::core
{

namespace
{

constexpr std::uint64_t noProducer = ~0ull;

/** Reject invalid parameters before any member is constructed. */
const CoreParams &
validated(const CoreParams &params)
{
    params.validateOrThrow();
    return params;
}

std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

BatchedOooCore::BatchedOooCore(const CoreParams &params,
                               std::unique_ptr<bp::BranchPredictor> predictor,
                               std::string predictorKey)
    : prm(validated(params)), bpred(std::move(predictor)),
      bpredKey(std::move(predictorKey)),
      memory(params.dl1, params.l2, params.memLatencies, params.memoryMode)
{
    FO4_ASSERT(bpred != nullptr, "core needs a branch predictor");

    frontDepth = prm.fetchStages + prm.decodeStages + prm.renameStages;

    // Same arena sizing as the reference OooCore: slots must outlive
    // every consumer that can still query a producer.
    const std::uint64_t needed =
        prm.robSize + prm.fetchQueueSize +
        static_cast<std::uint64_t>(frontDepth + 4) * prm.fetchWidth + 64;
    const std::uint64_t size =
        std::max<std::uint64_t>(4096, nextPowerOfTwo(needed * 2));
    aDispatchReady.resize(size);
    aIssueCycle.resize(size);
    aDoneCycle.resize(size);
    aExecLat.resize(size);
    aDepLat.resize(size);
    aAddr.resize(size);
    aCls.resize(size);
    aSrc1.resize(size);
    aSrc2.resize(size);
    aDst.resize(size);
    aMispredicted.resize(size);
    aLoadMiss.resize(size);
    slotMask = size - 1;

    win.reserve(prm.window.capacity);
    issuedScratch.reserve(16);
}

isa::MicroOp
BatchedOooCore::nextOp()
{
    if (view != nullptr)
        return trace::unpackTraceRecord(view->nextRecord());
    return source->next();
}

int
BatchedOooCore::stageOf(std::size_t position) const
{
    const int stage =
        static_cast<int>(position) / prm.window.entriesPerStage();
    return stage >= prm.window.wakeupStages ? prm.window.wakeupStages - 1
                                            : stage;
}

std::int64_t
BatchedOooCore::depReady(InflightRef producer, int stage) const
{
    // The reference WakeupOracle::dependentReadyCycle, devirtualized.
    if (aIssueCycle[producer] < 0)
        return -1;
    const int wakeup = prm.issueLatency + prm.extraWakeup + stage;
    const int spacing =
        aDepLat[producer] > wakeup ? aDepLat[producer] : wakeup;
    return aIssueCycle[producer] + spacing;
}

bool
BatchedOooCore::wokenEntry(WinEntry &entry, std::size_t position,
                           std::int64_t when) const
{
    const int stage = stageOf(position);
    bool allReady = true;
    for (int s = 0; s < 2; ++s) {
        const InflightRef producer = entry.producers[s];
        if (producer == invalidRef)
            continue;
        if (entry.srcReadyAt[s] < 0) {
            const std::int64_t ready = depReady(producer, stage);
            if (ready < 0) {
                allReady = false;
                continue;
            }
            entry.srcReadyAt[s] = ready;
        }
        if (entry.srcReadyAt[s] > when)
            allReady = false;
    }
    return allReady;
}

void
BatchedOooCore::wakeupPass(std::int64_t when)
{
    // Idempotent within a cycle: a cached awake result stays valid, and
    // the frozen per-source cycles depend only on producer schedules and
    // the entry's position, neither of which moves between passes.
    for (std::size_t i = 0; i < win.size(); ++i) {
        if (!win[i].awake)
            win[i].awake = wokenEntry(win[i], i, now);
    }
    (void)when;
}

void
BatchedOooCore::selectAndRemove()
{
    wakeupPass(now);

    const bool partitioned =
        prm.window.select == SelectModel::Partitioned;
    int intLeft = prm.intIssueWidth;
    int fpLeft = prm.fpIssueWidth;
    int memLeft = prm.memIssueWidth;
    issuedScratch.clear();
    std::size_t out = 0;
    for (std::size_t i = 0; i < win.size(); ++i) {
        const WinEntry &e = win[i];
        bool take = e.awake &&
                    (!partitioned || stageOf(i) == 0 || e.preselected);
        if (take) {
            if (e.fp) {
                take = fpLeft > 0;
                fpLeft -= take;
            } else if (e.mem) {
                take = memLeft > 0 && intLeft > 0;
                memLeft -= take;
                intLeft -= take;
            } else {
                take = intLeft > 0;
                intLeft -= take;
            }
        }
        if (take) {
            issuedScratch.push_back(e.ref);
        } else {
            win[out++] = e;
        }
    }
    win.resize(out);

    if (partitioned) {
        std::array<int, 8> capLeft = prm.window.preselectCap;
        for (std::size_t i = 0; i < win.size(); ++i) {
            WinEntry &e = win[i];
            e.preselected = false;
            const int stage = stageOf(i);
            if (stage == 0)
                continue;
            if (!e.awake)
                e.awake = wokenEntry(e, i, now);
            const int capIdx = stage - 1;
            if (e.awake && capIdx < static_cast<int>(capLeft.size()) &&
                capLeft[capIdx] > 0) {
                --capLeft[capIdx];
                e.preselected = true;
            }
        }
    }
}

void
BatchedOooCore::resetState()
{
    fetchSeq = 0;
    dispatchSeq = 0;
    commitSeq = 0;
    now = 0;
    fetchResumeCycle = 0;
    haltingBranch = ~0ull;
    lsqOccupancy = 0;
    mispredictShadowEnd = 0;
    renameMap.fill(noProducer);
    win.clear();
}

void
BatchedOooCore::doCommit(SimResult &result)
{
    for (int i = 0; i < prm.commitWidth; ++i) {
        if (commitSeq == dispatchSeq)
            return;
        const std::size_t h = slotIx(commitSeq);
        if (aIssueCycle[h] < 0 ||
            aDoneCycle[h] + (prm.commitStages - 1) > now) {
            return;
        }
        if (isa::isMemory(aCls[h]))
            --lsqOccupancy;
        if (tracer != nullptr && tracer->wants(now)) {
            const char *name = isa::opClassName(aCls[h]);
            const std::uint64_t seq = commitSeq;
            tracer->emit({name, "pipeline", 0,
                          aDispatchReady[h] - frontDepth, frontDepth, seq});
            if (aIssueCycle[h] > aDispatchReady[h])
                tracer->emit({name, "pipeline", 1, aDispatchReady[h],
                              aIssueCycle[h] - aDispatchReady[h], seq});
            tracer->emit({name, "pipeline", 2, aIssueCycle[h],
                          aDoneCycle[h] - aIssueCycle[h], seq});
            tracer->emit({name, "pipeline", 3, now, 1, seq});
        }
        if (retireSink != nullptr)
            retireSink->onRetire(aOp[h]);
        ++result.instructions;
        ++commitSeq;
    }
}

void
BatchedOooCore::doIssue()
{
    selectAndRemove();
    for (const InflightRef ref : issuedScratch) {
        aIssueCycle[ref] = now;
        aDoneCycle[ref] = now + prm.regReadStages + aExecLat[ref];
        if (aMispredicted[ref] &&
            (haltingBranch & slotMask) == ref && haltingBranch != ~0ull) {
            fetchResumeCycle =
                aDoneCycle[ref] + prm.extraMispredictPenalty + 1;
            haltingBranch = ~0ull;
            mispredictShadowEnd = fetchResumeCycle + frontDepth;
        }
    }
}

void
BatchedOooCore::doDispatch(SimResult &result)
{
    for (int i = 0; i < prm.renameWidth; ++i) {
        if (dispatchSeq == fetchSeq)
            return;
        const std::size_t h = slotIx(dispatchSeq);
        if (aDispatchReady[h] > now)
            return;
        if (win.size() >= static_cast<std::size_t>(prm.window.capacity)) {
            if (i == 0)
                ++result.dispatchWindowFull;
            return;
        }
        if (dispatchSeq - commitSeq >=
            static_cast<std::uint64_t>(prm.robSize)) {
            if (i == 0)
                ++result.dispatchRobFull;
            return;
        }
        const bool memOp = isa::isMemory(aCls[h]);
        if (memOp && lsqOccupancy >= prm.lsqSize) {
            if (i == 0)
                ++result.dispatchLsqFull;
            return;
        }

        WinEntry e;
        e.ref = static_cast<InflightRef>(dispatchSeq & slotMask);
        e.seq = dispatchSeq;
        e.fp = isa::isFloat(aCls[h]);
        e.mem = memOp;
        e.awake = false;
        e.preselected = false;
        e.producers = {invalidRef, invalidRef};
        e.srcReadyAt = {-1, -1};
        int nsrc = 0;
        for (const std::int16_t src : {aSrc1[h], aSrc2[h]}) {
            if (src == isa::noReg)
                continue;
            const std::uint64_t pseq = renameMap[src];
            if (pseq != noProducer && pseq >= commitSeq) {
                e.producers[nsrc++] =
                    static_cast<InflightRef>(pseq & slotMask);
            }
        }

        aExecLat[h] = prm.execLatency(aCls[h]);
        aDepLat[h] = aExecLat[h];
        if (aCls[h] == isa::OpClass::Load) {
            const std::uint64_t missesBefore = memory.dl1().misses();
            aDepLat[h] =
                memory.loadLatency(aAddr[h], now) + prm.extraLoadUse;
            aExecLat[h] = aDepLat[h];
            aLoadMiss[h] = memory.dl1().misses() != missesBefore;
        } else if (aCls[h] == isa::OpClass::Store) {
            memory.storeLatency(aAddr[h], now);
        }

        if (aDst[h] != isa::noReg)
            renameMap[aDst[h]] = dispatchSeq;
        if (memOp)
            ++lsqOccupancy;

        win.push_back(e);
        ++dispatchSeq;
    }
}

void
BatchedOooCore::doFetch(SimResult &result)
{
    if (now < fetchResumeCycle || haltingBranch != ~0ull)
        return;

    const std::uint64_t frontCap =
        prm.fetchQueueSize +
        static_cast<std::uint64_t>(frontDepth) * prm.fetchWidth;

    for (int i = 0; i < prm.fetchWidth; ++i) {
        if (fetchSeq - dispatchSeq >= frontCap)
            return;
        const isa::MicroOp op = nextOp();

        const std::size_t h = slotIx(fetchSeq);
        if (retireSink != nullptr)
            aOp[h] = op;
        aDispatchReady[h] = now + frontDepth;
        aIssueCycle[h] = -1;
        aDoneCycle[h] = -1;
        aExecLat[h] = 1;
        aDepLat[h] = 1;
        aAddr[h] = op.addr;
        aCls[h] = op.cls;
        aSrc1[h] = op.src1;
        aSrc2[h] = op.src2;
        aDst[h] = op.dst;
        aMispredicted[h] = 0;
        aLoadMiss[h] = 0;
        const std::uint64_t seq = fetchSeq;
        ++fetchSeq;

        if (op.isBranch()) {
            ++result.branches;
            const bool predicted = bpred->predict(op);
            bpred->update(op, op.taken);
            if (predicted != op.taken) {
                ++result.mispredicts;
                aMispredicted[h] = 1;
                haltingBranch = seq;
                return; // fetch halts until the branch resolves
            }
            if (op.taken) {
                // Redirect bubble on correctly predicted taken branches.
                fetchResumeCycle = now + 2;
                return;
            }
        } else if (op.isLoad()) {
            ++result.loads;
        } else if (op.isStore()) {
            ++result.stores;
        }
    }
}

StallCause
BatchedOooCore::classifyStall() const
{
    if (commitSeq == dispatchSeq) {
        return (haltingBranch != ~0ull || now < mispredictShadowEnd)
                   ? StallCause::BranchMispredict
                   : StallCause::FrontEnd;
    }
    const std::size_t h = slotIx(commitSeq);
    if (aIssueCycle[h] >= 0) {
        if (aCls[h] == isa::OpClass::Load)
            return aLoadMiss[h] ? StallCause::DcacheMiss
                                : StallCause::RawLoadUse;
        return StallCause::Execute;
    }
    return StallCause::WindowFull;
}

std::int64_t
BatchedOooCore::skipIdleSpan(SimResult &result, OccupancySample &occ,
                             std::uint64_t limit)
{
    // A span may be skipped only when commit, issue, dispatch and fetch
    // are all provably inert for every cycle of the span.  Each stage
    // either proves it cannot act before a known event cycle (which
    // bounds the span) or forces a normal per-cycle walk.
    std::int64_t event = std::numeric_limits<std::int64_t>::max();

    // Commit: the head either retires this cycle (bail) or pins the
    // span's stall cause and, if issued, bounds the span at the cycle
    // its commit-stage traversal completes.
    const bool robEmpty = commitSeq == dispatchSeq;
    if (!robEmpty) {
        const std::size_t h = slotIx(commitSeq);
        if (aIssueCycle[h] >= 0) {
            const std::int64_t commitAt =
                aDoneCycle[h] + (prm.commitStages - 1);
            if (commitAt <= now)
                return 0;
            event = std::min(event, commitAt);
        }
        // An unissued head wakes no earlier than the window's first
        // wake event, folded in below.
    }

    // Issue: any awake entry can be selected (or latched by preselect),
    // so the window must be entirely asleep.  The pre-freeze performed
    // by this wakeup pass is exactly what the cycle's own pass would
    // compute — producer schedules and entry positions cannot change
    // between here and doIssue.
    wakeupPass(now);
    for (const WinEntry &e : win) {
        if (e.awake)
            return 0;
    }
    // First wake event: entries whose sources' wakeup cycles are all
    // frozen wake at their max.  Entries waiting on an unissued
    // producer cannot wake before some other entry issues, which
    // requires a wake event of its own — they never bound the span.
    for (const WinEntry &e : win) {
        bool known = true;
        std::int64_t wake = -1;
        for (int s = 0; s < 2; ++s) {
            if (e.producers[s] == invalidRef)
                continue;
            if (e.srcReadyAt[s] < 0) {
                known = false;
                break;
            }
            wake = std::max(wake, e.srcReadyAt[s]);
        }
        if (known && wake > now)
            event = std::min(event, wake);
    }

    // Dispatch: blocked on a future ready cycle (bounds the span) or on
    // a structural limit that cannot clear while nothing commits or
    // issues (charged per cycle, reference check order).
    std::uint64_t *dispatchCounter = nullptr;
    if (dispatchSeq != fetchSeq) {
        const std::size_t h = slotIx(dispatchSeq);
        if (aDispatchReady[h] > now) {
            event = std::min(event, aDispatchReady[h]);
        } else if (win.size() >=
                   static_cast<std::size_t>(prm.window.capacity)) {
            dispatchCounter = &result.dispatchWindowFull;
        } else if (dispatchSeq - commitSeq >=
                   static_cast<std::uint64_t>(prm.robSize)) {
            dispatchCounter = &result.dispatchRobFull;
        } else if (isa::isMemory(aCls[h]) &&
                   lsqOccupancy >= prm.lsqSize) {
            dispatchCounter = &result.dispatchLsqFull;
        } else {
            return 0; // the head would dispatch this cycle
        }
    }

    // Fetch: halted on an unresolved mispredict (cleared only by issue,
    // which cannot happen in the span), redirected until a future cycle
    // (bounds the span), or stopped at the front-end capacity (constant
    // while nothing dispatches).
    if (haltingBranch == ~0ull) {
        if (now < fetchResumeCycle) {
            event = std::min(event, fetchResumeCycle);
        } else {
            const std::uint64_t frontCap =
                prm.fetchQueueSize +
                static_cast<std::uint64_t>(frontDepth) * prm.fetchWidth;
            if (fetchSeq - dispatchSeq < frontCap)
                return 0; // fetch would run this cycle
        }
    }

    // Stall cause, constant across the span.  The only time-dependent
    // classification — empty ROB leaving the mispredict shadow — bounds
    // the span at the shadow's end instead.
    StallCause cause;
    if (robEmpty) {
        if (haltingBranch != ~0ull) {
            cause = StallCause::BranchMispredict;
        } else if (now < mispredictShadowEnd) {
            cause = StallCause::BranchMispredict;
            event = std::min(event, mispredictShadowEnd);
        } else {
            cause = StallCause::FrontEnd;
        }
    } else {
        cause = classifyStall();
    }

    const std::int64_t end =
        std::min(event, static_cast<std::int64_t>(limit));
    const std::int64_t n = end - now;
    if (n <= 0)
        return 0;

    // Bulk accounting: exactly what n reference zero-commit cycles
    // would have charged.
    result.stallCycles += static_cast<std::uint64_t>(n);
    result.stalls[cause] += static_cast<std::uint64_t>(n);
    if (dispatchCounter != nullptr)
        *dispatchCounter += static_cast<std::uint64_t>(n);
    occ.robSum += (dispatchSeq - commitSeq) * static_cast<std::uint64_t>(n);
    occ.windowSum += win.size() * static_cast<std::uint64_t>(n);
    occ.frontSum += (fetchSeq - dispatchSeq) * static_cast<std::uint64_t>(n);
    occ.lsqSum += static_cast<std::uint64_t>(lsqOccupancy) *
                  static_cast<std::uint64_t>(n);
    occ.cycles += static_cast<std::uint64_t>(n);
    now = end;
    return n;
}

SimResult
BatchedOooCore::run(trace::TraceSource &trace, std::uint64_t instructions,
                    std::uint64_t warmup, std::uint64_t prewarm,
                    std::uint64_t cycleLimit, const util::CancelToken *cancel)
{
    if (instructions == 0)
        throw util::ConfigError("nothing to simulate (instructions=0)");
    trace.reset();
    resetState();

    view = dynamic_cast<trace::DecodedTraceView *>(&trace);
    bool warmed = false;
    if (prewarm > 0 && view != nullptr && !bpredKey.empty()) {
        // One shared prewarm per sweep column instead of one per cell.
        const auto warm = WarmStartCache::global().acquire(
            view->trace(), prewarm, prm, *bpred, bpredKey);
        memory.adoptWarmState(warm->memory);
        bpred = warm->bpred->clone();
        warmed = true;
    }
    if (!warmed) {
        memory.reset();
        bpred->reset();
        if (prewarm > 0)
            prewarmState(trace, prewarm, memory, *bpred);
    }
    source = &trace;

    const std::uint64_t total = warmup + instructions;
    SimResult result;
    SimResult atWarmup;
    bool warmupDone = warmup == 0;
    const std::uint64_t dl1Miss0 = memory.dl1().misses();
    const std::uint64_t l2Miss0 = memory.l2().misses();

    OccupancySample occ;
    const std::uint64_t limit =
        cycleLimit ? cycleLimit : total * 1000 + 100000;
    while (result.instructions < total) {
        // The warmup snapshot can never land inside a skipped span: the
        // committed count is constant there and the snapshot condition
        // was already false when the preceding cycle checked it.
        if (skipIdleSpan(result, occ, limit) > 0) {
            if (static_cast<std::uint64_t>(now) >= limit) {
                source = nullptr;
                view = nullptr;
                throw util::DeadlockError(
                    watchdogDump(result, total, limit));
            }
            if (cancel && cancel->cancelled()) {
                source = nullptr;
                view = nullptr;
                throw util::CancelledError(util::strprintf(
                    "out-of-order simulation cancelled at cycle %lld "
                    "after %llu of %llu instructions",
                    static_cast<long long>(now),
                    static_cast<unsigned long long>(result.instructions),
                    static_cast<unsigned long long>(total)));
            }
            continue;
        }
        const std::uint64_t committedBefore = result.instructions;
        doCommit(result);
        if (result.instructions == committedBefore) {
            ++result.stallCycles;
            ++result.stalls[classifyStall()];
        }
        occ.robSum += dispatchSeq - commitSeq;
        occ.windowSum += win.size();
        occ.frontSum += fetchSeq - dispatchSeq;
        occ.lsqSum += static_cast<std::uint64_t>(lsqOccupancy);
        ++occ.cycles;
        if (!warmupDone && result.instructions >= warmup) {
            result.occupancy = occ;
            atWarmup = result;
            atWarmup.cycles = static_cast<std::uint64_t>(now);
            atWarmup.dl1Misses = memory.dl1().misses() - dl1Miss0;
            atWarmup.l2Misses = memory.l2().misses() - l2Miss0;
            warmupDone = true;
        }
        if (result.instructions >= total)
            break;
        doIssue();
        doDispatch(result);
        doFetch(result);
        ++now;
        if (static_cast<std::uint64_t>(now) >= limit) {
            source = nullptr;
            view = nullptr;
            throw util::DeadlockError(watchdogDump(result, total, limit));
        }
        if (cancel && cancel->cancelled()) {
            source = nullptr;
            view = nullptr;
            throw util::CancelledError(util::strprintf(
                "out-of-order simulation cancelled at cycle %lld after "
                "%llu of %llu instructions",
                static_cast<long long>(now),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(total)));
        }
    }

    result.occupancy = occ;
    result.cycles = static_cast<std::uint64_t>(now);
    result.dl1Misses = memory.dl1().misses() - dl1Miss0;
    result.l2Misses = memory.l2().misses() - l2Miss0;
    source = nullptr;
    view = nullptr;
    return result - atWarmup;
}

util::DeadlockDump
BatchedOooCore::watchdogDump(const SimResult &result, std::uint64_t total,
                             std::uint64_t limit) const
{
    util::DeadlockDump dump;
    dump.model = "out-of-order";
    dump.cycle = now;
    dump.cycleLimit = limit;
    dump.committed = result.instructions;
    dump.target = total;
    dump.robOccupancy = dispatchSeq - commitSeq;
    dump.windowOccupancy = win.size();
    dump.frontEndOccupancy = fetchSeq - dispatchSeq;
    dump.lsqOccupancy = lsqOccupancy;
    if (commitSeq != dispatchSeq) {
        const std::size_t h = slotIx(commitSeq);
        dump.oldestStalled = util::strprintf(
            "%s seq=%llu dispatchReady=%lld issue=%lld done=%lld",
            isa::opClassName(aCls[h]),
            static_cast<unsigned long long>(commitSeq),
            static_cast<long long>(aDispatchReady[h]),
            static_cast<long long>(aIssueCycle[h]),
            static_cast<long long>(aDoneCycle[h]));
    } else if (dispatchSeq != fetchSeq) {
        const std::size_t h = slotIx(dispatchSeq);
        dump.oldestStalled = util::strprintf(
            "%s seq=%llu waiting to dispatch (ready cycle %lld)",
            isa::opClassName(aCls[h]),
            static_cast<unsigned long long>(dispatchSeq),
            static_cast<long long>(aDispatchReady[h]));
    }
    return dump;
}

std::unique_ptr<Core>
makeBatchedOooCore(const CoreParams &params, const std::string &predictor)
{
    return std::make_unique<BatchedOooCore>(
        params, bp::makePredictor(predictor), predictor);
}

} // namespace fo4::core
