/**
 * @file
 * The dynamically-scheduled core: a cycle-level model of an Alpha
 * 21264-like machine (4-wide integer issue, 2-wide floating-point issue,
 * out-of-order issue from an instruction window, in-order commit from a
 * reorder buffer) with every pipeline segment's depth configurable, which
 * is what the paper's scaling study varies.
 *
 * Timing model summary:
 *  - the front end (fetch, decode, rename) is a delay of
 *    fetchStages + decodeStages + renameStages cycles; fetch breaks at
 *    taken branches and halts at a mispredicted branch until it resolves;
 *  - the issue window wakes dependents issueLatency cycles after the
 *    producer issues (plus one cycle per segmented-window stage the
 *    consumer sits in), so back-to-back dependent execution needs
 *    issueLatency == 1 and consumer in stage 1;
 *  - results bypass fully: a dependent's execution begins exactly when
 *    the producer's result is available;
 *  - loads see the address-generation plus cache latency; stores retire
 *    through a write buffer without stalling dependents;
 *  - branches resolve after register read + execute; a misprediction
 *    redirects fetch the following cycle, so the penalty is the branch's
 *    queueing delay plus the front-end refill.
 */

#ifndef FO4_CORE_OOO_CORE_HH
#define FO4_CORE_OOO_CORE_HH

#include <memory>
#include <vector>

#include "bp/predictor.hh"
#include "core/core.hh"
#include "core/window.hh"
#include "isa/microop.hh"
#include "mem/hierarchy.hh"
#include "util/circular_buffer.hh"
#include "util/status.hh"

namespace fo4::core
{

/** The out-of-order pipeline model. */
class OooCore : public Core, private WakeupOracle
{
  public:
    OooCore(const CoreParams &params,
            std::unique_ptr<bp::BranchPredictor> predictor);

    SimResult run(trace::TraceSource &trace, std::uint64_t instructions,
                  std::uint64_t warmup = 0, std::uint64_t prewarm = 0,
                  std::uint64_t cycleLimit = 0,
                  const util::CancelToken *cancel = nullptr) override;

    const CoreParams &params() const override { return prm; }

    /** Issue-window behaviour counters from the most recent run. */
    const IssueWindow::Stats &windowStats() const { return window.stats(); }

    void setTracer(util::TraceEventRing *ring) override { tracer = ring; }

    void setRetireSink(trace::RetireSink *sink) override
    {
        retireSink = sink;
    }

  private:
    struct DynInst
    {
        isa::MicroOp op;
        std::int64_t dispatchReady = 0; ///< end of front-end traversal
        std::int64_t issueCycle = -1;
        std::int64_t doneCycle = -1;
        int execLat = 1;       ///< occupancy of the execute pipeline
        int depLatency = 1;    ///< latency dependents observe after issue
        bool mispredicted = false;
        bool dispatched = false;
        bool loadMiss = false; ///< load whose DL1 access missed
    };

    // WakeupOracle
    std::int64_t dependentReadyCycle(InflightRef producer,
                                     int stage) const override;

    void resetState();
    /** Pipeline-state snapshot for the deadlock watchdog. */
    util::DeadlockDump watchdogDump(const SimResult &result,
                                    std::uint64_t total,
                                    std::uint64_t limit) const;
    void doCommit(SimResult &result);
    void doIssue();
    void doDispatch(SimResult &result);
    void doFetch(SimResult &result);
    /** Why the commit stage retired nothing this cycle (the oldest
     *  unretired instruction's blocker). */
    StallCause classifyStall() const;

    DynInst &slot(std::uint64_t seq) { return inflight[seq & slotMask]; }
    const DynInst &slot(std::uint64_t seq) const
    {
        return inflight[seq & slotMask];
    }

    CoreParams prm;
    std::unique_ptr<bp::BranchPredictor> bpred;
    mem::MemoryHierarchy memory;
    IssueWindow window;

    std::vector<DynInst> inflight;
    std::uint64_t slotMask;

    // Sequence pointers: [commitSeq, dispatchSeq) is the ROB contents;
    // [dispatchSeq, fetchSeq) is the front end.
    std::uint64_t fetchSeq = 0;
    std::uint64_t dispatchSeq = 0;
    std::uint64_t commitSeq = 0;

    std::int64_t now = 0;
    std::int64_t fetchResumeCycle = 0;
    std::uint64_t haltingBranch = ~0ull; ///< seq of unresolved mispredict
    int frontDepth = 3;
    int lsqOccupancy = 0;

    /** End of the refill shadow after a mispredicted branch issues:
     *  empty-ROB cycles before this are charged to the mispredict. */
    std::int64_t mispredictShadowEnd = 0;

    util::TraceEventRing *tracer = nullptr;

    trace::RetireSink *retireSink = nullptr;

    /** Architectural register -> seq of the youngest producer. */
    std::array<std::uint64_t, isa::numArchRegs> renameMap{};

    trace::TraceSource *traceSource = nullptr;
};

} // namespace fo4::core

#endif // FO4_CORE_OOO_CORE_HH
