/**
 * @file
 * Functional cache/predictor prewarming shared by the pipeline models:
 * streams a prefix of the trace through the memory hierarchy and branch
 * predictor with no timing, standing in for the instructions the paper
 * executes before its measurement window.
 */

#ifndef FO4_CORE_PREWARM_HH
#define FO4_CORE_PREWARM_HH

#include "bp/predictor.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace fo4::core
{

/** Stream `count` instructions through caches and predictor, then rewind
 *  the trace. */
inline void
prewarmState(trace::TraceSource &trace, std::uint64_t count,
             mem::MemoryHierarchy &memory, bp::BranchPredictor &bpred)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const isa::MicroOp op = trace.next();
        if (op.isLoad()) {
            memory.loadLatency(op.addr, static_cast<std::int64_t>(i));
        } else if (op.isStore()) {
            memory.storeLatency(op.addr, static_cast<std::int64_t>(i));
        } else if (op.isBranch()) {
            bpred.predict(op);
            bpred.update(op, op.taken);
        }
    }
    memory.resetContention();
    trace.reset();
}

} // namespace fo4::core

#endif // FO4_CORE_PREWARM_HH
