/**
 * @file
 * Throughput-optimized out-of-order core (`sim_impl=batched`): the same
 * cycle-level model as OooCore — byte-identical results, pinned by
 * tests/test_core_differential.cc — restructured for raw speed:
 *
 *  - struct-of-arrays in-flight arena (the per-cycle hot scalars live in
 *    dense typed arrays indexed by sequence slot, not an array of
 *    DynInst structs);
 *  - the issue window inlined with a non-virtual wakeup query, removing
 *    the WakeupOracle virtual dispatch from the hottest loop;
 *  - devirtualized trace reads when fed a trace::DecodedTraceView;
 *  - shared prewarm state via core::WarmStartCache;
 *  - idle-span skipping: spans where commit, issue, dispatch and fetch
 *    are all provably inert (no awake window entry, every stage blocked
 *    on a known future event) are charged in bulk instead of walked.
 *
 * DESIGN.md §14 is the contract: none of these may change bytes.
 */

#ifndef FO4_CORE_BATCHED_OOO_CORE_HH
#define FO4_CORE_BATCHED_OOO_CORE_HH

#include <array>
#include <memory>
#include <vector>

#include "bp/predictor.hh"
#include "core/core.hh"
#include "core/window.hh"
#include "isa/microop.hh"
#include "mem/hierarchy.hh"
#include "trace/decoded_trace.hh"
#include "util/status.hh"

namespace fo4::core
{

/** The batched out-of-order pipeline model. */
class BatchedOooCore : public Core
{
  public:
    /**
     * `predictorKey` names the predictor's factory configuration and
     * enables the shared warm-state cache; empty disables sharing (the
     * core then prewarms per run, still byte-identically).
     */
    BatchedOooCore(const CoreParams &params,
                   std::unique_ptr<bp::BranchPredictor> predictor,
                   std::string predictorKey = "");

    SimResult run(trace::TraceSource &trace, std::uint64_t instructions,
                  std::uint64_t warmup = 0, std::uint64_t prewarm = 0,
                  std::uint64_t cycleLimit = 0,
                  const util::CancelToken *cancel = nullptr) override;

    const CoreParams &params() const override { return prm; }

    void setTracer(util::TraceEventRing *ring) override { tracer = ring; }

    void setRetireSink(trace::RetireSink *sink) override
    {
        retireSink = sink;
        // The side array of full ops exists only while observed, so the
        // no-sink hot path stays untouched (DESIGN.md §14).
        if (sink != nullptr && aOp.size() != aCls.size())
            aOp.resize(aCls.size());
    }

  private:
    /** One issue-window entry; the same state window.cc keeps. */
    struct WinEntry
    {
        InflightRef ref;
        std::uint64_t seq;
        bool fp;
        bool mem;
        bool awake;
        bool preselected;
        std::array<InflightRef, 2> producers;
        std::array<std::int64_t, 2> srcReadyAt;
    };

    void resetState();
    util::DeadlockDump watchdogDump(const SimResult &result,
                                    std::uint64_t total,
                                    std::uint64_t limit) const;
    void doCommit(SimResult &result);
    void doIssue();
    void doDispatch(SimResult &result);
    void doFetch(SimResult &result);
    StallCause classifyStall() const;
    isa::MicroOp nextOp();

    // Inlined issue-window algorithm (window.cc semantics, devirtualized
    // wakeup, stats omitted — they are not part of SimResult).
    int stageOf(std::size_t position) const;
    std::int64_t depReady(InflightRef producer, int stage) const;
    bool wokenEntry(WinEntry &entry, std::size_t position,
                    std::int64_t when) const;
    void wakeupPass(std::int64_t when);
    void selectAndRemove();

    /** Bulk-account a provably-idle span; returns cycles skipped. */
    std::int64_t skipIdleSpan(SimResult &result, OccupancySample &occ,
                              std::uint64_t limit);

    std::size_t slotIx(std::uint64_t seq) const { return seq & slotMask; }

    CoreParams prm;
    std::unique_ptr<bp::BranchPredictor> bpred;
    std::string bpredKey;
    mem::MemoryHierarchy memory;

    // In-flight arena, struct-of-arrays over sequence slots.
    std::vector<std::int64_t> aDispatchReady;
    std::vector<std::int64_t> aIssueCycle;
    std::vector<std::int64_t> aDoneCycle;
    std::vector<int> aExecLat;
    std::vector<int> aDepLat;
    std::vector<std::uint64_t> aAddr;
    std::vector<isa::OpClass> aCls;
    std::vector<std::int16_t> aSrc1;
    std::vector<std::int16_t> aSrc2;
    std::vector<std::int16_t> aDst;
    std::vector<std::uint8_t> aMispredicted;
    std::vector<std::uint8_t> aLoadMiss;
    /** Full fetched ops by slot; filled only while a retire sink is
     *  attached, so the hot no-sink path never touches it. */
    std::vector<isa::MicroOp> aOp;
    std::uint64_t slotMask = 0;

    // Issue window (age order, oldest first).
    std::vector<WinEntry> win;
    std::vector<InflightRef> issuedScratch;

    std::uint64_t fetchSeq = 0;
    std::uint64_t dispatchSeq = 0;
    std::uint64_t commitSeq = 0;

    std::int64_t now = 0;
    std::int64_t fetchResumeCycle = 0;
    std::uint64_t haltingBranch = ~0ull;
    int frontDepth = 3;
    int lsqOccupancy = 0;
    std::int64_t mispredictShadowEnd = 0;

    util::TraceEventRing *tracer = nullptr;

    trace::RetireSink *retireSink = nullptr;

    std::array<std::uint64_t, isa::numArchRegs> renameMap{};

    trace::TraceSource *source = nullptr;
    trace::DecodedTraceView *view = nullptr;
};

} // namespace fo4::core

#endif // FO4_CORE_BATCHED_OOO_CORE_HH
