#include "core/core.hh"

namespace fo4::core
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
    case StallCause::BranchMispredict:
        return "branch-mispredict";
    case StallCause::IcacheMiss:
        return "icache-miss";
    case StallCause::DcacheMiss:
        return "dcache-miss";
    case StallCause::WindowFull:
        return "window-full";
    case StallCause::RawLoadUse:
        return "raw-load-use";
    case StallCause::Execute:
        return "execute";
    case StallCause::FrontEnd:
        return "front-end";
    case StallCause::Other:
        return "other";
    }
    return "unknown";
}

std::uint64_t
StallBreakdown::total() const
{
    std::uint64_t sum = 0;
    for (const auto v : byCause)
        sum += v;
    return sum;
}

StallBreakdown
StallBreakdown::operator-(const StallBreakdown &other) const
{
    StallBreakdown d;
    for (int i = 0; i < numStallCauses; ++i)
        d.byCause[i] = byCause[i] - other.byCause[i];
    return d;
}

StallBreakdown &
StallBreakdown::operator+=(const StallBreakdown &other)
{
    for (int i = 0; i < numStallCauses; ++i)
        byCause[i] += other.byCause[i];
    return *this;
}

OccupancySample
OccupancySample::operator-(const OccupancySample &other) const
{
    OccupancySample d;
    d.cycles = cycles - other.cycles;
    d.frontSum = frontSum - other.frontSum;
    d.windowSum = windowSum - other.windowSum;
    d.robSum = robSum - other.robSum;
    d.lsqSum = lsqSum - other.lsqSum;
    return d;
}

} // namespace fo4::core
