/**
 * @file
 * Core configuration: widths, capacities, per-segment pipeline depths and
 * per-class execution latencies — everything the scaling study varies.
 *
 * The default values describe the Alpha 21264-like baseline machine at
 * its native 17.4 FO4 clock (paper Section 3); study/scaling.hh derives
 * the deeper-pipeline variants.
 */

#ifndef FO4_CORE_PARAMS_HH
#define FO4_CORE_PARAMS_HH

#include <array>
#include <cstdint>

#include "isa/opclass.hh"
#include "mem/hierarchy.hh"
#include "util/status.hh"

namespace fo4::core
{

/** Instruction selection scheme of the issue window (paper Section 5). */
enum class SelectModel
{
    Full,        ///< single select block sees the whole window
    Partitioned, ///< S1 over stage 1 + preselect blocks S2..S4 (Fig 12)
};

/** Issue window organization. */
struct WindowConfig
{
    int capacity = 32;
    /** Pipeline depth of wakeup: 1 = conventional single-cycle window,
     *  >1 = segmented window with one tag-latch stage per extra cycle
     *  (paper Figure 10). */
    int wakeupStages = 1;
    SelectModel select = SelectModel::Full;
    /** Maximum pre-selected instructions per non-first stage (oldest
     *  stage first), for SelectModel::Partitioned (paper Figure 12). */
    std::array<int, 8> preselectCap{5, 2, 1, 1, 1, 1, 1, 1};

    int entriesPerStage() const
    {
        return (capacity + wakeupStages - 1) / wakeupStages;
    }
};

/** Full core configuration. */
struct CoreParams
{
    // --- widths ---
    int fetchWidth = 4;
    int renameWidth = 4;
    int commitWidth = 8;
    int intIssueWidth = 4;  ///< int ALU ops + branches per cycle
    int fpIssueWidth = 2;
    int memIssueWidth = 2;  ///< loads+stores per cycle (subset of int)

    // --- capacities ---
    int robSize = 512;
    int lsqSize = 128;
    int fetchQueueSize = 32;
    WindowConfig window;

    // --- pipeline depths (cycles per segment) ---
    int fetchStages = 1;   ///< I-fetch + branch predictor access
    int decodeStages = 1;
    int renameStages = 1;
    int regReadStages = 1;
    int commitStages = 1;

    /**
     * Issue-window access cycles: the issue-wakeup loop length.  A value
     * W means a producer's result tags take W cycles to wake dependents,
     * so back-to-back dependent issue is only possible when W == 1.
     */
    int issueLatency = 1;

    // --- execution latencies (cycles), indexed by OpClass ---
    std::array<int, isa::numOpClasses> execCycles{};

    // --- memory latencies (cycles) ---
    mem::HierarchyLatencies memLatencies;
    mem::MemoryMode memoryMode = mem::MemoryMode::TwoLevel;
    mem::CacheParams dl1{64 * 1024, 64, 2};
    mem::CacheParams l2{2 * 1024 * 1024, 64, 8};

    // --- critical-loop extensions (paper Figure 8) ---
    int extraMispredictPenalty = 0;
    int extraLoadUse = 0;
    int extraWakeup = 0;

    /** Baseline machine: Alpha 21264 latencies at its native clock. */
    static CoreParams alpha21264();

    /** Execution latency for an op class. */
    int execLatency(isa::OpClass cls) const
    {
        return execCycles[static_cast<int>(cls)];
    }

    /**
     * Check every range rule (widths, capacities, stage depths,
     * latencies, cache geometry) and report *all* violations at once.
     */
    util::Status validate() const;

    /** Throw ConfigError listing every violation; no-op when valid. */
    void validateOrThrow() const;
};

} // namespace fo4::core

#endif // FO4_CORE_PARAMS_HH
