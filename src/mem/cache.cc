#include "mem/cache.hh"

#include "util/logging.hh"

namespace fo4::mem
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

util::Status
CacheParams::validate() const
{
    util::ErrorCollector errs;
    if (!isPowerOfTwo(lineBytes))
        errs.addf("line size %u not a power of two", lineBytes);
    if (associativity < 1)
        errs.addf("associativity %u below one", associativity);
    if (lineBytes > 0 && associativity >= 1) {
        if (capacityBytes % (std::uint64_t(lineBytes) * associativity) != 0) {
            errs.addf("capacity %llu not divisible into %u-way sets of "
                      "%u-byte lines",
                      static_cast<unsigned long long>(capacityBytes),
                      associativity, lineBytes);
        } else if (!isPowerOfTwo(sets())) {
            errs.addf("set count %llu not a power of two",
                      static_cast<unsigned long long>(sets()));
        }
    }
    return errs.status(util::ErrorCode::InvalidConfig);
}

Cache::Cache(const CacheParams &params)
    : prm(params)
{
    if (const auto st = prm.validate(); !st.isOk())
        throw util::ConfigError("cache geometry: " + st.message());
    lines.resize(prm.sets() * prm.associativity);
}

std::uint64_t
Cache::lineAddr(std::uint64_t addr) const
{
    return addr / prm.lineBytes;
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return lineAddr(addr) & (prm.sets() - 1);
}

bool
Cache::access(std::uint64_t addr, bool write)
{
    ++useClock;
    const std::uint64_t tag = lineAddr(addr);
    Line *base = &lines[setIndex(addr) * prm.associativity];

    Line *victim = base;
    for (std::uint32_t way = 0; way < prm.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty |= write;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = useClock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t tag = lineAddr(addr);
    const Line *base = &lines[setIndex(addr) * prm.associativity];
    for (std::uint32_t way = 0; way < prm.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

} // namespace fo4::mem
