#include "mem/cache.hh"

#include "util/logging.hh"

namespace fo4::mem
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params)
    : prm(params)
{
    FO4_ASSERT(isPowerOfTwo(prm.lineBytes), "line size not a power of two");
    FO4_ASSERT(prm.capacityBytes % (prm.lineBytes * prm.associativity) == 0,
               "capacity not divisible into sets");
    FO4_ASSERT(isPowerOfTwo(prm.sets()), "set count not a power of two");
    lines.resize(prm.sets() * prm.associativity);
}

std::uint64_t
Cache::lineAddr(std::uint64_t addr) const
{
    return addr / prm.lineBytes;
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return lineAddr(addr) & (prm.sets() - 1);
}

bool
Cache::access(std::uint64_t addr, bool write)
{
    ++useClock;
    const std::uint64_t tag = lineAddr(addr);
    Line *base = &lines[setIndex(addr) * prm.associativity];

    Line *victim = base;
    for (std::uint32_t way = 0; way < prm.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty |= write;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = useClock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t tag = lineAddr(addr);
    const Line *base = &lines[setIndex(addr) * prm.associativity];
    for (std::uint32_t way = 0; way < prm.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

} // namespace fo4::mem
