/**
 * @file
 * Set-associative cache with true LRU replacement.  The simulator models
 * latency, not data, so a cache tracks only tags; accesses report hit or
 * miss and allocate on miss.
 */

#ifndef FO4_MEM_CACHE_HH
#define FO4_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "util/status.hh"

namespace fo4::mem
{

/** Geometry of one cache level. */
struct CacheParams
{
    std::uint64_t capacityBytes = 64 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t associativity = 2;

    std::uint64_t sets() const
    {
        return capacityBytes / lineBytes / associativity;
    }

    /** Check the geometry rules, reporting every violation at once. */
    util::Status validate() const;
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up an address; on miss, allocate the line (evicting LRU).
     * @param write marks the line dirty on hit/allocate
     * @return true on hit
     */
    bool access(std::uint64_t addr, bool write);

    /** Look up without any state change (for tests/inspection). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate everything. */
    void flush();

    const CacheParams &params() const { return prm; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    missRate() const
    {
        const double total =
            static_cast<double>(hits_.value() + misses_.value());
        return total > 0 ? misses_.value() / total : 0.0;
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0; // LRU timestamp
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint64_t setIndex(std::uint64_t addr) const;

    CacheParams prm;
    std::vector<Line> lines; // sets * associativity, set-major
    std::uint64_t useClock = 0;
    util::Counter hits_;
    util::Counter misses_;
};

} // namespace fo4::mem

#endif // FO4_MEM_CACHE_HH
