#include "mem/hierarchy.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::mem
{

MemoryHierarchy::MemoryHierarchy(const CacheParams &dl1Params,
                                 const CacheParams &l2Params,
                                 const HierarchyLatencies &latencies,
                                 MemoryMode mode)
    : dl1_(dl1Params), l2_(l2Params), lat(latencies), mode_(mode)
{
    if (lat.dl1 < 1 || lat.l2 < 1 || lat.memory < 1 || lat.flat < 1) {
        throw util::ConfigError(
            "memory latencies must be at least one cycle");
    }
    if (lat.l2BusCycles < 0 || lat.memBusCycles < 0)
        throw util::ConfigError("bus occupancies cannot be negative");
}

int
MemoryHierarchy::accessLatency(std::uint64_t addr, bool write,
                               std::int64_t now)
{
    if (mode_ == MemoryMode::Flat)
        return lat.flat;

    if (dl1_.access(addr, write))
        return lat.dl1;

    // DL1 miss: the line fill occupies the L1<->L2 bus; misses queue.
    const std::int64_t busStart = std::max(now, l2BusFreeAt);
    l2BusFreeAt = busStart + lat.l2BusCycles;
    const int queueing = static_cast<int>(busStart - now);

    if (l2_.access(addr, write))
        return lat.dl1 + lat.l2 + queueing + lat.l2BusCycles;

    // L2 miss: additionally occupy the memory channel.
    const std::int64_t memStart = std::max(busStart, memBusFreeAt);
    memBusFreeAt = memStart + lat.memBusCycles;
    const int memQueueing = static_cast<int>(memStart - busStart);
    return lat.dl1 + lat.l2 + lat.memory + queueing + lat.l2BusCycles +
           memQueueing + lat.memBusCycles;
}

int
MemoryHierarchy::loadLatency(std::uint64_t addr, std::int64_t now)
{
    return accessLatency(addr, false, now);
}

int
MemoryHierarchy::storeLatency(std::uint64_t addr, std::int64_t now)
{
    return accessLatency(addr, true, now);
}

void
MemoryHierarchy::reset()
{
    dl1_.flush();
    l2_.flush();
    resetContention();
}

void
MemoryHierarchy::resetContention()
{
    l2BusFreeAt = 0;
    memBusFreeAt = 0;
}

void
MemoryHierarchy::adoptWarmState(const MemoryHierarchy &donor)
{
    FO4_ASSERT(mode_ == donor.mode_ &&
                   dl1_.params().capacityBytes ==
                       donor.dl1_.params().capacityBytes &&
                   dl1_.params().lineBytes == donor.dl1_.params().lineBytes &&
                   dl1_.params().associativity ==
                       donor.dl1_.params().associativity &&
                   l2_.params().capacityBytes ==
                       donor.l2_.params().capacityBytes &&
                   l2_.params().lineBytes == donor.l2_.params().lineBytes &&
                   l2_.params().associativity ==
                       donor.l2_.params().associativity,
               "warm-state donor has a different cache geometry");
    dl1_ = donor.dl1_;
    l2_ = donor.l2_;
    resetContention();
}

} // namespace fo4::mem
