/**
 * @file
 * Two-level memory hierarchy (DL1 + unified L2 + DRAM) plus the flat
 * Cray-1S-style memory mode used by the paper's Section 4.2 comparison.
 * Latency-only: an access returns the number of cycles until data is
 * available; bandwidth and MSHR contention are not modelled.
 */

#ifndef FO4_MEM_HIERARCHY_HH
#define FO4_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace fo4::mem
{

/** Per-level latencies in cycles at the simulated clock. */
struct HierarchyLatencies
{
    int dl1 = 3;
    int l2 = 16;
    int memory = 150;
    int flat = 12;   ///< latency of every access in flat (Cray) mode

    /**
     * Occupancy of the L1<->L2 line-fill bus per DL1 miss, in cycles.
     * The bus is on-chip and clocked with the core, so its occupancy is
     * constant in cycles across pipeline scalings (a 64B line in 16B
     * beats = 4 cycles).  Misses queue behind one another, which is what
     * bounds the throughput of streaming workloads.
     */
    int l2BusCycles = 4;

    /** Occupancy of the memory channel per L2 miss, in cycles.  DRAM
     *  bandwidth is fixed in absolute time, so the scaling study sets
     *  this from an FO4 figure. */
    int memBusCycles = 8;
};

/** Memory-system style. */
enum class MemoryMode
{
    TwoLevel, ///< DL1 + L2 + DRAM
    Flat,     ///< no caches; every access costs `flat` cycles
};

/** The data-side memory system seen by a core. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const CacheParams &dl1Params, const CacheParams &l2Params,
                    const HierarchyLatencies &latencies,
                    MemoryMode mode = MemoryMode::TwoLevel);

    /**
     * Cycles until load data is available (updates cache state).  `now`
     * is the current cycle; on a miss the access queues for the fill
     * bus, so a burst of misses sees growing latencies.
     */
    int loadLatency(std::uint64_t addr, std::int64_t now = 0);

    /**
     * Cycles a store occupies the memory pipeline (updates cache state).
     * Stores retire from a write buffer and do not stall dependents, but
     * misses still consume fill-bus bandwidth.
     */
    int storeLatency(std::uint64_t addr, std::int64_t now = 0);

    void reset();

    /** Clear only the bus-busy bookkeeping (after functional prewarm). */
    void resetContention();

    /**
     * Copy the cache state (tags, LRU order, hit/miss counters) of a
     * donor hierarchy with identical geometry and mode; bus bookkeeping
     * resets, exactly as after prewarmState().  Cache contents depend
     * only on geometry and the access stream — never on latencies — so
     * one prewarmed donor serves every clock-period cell of a sweep
     * column.
     */
    void adoptWarmState(const MemoryHierarchy &donor);

    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }
    const HierarchyLatencies &latencies() const { return lat; }
    MemoryMode mode() const { return mode_; }

  private:
    int accessLatency(std::uint64_t addr, bool write, std::int64_t now);

    Cache dl1_;
    Cache l2_;
    HierarchyLatencies lat;
    MemoryMode mode_;
    std::int64_t l2BusFreeAt = 0;
    std::int64_t memBusFreeAt = 0;
};

} // namespace fo4::mem

#endif // FO4_MEM_HIERARCHY_HH
