/**
 * @file
 * An analytical access-time model for on-chip SRAM and CAM structures, in
 * the spirit of Cacti 3.0 (Shivakumar & Jouppi), which the paper uses to
 * produce Table 3.
 *
 * The model decomposes an access into decoder, wordline, bitline + sense,
 * tag compare, output mux/driver and global routing components, each
 * expressed directly in FO4 using logical-effort-style terms, and searches
 * over subarray partitions (the Cacti Ndwl/Ndbl degrees of freedom) to
 * minimize total access time.  Constants are calibrated so the canonical
 * Alpha-21264-sized presets in structures.hh land on the paper's access
 * times (e.g. the 512-entry register file at 0.39 ns = 10.8 FO4 at 100nm).
 *
 * Delays in FO4 are technology independent, which is exactly why the
 * paper uses the metric; this model therefore carries no explicit
 * technology parameter.
 */

#ifndef FO4_CACTI_SRAM_HH
#define FO4_CACTI_SRAM_HH

#include <cstdint>
#include <string>

namespace fo4::cacti
{

/** Calibration constants of the timing model (all in FO4 units). */
struct ModelParams
{
    double decodePerLog4 = 1.1;  ///< decoder effort per log4(rows)
    double decodeFixed = 0.8;    ///< predecode + driver overhead
    double wordlinePerBit = 1.0 / 512.0; ///< wordline RC per column
    double wordlineFixed = 0.4;
    double bitlinePerRow = 1.0 / 96.0;   ///< bitline RC per row
    double senseFixed = 1.2;     ///< sense amplifier
    double outputPerLog4 = 0.7;  ///< output mux/driver effort
    double outputFixed = 0.4;
    double routePerSqrtKb = 0.55; ///< global H-tree per sqrt(kilo-bitcell)
    double camMatchPerRow = 1.0 / 32.0;  ///< tag broadcast per CAM row
    double camMatchFixed = 1.6;  ///< match line + encoder
    double comparePerLog2 = 0.35; ///< set-associative tag comparator
    double portGrowth = 0.3;     ///< wire-length growth per extra port
};

/** Description of one RAM/CAM structure. */
struct SramConfig
{
    std::uint64_t entries = 64;  ///< addressable words
    std::uint32_t bits = 64;     ///< bits per word
    std::uint32_t readPorts = 1;
    std::uint32_t writePorts = 1;
    bool cam = false;            ///< fully-associative tag match (CAM)
    std::uint32_t tagBits = 0;   ///< CAM tag width (when cam is true)

    std::uint32_t ports() const { return readPorts + writePorts; }
    std::uint64_t bitcells() const { return entries * bits; }
};

/** Access-time breakdown, all in FO4. */
struct AccessTime
{
    double decode = 0.0;
    double wordline = 0.0;
    double bitline = 0.0;
    double sense = 0.0;
    double compare = 0.0;
    double output = 0.0;
    double route = 0.0;

    double total() const
    {
        return decode + wordline + bitline + sense + compare + output +
               route;
    }

    /** Chosen subarray organization (for inspection/tests). */
    int splitsBitlines = 1;
    int splitsWordlines = 1;
};

/**
 * Compute the minimum access time over subarray organizations.
 */
AccessTime sramAccessTime(const SramConfig &cfg,
                          const ModelParams &params = ModelParams{});

/** Description of a set-associative cache. */
struct CacheConfig
{
    std::uint64_t capacityBytes = 64 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t associativity = 2;
    std::uint32_t ports = 1;
    std::uint32_t addressBits = 44;

    std::uint64_t lines() const { return capacityBytes / lineBytes; }
    std::uint64_t sets() const { return lines() / associativity; }
};

/** Cache access time: max of tag and data paths plus way select. */
struct CacheAccessTime
{
    AccessTime data;
    AccessTime tag;
    double waySelect = 0.0;

    double total() const
    {
        const double d = data.total();
        const double t = tag.total() + waySelect;
        return d > t ? d : t;
    }
};

/**
 * Compute the access time of a set-associative cache (tag and data arrays
 * modelled separately; the slower path plus way-selection bounds the
 * access).
 */
CacheAccessTime cacheAccessTime(const CacheConfig &cfg,
                                const ModelParams &params = ModelParams{});

} // namespace fo4::cacti

#endif // FO4_CACTI_SRAM_HH
