#include "cacti/latency_cache.hh"

#include <cstring>

#include "util/metrics.hh"

namespace fo4::cacti
{

namespace
{

/** Process-global engineering counters (self-gating when disabled);
 *  references are stable, so the lookup happens once per process. */
struct CacheMetrics
{
    util::MetricCounter &hits;
    util::MetricCounter &misses;
    util::MetricCounter &inserts;

    static CacheMetrics &
    get()
    {
        static CacheMetrics m{
            util::MetricsRegistry::global().counter(
                "cacti.latency_cache.hit"),
            util::MetricsRegistry::global().counter(
                "cacti.latency_cache.miss"),
            util::MetricsRegistry::global().counter(
                "cacti.latency_cache.insert"),
        };
        return m;
    }
};

/** FNV-1a over a value's bytes; doubles here are set, not computed, so
 *  bitwise identity is the right equality for calibration constants. */
std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
fingerprint(const ModelParams &p)
{
    const double fields[] = {
        p.decodePerLog4, p.decodeFixed,   p.wordlinePerBit,
        p.wordlineFixed, p.bitlinePerRow, p.senseFixed,
        p.outputPerLog4, p.outputFixed,   p.routePerSqrtKb,
        p.camMatchPerRow, p.camMatchFixed, p.comparePerLog2,
        p.portGrowth,
    };
    return fnv1a(fields, sizeof(fields), 14695981039346656037ull);
}

} // namespace

std::size_t
LatencyCache::KeyHash::operator()(const Key &k) const
{
    std::uint64_t h = k.paramsFingerprint;
    h = fnv1a(&k.kind, sizeof(k.kind), h);
    h = fnv1a(&k.capacity, sizeof(k.capacity), h);
    return static_cast<std::size_t>(h);
}

LatencyCache &
LatencyCache::global()
{
    static LatencyCache instance;
    return instance;
}

double
LatencyCache::latencyFo4(const StructureModel &model, StructureKind kind,
                         std::uint64_t capacity)
{
    const Key key{fingerprint(model.params()), kind, capacity};
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = table.find(key);
        if (it != table.end()) {
            ++counters.hits;
            CacheMetrics::get().hits.inc();
            return it->second;
        }
        ++counters.misses;
    }
    CacheMetrics::get().misses.inc();
    // Compute outside the lock: the subarray search is the slow part,
    // and concurrent first lookups of the same key are idempotent.
    const double latency = model.latencyFo4(kind, capacity);
    std::lock_guard<std::mutex> lock(mutex);
    if (table.emplace(key, latency).second) {
        ++counters.inserts;
        CacheMetrics::get().inserts.inc();
    }
    return latency;
}

LatencyCacheStats
LatencyCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

void
LatencyCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    table.clear();
    counters = LatencyCacheStats{};
}

} // namespace fo4::cacti
