#include "cacti/sram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace fo4::cacti
{

namespace
{

double
log4(double v)
{
    return v <= 1.0 ? 0.0 : std::log2(v) / 2.0;
}

double
log2c(double v)
{
    return v <= 1.0 ? 0.0 : std::log2(v);
}

/** Wire-pitch multiplier from multiporting: each extra port widens the
 *  cell in both dimensions. */
double
portFactor(const SramConfig &cfg, const ModelParams &p)
{
    return 1.0 + p.portGrowth * (cfg.ports() > 0 ? cfg.ports() - 1 : 0);
}

AccessTime
evaluate(const SramConfig &cfg, const ModelParams &p, int dbl, int dwl)
{
    const double pf = portFactor(cfg, p);
    const double rows =
        std::max(1.0, static_cast<double>(cfg.entries) / dbl);
    const double cols = std::max(1.0, static_cast<double>(cfg.bits) / dwl);
    const double subarrays = dbl * dwl;

    AccessTime at;
    at.splitsBitlines = dbl;
    at.splitsWordlines = dwl;

    at.decode = p.decodeFixed + p.decodePerLog4 * log4(rows);
    at.wordline = p.wordlineFixed + p.wordlinePerBit * cols * pf;
    at.bitline = p.bitlinePerRow * rows * pf;
    at.sense = p.senseFixed;
    at.output = p.outputFixed + p.outputPerLog4 * log4(cols);

    // Global routing: an H-tree spanning the whole structure.  Length
    // grows with the square root of total (port-inflated) bit-cell area;
    // each fork adds a buffer.
    const double kilocells =
        static_cast<double>(cfg.bitcells()) * pf * pf / 1024.0;
    at.route = p.routePerSqrtKb * std::sqrt(kilocells) +
               0.25 * log2c(subarrays);

    if (cfg.cam) {
        // Tag broadcast spans every row of the (unsplit) structure: this
        // is the component Palacharla et al. flag as the scaling problem
        // for issue windows, so it deliberately does not benefit from
        // bitline splits.
        at.compare = p.camMatchFixed +
                     p.camMatchPerRow * static_cast<double>(cfg.entries) *
                         pf +
                     p.comparePerLog2 * log2c(cfg.tagBits);
    }
    return at;
}

} // namespace

AccessTime
sramAccessTime(const SramConfig &cfg, const ModelParams &params)
{
    FO4_ASSERT(cfg.entries > 0 && cfg.bits > 0, "empty SRAM");

    AccessTime best;
    bool first = true;
    for (int dbl = 1; dbl <= 32; dbl *= 2) {
        if (static_cast<std::uint64_t>(dbl) > cfg.entries)
            break;
        for (int dwl = 1; dwl <= 16; dwl *= 2) {
            if (static_cast<std::uint32_t>(dwl) > cfg.bits)
                break;
            const AccessTime at = evaluate(cfg, params, dbl, dwl);
            if (first || at.total() < best.total()) {
                best = at;
                first = false;
            }
        }
    }
    return best;
}

CacheAccessTime
cacheAccessTime(const CacheConfig &cfg, const ModelParams &params)
{
    FO4_ASSERT(cfg.capacityBytes >= cfg.lineBytes, "cache smaller than line");
    FO4_ASSERT(cfg.associativity >= 1, "associativity must be >= 1");
    FO4_ASSERT(cfg.lines() % cfg.associativity == 0,
               "lines not divisible by associativity");

    CacheAccessTime cat;

    // Data array: one word per line, all ways read in parallel.
    SramConfig data;
    data.entries = cfg.sets();
    data.bits = cfg.lineBytes * 8 * cfg.associativity;
    data.readPorts = cfg.ports;
    data.writePorts = 0;
    cat.data = sramAccessTime(data, params);

    // Tag array.
    const double setBits = std::log2(static_cast<double>(cfg.sets()));
    const std::uint32_t tagWidth = static_cast<std::uint32_t>(
        std::max(1.0, cfg.addressBits - setBits -
                          std::log2(static_cast<double>(cfg.lineBytes))));
    SramConfig tag;
    tag.entries = cfg.sets();
    tag.bits = tagWidth * cfg.associativity;
    tag.readPorts = cfg.ports;
    tag.writePorts = 0;
    cat.tag = sramAccessTime(tag, params);

    // Comparators plus way-select mux driving the data output.
    cat.waySelect = params.comparePerLog2 * std::log2(double(tagWidth)) +
                    0.5 * std::log2(double(cfg.associativity) + 1.0);
    return cat;
}

} // namespace fo4::cacti
