/**
 * @file
 * Process-wide memoization of structure access latencies.  A sweep
 * evaluates the same (structure, capacity, calibration) points at every
 * clock period — the Cacti-style subarray search behind latencyFo4() is
 * pure, so each distinct point is computed once and shared by every
 * sweep point and every worker thread thereafter.
 *
 * The quantized form, cycles = ceil(latency_fo4 / t_useful), is derived
 * from the cached FO4 figure by ClockModel::latencyCycles; caching the
 * clock-independent latency therefore covers every (clock period,
 * capacity, calibration) combination the sweep grid touches.
 *
 * Thread safety: a single mutex guards the table.  Entries are values
 * (doubles), so a hit copies out under the lock and never hands out a
 * reference that rehashing could invalidate.
 */

#ifndef FO4_CACTI_LATENCY_CACHE_HH
#define FO4_CACTI_LATENCY_CACHE_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "cacti/structures.hh"

namespace fo4::cacti
{

/** Hit/miss/insert counters, for tests and the engineering benches. */
struct LatencyCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /**
     * Entries actually added to the table.  Under concurrency this can
     * lag `misses`: two threads may miss on the same key, both compute,
     * and only the first emplace inserts.  Serially, inserts == misses.
     */
    std::uint64_t inserts = 0;
    std::uint64_t lookups() const { return hits + misses; }
};

/** Memo table over StructureModel::latencyFo4. */
class LatencyCache
{
  public:
    /** The shared process-wide instance. */
    static LatencyCache &global();

    /**
     * Anchored latency of `kind` at `capacity` under `model`'s
     * calibration; identical to model.latencyFo4(kind, capacity), but
     * computed at most once per distinct (calibration, kind, capacity).
     */
    double latencyFo4(const StructureModel &model, StructureKind kind,
                      std::uint64_t capacity);

    LatencyCacheStats stats() const;

    /** Forget everything (tests; also resets the counters). */
    void clear();

  private:
    struct Key
    {
        std::uint64_t paramsFingerprint;
        StructureKind kind;
        std::uint64_t capacity;

        bool
        operator==(const Key &o) const
        {
            return paramsFingerprint == o.paramsFingerprint &&
                   kind == o.kind && capacity == o.capacity;
        }
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    mutable std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> table;
    LatencyCacheStats counters;
};

} // namespace fo4::cacti

#endif // FO4_CACTI_LATENCY_CACHE_HH
