#include "cacti/structures.hh"

#include "util/logging.hh"

namespace fo4::cacti
{

namespace
{

/** Build the model configuration for a structure at a capacity. */
AccessTime
modelAccess(const ModelParams &prm, StructureKind kind, std::uint64_t cap)
{
    switch (kind) {
      case StructureKind::DL1: {
        CacheConfig c;
        c.capacityBytes = cap;
        c.lineBytes = 64;
        c.associativity = 2;
        c.ports = 2;
        const CacheAccessTime cat = cacheAccessTime(c, prm);
        AccessTime at = cat.data.total() > cat.tag.total() + cat.waySelect
                            ? cat.data
                            : cat.tag;
        // Fold the way-select into the output term so total() is the
        // cache access time.
        at.output += cat.waySelect;
        return at;
      }
      case StructureKind::L2: {
        CacheConfig c;
        c.capacityBytes = cap;
        c.lineBytes = 64;
        c.associativity = 8;
        c.ports = 1;
        const CacheAccessTime cat = cacheAccessTime(c, prm);
        AccessTime at = cat.data;
        at.output += cat.waySelect;
        return at;
      }
      case StructureKind::BranchPredictor: {
        SramConfig c;
        c.entries = cap;
        c.bits = 2;
        c.readPorts = 1;
        c.writePorts = 1;
        return sramAccessTime(c, prm);
      }
      case StructureKind::RenameTable: {
        SramConfig c;
        c.entries = cap;
        c.bits = 10;           // physical register tag
        c.readPorts = 8;       // 4-wide rename: 2 sources per op
        c.writePorts = 4;
        return sramAccessTime(c, prm);
      }
      case StructureKind::IssueWindow: {
        SramConfig c;
        c.entries = cap;
        c.bits = 32;           // opcode + operand tags + ready bits
        c.readPorts = 4;
        c.writePorts = 4;
        c.cam = true;
        c.tagBits = 10;
        return sramAccessTime(c, prm);
      }
      case StructureKind::RegisterFile: {
        SramConfig c;
        c.entries = cap;
        c.bits = 64;
        c.readPorts = 8;
        c.writePorts = 6;
        return sramAccessTime(c, prm);
      }
    }
    util::panic("unknown structure kind %d", static_cast<int>(kind));
}

} // namespace

const char *
structureName(StructureKind kind)
{
    switch (kind) {
      case StructureKind::DL1:
        return "DL1";
      case StructureKind::L2:
        return "L2";
      case StructureKind::BranchPredictor:
        return "Branch Predictor";
      case StructureKind::RenameTable:
        return "Rename Table";
      case StructureKind::IssueWindow:
        return "Issue Window";
      case StructureKind::RegisterFile:
        return "Register File";
    }
    return "?";
}

StructureModel::StructureModel(const ModelParams &params)
    : prm(params)
{
}

std::uint64_t
StructureModel::alphaCapacity(StructureKind kind)
{
    switch (kind) {
      case StructureKind::DL1:
        return 64 * 1024;            // 64KB
      case StructureKind::L2:
        return 2 * 1024 * 1024;      // configured to 2MB (paper Sec 3.1)
      case StructureKind::BranchPredictor:
        return 4096;                 // global/choice table counters
      case StructureKind::RenameTable:
        return 80;                   // architectural map entries
      case StructureKind::IssueWindow:
        return 32;                   // window the paper segments (Sec 5)
      case StructureKind::RegisterFile:
        return 512;                  // enlarged register file (Sec 3.1)
    }
    util::panic("unknown structure kind %d", static_cast<int>(kind));
}

double
StructureModel::paperAnchorFo4(StructureKind kind)
{
    switch (kind) {
      case StructureKind::DL1:
        return 32.0;
      case StructureKind::L2:
        return 110.0;
      case StructureKind::BranchPredictor:
        return 19.5;
      case StructureKind::RenameTable:
        return 17.2;
      case StructureKind::IssueWindow:
        return 17.2;
      case StructureKind::RegisterFile:
        return 10.83;  // 0.39 ns at 100nm (paper Section 3.3)
    }
    util::panic("unknown structure kind %d", static_cast<int>(kind));
}

AccessTime
StructureModel::rawAccess(StructureKind kind, std::uint64_t capacity) const
{
    FO4_ASSERT(capacity > 0, "zero capacity for %s", structureName(kind));
    return modelAccess(prm, kind, capacity);
}

double
StructureModel::latencyFo4(StructureKind kind, std::uint64_t capacity) const
{
    const double raw = rawAccess(kind, capacity).total();
    const double anchor = rawAccess(kind, alphaCapacity(kind)).total();
    return paperAnchorFo4(kind) * raw / anchor;
}

double
StructureModel::alphaLatencyFo4(StructureKind kind) const
{
    return paperAnchorFo4(kind);
}

double
modernMemoryFo4()
{
    // ~100 ns DRAM access at 100nm: 100000 ps / 36 ps per FO4.
    return 100000.0 / 36.0;
}

double
memoryBusFo4()
{
    // 64 bytes at ~2.5 GB/s is ~25 ns; 25000 ps / 36 ps per FO4 at 100nm.
    return 25000.0 / 36.0 / 2.3; // per-access occupancy (channel-level
                                 // parallelism folded in)
}

double
crayMemoryFo4()
{
    // 12 Cray-1S cycles; each cycle is 8 ECL levels of useful logic
    // (10.9 FO4) plus 2.5 gate delays (3.4 FO4) of latch/skew overhead,
    // per Kunkel & Smith via the Appendix A equivalence.
    return 12.0 * (10.9 + 3.4);
}

} // namespace fo4::cacti
