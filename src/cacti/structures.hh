/**
 * @file
 * Capacity-to-latency models for the microarchitectural structures the
 * study scales (paper Section 3.2 and Table 3).
 *
 * Latencies are anchored: at the Alpha 21264 capacities each structure is
 * pinned to the FO4 access time implied by the paper's Table 3 (e.g. the
 * register file's 0.39 ns = 10.8 FO4), and the analytical SRAM model
 * provides the *relative* scaling to other capacities for the Section 4.5
 * structure-capacity optimization.
 */

#ifndef FO4_CACTI_STRUCTURES_HH
#define FO4_CACTI_STRUCTURES_HH

#include <cstdint>
#include <string>

#include "cacti/sram.hh"

namespace fo4::cacti
{

/** The structures whose access time the study models. */
enum class StructureKind
{
    DL1,             ///< level-1 data cache (capacity in bytes)
    L2,              ///< level-2 cache (capacity in bytes)
    BranchPredictor, ///< predictor tables (capacity in counters)
    RenameTable,     ///< register rename map (capacity in entries)
    IssueWindow,     ///< CAM-based issue window (capacity in entries)
    RegisterFile,    ///< physical register file (capacity in entries)
};

/** Printable name of a structure kind. */
const char *structureName(StructureKind kind);

/**
 * Anchored capacity->latency model.  All latencies in FO4.
 */
class StructureModel
{
  public:
    explicit StructureModel(const ModelParams &params = ModelParams{});

    /**
     * Access latency at an arbitrary capacity (bytes for caches, entries
     * for everything else), anchored to the paper value at the Alpha
     * capacity.
     */
    double latencyFo4(StructureKind kind, std::uint64_t capacity) const;

    /** Latency at the Alpha 21264 capacity (== the paper anchor). */
    double alphaLatencyFo4(StructureKind kind) const;

    /** Raw (uncalibrated) model access time at a capacity. */
    AccessTime rawAccess(StructureKind kind, std::uint64_t capacity) const;

    /** The Alpha 21264 capacity used as the anchor point. */
    static std::uint64_t alphaCapacity(StructureKind kind);

    /** The calibration constants this model was built with. */
    const ModelParams &params() const { return prm; }

    /**
     * The access time in FO4 implied by the paper for the Alpha capacity.
     * Derived by fitting Table 3 rows to cycles = ceil(latency/t_useful):
     * the register-file row yields exactly 10.83 FO4 (0.39 ns), the
     * rename/issue-window rows ~17.2 FO4, the branch predictor ~19.5 FO4
     * and the DL1 ~32 FO4 (cache rows match to within +-1 cycle since
     * Cacti 3.0's internal pipelining is not public).
     */
    static double paperAnchorFo4(StructureKind kind);

  private:
    ModelParams prm;
};

/**
 * Main-memory latency in FO4 at 100nm for the two memory systems studied:
 * a modern DRAM behind the L2 (Section 4.3 machines) and the Cray-1S flat
 * 12-cycle memory (Section 4.2), whose absolute time is 12 Cray cycles of
 * 10.9 FO4 useful + 3.4 FO4 overhead each.
 */
double modernMemoryFo4();
double crayMemoryFo4();

/** Occupancy of the memory channel per 64-byte line, in FO4 (fixed
 *  absolute DRAM bandwidth of roughly 2.5 GB/s at the paper's era). */
double memoryBusFo4();

} // namespace fo4::cacti

#endif // FO4_CACTI_STRUCTURES_HH
