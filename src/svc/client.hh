/**
 * @file
 * Blocking client of the sweep service: one TCP connection, one
 * request/response round trip per call.
 *
 * Error model: a server-reported Error frame is rethrown locally as
 * SvcError carrying the *remote* code — a queue-full refusal surfaces
 * as SvcError(Overloaded), a job's DeadlockError as SvcError(Deadlock),
 * and so on, so callers handle remote failures with the same typed
 * dispatch they use for local ones.  Transport trouble is
 * SvcError(NetIo); a frame that cannot be trusted, SvcError(Protocol).
 */

#ifndef FO4_SVC_CLIENT_HH
#define FO4_SVC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "svc/protocol.hh"
#include "util/net.hh"

namespace fo4::svc
{

/** A connected client.  Not thread-safe: one conversation at a time. */
class Client
{
  public:
    /** Connect to a daemon; throws SvcError(NetIo) on failure. */
    Client(const std::string &host, std::uint16_t port,
           int timeoutMs = 30000);

    /** Submit a sweep.  Returns (job id, total grid cells); rethrows
     *  the server's refusal (Overloaded, InvalidConfig, ...). */
    std::pair<std::uint64_t, std::uint64_t>
    submit(const SweepRequest &request);

    /** One status snapshot. */
    JobStatusInfo poll(std::uint64_t id);

    /** The canonical result bytes of a Done job; rethrows NotReady
     *  while the job is in flight and the job's own typed failure
     *  (or Cancelled) once terminal. */
    std::string fetchResults(std::uint64_t id);

    /** Request cancellation; returns the post-cancel status. */
    JobStatusInfo cancel(std::uint64_t id);

    /** The service's live gauges and metrics snapshot. */
    StatsSnapshot stats();

    /**
     * Poll until the job is terminal, sleeping `pollMs` between polls
     * and reporting each status to `onStatus` (may be empty).  Returns
     * the terminal status; fetch the bytes with fetchResults().
     */
    JobStatusInfo
    waitUntilDone(std::uint64_t id, int pollMs = 200,
                  const std::function<void(const JobStatusInfo &)>
                      &onStatus = {});

  private:
    /** Send `type`+`body`, read one response, rethrow Error frames. */
    Frame roundTrip(MsgType type, std::string_view body);
    Frame expect(MsgType type, std::string_view body, MsgType want);

    util::TcpStream stream;
    int timeoutMs;
};

} // namespace fo4::svc

#endif // FO4_SVC_CLIENT_HH
