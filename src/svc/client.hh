/**
 * @file
 * Blocking client of the sweep service: one TCP connection, one
 * request/response round trip per call.
 *
 * Error model: a server-reported Error frame is rethrown locally as
 * SvcError carrying the *remote* code — a queue-full refusal surfaces
 * as SvcError(Overloaded), a job's DeadlockError as SvcError(Deadlock),
 * and so on, so callers handle remote failures with the same typed
 * dispatch they use for local ones.  Transport trouble is
 * SvcError(NetIo); a frame that cannot be trusted, SvcError(Protocol).
 *
 * Resilience: with Options::reconnect (the default), transport
 * failures cost a capped-backoff reconnect cycle instead of the call —
 * a `fo4ctl poll` loop rides out a daemon restart.  The retry guard is
 * idempotency-aware: poll/fetch/cancel/stats/workers re-send freely,
 * but a submit whose request already reached the wire is *never*
 * retried (the daemon may have accepted it; resubmitting would enqueue
 * the sweep twice).  Error frames are verdicts, not transport trouble,
 * and are never retried.
 */

#ifndef FO4_SVC_CLIENT_HH
#define FO4_SVC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/checkpoint.hh"
#include "svc/protocol.hh"
#include "util/net.hh"

namespace fo4::svc
{

/** A connected client.  Not thread-safe: one conversation at a time. */
class Client
{
  public:
    /** Knobs of a client connection. */
    struct Options
    {
        /** Deadline for establishing (or re-establishing) the TCP
         *  connection; must be > 0. */
        int connectTimeoutMs = 5000;
        /** Per-round-trip read/write deadline; must be > 0. */
        int ioTimeoutMs = 30000;
        /** Reconnect-and-retry on transport failure (idempotent
         *  requests only once bytes have hit the wire). */
        bool reconnect = true;
        /** Backoff between reconnect attempts; maxAttempts bounds the
         *  total tries of one call (including the first). */
        study::RetryPolicy retry{
            .maxAttempts = 5,
            .baseDelayMs = 100.0,
            .backoffFactor = 2.0,
            .maxDelayMs = 2000.0,
        };
    };

    /** Connect to a daemon; throws SvcError(NetIo) on failure and
     *  ConfigError on out-of-range options. */
    Client(const std::string &host, std::uint16_t port, Options options);

    /** Default options. */
    Client(const std::string &host, std::uint16_t port);

    /** Legacy shape: `timeoutMs` is the per-round-trip deadline. */
    Client(const std::string &host, std::uint16_t port, int timeoutMs);

    /** Submit a sweep.  Returns (job id, total grid cells); rethrows
     *  the server's refusal (Overloaded, InvalidConfig, ...). */
    std::pair<std::uint64_t, std::uint64_t>
    submit(const SweepRequest &request);

    /** One status snapshot. */
    JobStatusInfo poll(std::uint64_t id);

    /** The canonical result bytes of a Done job; rethrows NotReady
     *  while the job is in flight and the job's own typed failure
     *  (or Cancelled) once terminal. */
    std::string fetchResults(std::uint64_t id);

    /** Request cancellation; returns the post-cancel status. */
    JobStatusInfo cancel(std::uint64_t id);

    /** The service's live gauges and metrics snapshot. */
    StatsSnapshot stats();

    /** The coordinator's fleet roster; a plain fo4d answers with a
     *  Protocol error (it serves no fleet). */
    std::vector<WorkerSnapshot> workers();

    /**
     * Poll until the job is terminal, sleeping `pollMs` between polls
     * and reporting each status to `onStatus` (may be empty).  Returns
     * the terminal status; fetch the bytes with fetchResults().
     */
    JobStatusInfo
    waitUntilDone(std::uint64_t id, int pollMs = 200,
                  const std::function<void(const JobStatusInfo &)>
                      &onStatus = {});

  private:
    /** Send `type`+`body`, read one response, rethrow Error frames.
     *  `idempotent` requests survive transport failure via reconnect
     *  even after their bytes hit the wire. */
    Frame roundTrip(MsgType type, std::string_view body, bool idempotent);
    Frame expect(MsgType type, std::string_view body, MsgType want,
                 bool idempotent = true);

    std::string host;
    std::uint16_t port;
    Options opts;
    util::TcpStream stream;
};

} // namespace fo4::svc

#endif // FO4_SVC_CLIENT_HH
