/**
 * @file
 * The coordinator's bookkeeping, pure and time-injected: which grid
 * cells are pending/leased/done (CellScheduler) and which workers are
 * live/suspect/dead (WorkerTable).
 *
 * Lease semantics: a cell is *leased*, never *assigned*.  A lease is a
 * timed, revocable grant — it expires (leaseTimeoutMs), it dies with
 * its worker, and the cell silently returns to the pending queue for
 * re-dispatch.  The safety argument is purity: a cell is a pure
 * function of (request, point, job), so two executions of the same
 * cell — a re-dispatched lease racing its not-actually-dead original
 * owner — produce byte-identical results, and first-completion-wins
 * resolution by cell id is deterministic over *bytes* even though it
 * is racy over *which worker* wins.  Re-dispatch can waste compute;
 * it cannot change a result.
 *
 * Failure detector: heartbeat-driven Live -> Suspect -> Dead.  Any
 * frame from a worker refreshes its clock (a busy worker that skips a
 * heartbeat but delivers a cell is demonstrably alive).  Suspect is
 * reversible — a late heartbeat revives the worker; Dead is final —
 * the id is retired, its leases reclaimed, and the worker must
 * re-register under a fresh id (which keeps "a completion from a dead
 * id" trivially refusable).
 *
 * Both classes take every timestamp as a parameter (std::chrono
 * steady_clock time_points) and do no locking: the coordinator guards
 * them with its fabric mutex, and unit tests drive the failure
 * detector with fabricated clocks instead of sleeps.
 */

#ifndef FO4_SVC_LEASE_HH
#define FO4_SVC_LEASE_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "svc/protocol.hh"

namespace fo4::svc
{

using FabricClock = std::chrono::steady_clock;
using FabricTime = FabricClock::time_point;

/** One sweep's cell states: pending -> leased -> done, with leases
 *  revocable back to pending.  Cells are indexed (point, job). */
class CellScheduler
{
  public:
    struct CellKey
    {
        std::size_t point = 0;
        std::size_t job = 0;
    };

    CellScheduler(std::size_t points, std::size_t jobs);

    /** Land a cell completed before scheduling began (journal replay).
     *  Idempotent. */
    void markDone(std::size_t point, std::size_t job);

    /**
     * Lease the next pending cell to `workerId` until `expiry`.
     * Returns nullopt when nothing is pending (all cells leased or
     * done — the worker should back off and re-ask).
     */
    std::optional<CellKey> grant(std::uint64_t workerId,
                                 FabricTime expiry);

    /**
     * Record a completion.  True: first completion, the result should
     * be merged.  False: duplicate of an already-done cell (a lease
     * raced its re-dispatch) — drop the bytes, they are identical by
     * purity.  Accepts completions from revoked leases: the result is
     * just as good no matter whose lease it ran under.
     */
    bool complete(std::size_t point, std::size_t job);

    /** Return every lease past `now` to the pending queue.  Returns
     *  the number reclaimed (the re-dispatch counter's feed). */
    std::size_t reclaimExpired(FabricTime now);

    /** Return every lease held by `workerId` (a dead worker) to the
     *  pending queue.  Returns the number reclaimed. */
    std::size_t reclaimWorker(std::uint64_t workerId);

    /** Drain the pending queue (local-fallback takeover): no further
     *  grants happen; in-flight leases may still complete.  Returns
     *  the keys drained, in queue order. */
    std::vector<CellKey> drainPending();

    std::size_t totalCells() const { return states.size(); }
    std::size_t doneCount() const { return nDone; }
    std::size_t pendingCount() const { return pending.size(); }
    std::size_t leasedCount() const { return leases.size(); }
    bool finished() const { return nDone == states.size(); }

    /** Leases currently held by one worker (WorkerReport gauge). */
    std::uint64_t activeLeases(std::uint64_t workerId) const;

  private:
    enum class State : unsigned char
    {
        Pending,
        Leased,
        Done,
    };

    struct Lease
    {
        std::uint64_t workerId = 0;
        FabricTime expiry;
    };

    std::size_t index(std::size_t point, std::size_t job) const;

    std::size_t nJobs;
    std::vector<State> states;
    std::deque<std::size_t> pending; ///< indices, FIFO
    std::map<std::size_t, Lease> leases;
    std::size_t nDone = 0;
};

/** The failure detector's view of the registered fleet. */
class WorkerTable
{
  public:
    struct Timing
    {
        /** How often workers are told to heartbeat. */
        std::uint64_t heartbeatMs = 1000;
        /** Silence before Live degrades to Suspect. */
        std::uint64_t suspectAfterMs = 3000;
        /** Silence before a worker is declared Dead (final). */
        std::uint64_t deadAfterMs = 10000;
    };

    explicit WorkerTable(Timing timing);

    /** Admit a worker; returns its fresh id (ids are never reused, so
     *  a dead worker's late frames stay refusable). */
    std::uint64_t registerWorker(std::string name, std::uint64_t threads,
                                 FabricTime now);

    /**
     * Refresh a worker's liveness clock (any frame counts, not just
     * heartbeats).  Revives Suspect to Live.  Returns false for
     * unknown or Dead ids — the caller tells the worker to
     * re-register.
     */
    bool touch(std::uint64_t id, FabricTime now);

    /** Run the failure detector: degrade silent workers, declare the
     *  over-silent dead.  Returns the ids that died *this* sweep, so
     *  the caller reclaims their leases exactly once. */
    std::vector<std::uint64_t> newlyDead(FabricTime now);

    /** Workers not declared Dead (Live + Suspect — a suspect still
     *  holds its leases and may yet deliver). */
    std::size_t liveCount() const;

    /** Total workers ever registered. */
    std::size_t registeredCount() const { return workers.size(); }

    void recordCompletion(std::uint64_t id);

    const Timing &timing() const { return times; }

    /** The WorkerReport rows; `leasesOf` supplies the per-worker
     *  active-lease gauge (the scheduler knows, this table does not). */
    template <typename LeasesOf>
    std::vector<WorkerSnapshot>
    snapshot(FabricTime now, LeasesOf &&leasesOf) const
    {
        std::vector<WorkerSnapshot> rows;
        rows.reserve(workers.size());
        for (const auto &[id, w] : workers) {
            WorkerSnapshot row;
            row.id = id;
            row.name = w.name;
            row.state = w.state;
            row.activeLeases = leasesOf(id);
            row.cellsCompleted = w.cellsCompleted;
            row.heartbeatAgeMs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - w.lastSeen)
                    .count());
            rows.push_back(std::move(row));
        }
        return rows;
    }

  private:
    struct Worker
    {
        std::string name;
        std::uint64_t threads = 1;
        WorkerState state = WorkerState::Live;
        FabricTime lastSeen;
        std::uint64_t cellsCompleted = 0;
    };

    Timing times;
    std::uint64_t nextId = 1;
    std::map<std::uint64_t, Worker> workers;
};

} // namespace fo4::svc

#endif // FO4_SVC_LEASE_HH
