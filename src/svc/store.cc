#include "svc/store.hh"

#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

ResultStore::ResultStore(std::string dir, std::uint64_t maxBytes)
    : store(std::move(dir), maxBytes, "svc.cache")
{
}

std::string
ResultStore::sweepKey(std::uint64_t fingerprint)
{
    return util::strprintf("sweep-%016llx",
                           static_cast<unsigned long long>(fingerprint));
}

std::string
ResultStore::cellKey(std::uint64_t fingerprint, std::size_t point,
                     std::size_t job)
{
    return util::strprintf("cell-%016llx-%zu-%zu",
                           static_cast<unsigned long long>(fingerprint),
                           point, job);
}

std::optional<std::string>
ResultStore::fetchSweep(std::uint64_t fingerprint)
{
    return store.get(sweepKey(fingerprint));
}

void
ResultStore::storeSweep(std::uint64_t fingerprint,
                        std::string_view payload)
{
    store.put(sweepKey(fingerprint), payload);
}

std::optional<study::CellRecord>
ResultStore::fetchCell(std::uint64_t fingerprint, std::size_t point,
                       std::size_t job)
{
    const std::string key = cellKey(fingerprint, point, job);
    std::optional<std::string> payload = store.get(key);
    if (!payload)
        return std::nullopt;
    try {
        study::CellRecord cell =
            study::decodeCellRecord(*payload, store.pathFor(key));
        if (cell.point != point || cell.job != job)
            throw util::JournalError(
                util::ErrorCode::JournalCorrupt,
                util::strprintf("cell blob '%s' claims slot (%zu, %zu)",
                                key.c_str(), cell.point, cell.job));
        return cell;
    } catch (const util::SimError &) {
        // Framed fine but does not decode (or lies about its slot):
        // same quarantine treatment BlobStore gives a bad CRC.
        store.remove(key);
        util::MetricsRegistry::global().counter("svc.cache.corrupt").inc();
        return std::nullopt;
    }
}

void
ResultStore::storeCell(std::uint64_t fingerprint,
                       const study::CellRecord &cell)
{
    store.put(cellKey(fingerprint, cell.point, cell.job),
              study::encodeCellRecord(cell));
}

} // namespace fo4::svc
