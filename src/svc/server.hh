/**
 * @file
 * The sweep daemon: a SessionServer (TCP listener, one session thread
 * per connection) plus a single dispatcher thread that executes queued
 * sweeps through the crash-safe checkpointed runner.
 *
 * Why one dispatcher: a sweep already fans its grid across
 * ServerOptions::threads workers, so running two sweeps concurrently
 * would just have them fight over the same cores; FIFO dispatch keeps
 * the latency story simple (queue position is an honest progress
 * indicator) and the checkpoint journals per-job.
 *
 * Fault containment: a malformed or corrupt frame costs its *session*
 * (the client gets a typed Error frame when the transport still works,
 * then the connection closes) — never the daemon.  A failed sweep is a
 * Failed job other clients can inspect; the dispatcher survives.
 *
 * Shutdown (SIGINT in fo4d): stop() closes the listener, marks every
 * queued job Cancelled, and flips the running job's CancelToken; the
 * in-flight sweep drains cooperatively with its journal flushed, so a
 * resubmission after restart resumes instead of recomputing.  join()
 * then reaps every thread.  A drained daemon exits 0.
 */

#ifndef FO4_SVC_SERVER_HH
#define FO4_SVC_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "svc/session_server.hh"
#include "svc/store.hh"

namespace fo4::svc
{

/** Knobs of the daemon. */
struct ServerOptions
{
    /** Listen port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Worker threads per sweep; 1 = serial, <= 0 = hardware count. */
    int threads = 1;
    /** Admission bound: queued (not yet running) jobs. */
    std::size_t maxQueue = 8;
    /** Directory for per-job checkpoint journals, keyed by grid
     *  fingerprint; empty disables durability. */
    std::string checkpointDir;
    /** Directory for the persistent result store; empty disables
     *  caching.  A repeat sweep is then served at zero compute, with
     *  every store fault degrading to recompute (svc/store.hh). */
    std::string cacheDir;
    /** Result-store size cap in bytes (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 0;
    /** Max queued sweeps per tenant (0 = unlimited). */
    std::size_t tenantQuota = 0;
};

/** The daemon.  Construction binds and starts serving; see stop(). */
class Server : public SessionServer
{
  public:
    explicit Server(ServerOptions options);
    ~Server() override;

    /** Begin the drain described in the file comment.  Idempotent. */
    void stop() override;

    /** Wait for every thread; call after stop(). */
    void join();

  private:
    void dispatchLoop();
    void handleFrame(util::TcpStream &stream, const Frame &frame) override;
    StatsSnapshot buildStats() const override;

    ServerOptions opts;
    /** Persistent result cache; null when cacheDir is empty. */
    std::unique_ptr<ResultStore> store;
    std::thread dispatchThread;
};

} // namespace fo4::svc

#endif // FO4_SVC_SERVER_HH
