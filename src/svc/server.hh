/**
 * @file
 * The sweep daemon: a TCP listener, one session thread per connection,
 * and a single dispatcher thread that executes queued sweeps through
 * the crash-safe checkpointed runner.
 *
 * Why one dispatcher: a sweep already fans its grid across
 * ServerOptions::threads workers, so running two sweeps concurrently
 * would just have them fight over the same cores; FIFO dispatch keeps
 * the latency story simple (queue position is an honest progress
 * indicator) and the checkpoint journals per-job.
 *
 * Fault containment: a malformed or corrupt frame costs its *session*
 * (the client gets a typed Error frame when the transport still works,
 * then the connection closes) — never the daemon.  A failed sweep is a
 * Failed job other clients can inspect; the dispatcher survives.
 *
 * Shutdown (SIGINT in fo4d): stop() closes the listener, marks every
 * queued job Cancelled, and flips the running job's CancelToken; the
 * in-flight sweep drains cooperatively with its journal flushed, so a
 * resubmission after restart resumes instead of recomputing.  join()
 * then reaps every thread.  A drained daemon exits 0.
 */

#ifndef FO4_SVC_SERVER_HH
#define FO4_SVC_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/queue.hh"
#include "util/net.hh"

namespace fo4::svc
{

/** Knobs of the daemon. */
struct ServerOptions
{
    /** Listen port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Worker threads per sweep; 1 = serial, <= 0 = hardware count. */
    int threads = 1;
    /** Admission bound: queued (not yet running) jobs. */
    std::size_t maxQueue = 8;
    /** Directory for per-job checkpoint journals, keyed by grid
     *  fingerprint; empty disables durability. */
    std::string checkpointDir;
};

/** The daemon.  Construction binds and starts serving; see stop(). */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return listener.port(); }

    /** Begin the drain described in the file comment.  Idempotent. */
    void stop();

    /** Wait for every thread; call after stop(). */
    void join();

  private:
    void acceptLoop();
    void sessionLoop(util::TcpStream stream);
    void dispatchLoop();
    void handleFrame(util::TcpStream &stream, const Frame &frame);
    StatsSnapshot buildStats() const;

    ServerOptions opts;
    util::TcpListener listener;
    JobTable table;
    std::atomic<bool> stopping{false};

    std::thread acceptThread;
    std::thread dispatchThread;
    std::mutex sessionMutex;
    std::vector<std::thread> sessions;
};

} // namespace fo4::svc

#endif // FO4_SVC_SERVER_HH
