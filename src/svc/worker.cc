#include "svc/worker.hh"

#include <algorithm>
#include <chrono>

#include "study/runner.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

namespace
{

using util::ErrorCode;
using util::SvcError;

/** Write one request, read its response.  A peer that hangs up between
 *  frames is a transport failure here (mid-conversation), not orderly
 *  EOF — the reconnect path owns it. */
Frame
roundTrip(util::TcpStream &stream, MsgType type, const std::string &body,
          int ioTimeoutMs)
{
    writeFrame(stream, type, body, ioTimeoutMs);
    std::optional<Frame> frame = readFrame(stream, ioTimeoutMs);
    if (!frame) {
        throw SvcError(ErrorCode::NetIo,
                       "coordinator hung up mid-conversation");
    }
    return std::move(*frame);
}

/** Throws the remote verdict when `frame` is an Error record. */
void
throwIfError(const Frame &frame)
{
    if (frame.type == MsgType::Error) {
        const auto [code, message] = decodeError(frame.body);
        throw SvcError(code, message);
    }
}

} // namespace

Worker::Worker(WorkerOptions options) : opts(std::move(options))
{
    if (const auto st = opts.reconnect.validate(); !st.isOk())
        throw util::ConfigError("reconnect policy: " + st.message());
    if (const auto st = opts.retry.validate(); !st.isOk())
        throw util::ConfigError("retry policy: " + st.message());
    if (!opts.cacheDir.empty())
        store = std::make_unique<ResultStore>(opts.cacheDir,
                                              opts.cacheMaxBytes);
    workThread = std::thread([this] { workLoop(); });
    heartbeatThread = std::thread([this] { heartbeatLoop(); });
}

Worker::~Worker()
{
    stop();
    join();
}

void
Worker::stop()
{
    if (stopping.exchange(true))
        return;
    cellCancel.requestCancel();
    std::lock_guard<std::mutex> lock(sleepMutex);
    sleepCv.notify_all();
}

void
Worker::kill()
{
    // Same mechanics as stop(); the *contract* differs: the work loop
    // checks the flag between finishing a cell and reporting it, so
    // after kill() returns-and-joins, no CellDone reached the wire for
    // the aborted cell — the in-process SIGKILL.
    stop();
}

void
Worker::join()
{
    if (workThread.joinable())
        workThread.join();
    if (heartbeatThread.joinable())
        heartbeatThread.join();
}

bool
Worker::sleepFor(double delayMs)
{
    if (delayMs <= 0.0)
        return !stopping.load();
    std::unique_lock<std::mutex> lock(sleepMutex);
    return !sleepCv.wait_for(
        lock, std::chrono::duration<double, std::milli>(delayMs),
        [this] { return stopping.load(); });
}

void
Worker::workLoop()
{
    auto &cellsExecuted = util::MetricsRegistry::global().counter(
        "svc.worker.cells_executed");
    auto &cellsFromCache = util::MetricsRegistry::global().counter(
        "svc.worker.cells_from_cache");
    auto &reconnects = util::MetricsRegistry::global().counter(
        "svc.worker.reconnects");

    util::TcpStream stream;
    int backoffAttempt = 1;
    while (!stopping.load()) {
        try {
            if (!stream.connected()) {
                stream = util::TcpStream::connect(
                    opts.host, opts.port, opts.connectTimeoutMs);
            }

            // Register (or re-register after being declared dead).
            WorkerHelloInfo hello;
            hello.name = opts.name;
            hello.threads = 1;
            Frame reply = roundTrip(stream, MsgType::WorkerHello,
                                    hello.encode(), opts.ioTimeoutMs);
            throwIfError(reply);
            if (reply.type != MsgType::HelloOk) {
                throw SvcError(
                    ErrorCode::Protocol,
                    util::strprintf("expected HelloOk, got record "
                                    "type %u",
                                    static_cast<unsigned>(reply.type)));
            }
            const HelloOkInfo ok = HelloOkInfo::decode(reply.body);
            id.store(ok.workerId);
            if (ok.heartbeatMs > 0)
                heartbeatMs.store(ok.heartbeatMs);
            backoffAttempt = 1; // registered: the transport works

            // Pull leases until stopped, declared dead, or the
            // transport fails.
            while (!stopping.load()) {
                Frame r = roundTrip(stream, MsgType::LeaseRequest,
                                    encodeWorkerId(id.load()),
                                    opts.ioTimeoutMs);
                if (r.type == MsgType::Error) {
                    const auto [code, message] = decodeError(r.body);
                    if (code == ErrorCode::NotFound)
                        break; // declared dead: re-hello, fresh id
                    throw SvcError(code, message);
                }
                if (r.type == MsgType::NoWork) {
                    if (!sleepFor(static_cast<double>(
                            decodeRetryMs(r.body))))
                        return;
                    continue;
                }
                if (r.type != MsgType::CellLease) {
                    throw SvcError(
                        ErrorCode::Protocol,
                        util::strprintf("expected a lease, got record "
                                        "type %u",
                                        static_cast<unsigned>(r.type)));
                }
                const CellLeaseInfo lease = CellLeaseInfo::decode(r.body);

                // Derive (and cache) the plan this lease's cell lives
                // in; the fingerprint check catches a coordinator and
                // worker that disagree about what the request means.
                auto it = planCache.find(lease.sweep);
                if (it == planCache.end()) {
                    SweepPlan plan = planSweep(
                        SweepRequest::decode(lease.requestBody));
                    if (planFingerprint(plan) != lease.sweep) {
                        throw SvcError(
                            ErrorCode::Protocol,
                            util::strprintf(
                                "lease names sweep %016llx but its "
                                "request plans to %016llx",
                                static_cast<unsigned long long>(
                                    lease.sweep),
                                static_cast<unsigned long long>(
                                    planFingerprint(plan))));
                    }
                    it = planCache
                             .emplace(lease.sweep, std::move(plan))
                             .first;
                }
                const SweepPlan &plan = it->second;
                if (lease.point >= plan.points.size() ||
                    lease.job >= plan.jobs.size()) {
                    throw SvcError(
                        ErrorCode::Protocol,
                        util::strprintf(
                            "lease cell (%llu, %llu) outside the "
                            "%zux%zu grid",
                            static_cast<unsigned long long>(lease.point),
                            static_cast<unsigned long long>(lease.job),
                            plan.points.size(), plan.jobs.size()));
                }

                // Warm-cache read path first: a stored cell for this
                // (fingerprint, point, job) is the same bytes execution
                // would produce — cells are pure and the fingerprint
                // pins every input — so a verified hit skips the
                // simulator entirely.  Every cache fault already
                // degraded to nullopt inside the store.
                study::CellRecord cell;
                bool fromCache = false;
                if (store) {
                    if (std::optional<study::CellRecord> cached =
                            store->fetchCell(lease.sweep, lease.point,
                                             lease.job)) {
                        cell = std::move(*cached);
                        fromCache = true;
                    }
                }
                if (!fromCache) {
                    // Execute with the same transient-retry discipline
                    // as the local runner (same jitter key, same
                    // verdicts).
                    const auto &gp = plan.points[lease.point];
                    const std::uint64_t cellKey =
                        lease.point * plan.jobs.size() + lease.job;
                    study::BenchResult result;
                    for (int attempt = 1;; ++attempt) {
                        result = study::runJobIsolated(
                            gp.params, gp.clock, plan.jobs[lease.job],
                            plan.spec, &cellCancel);
                        if (!result.failed() ||
                            attempt >= opts.retry.maxAttempts ||
                            !study::RetryPolicy::transientCode(
                                result.error.code()))
                            break;
                        const double delay =
                            opts.retry.delayMs(attempt + 1, cellKey);
                        if (!sleepFor(delay))
                            return;
                    }
                    cell.point = lease.point;
                    cell.job = lease.job;
                    cell.result = std::move(result);
                }
                if (stopping.load())
                    return; // killed: the result never reaches the wire
                CellDoneInfo done;
                done.workerId = id.load();
                done.sweep = lease.sweep;
                done.point = lease.point;
                done.job = lease.job;
                done.cellPayload = study::encodeCellRecord(cell);
                Frame d = roundTrip(stream, MsgType::CellDone,
                                    done.encode(), opts.ioTimeoutMs);
                if (d.type == MsgType::Error) {
                    const auto [code, message] = decodeError(d.body);
                    if (code == ErrorCode::NotFound)
                        break; // declared dead mid-cell: re-register
                    throw SvcError(code, message);
                }
                if (d.type != MsgType::DoneOk) {
                    throw SvcError(
                        ErrorCode::Protocol,
                        util::strprintf("expected DoneOk, got record "
                                        "type %u",
                                        static_cast<unsigned>(d.type)));
                }
                decodeAccepted(d.body); // accepted or duplicate: done
                if (fromCache) {
                    nFromCache.fetch_add(1, std::memory_order_relaxed);
                    cellsFromCache.inc();
                } else {
                    // Publish the computed cell for future warm-cache
                    // runs — clean results only: a transient failure
                    // must not be replayed from disk later.
                    if (store && !cell.result.failed())
                        store->storeCell(lease.sweep, cell);
                    nExecuted.fetch_add(1, std::memory_order_relaxed);
                    cellsExecuted.inc();
                }
            }
        } catch (const util::CancelledError &) {
            return; // stop()/kill() aborted the in-flight cell
        } catch (const util::SimError &e) {
            // Transport or protocol trouble: drop the connection and
            // come back with capped backoff.  The lease we may have
            // been holding simply expires and re-dispatches.
            stream.close();
            if (stopping.load())
                return;
            util::warn("worker: %s; reconnecting", e.what());
            reconnects.inc();
            const double delay = opts.reconnect.delayMs(
                std::min(backoffAttempt + 1, 16), /*cellKey=*/0);
            ++backoffAttempt;
            if (!sleepFor(delay))
                return;
        }
    }
}

void
Worker::heartbeatLoop()
{
    util::TcpStream stream;
    while (!stopping.load()) {
        if (!sleepFor(static_cast<double>(heartbeatMs.load())))
            return;
        const std::uint64_t workerId = id.load();
        if (workerId == 0)
            continue; // not registered yet
        try {
            if (!stream.connected()) {
                stream = util::TcpStream::connect(
                    opts.host, opts.port, opts.connectTimeoutMs);
            }
            writeFrame(stream, MsgType::Heartbeat,
                       encodeWorkerId(workerId), opts.ioTimeoutMs);
            const std::optional<Frame> reply =
                readFrame(stream, opts.ioTimeoutMs);
            if (!reply || reply->type != MsgType::HeartbeatOk) {
                stream.close();
                continue;
            }
            // known=0 means this id was declared dead; the work loop
            // discovers the same verdict on its next request and
            // re-registers — nothing to do here.
            decodeKnown(reply->body);
        } catch (const util::SimError &) {
            // The heartbeat connection reconnects on its own cadence;
            // missing beats while the coordinator is away is exactly
            // what the failure detector is for.
            stream.close();
        }
    }
}

} // namespace fo4::svc
