/**
 * @file
 * A fleet worker: dials the coordinator, registers, and pulls cell
 * leases in a loop — run cell, report CellDone, repeat — with a
 * separate heartbeat thread keeping the failure detector fed over its
 * own connection (a worker grinding through a long cell must still
 * look alive).
 *
 * Survival discipline: every socket operation carries a deadline, and
 * any transport failure (coordinator restart, dropped connection,
 * timeout) costs one capped-backoff reconnect cycle (study::RetryPolicy
 * reused at the network layer), not the worker.  A coordinator that
 * answers NotFound (this worker was declared dead) triggers
 * re-registration under a fresh id.
 *
 * Cells are executed through the same study::runJobIsolated the local
 * runner uses, with the same per-cell transient-retry policy — a cell
 * computed here is byte-identical to one computed anywhere else, which
 * is what makes the coordinator's first-wins duplicate resolution
 * sound.
 *
 * kill() exists for the chaos harness: it aborts the in-flight cell
 * (cancel token) and guarantees nothing more is sent — the in-process
 * equivalent of SIGKILL, letting tests exercise the failure detector
 * and re-dispatch without spawning processes.
 */

#ifndef FO4_SVC_WORKER_HH
#define FO4_SVC_WORKER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "study/checkpoint.hh"
#include "svc/store.hh"
#include "svc/sweep.hh"
#include "util/cancel.hh"
#include "util/net.hh"

namespace fo4::svc
{

/** Knobs of a worker. */
struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Advertised in WorkerHello (shows up in `fo4ctl workers`). */
    std::string name = "fo4d-worker";
    int connectTimeoutMs = 5000;
    /** Per-RPC read/write deadline. */
    int ioTimeoutMs = 10000;
    /** Backoff between reconnect attempts (maxAttempts is ignored: a
     *  worker retries until stopped; the cap is maxDelayMs). */
    study::RetryPolicy reconnect{
        .maxAttempts = 1000000,
        .baseDelayMs = 50.0,
        .backoffFactor = 2.0,
        .maxDelayMs = 2000.0,
    };
    /** Per-cell transient retry, mirroring the local runner's. */
    study::RetryPolicy retry;
    /** Directory of a persistent cell cache; empty disables it.  With a
     *  warm cache a leased cell is answered from disk instead of
     *  executed — byte-identical, because the cache key is the grid
     *  fingerprint plus the (point, job) slot (svc/store.hh). */
    std::string cacheDir;
    /** Cell-cache size cap in bytes (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 0;
};

/** One worker; construction starts its threads. */
class Worker
{
  public:
    explicit Worker(WorkerOptions options);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /** Graceful: abort the in-flight cell, stop both loops. */
    void stop();

    /** Chaos: like stop(), but asserts nothing more reaches the wire
     *  — the in-process SIGKILL for fault-injection tests. */
    void kill();

    /** Wait for both threads; call after stop()/kill(). */
    void join();

    /** Cells this worker has *computed* and reported (cache hits are
     *  counted separately in cellsFromCache()). */
    std::uint64_t cellsExecuted() const { return nExecuted.load(); }

    /** Cells answered from the persistent cell cache, skipping
     *  execution entirely. */
    std::uint64_t cellsFromCache() const { return nFromCache.load(); }

    /** The id the coordinator last assigned (0 before registration). */
    std::uint64_t workerId() const { return id.load(); }

  private:
    void workLoop();
    void heartbeatLoop();
    /** Interruptible sleep; false when stopping woke it early. */
    bool sleepFor(double delayMs);

    WorkerOptions opts;
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> heartbeatMs{1000};
    std::atomic<std::uint64_t> nExecuted{0};
    std::atomic<std::uint64_t> nFromCache{0};
    util::CancelToken cellCancel;
    /** Persistent cell cache; null when cacheDir is empty. */
    std::unique_ptr<ResultStore> store;

    std::mutex sleepMutex;
    std::condition_variable sleepCv;

    /** Plans already derived, keyed by grid fingerprint — a sweep's
     *  cells share one plan, not one planSweep call per cell. */
    std::map<std::uint64_t, SweepPlan> planCache;

    std::thread workThread;
    std::thread heartbeatThread;
};

} // namespace fo4::svc

#endif // FO4_SVC_WORKER_HH
